//! Crash-recovery properties for the journaled job server: for ANY tenant
//! queue and ANY crash point, a server killed mid-queue by a `crash@N` fault
//! clause and restarted with `--recover` semantics must (a) have journaled
//! exactly the grant-log prefix the uncrashed oracle would have produced,
//! (b) serve every tenant a byte-identical outcome to the oracle, and
//! (c) never re-run a job whose result was already journaled.
//!
//! The crash mechanism is deterministic (the fault plan counts scheduler
//! grants, not wall time), so every case in the sweep is reproducible.

use adaptive_spatial_join::engine::{
    Cluster, ClusterConfig, FaultPlan, Journal, RetryPolicy, SchedPolicy,
};
use adaptive_spatial_join::join::Algorithm;
use adaptive_spatial_join::serve::{run_queue, run_queue_recoverable, RecoveryOptions, TenantSpec};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// Fault plans tenants may carry *in addition to* the server-level crash:
/// recovery has to compose with ordinary retry/slowdown faults.
const FAULT_MENU: &[&str] = &["p=0.15", "p=0.1,slow:1=2.0"];

#[derive(Debug, Clone)]
struct GenTenant {
    algo_idx: usize,
    cardinality: usize,
    eps: f64,
    seed: u64,
    weight: u32,
    fault_idx: usize,
    fault_seed: u64,
}

/// The generated algorithm pool: the six figure algorithms plus the
/// distributed-dedup variant, whose *post-join* dedup stage is the only
/// workload shape where a crash can strand a completed join in an
/// in-flight job (the window join-phase checkpoints close).
const ALGO_POOL: [Algorithm; 7] = [
    Algorithm::Lpib,
    Algorithm::Diff,
    Algorithm::UniR,
    Algorithm::UniS,
    Algorithm::EpsGrid,
    Algorithm::Sedona,
    Algorithm::LpibDedup,
];

fn tenant_strategy() -> impl Strategy<Value = GenTenant> {
    (
        0usize..ALGO_POOL.len(),
        80usize..200,
        0.2f64..0.8,
        any::<u64>(),
        1u32..4,
        0usize..FAULT_MENU.len() + 1,
        any::<u64>(),
    )
        .prop_map(
            |(algo_idx, cardinality, eps, seed, weight, fault_idx, fault_seed)| GenTenant {
                algo_idx,
                cardinality,
                eps,
                seed,
                weight,
                fault_idx,
                fault_seed,
            },
        )
}

fn materialize(tenants: &[GenTenant]) -> Vec<TenantSpec> {
    tenants
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let mut t = TenantSpec::new(format!("t{i}"), g.eps, g.cardinality);
            t.algorithm = ALGO_POOL[g.algo_idx];
            t.seed = g.seed;
            t.weight = g.weight;
            t.partitions = 6;
            // Index 0 is the fault-free arm; the rest draw from the menu.
            t.faults = g
                .fault_idx
                .checked_sub(1)
                .map(|i| FAULT_MENU[i].to_string());
            t.fault_seed = g.fault_seed;
            if t.faults.is_some() {
                t.max_attempts = Some(8);
            }
            t
        })
        .collect()
}

fn cluster(nodes: usize) -> Cluster {
    Cluster::new(ClusterConfig::with_threads(nodes, 2))
}

/// A per-case scratch directory for the journal and checkpoints. Proptest
/// cases within one test run sequentially, so a case counter keeps legs
/// from different cases apart while staying deterministic.
fn scratch(tag: &str, case: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("asj-recovery-{tag}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline recovery property, swept across queues AND crash
    /// points: crash + recover == never crashed, byte for byte.
    #[test]
    fn any_crash_point_recovers_byte_identically(
        tenants in prop::collection::vec(tenant_strategy(), 2..4),
        nodes in 2usize..4,
        crash_pick in any::<u64>(),
        case in any::<u64>(),
    ) {
        let specs = materialize(&tenants);
        let oracle = run_queue(&cluster(nodes), &specs, SchedPolicy::FairShare)
            .expect("oracle run");
        prop_assert!(oracle.grants.len() >= 2, "queue too small to crash");

        // Any grant boundary strictly before the end is a valid crash point.
        let crash_at = 1 + crash_pick % (oracle.grants.len() as u64 - 1);
        let dir = scratch("sweep", case);
        let journal = dir.join("server.journal");

        let crash_cluster = cluster(nodes).with_fault_policy(
            FaultPlan::none().with_crash_after_grants(crash_at),
            RetryPolicy::default(),
        );
        let opts = RecoveryOptions {
            journal: Some(journal.clone()),
            checkpoint_dir: Some(dir.clone()),
            recover: false,
            compact_every: None,
        };
        let crashed =
            run_queue_recoverable(&crash_cluster, &specs, SchedPolicy::FairShare, &opts)
                .expect("crashing run");
        prop_assert!(crashed.crashed, "crash clause must fire");
        // Write-ahead invariant: what reached the journal is exactly the
        // prefix of the oracle's grant log up to the crash point.
        prop_assert_eq!(
            &crashed.grants[..],
            &oracle.grants[..crash_at as usize],
            "crashed grant log must be an oracle prefix"
        );

        let opts = RecoveryOptions {
            journal: Some(journal),
            checkpoint_dir: Some(dir.clone()),
            recover: true,
            compact_every: None,
        };
        let recovered =
            run_queue_recoverable(&cluster(nodes), &specs, SchedPolicy::FairShare, &opts)
                .expect("recovered run");
        prop_assert!(!recovered.crashed);
        prop_assert_eq!(
            &recovered.journal_grants[..],
            &oracle.grants[..crash_at as usize],
            "recovery must preserve the journaled grant prefix"
        );
        for (a, b) in oracle.tenants.iter().zip(&recovered.tenants) {
            prop_assert_eq!(
                a.outcome.as_ref().expect("oracle ok"),
                b.outcome.as_ref().expect("recovered ok"),
                "tenant '{}' must recover byte-identically", a.name
            );
        }
        // A journaled result is replayed, never recomputed: every replayed
        // tenant reports zero stages run in the recovery leg.
        for report in &recovered.tenants {
            if report.recovered {
                prop_assert_eq!(report.stages, 0, "replayed tenant re-ran stages");
                prop_assert_eq!(report.attempts, 0, "replayed tenant re-ran tasks");
            }
        }

        let _ = std::fs::remove_dir_all(dir);
    }

    /// Compaction transparency, swept across queues, crash points and
    /// crash-during-maintenance debris: recovering from a *compacted*
    /// journal must be indistinguishable from recovering from the
    /// uncompacted original — identical journaled grant prefix, identical
    /// byte-for-byte outcomes — even when the compaction finds the wreckage
    /// of a crash that hit mid-GC (a checkpoint's segment unlinked but its
    /// manifest still present) or mid-compaction (a stale rewrite temp
    /// file).
    #[test]
    fn compaction_is_transparent_to_recovery(
        tenants in prop::collection::vec(tenant_strategy(), 2..4),
        nodes in 2usize..4,
        crash_pick in any::<u64>(),
        crash_mid_gc in any::<bool>(),
        crash_mid_compaction in any::<bool>(),
        case in any::<u64>(),
    ) {
        let specs = materialize(&tenants);
        let oracle = run_queue(&cluster(nodes), &specs, SchedPolicy::FairShare)
            .expect("oracle run");
        prop_assert!(oracle.grants.len() >= 2, "queue too small to crash");
        let crash_at = 1 + crash_pick % (oracle.grants.len() as u64 - 1);

        // One crash leg produces the durable state both recoveries start
        // from; the copy is taken before either recovery mutates anything.
        let dir_a = scratch("compact-a", case);
        let journal_a = dir_a.join("server.journal");
        let crash_cluster = cluster(nodes).with_fault_policy(
            FaultPlan::none().with_crash_after_grants(crash_at),
            RetryPolicy::default(),
        );
        let crashed = run_queue_recoverable(
            &crash_cluster,
            &specs,
            SchedPolicy::FairShare,
            &RecoveryOptions {
                journal: Some(journal_a.clone()),
                checkpoint_dir: Some(dir_a.clone()),
                recover: false,
                compact_every: None,
            },
        )
        .expect("crashing run");
        prop_assert!(crashed.crashed, "crash clause must fire");

        let dir_b = scratch("compact-b", case);
        copy_dir_files(&dir_a, &dir_b);
        let journal_b = dir_b.join("server.journal");

        // Simulate a crash *during* retention GC: the delete order is
        // segment first, so the worst interleaving leaves a manifest whose
        // segment is gone. Recovery must self-heal it into a miss.
        if crash_mid_gc {
            let seg = std::fs::read_dir(&dir_b)
                .expect("read dir_b")
                .flatten()
                .map(|e| e.path())
                .find(|p| p.extension().is_some_and(|e| e == "seg"));
            if let Some(seg) = seg {
                std::fs::remove_file(seg).expect("unlink seg");
            }
        }
        // Simulate a crash *during* a previous compaction attempt: the
        // atomic rewrite never renamed, leaving only its temp file, which
        // the next compaction (and recovery) must ignore and replace.
        if crash_mid_compaction {
            std::fs::write(
                journal_b.with_extension("compact.tmp"),
                b"{\"type\":\"torn",
            )
            .expect("write tmp debris");
        }
        let stats = Journal::compact_file(&journal_b).expect("compact crashed journal");
        // A crashed journal may have nothing droppable (no done records
        // yet), in which case the only growth allowed is the compact
        // marker line itself.
        prop_assert!(
            stats.dropped > 0 || stats.bytes_after <= stats.bytes_before + 128,
            "compaction dropped nothing yet grew {} -> {} bytes",
            stats.bytes_before, stats.bytes_after
        );
        prop_assert!(
            !journal_b.with_extension("compact.tmp").exists(),
            "compaction leaves no temp debris"
        );

        // Recover both: A from the untouched original, B from the
        // compacted (and possibly debris-ridden) copy.
        let recover = |journal: PathBuf, dir: PathBuf| {
            run_queue_recoverable(
                &cluster(nodes),
                &specs,
                SchedPolicy::FairShare,
                &RecoveryOptions {
                    journal: Some(journal),
                    checkpoint_dir: Some(dir),
                    recover: true,
                    compact_every: None,
                },
            )
            .expect("recovered run")
        };
        let rec_a = recover(journal_a, dir_a.clone());
        let rec_b = recover(journal_b, dir_b.clone());
        prop_assert!(!rec_a.crashed && !rec_b.crashed);

        // Identical grant-log prefix — the compacted journal must read as
        // the same era the uncompacted one ends in.
        prop_assert_eq!(
            &rec_a.journal_grants[..],
            &oracle.grants[..crash_at as usize],
            "uncompacted recovery must see the oracle prefix"
        );
        prop_assert_eq!(
            &rec_b.journal_grants[..],
            &rec_a.journal_grants[..],
            "compaction must preserve the journaled grant prefix"
        );
        // Byte-identical outcomes, both ways.
        for (a, b) in rec_a.tenants.iter().zip(&rec_b.tenants) {
            prop_assert_eq!(
                a.outcome.as_ref().expect("uncompacted ok"),
                b.outcome.as_ref().expect("compacted ok"),
                "tenant '{}' must recover identically through compaction", a.name
            );
        }
        for (o, b) in oracle.tenants.iter().zip(&rec_b.tenants) {
            prop_assert_eq!(
                o.outcome.as_ref().expect("oracle ok"),
                b.outcome.as_ref().expect("compacted ok"),
                "tenant '{}' must match the oracle", o.name
            );
        }
        // Tenants replayed from the journal must match too — compaction
        // hoists done records, it never drops them.
        let replayed_a: Vec<bool> = rec_a.tenants.iter().map(|t| t.recovered).collect();
        let replayed_b: Vec<bool> = rec_b.tenants.iter().map(|t| t.recovered).collect();
        prop_assert_eq!(replayed_a, replayed_b);

        let _ = std::fs::remove_dir_all(dir_a);
        let _ = std::fs::remove_dir_all(dir_b);
    }
}

/// Copies every regular file directly under `src` into `dst` (the journal
/// plus the checkpoint manifests/segments — exactly what a crashed server
/// leaves durable).
fn copy_dir_files(src: &Path, dst: &Path) {
    for entry in std::fs::read_dir(src).expect("read src").flatten() {
        let path = entry.path();
        if path.is_file() {
            std::fs::copy(&path, dst.join(entry.file_name())).expect("copy file");
        }
    }
}

/// Deterministic anchor alongside the sweep: crash late enough that the
/// recovery leg demonstrably reuses checkpoints (`stages_recovered > 0`)
/// rather than merely replaying journaled results.
#[test]
fn late_crash_resumes_from_checkpoints() {
    let mut specs = materialize(&[
        GenTenant {
            algo_idx: 0,
            cardinality: 400,
            eps: 0.5,
            seed: 11,
            weight: 1,
            fault_idx: 0,
            fault_seed: 0,
        },
        GenTenant {
            algo_idx: 2,
            cardinality: 300,
            eps: 0.4,
            seed: 23,
            weight: 2,
            fault_idx: 0,
            fault_seed: 0,
        },
    ]);
    specs[0].partitions = 8;
    let oracle = run_queue(&cluster(3), &specs, SchedPolicy::FairShare).expect("oracle");

    // Two grants shy of completion: at least one tenant has checkpointed
    // shuffle stages, at least one is unfinished.
    let crash_at = (oracle.grants.len() as u64).saturating_sub(2).max(1);
    let dir = scratch("anchor", 0);
    let journal = dir.join("server.journal");
    let crash_cluster = cluster(3).with_fault_policy(
        FaultPlan::none().with_crash_after_grants(crash_at),
        RetryPolicy::default(),
    );
    let crashed = run_queue_recoverable(
        &crash_cluster,
        &specs,
        SchedPolicy::FairShare,
        &RecoveryOptions {
            journal: Some(journal.clone()),
            checkpoint_dir: Some(dir.clone()),
            recover: false,
            compact_every: None,
        },
    )
    .expect("crashing run");
    assert!(crashed.crashed);
    assert!(
        crashed.checkpoint_bytes > 0,
        "late crash must have checkpointed"
    );

    let recovered = run_queue_recoverable(
        &cluster(3),
        &specs,
        SchedPolicy::FairShare,
        &RecoveryOptions {
            journal: Some(journal),
            checkpoint_dir: Some(dir.clone()),
            recover: true,
            compact_every: None,
        },
    )
    .expect("recovered run");
    assert!(
        recovered.stages_recovered > 0,
        "recovery must reuse checkpoints"
    );
    // Checkpoint reuse is the whole point: the recovery leg re-runs strictly
    // fewer tasks than the oracle needed for the full queue.
    let oracle_attempts: u64 = oracle.tenants.iter().map(|t| t.attempts).sum();
    let recovered_attempts: u64 = recovered.tenants.iter().map(|t| t.attempts).sum();
    assert!(
        recovered_attempts < oracle_attempts,
        "recovery re-ran {recovered_attempts} of {oracle_attempts} oracle attempts"
    );
    for (a, b) in oracle.tenants.iter().zip(&recovered.tenants) {
        assert_eq!(
            a.outcome.as_ref().expect("oracle ok"),
            b.outcome.as_ref().expect("recovered ok"),
            "tenant '{}' must recover byte-identically",
            a.name
        );
    }
    let _ = std::fs::remove_dir_all(dir);
}
