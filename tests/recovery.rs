//! Crash-recovery properties for the journaled job server: for ANY tenant
//! queue and ANY crash point, a server killed mid-queue by a `crash@N` fault
//! clause and restarted with `--recover` semantics must (a) have journaled
//! exactly the grant-log prefix the uncrashed oracle would have produced,
//! (b) serve every tenant a byte-identical outcome to the oracle, and
//! (c) never re-run a job whose result was already journaled.
//!
//! The crash mechanism is deterministic (the fault plan counts scheduler
//! grants, not wall time), so every case in the sweep is reproducible.

use adaptive_spatial_join::engine::{Cluster, ClusterConfig, FaultPlan, RetryPolicy, SchedPolicy};
use adaptive_spatial_join::join::Algorithm;
use adaptive_spatial_join::serve::{run_queue, run_queue_recoverable, RecoveryOptions, TenantSpec};
use proptest::prelude::*;
use std::path::PathBuf;

/// Fault plans tenants may carry *in addition to* the server-level crash:
/// recovery has to compose with ordinary retry/slowdown faults.
const FAULT_MENU: &[&str] = &["p=0.15", "p=0.1,slow:1=2.0"];

#[derive(Debug, Clone)]
struct GenTenant {
    algo_idx: usize,
    cardinality: usize,
    eps: f64,
    seed: u64,
    weight: u32,
    fault_idx: usize,
    fault_seed: u64,
}

fn tenant_strategy() -> impl Strategy<Value = GenTenant> {
    (
        0usize..Algorithm::ALL.len(),
        80usize..200,
        0.2f64..0.8,
        any::<u64>(),
        1u32..4,
        0usize..FAULT_MENU.len() + 1,
        any::<u64>(),
    )
        .prop_map(
            |(algo_idx, cardinality, eps, seed, weight, fault_idx, fault_seed)| GenTenant {
                algo_idx,
                cardinality,
                eps,
                seed,
                weight,
                fault_idx,
                fault_seed,
            },
        )
}

fn materialize(tenants: &[GenTenant]) -> Vec<TenantSpec> {
    tenants
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let mut t = TenantSpec::new(format!("t{i}"), g.eps, g.cardinality);
            t.algorithm = Algorithm::ALL[g.algo_idx];
            t.seed = g.seed;
            t.weight = g.weight;
            t.partitions = 6;
            // Index 0 is the fault-free arm; the rest draw from the menu.
            t.faults = g
                .fault_idx
                .checked_sub(1)
                .map(|i| FAULT_MENU[i].to_string());
            t.fault_seed = g.fault_seed;
            if t.faults.is_some() {
                t.max_attempts = Some(8);
            }
            t
        })
        .collect()
}

fn cluster(nodes: usize) -> Cluster {
    Cluster::new(ClusterConfig::with_threads(nodes, 2))
}

/// A per-case scratch directory for the journal and checkpoints. Proptest
/// cases within one test run sequentially, so a case counter keeps legs
/// from different cases apart while staying deterministic.
fn scratch(tag: &str, case: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("asj-recovery-{tag}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline recovery property, swept across queues AND crash
    /// points: crash + recover == never crashed, byte for byte.
    #[test]
    fn any_crash_point_recovers_byte_identically(
        tenants in prop::collection::vec(tenant_strategy(), 2..4),
        nodes in 2usize..4,
        crash_pick in any::<u64>(),
        case in any::<u64>(),
    ) {
        let specs = materialize(&tenants);
        let oracle = run_queue(&cluster(nodes), &specs, SchedPolicy::FairShare)
            .expect("oracle run");
        prop_assert!(oracle.grants.len() >= 2, "queue too small to crash");

        // Any grant boundary strictly before the end is a valid crash point.
        let crash_at = 1 + crash_pick % (oracle.grants.len() as u64 - 1);
        let dir = scratch("sweep", case);
        let journal = dir.join("server.journal");

        let crash_cluster = cluster(nodes).with_fault_policy(
            FaultPlan::none().with_crash_after_grants(crash_at),
            RetryPolicy::default(),
        );
        let opts = RecoveryOptions {
            journal: Some(journal.clone()),
            checkpoint_dir: Some(dir.clone()),
            recover: false,
        };
        let crashed =
            run_queue_recoverable(&crash_cluster, &specs, SchedPolicy::FairShare, &opts)
                .expect("crashing run");
        prop_assert!(crashed.crashed, "crash clause must fire");
        // Write-ahead invariant: what reached the journal is exactly the
        // prefix of the oracle's grant log up to the crash point.
        prop_assert_eq!(
            &crashed.grants[..],
            &oracle.grants[..crash_at as usize],
            "crashed grant log must be an oracle prefix"
        );

        let opts = RecoveryOptions {
            journal: Some(journal),
            checkpoint_dir: Some(dir.clone()),
            recover: true,
        };
        let recovered =
            run_queue_recoverable(&cluster(nodes), &specs, SchedPolicy::FairShare, &opts)
                .expect("recovered run");
        prop_assert!(!recovered.crashed);
        prop_assert_eq!(
            &recovered.journal_grants[..],
            &oracle.grants[..crash_at as usize],
            "recovery must preserve the journaled grant prefix"
        );
        for (a, b) in oracle.tenants.iter().zip(&recovered.tenants) {
            prop_assert_eq!(
                a.outcome.as_ref().expect("oracle ok"),
                b.outcome.as_ref().expect("recovered ok"),
                "tenant '{}' must recover byte-identically", a.name
            );
        }
        // A journaled result is replayed, never recomputed: every replayed
        // tenant reports zero stages run in the recovery leg.
        for report in &recovered.tenants {
            if report.recovered {
                prop_assert_eq!(report.stages, 0, "replayed tenant re-ran stages");
                prop_assert_eq!(report.attempts, 0, "replayed tenant re-ran tasks");
            }
        }

        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Deterministic anchor alongside the sweep: crash late enough that the
/// recovery leg demonstrably reuses checkpoints (`stages_recovered > 0`)
/// rather than merely replaying journaled results.
#[test]
fn late_crash_resumes_from_checkpoints() {
    let mut specs = materialize(&[
        GenTenant {
            algo_idx: 0,
            cardinality: 400,
            eps: 0.5,
            seed: 11,
            weight: 1,
            fault_idx: 0,
            fault_seed: 0,
        },
        GenTenant {
            algo_idx: 2,
            cardinality: 300,
            eps: 0.4,
            seed: 23,
            weight: 2,
            fault_idx: 0,
            fault_seed: 0,
        },
    ]);
    specs[0].partitions = 8;
    let oracle = run_queue(&cluster(3), &specs, SchedPolicy::FairShare).expect("oracle");

    // Two grants shy of completion: at least one tenant has checkpointed
    // shuffle stages, at least one is unfinished.
    let crash_at = (oracle.grants.len() as u64).saturating_sub(2).max(1);
    let dir = scratch("anchor", 0);
    let journal = dir.join("server.journal");
    let crash_cluster = cluster(3).with_fault_policy(
        FaultPlan::none().with_crash_after_grants(crash_at),
        RetryPolicy::default(),
    );
    let crashed = run_queue_recoverable(
        &crash_cluster,
        &specs,
        SchedPolicy::FairShare,
        &RecoveryOptions {
            journal: Some(journal.clone()),
            checkpoint_dir: Some(dir.clone()),
            recover: false,
        },
    )
    .expect("crashing run");
    assert!(crashed.crashed);
    assert!(
        crashed.checkpoint_bytes > 0,
        "late crash must have checkpointed"
    );

    let recovered = run_queue_recoverable(
        &cluster(3),
        &specs,
        SchedPolicy::FairShare,
        &RecoveryOptions {
            journal: Some(journal),
            checkpoint_dir: Some(dir.clone()),
            recover: true,
        },
    )
    .expect("recovered run");
    assert!(
        recovered.stages_recovered > 0,
        "recovery must reuse checkpoints"
    );
    // Checkpoint reuse is the whole point: the recovery leg re-runs strictly
    // fewer tasks than the oracle needed for the full queue.
    let oracle_attempts: u64 = oracle.tenants.iter().map(|t| t.attempts).sum();
    let recovered_attempts: u64 = recovered.tenants.iter().map(|t| t.attempts).sum();
    assert!(
        recovered_attempts < oracle_attempts,
        "recovery re-ran {recovered_attempts} of {oracle_attempts} oracle attempts"
    );
    for (a, b) in oracle.tenants.iter().zip(&recovered.tenants) {
        assert_eq!(
            a.outcome.as_ref().expect("oracle ok"),
            b.outcome.as_ref().expect("recovered ok"),
            "tenant '{}' must recover byte-identically",
            a.name
        );
    }
    let _ = std::fs::remove_dir_all(dir);
}
