//! Property tests for the multi-tenant job server: ANY fair-share
//! interleaving of tenant joins — across seeds, algorithms, per-tenant fault
//! plans (including injected `oom:` budget exhaustion) and spill-triggering
//! cluster budgets — must yield byte-identical per-tenant results and
//! checksums versus running each tenant alone on a fresh cluster. The
//! scheduler may only change WHEN a tenant's stages run, never WHAT they
//! compute.

use adaptive_spatial_join::engine::{Cluster, ClusterConfig, SchedPolicy};
use adaptive_spatial_join::join::Algorithm;
use adaptive_spatial_join::serve::{run_queue, solo_outcome, TenantSpec};
use proptest::prelude::*;

/// Injectable fault plans a tenant may carry. Probabilities stay low enough
/// that 8 attempts always recover: a permanent failure would abort the solo
/// oracle, not test isolation.
const FAULT_MENU: &[&str] = &[
    "p=0.15",
    "p=0.1,slow:1=2.0",
    "oom:shuffle.R:0@1",
    "p=0.1,oom:shuffle.S:0@1",
];

/// One generated tenant: algorithm, scale, distribution seed and an optional
/// fault plan drawn from the deterministic injectable clauses.
#[derive(Debug, Clone)]
struct GenTenant {
    algo_idx: usize,
    cardinality: usize,
    eps: f64,
    seed: u64,
    weight: u32,
    faults: Option<String>,
    fault_seed: u64,
}

fn tenant_strategy() -> impl Strategy<Value = GenTenant> {
    (
        0usize..Algorithm::ALL.len(),
        80usize..280,
        0.2f64..0.9,
        any::<u64>(),
        1u32..4,
        0usize..FAULT_MENU.len() + 1,
        any::<u64>(),
    )
        .prop_map(
            |(algo_idx, cardinality, eps, seed, weight, fault_idx, fault_seed)| GenTenant {
                algo_idx,
                cardinality,
                eps,
                seed,
                weight,
                // Index 0 is the fault-free arm; the rest draw from the menu.
                faults: fault_idx.checked_sub(1).map(|i| FAULT_MENU[i].to_string()),
                fault_seed,
            },
        )
}

fn materialize(tenants: &[GenTenant]) -> Vec<TenantSpec> {
    tenants
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let mut t = TenantSpec::new(format!("t{i}"), g.eps, g.cardinality);
            t.algorithm = Algorithm::ALL[g.algo_idx];
            t.seed = g.seed;
            t.weight = g.weight;
            t.partitions = 6;
            t.faults = g.faults.clone();
            t.fault_seed = g.fault_seed;
            if g.faults.is_some() {
                t.max_attempts = Some(8);
            }
            // Admission is being bypassed on purpose: the budget below is
            // chosen to force spilling, and a model estimate above it would
            // turn the case into a rejection instead of an interleaving.
            t.estimate_override = Some(1);
            t
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline isolation property: concurrent == solo, byte for byte,
    /// for every tenant of every generated queue, with zero residual memory
    /// and every grant belonging to a submitted job.
    #[test]
    fn fair_share_interleavings_match_solo_runs(
        tenants in prop::collection::vec(tenant_strategy(), 2..5),
        nodes in 2usize..5,
        budget_kib in 2u64..64,
    ) {
        let specs = materialize(&tenants);
        let budget = budget_kib * 1024;
        let cluster = Cluster::new(
            ClusterConfig::with_threads(nodes, 2).with_memory_budget(budget),
        );
        let run = run_queue(&cluster, &specs, SchedPolicy::FairShare)
            .expect("estimate overrides admit every tenant");

        prop_assert_eq!(run.tenants.len(), specs.len());
        for (spec, report) in specs.iter().zip(&run.tenants) {
            let shared = report.outcome.as_ref().expect("tenant recovered");
            let solo = solo_outcome(&cluster, spec).expect("solo run");
            prop_assert_eq!(
                shared, &solo,
                "tenant '{}' diverged from its solo run", spec.name
            );
            prop_assert_eq!(report.residual_bytes, 0, "leak audit");
        }
        for &grant in &run.grants {
            prop_assert!(grant < specs.len(), "grant {} has no job", grant);
        }
        // The budget is enforced across ALL interleaved tenants at once.
        prop_assert!(cluster.memory_accountant().peak_bytes() <= budget);
        for node in 0..nodes {
            prop_assert_eq!(
                cluster.memory_accountant().resident_bytes(node),
                0,
                "nothing stays resident after the queue drains"
            );
        }
    }

    /// Policy independence: FIFO and fair-share schedule the same queue very
    /// differently, but every tenant's outcome is identical under both.
    #[test]
    fn outcomes_are_policy_independent(
        tenants in prop::collection::vec(tenant_strategy(), 2..4),
        nodes in 2usize..4,
    ) {
        let specs = materialize(&tenants);
        let mk = || Cluster::new(ClusterConfig::with_threads(nodes, 2));
        let fair = run_queue(&mk(), &specs, SchedPolicy::FairShare).expect("fair");
        let fifo = run_queue(&mk(), &specs, SchedPolicy::Fifo).expect("fifo");
        for (a, b) in fair.tenants.iter().zip(&fifo.tenants) {
            prop_assert_eq!(
                a.outcome.as_ref().expect("ok"),
                b.outcome.as_ref().expect("ok"),
                "policy changed tenant '{}'", a.name
            );
        }
        // FIFO runs each job to completion: its grant log is sorted.
        let mut sorted = fifo.grants.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&fifo.grants, &sorted, "FIFO must not interleave");
    }
}
