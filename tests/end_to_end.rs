//! Cross-crate integration tests: every distributed algorithm, on catalog
//! workloads, validated against the centralized oracle.

use adaptive_spatial_join::core::AgreementPolicy;
use adaptive_spatial_join::data::{Catalog, TupleSizeFactor};
use adaptive_spatial_join::join::{
    adaptive_join, adaptive_join_dedup, adaptive_join_post_fetch, oracle, to_records, Algorithm,
    JoinSpec,
};
use adaptive_spatial_join::prelude::*;

fn small_catalog() -> Catalog {
    Catalog::new(3_000)
}

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig::new(6))
}

fn spec(catalog: &Catalog, eps: f64) -> JoinSpec {
    JoinSpec::new(catalog.s1.bbox, eps)
        .with_partitions(24)
        .with_sample_fraction(0.2)
}

#[test]
fn all_algorithms_agree_with_oracle_on_synthetic_data() {
    let catalog = small_catalog();
    let c = cluster();
    let r = to_records(&catalog.s1.points(), 0);
    let s = to_records(&catalog.s2.points(), 0);
    let spec = spec(&catalog, 1.4);
    let expected = oracle::rtree_pairs(&r, &s, spec.eps);
    assert!(!expected.is_empty(), "test workload must produce matches");
    for algo in Algorithm::ALL {
        let out = algo.run(&c, &spec, r.clone(), s.clone());
        let mut got = out.pairs.clone();
        got.sort_unstable();
        assert_eq!(got, expected, "{} disagrees with the oracle", algo.name());
        assert_eq!(out.result_count as usize, expected.len());
    }
}

#[test]
fn all_algorithms_agree_with_oracle_on_skewed_real_like_data() {
    let catalog = small_catalog();
    let c = cluster();
    let r = to_records(&catalog.r2.points(), 0);
    let s = to_records(&catalog.r1.points(), 0);
    let spec = spec(&catalog, 1.1);
    let expected = oracle::rtree_pairs(&r, &s, spec.eps);
    assert!(!expected.is_empty());
    for algo in Algorithm::ALL {
        let out = algo.run(&c, &spec, r.clone(), s.clone());
        let mut got = out.pairs.clone();
        got.sort_unstable();
        assert_eq!(got, expected, "{} disagrees with the oracle", algo.name());
    }
}

#[test]
fn variants_preserve_the_result_set() {
    let catalog = small_catalog();
    let c = cluster();
    let r = to_records(&catalog.s1.points(), 16);
    let s = to_records(&catalog.s2.points(), 16);
    let spec = spec(&catalog, 1.4);
    let expected = oracle::rtree_pairs(&r, &s, spec.eps);

    let dedup = adaptive_join_dedup(&c, &spec, AgreementPolicy::Diff, r.clone(), s.clone());
    let mut got = dedup.pairs.clone();
    got.sort_unstable();
    assert_eq!(got, expected, "dedup variant");

    let fetched = adaptive_join_post_fetch(&c, &spec, AgreementPolicy::Diff, r, s);
    let mut got = fetched.pairs.clone();
    got.sort_unstable();
    assert_eq!(got, expected, "post-fetch variant");
}

#[test]
fn eps_sweep_results_are_monotone() {
    let catalog = small_catalog();
    let c = cluster();
    let r = to_records(&catalog.s1.points(), 0);
    let s = to_records(&catalog.s2.points(), 0);
    let mut last = 0u64;
    for eps in [0.6, 0.9, 1.2, 1.5] {
        let spec = spec(&catalog, eps).counting_only();
        let out = adaptive_join(&c, &spec, AgreementPolicy::Lpib, r.clone(), s.clone());
        assert!(out.result_count >= last, "results must grow with eps");
        last = out.result_count;
    }
    assert!(last > 0);
}

#[test]
fn grid_resolution_does_not_change_results() {
    let catalog = small_catalog();
    let c = cluster();
    let r = to_records(&catalog.s1.points(), 0);
    let s = to_records(&catalog.s2.points(), 0);
    let mut counts = Vec::new();
    for factor in [2.0, 3.0, 4.0, 5.0] {
        let spec = spec(&catalog, 1.2).with_grid_factor(factor).counting_only();
        let out = adaptive_join(&c, &spec, AgreementPolicy::Diff, r.clone(), s.clone());
        counts.push(out.result_count);
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}

#[test]
fn tuple_payloads_travel_through_the_join() {
    let catalog = small_catalog();
    let c = cluster();
    let r = to_records(&catalog.s1.points(), TupleSizeFactor::F2.payload_bytes());
    let s = to_records(&catalog.s2.points(), TupleSizeFactor::F2.payload_bytes());
    let bare_r = to_records(&catalog.s1.points(), 0);
    let bare_s = to_records(&catalog.s2.points(), 0);
    let spec = spec(&catalog, 1.2).counting_only();
    let fat = adaptive_join(&c, &spec, AgreementPolicy::Lpib, r, s);
    let bare = adaptive_join(&c, &spec, AgreementPolicy::Lpib, bare_r, bare_s);
    assert_eq!(fat.result_count, bare.result_count);
    assert!(
        fat.metrics.shuffle.total_bytes() > 2 * bare.metrics.shuffle.total_bytes(),
        "payload must inflate shuffle volume: {} vs {}",
        fat.metrics.shuffle.total_bytes(),
        bare.metrics.shuffle.total_bytes()
    );
}

#[test]
fn adaptive_replicates_least_on_every_combo() {
    let catalog = small_catalog();
    let c = cluster();
    let spec = spec(&catalog, 1.4).counting_only();
    for (r, s) in [
        (&catalog.s1, &catalog.s2),
        (&catalog.r1, &catalog.s1),
        (&catalog.r2, &catalog.r1),
    ] {
        let r = to_records(&r.points(), 0);
        let s = to_records(&s.points(), 0);
        let lpib = adaptive_join(&c, &spec, AgreementPolicy::Lpib, r.clone(), s.clone());
        let uni_r = Algorithm::UniR.run(&c, &spec, r.clone(), s.clone());
        let uni_s = Algorithm::UniS.run(&c, &spec, r, s);
        let best_uni = uni_r.replicated_total().min(uni_s.replicated_total());
        assert!(
            lpib.replicated_total() <= best_uni,
            "adaptive {} must not exceed best universal {}",
            lpib.replicated_total(),
            best_uni
        );
    }
}

/// The sample-driven cost model (`estimate_candidates`, the paper's §8
/// future-work item) must predict the measured candidate count within a
/// small factor when fed a 10% sample. The estimator extrapolates the
/// nested loop's `r·s` per cell, so the run pins that kernel (the default
/// `Auto` prunes candidates below the `r·s` worst case).
#[test]
fn cost_model_predicts_candidates() {
    use adaptive_spatial_join::core::{estimate_candidates, AgreementGraph, GridSample};
    use adaptive_spatial_join::grid::{Grid, GridSpec};
    use adaptive_spatial_join::join::LocalKernel;

    let catalog = Catalog::new(8_000);
    let c = cluster();
    let r = to_records(&catalog.s1.points(), 0);
    let s = to_records(&catalog.s2.points(), 0);
    let spec = JoinSpec::new(catalog.s1.bbox, 1.2)
        .counting_only()
        .with_kernel(LocalKernel::NestedLoop);

    let grid = Grid::new(GridSpec::new(spec.bbox, spec.eps));
    let fraction = 0.1;
    let sample_r: Vec<_> = r.iter().step_by(10).map(|rec| rec.point).collect();
    let sample_s: Vec<_> = s.iter().step_by(10).map(|rec| rec.point).collect();
    let sample = GridSample::from_points(&grid, sample_r.iter().copied(), sample_s.iter().copied());
    let graph = AgreementGraph::build(&grid, &sample, AgreementPolicy::Lpib);
    let predicted =
        estimate_candidates(&graph, sample_r.iter(), sample_s.iter(), fraction, fraction);

    let out = adaptive_join(&c, &spec, AgreementPolicy::Lpib, r, s);
    let measured = out.candidates as f64;
    let ratio = predicted / measured;
    assert!(
        (0.4..2.5).contains(&ratio),
        "cost model off by too much: predicted {predicted:.0} vs measured {measured:.0} (ratio {ratio:.2})"
    );
}
