//! End-to-end dual-clock consistency: for a traced adaptive join, the
//! simulated time attributed to each node's trace lane must equal —
//! exactly, not approximately — the node's busy time in the job's
//! `ExecStats`, because both are fed by the same measured task durations.
//! And attaching a recorder must not change what the join computes.

use adaptive_spatial_join::core::AgreementPolicy;
use adaptive_spatial_join::engine::Lane;
use adaptive_spatial_join::geom::{Point, Rect};
use adaptive_spatial_join::join::adaptive_join;
use adaptive_spatial_join::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn clouds(seed: u64, n: usize) -> (Vec<Point>, Vec<Point>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cloud = |rng: &mut StdRng| -> Vec<Point> {
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..25.0), rng.gen_range(0.0..25.0)))
            .collect()
    };
    (cloud(&mut rng), cloud(&mut rng))
}

#[test]
fn traced_join_sim_lanes_match_per_node_busy() {
    let nodes = 5;
    let (r_pts, s_pts) = clouds(42, 600);
    let r = to_records(&r_pts, 0);
    let s = to_records(&s_pts, 0);
    let spec = JoinSpec::new(Rect::new(0.0, 0.0, 25.0, 25.0), 0.8)
        .with_partitions(20)
        .with_sample_fraction(0.3);

    let recorder = Recorder::for_nodes(nodes);
    let cluster =
        Cluster::new(ClusterConfig::with_threads(nodes, 3)).with_recorder(recorder.clone());
    let out = adaptive_join(&cluster, &spec, AgreementPolicy::Lpib, r.clone(), s.clone());
    let trace = recorder.snapshot();

    // Every simulated lane's spans are disjoint, monotone and account for
    // exactly the node's busy time across all stages of the job.
    for n in 0..nodes {
        let mut lane: Vec<_> = trace
            .spans
            .iter()
            .filter(|sp| sp.lane == Lane::Node(n))
            .collect();
        lane.sort_by_key(|sp| sp.sim_start_ns);
        let mut cursor = 0u64;
        let mut lane_total = 0u64;
        for sp in &lane {
            assert!(
                sp.sim_start_ns >= cursor,
                "overlapping sim spans on node {n}"
            );
            cursor = sp.sim_start_ns + sp.sim_dur_ns;
            lane_total += sp.sim_dur_ns;
        }
        let busy = out.metrics.construction.per_node_busy[n].as_nanos() as u64
            + out.metrics.join.per_node_busy[n].as_nanos() as u64;
        assert_eq!(
            lane_total, busy,
            "node {n}: trace lane total must equal ExecStats::per_node_busy"
        );
        assert_eq!(lane_total, recorder.node_sim_total(n).as_nanos() as u64);
    }

    // Each named pipeline phase shows up at least once.
    for phase in [
        "sampling",
        "agreement_graph",
        "marking",
        "shuffle",
        "local_join",
    ] {
        assert!(
            trace.spans.iter().any(|sp| sp.stage == phase),
            "missing phase {phase}"
        );
    }

    // The recorder observes; it must not perturb the join itself.
    let plain = Cluster::new(ClusterConfig::with_threads(nodes, 3));
    let untraced = adaptive_join(&plain, &spec, AgreementPolicy::Lpib, r, s);
    let (mut a, mut b) = (out.pairs, untraced.pairs);
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
    assert_eq!(out.result_count, untraced.result_count);
    assert_eq!(out.candidates, untraced.candidates);
    assert_eq!(out.replicated, untraced.replicated);
    assert_eq!(
        out.metrics.shuffle.total_bytes(),
        untraced.metrics.shuffle.total_bytes()
    );
}
