//! File-to-result pipeline: datasets written as the paper's raw text format
//! (`id,x,y` lines, the HDFS `textFile` input of Algorithm 5), read back and
//! joined.

use adaptive_spatial_join::core::AgreementPolicy;
use adaptive_spatial_join::data::{read_points_csv, write_points_csv, Catalog};
use adaptive_spatial_join::join::{adaptive_join, oracle, to_records, JoinSpec, Record};
use adaptive_spatial_join::prelude::*;

#[test]
fn csv_loaded_inputs_join_identically() {
    let catalog = Catalog::new(1_500);
    let dir = std::env::temp_dir();
    let r_path = dir.join(format!("asj-e2e-r-{}.csv", std::process::id()));
    let s_path = dir.join(format!("asj-e2e-s-{}.csv", std::process::id()));
    let r_pts = catalog.s1.points();
    let s_pts = catalog.s2.points();
    write_points_csv(&r_path, &r_pts).unwrap();
    write_points_csv(&s_path, &s_pts).unwrap();

    let load = |path: &std::path::Path| -> Vec<Record> {
        read_points_csv(path)
            .unwrap()
            .into_iter()
            .map(|(id, p)| Record::new(id, p))
            .collect()
    };
    let r = load(&r_path);
    let s = load(&s_path);
    std::fs::remove_file(&r_path).unwrap();
    std::fs::remove_file(&s_path).unwrap();
    assert_eq!(r.len(), r_pts.len());

    let c = Cluster::new(ClusterConfig::new(4));
    let spec = JoinSpec::new(catalog.s1.bbox, 1.5).with_partitions(16);
    let from_csv = adaptive_join(&c, &spec, AgreementPolicy::Lpib, r.clone(), s.clone());
    let in_memory = adaptive_join(
        &c,
        &spec,
        AgreementPolicy::Lpib,
        to_records(&r_pts, 0),
        to_records(&s_pts, 0),
    );
    let mut a = from_csv.pairs.clone();
    let mut b = in_memory.pairs.clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
    // And both match the oracle.
    assert_eq!(a, oracle::rtree_pairs(&r, &s, spec.eps));
}
