//! Property-based end-to-end tests: random worlds, random points, every
//! algorithm must equal the brute-force oracle.

use adaptive_spatial_join::core::AgreementPolicy;
use adaptive_spatial_join::geom::{Point, Rect};
use adaptive_spatial_join::join::{adaptive_join_dedup, oracle, to_records, Algorithm, JoinSpec};
use adaptive_spatial_join::prelude::*;
use proptest::prelude::*;

fn points_in(w: f64, h: f64, n: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (0.0..w, 0.0..h).prop_map(|(x, y)| Point::new(x, y)),
        n..n + 1,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random world geometry (bbox, ε) and random clouds: every algorithm
    /// matches brute force exactly.
    #[test]
    fn every_algorithm_matches_brute_force(
        w in 6.0f64..30.0,
        h in 6.0f64..30.0,
        eps in 0.3f64..1.5,
        seed in 0u64..10_000,
        r_pts in points_in(30.0, 30.0, 120),
        s_pts in points_in(30.0, 30.0, 120),
    ) {
        // Clamp the clouds into the sampled bbox.
        let clamp = |pts: &[Point]| -> Vec<Point> {
            pts.iter()
                .map(|p| Point::new(p.x.min(w - 1e-9), p.y.min(h - 1e-9)))
                .collect()
        };
        let r = to_records(&clamp(&r_pts), 0);
        let s = to_records(&clamp(&s_pts), 0);
        let expected = oracle::brute_force_pairs(&r, &s, eps);
        let cluster = Cluster::new(ClusterConfig::new(1 + (seed % 6) as usize));
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, w, h), eps)
            .with_partitions(1 + (seed % 31) as usize)
            .with_sample_fraction(0.3)
            .with_seed(seed);
        for algo in Algorithm::ALL {
            let out = algo.run(&cluster, &spec, r.clone(), s.clone());
            let mut got = out.pairs.clone();
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "{} seed={}", algo.name(), seed);
        }
        // The dedup variant too.
        let out = adaptive_join_dedup(&cluster, &spec, AgreementPolicy::Lpib, r, s);
        let mut got = out.pairs.clone();
        got.sort_unstable();
        prop_assert_eq!(&got, &expected, "dedup seed={}", seed);
    }

    /// Degenerate shapes: extremely thin worlds exercise single-row /
    /// single-column grids where quartets are scarce or absent.
    #[test]
    fn thin_worlds_are_still_correct(
        h in 2.1f64..4.0,
        eps in 0.4f64..0.9,
        r_pts in points_in(40.0, 4.0, 80),
        s_pts in points_in(40.0, 4.0, 80),
    ) {
        let clamp = |pts: &[Point]| -> Vec<Point> {
            pts.iter().map(|p| Point::new(p.x, p.y.min(h - 1e-9))).collect()
        };
        let r = to_records(&clamp(&r_pts), 0);
        let s = to_records(&clamp(&s_pts), 0);
        let expected = oracle::brute_force_pairs(&r, &s, eps);
        let cluster = Cluster::new(ClusterConfig::new(3));
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 40.0, h), eps)
            .with_partitions(8)
            .with_sample_fraction(0.5);
        for algo in [Algorithm::Lpib, Algorithm::Diff, Algorithm::UniR, Algorithm::EpsGrid] {
            let out = algo.run(&cluster, &spec, r.clone(), s.clone());
            let mut got = out.pairs.clone();
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "{}", algo.name());
        }
    }

    /// Identical inputs (self-join shape): every point pairs with itself and
    /// duplicates must still not appear.
    #[test]
    fn self_join_shape(pts in points_in(20.0, 20.0, 100), eps in 0.3f64..1.0) {
        let r = to_records(&pts, 0);
        let s = to_records(&pts, 0);
        let expected = oracle::brute_force_pairs(&r, &s, eps);
        let cluster = Cluster::new(ClusterConfig::new(4));
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), eps)
            .with_partitions(16)
            .with_sample_fraction(0.4);
        for algo in [Algorithm::Lpib, Algorithm::Diff] {
            let out = algo.run(&cluster, &spec, r.clone(), s.clone());
            prop_assert_eq!(out.result_count as usize, expected.len());
            // Every point matches itself at distance 0.
            prop_assert!(out.result_count >= r.len() as u64);
        }
    }
}

mod kernel_properties {
    use super::points_in;
    use adaptive_spatial_join::core::AgreementPolicy;
    use adaptive_spatial_join::geom::Rect;
    use adaptive_spatial_join::grid::{Grid, GridSpec};
    use adaptive_spatial_join::join::{
        adaptive_join_dedup, brute_force_self_pairs, oracle, pbsm_refpoint_join, self_join,
        to_records, Algorithm, JoinOutput, JoinSpec, LocalKernel,
    };
    use adaptive_spatial_join::prelude::*;
    use proptest::prelude::*;

    /// Fixed kernels first, `Auto` last — the bound check below indexes on
    /// that order.
    const KERNELS: [LocalKernel; 4] = [
        LocalKernel::NestedLoop,
        LocalKernel::PlaneSweep,
        LocalKernel::GridBucket,
        LocalKernel::Auto,
    ];

    /// `Auto` may fall back to the nested loop only for groups hitting the
    /// tiny-pairs rule (`r*s <= 4`) or whose extent fits in an ε-box, so its
    /// candidate count is bounded by the better fixed kernel's plus 10%
    /// plus 4 candidates per cell group.
    fn auto_bound(min_fixed: u64, groups: u64) -> u64 {
        (min_fixed as f64 * 1.1).ceil() as u64 + 4 * groups
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Every algorithm × every kernel variant returns exactly the oracle
        /// pairs, and `Auto` never does meaningfully more candidate work
        /// than the best fixed kernel.
        #[test]
        fn every_kernel_matches_brute_force_everywhere(
            eps in 0.4f64..1.2,
            seed in 0u64..10_000,
            r_pts in points_in(20.0, 20.0, 100),
            s_pts in points_in(20.0, 20.0, 100),
        ) {
            let r = to_records(&r_pts, 0);
            let s = to_records(&s_pts, 0);
            let expected = oracle::brute_force_pairs(&r, &s, eps);
            let cluster = Cluster::new(ClusterConfig::new(1 + (seed % 5) as usize));
            let base = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), eps)
                .with_partitions(1 + (seed % 17) as usize)
                .with_sample_fraction(0.4)
                .with_seed(seed);
            // Upper bounds on the number of cell groups, for the Auto slack:
            // the agreement-grid cell count for the adaptive family, the
            // finer ε-grid's for the ε-grid baseline.
            let grid_groups =
                Grid::new(GridSpec::with_factor(base.bbox, eps, base.grid_factor)).num_cells()
                    as u64;
            let eps_groups = Grid::new(GridSpec::new(base.bbox, eps)).num_cells() as u64;

            type Runner<'a> = Box<dyn Fn(&JoinSpec) -> JoinOutput + 'a>;
            let (c, rr, ss) = (&cluster, &r, &s);
            let mut runners: Vec<(String, Runner, Option<u64>)> = Vec::new();
            for algo in Algorithm::ALL {
                // Sedona's groups are quadtree leaves, not grid cells; its
                // exactness is still checked, only the slack bound is
                // skipped for lack of a leaf count here.
                let groups = match algo {
                    Algorithm::EpsGrid => Some(eps_groups),
                    Algorithm::Sedona => None,
                    _ => Some(grid_groups),
                };
                runners.push((
                    algo.name().to_string(),
                    Box::new(move |spec: &JoinSpec| algo.run(c, spec, rr.clone(), ss.clone())),
                    groups,
                ));
            }
            runners.push((
                "refpoint".to_string(),
                Box::new(move |spec| pbsm_refpoint_join(c, spec, rr.clone(), ss.clone())),
                Some(eps_groups),
            ));
            runners.push((
                "dedup".to_string(),
                Box::new(move |spec| {
                    adaptive_join_dedup(c, spec, AgreementPolicy::Lpib, rr.clone(), ss.clone())
                }),
                // Dedup's candidate counter is clamped below by the
                // duplicated result count, so the kernel bound does not
                // transfer; exactness only.
                None,
            ));
            for (name, run, groups) in &runners {
                let outs: Vec<JoinOutput> =
                    KERNELS.map(|k| run(&base.clone().with_kernel(k))).into();
                for out in &outs {
                    let mut got = out.pairs.clone();
                    got.sort_unstable();
                    prop_assert_eq!(&got, &expected, "{} seed={}", name, seed);
                }
                if let Some(groups) = groups {
                    let min_fixed = outs[..3].iter().map(|o| o.candidates).min().unwrap();
                    prop_assert!(
                        outs[3].candidates <= auto_bound(min_fixed, *groups),
                        "{}: auto did {} candidates vs best fixed {} over {} groups",
                        name, outs[3].candidates, min_fixed, groups
                    );
                }
            }
        }

        /// The self-join, same contract: exact pairs under every kernel and
        /// a bounded Auto.
        #[test]
        fn every_kernel_matches_brute_force_on_self_join(
            pts in points_in(20.0, 20.0, 140),
            eps in 0.3f64..1.0,
        ) {
            let input = to_records(&pts, 0);
            let expected = brute_force_self_pairs(&input, eps);
            let cluster = Cluster::new(ClusterConfig::new(4));
            let base = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), eps).with_partitions(8);
            let groups =
                Grid::new(GridSpec::with_factor(base.bbox, eps, base.grid_factor)).num_cells()
                    as u64;
            let outs: Vec<JoinOutput> = KERNELS
                .map(|k| self_join(&cluster, &base.clone().with_kernel(k), input.clone()))
                .into();
            for out in &outs {
                let mut got = out.pairs.clone();
                got.sort_unstable();
                prop_assert_eq!(&got, &expected);
            }
            let min_fixed = outs[..3].iter().map(|o| o.candidates).min().unwrap();
            prop_assert!(
                outs[3].candidates <= auto_bound(min_fixed, groups),
                "self-join: auto did {} candidates vs best fixed {} over {} groups",
                outs[3].candidates, min_fixed, groups
            );
        }
    }
}

mod extent_properties {
    use adaptive_spatial_join::geom::{Point, Polygon, Polyline, Rect, Shape};
    use adaptive_spatial_join::join::{
        brute_force_extent_pairs, extent_join, ExtentRecord, JoinSpec,
    };
    use adaptive_spatial_join::prelude::*;
    use proptest::prelude::*;

    fn arb_shape(extent: f64) -> impl Strategy<Value = Shape> {
        let point = (0.0..extent, 0.0..extent).prop_map(|(x, y)| Shape::Point(Point::new(x, y)));
        let line = (
            0.0..extent,
            0.0..extent,
            -2.0f64..2.0,
            -2.0f64..2.0,
            -2.0f64..2.0,
            -2.0f64..2.0,
        )
            .prop_map(move |(x, y, dx1, dy1, dx2, dy2)| {
                let clamp = |v: f64| v.clamp(0.0, extent);
                Shape::Polyline(Polyline::new(vec![
                    Point::new(x, y),
                    Point::new(clamp(x + dx1), clamp(y + dy1)),
                    Point::new(clamp(x + dx1 + dx2), clamp(y + dy1 + dy2)),
                ]))
            });
        let poly = (
            0.0..extent - 2.0,
            0.0..extent - 2.0,
            0.1f64..2.0,
            0.1f64..2.0,
        )
            .prop_map(|(x, y, w, h)| {
                Shape::Polygon(Polygon::from_rect(Rect::new(x, y, x + w, y + h)))
            });
        prop_oneof![point, line, poly]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The distributed extent join equals brute force on random mixed
        /// shapes, for random ε and cluster widths.
        #[test]
        fn extent_join_matches_brute_force(
            shapes_a in prop::collection::vec(arb_shape(25.0), 40),
            shapes_b in prop::collection::vec(arb_shape(25.0), 40),
            eps in 0.2f64..1.2,
            nodes in 1usize..6,
        ) {
            let a: Vec<ExtentRecord> = shapes_a
                .into_iter()
                .enumerate()
                .map(|(i, s)| ExtentRecord::new(i as u64, s))
                .collect();
            let b: Vec<ExtentRecord> = shapes_b
                .into_iter()
                .enumerate()
                .map(|(i, s)| ExtentRecord::new(i as u64, s))
                .collect();
            let expected = brute_force_extent_pairs(&a, &b, eps);
            let cluster = Cluster::new(ClusterConfig::new(nodes));
            let spec =
                JoinSpec::new(Rect::new(0.0, 0.0, 25.0, 25.0), eps).with_partitions(12);
            let out = extent_join(&cluster, &spec, a, b);
            let mut got = out.pairs.clone();
            got.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }
}

mod knn_properties {
    use adaptive_spatial_join::geom::{Point, Rect};
    use adaptive_spatial_join::join::{brute_force_knn, knn_join, to_records, JoinSpec};
    use adaptive_spatial_join::prelude::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// The distributed kNN join equals brute force for random clouds,
        /// k values and cluster widths.
        #[test]
        fn knn_join_matches_brute_force(
            r_pts in prop::collection::vec((0.0f64..22.0, 0.0f64..22.0), 30),
            s_pts in prop::collection::vec((0.0f64..22.0, 0.0f64..22.0), 1..80),
            k in 1usize..8,
            nodes in 1usize..5,
        ) {
            let r = to_records(
                &r_pts.iter().map(|&(x, y)| Point::new(x, y)).collect::<Vec<_>>(), 0);
            let s = to_records(
                &s_pts.iter().map(|&(x, y)| Point::new(x, y)).collect::<Vec<_>>(), 0);
            let expected = brute_force_knn(&r, &s, k);
            let cluster = Cluster::new(ClusterConfig::new(nodes));
            let spec = JoinSpec::new(Rect::new(0.0, 0.0, 22.0, 22.0), 1.0).with_partitions(8);
            let out = knn_join(&cluster, &spec, k, r, s);
            let got: Vec<(u64, Vec<u64>)> = out
                .neighbors
                .iter()
                .map(|(q, ns)| (*q, ns.iter().map(|(id, _)| *id).collect()))
                .collect();
            prop_assert_eq!(got, expected);
        }
    }
}

mod shuffle_accounting {
    use adaptive_spatial_join::engine::{
        ExplicitPartitioner, HashPartitioner, KeyedDataset, Recorder,
    };
    use adaptive_spatial_join::prelude::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The shuffle's byte meter must balance exactly: every record is
        /// charged once, split into remote/local by placement, and lands in
        /// exactly one target partition. The identities hold for any cluster
        /// width, partition count and key → partition map.
        #[test]
        fn shuffle_byte_accounting_is_exact(
            nodes in 1usize..6,
            partitions in 1usize..24,
            kvs in prop::collection::vec((0u64..64, 0u64..1_000_000), 0..400),
            assigns in prop::collection::vec(0usize..1000, 64),
        ) {
            let cluster = Cluster::new(ClusterConfig::new(nodes));
            let src_parts = 4;
            let mut parts: Vec<Vec<(u64, u64)>> = vec![Vec::new(); src_parts];
            for (i, kv) in kvs.iter().enumerate() {
                parts[i % src_parts].push(*kv);
            }
            let data = KeyedDataset::from_partitions(parts);

            let hash = HashPartitioner::new(partitions);
            let (out_h, stats_h, _) = data.clone().shuffle(&cluster, &hash);
            prop_assert_eq!(stats_h.remote_bytes + stats_h.local_bytes, stats_h.total_bytes());
            prop_assert_eq!(stats_h.partition_bytes.iter().sum::<u64>(), stats_h.total_bytes());
            prop_assert_eq!(stats_h.records as usize, kvs.len());
            prop_assert_eq!(out_h.len(), kvs.len());

            // An explicit (LPT-style) partitioner with arbitrary placements
            // moves exactly the same records and bytes — only the
            // remote/local split and the per-partition footprints may differ.
            let map: HashMap<u64, usize> = (0u64..64)
                .map(|k| (k, assigns[k as usize] % partitions))
                .collect();
            let explicit = ExplicitPartitioner::new(map, partitions);
            let (out_e, stats_e, _) = data.clone().shuffle(&cluster, &explicit);
            prop_assert_eq!(stats_e.records, stats_h.records);
            prop_assert_eq!(stats_e.total_bytes(), stats_h.total_bytes());
            prop_assert_eq!(stats_e.remote_bytes + stats_e.local_bytes, stats_e.total_bytes());
            prop_assert_eq!(stats_e.partition_bytes.iter().sum::<u64>(), stats_e.total_bytes());
            prop_assert_eq!(out_e.len(), kvs.len());

            // With a recorder attached, the metrics registry mirrors the
            // ShuffleStats fields under the stage name.
            let traced = cluster.with_recorder(Recorder::for_nodes(nodes));
            let (_, stats_t, _) = data.shuffle_stage(&traced, &hash, "shuffle.test");
            let m = traced.recorder().metrics();
            prop_assert_eq!(m.counter("shuffle.test", "remote_bytes"), Some(stats_t.remote_bytes));
            prop_assert_eq!(m.counter("shuffle.test", "local_bytes"), Some(stats_t.local_bytes));
            prop_assert_eq!(m.counter("shuffle.test", "records"), Some(stats_t.records));
            let h = m.histogram("shuffle.test", "partition_bytes").unwrap();
            prop_assert_eq!(h.count as usize, partitions);
            prop_assert_eq!(h.sum as u64, stats_t.total_bytes());
        }
    }
}
