//! Property tests: the radix shuffle (pooled buckets, single-pass metering)
//! is observably identical to the legacy tuple-`Vec` path — same partition
//! contents in the same order, same per-node and per-partition byte
//! accounting — for arbitrary keyed datasets, every partitioner family, and
//! under seeded fault injection (retries must not double-fill pooled
//! buffers).

use adaptive_spatial_join::engine::{
    Cluster, ClusterConfig, ExplicitPartitioner, FaultPlan, HashPartitioner, KeyedDataset,
    Partitioner, RetryPolicy, RoundRobinPartitioner, ShuffleMode, ShuffleStats,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// Records are `(key, (tag, payload))`: a variable-length payload exercises
/// the byte metering beyond fixed-size records.
type Rec = (u64, (u64, Vec<u8>));

fn records(max_key: u64) -> impl Strategy<Value = Vec<Rec>> {
    prop::collection::vec(
        (
            0..max_key,
            any::<u64>(),
            prop::collection::vec(any::<u8>(), 0..24),
        )
            .prop_map(|(k, tag, payload)| (k, (tag, payload))),
        0..400,
    )
}

/// Splits records into `parts` chunks round-robin (deterministic, uneven).
fn into_partitions(recs: Vec<Rec>, parts: usize) -> Vec<Vec<Rec>> {
    let mut out: Vec<Vec<Rec>> = (0..parts).map(|_| Vec::new()).collect();
    for (i, r) in recs.into_iter().enumerate() {
        out[i % parts].push(r);
    }
    out
}

enum AnyPartitioner {
    Hash(HashPartitioner),
    RoundRobin(RoundRobinPartitioner),
    Explicit(ExplicitPartitioner),
}

impl AnyPartitioner {
    fn build(kind: u8, targets: usize, max_key: u64) -> AnyPartitioner {
        match kind % 4 {
            0 => AnyPartitioner::Hash(HashPartitioner::new(targets)),
            1 => AnyPartitioner::RoundRobin(RoundRobinPartitioner::new(targets)),
            k => {
                // Explicit LPT-style map over (most of) the key range: k == 2
                // builds the dense-table variant, k == 3 pins the hash-map
                // lookup, so the test covers both probe paths.
                let map: HashMap<u64, usize> = (0..max_key)
                    .filter(|key| key % 5 != 0)
                    .map(|key| (key, (key as usize * 7) % targets))
                    .collect();
                if k == 2 {
                    AnyPartitioner::Explicit(ExplicitPartitioner::new(map, targets))
                } else {
                    AnyPartitioner::Explicit(ExplicitPartitioner::new_sparse(map, targets))
                }
            }
        }
    }

    fn as_dyn(&self) -> &dyn Partitioner<u64> {
        match self {
            AnyPartitioner::Hash(p) => p,
            AnyPartitioner::RoundRobin(p) => p,
            AnyPartitioner::Explicit(p) => p,
        }
    }
}

fn run_shuffle(
    cluster: &Cluster,
    parts: Vec<Vec<Rec>>,
    p: &dyn Partitioner<u64>,
) -> (Vec<Vec<Rec>>, ShuffleStats) {
    let (ds, stats, _) = KeyedDataset::from_partitions(parts).shuffle(cluster, p);
    (ds.into_partitions(), stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Radix and legacy shuffles agree exactly: same partitions (element
    /// order included), same remote/local/record tallies, same per-partition
    /// byte histogram.
    #[test]
    fn radix_equals_legacy(
        recs in records(64),
        sources in 1usize..7,
        targets in 1usize..25,
        nodes in 1usize..6,
        kind in 0u8..4,
    ) {
        let parts = into_partitions(recs, sources);
        let p = AnyPartitioner::build(kind, targets, 64);
        let radix = Cluster::new(ClusterConfig::with_threads(nodes, 2));
        let legacy = Cluster::new(ClusterConfig::with_threads(nodes, 2))
            .with_shuffle_mode(ShuffleMode::Legacy);
        prop_assert_eq!(radix.shuffle_mode(), ShuffleMode::Radix);
        let (parts_r, stats_r) = run_shuffle(&radix, parts.clone(), p.as_dyn());
        let (parts_l, stats_l) = run_shuffle(&legacy, parts, p.as_dyn());
        prop_assert_eq!(stats_r, stats_l);
        prop_assert_eq!(parts_r, parts_l);
    }

    /// A warm pool changes nothing: shuffling twice on the same cluster
    /// (second run served from recycled buckets) matches a cold cluster.
    #[test]
    fn warm_pool_is_invisible(
        recs in records(32),
        sources in 1usize..5,
        targets in 1usize..17,
        nodes in 1usize..5,
    ) {
        let parts = into_partitions(recs, sources);
        let p = HashPartitioner::new(targets);
        let warm = Cluster::new(ClusterConfig::with_threads(nodes, 2));
        let (first, _) = run_shuffle(&warm, parts.clone(), &p);
        let (second, stats_warm) = run_shuffle(&warm, parts.clone(), &p);
        prop_assert_eq!(&first, &second, "same input must reshuffle identically");
        let cold = Cluster::new(ClusterConfig::with_threads(nodes, 2));
        let (fresh, stats_cold) = run_shuffle(&cold, parts, &p);
        prop_assert_eq!(second, fresh);
        prop_assert_eq!(stats_warm, stats_cold);
    }

    /// Fault injection on the shuffle stage (seeded, with retries) leaves
    /// the radix output identical to an undisturbed legacy run: a failed
    /// attempt's pooled buffers are dropped, never re-filled.
    #[test]
    fn radix_survives_injected_faults(
        recs in records(48),
        sources in 2usize..6,
        targets in 1usize..13,
        nodes in 2usize..5,
        seed in any::<u64>(),
        fail_task in 0usize..6,
    ) {
        let parts = into_partitions(recs, sources);
        let p = HashPartitioner::new(targets);
        let plan = FaultPlan::none()
            .with_seed(seed)
            .with_stage_fail_prob("shuffle", 0.2)
            .with_fail_point("shuffle", fail_task % sources, 1);
        let faulty = Cluster::new(ClusterConfig::with_threads(nodes, 2))
            .with_fault_policy(plan, RetryPolicy::default().with_max_attempts(8));
        let clean = Cluster::new(ClusterConfig::with_threads(nodes, 2))
            .with_shuffle_mode(ShuffleMode::Legacy);
        let (parts_f, stats_f) = run_shuffle(&faulty, parts.clone(), &p);
        let (parts_c, stats_c) = run_shuffle(&clean, parts, &p);
        prop_assert_eq!(stats_f, stats_c);
        prop_assert_eq!(parts_f, parts_c);
    }
}
