//! Moderate-scale stress: all algorithms on a 8 K × 8 K clustered workload
//! with a realistic ε, verified against the R-tree oracle; exercises grids
//! with thousands of cells and shuffles with hundreds of thousands of
//! records — one order of magnitude above the unit tests.

use adaptive_spatial_join::data::Catalog;
use adaptive_spatial_join::join::{knn_join, oracle, self_join, to_records, Algorithm, JoinSpec};
use adaptive_spatial_join::prelude::*;

#[test]
fn all_algorithms_at_scale() {
    let catalog = Catalog::new(8_000);
    let cluster = Cluster::new(ClusterConfig::new(12));
    let r = to_records(&catalog.s1.points(), 0);
    let s = to_records(&catalog.s2.points(), 0);
    // ε calibrated like the harness: 0.012 * sqrt(100M/8K) * 0.65 ≈ 0.87.
    let spec = JoinSpec::new(catalog.s1.bbox, 0.87)
        .with_partitions(96)
        .counting_only();
    let expected = oracle::rtree_pairs(&r, &s, spec.eps).len() as u64;
    assert!(
        expected > 10_000,
        "workload must be non-trivial: {expected}"
    );
    for algo in Algorithm::ALL {
        let out = algo.run(&cluster, &spec, r.clone(), s.clone());
        assert_eq!(out.result_count, expected, "{} at scale", algo.name());
        assert!(out.metrics.shuffle.records as usize >= r.len() + s.len());
    }
}

#[test]
fn self_join_and_knn_at_scale() {
    let catalog = Catalog::new(6_000);
    let cluster = Cluster::new(ClusterConfig::new(8));
    let pts = to_records(&catalog.s1.points(), 0);
    let spec = JoinSpec::new(catalog.s1.bbox, 1.0).with_partitions(48);

    let out = self_join(&cluster, &spec, pts.clone());
    let expected = adaptive_spatial_join::join::brute_force_self_pairs(&pts, spec.eps);
    assert_eq!(out.result_count as usize, expected.len());

    let queries = to_records(&catalog.s2.points()[..200], 0);
    let knn = knn_join(&cluster, &spec, 8, queries.clone(), pts.clone());
    let want = adaptive_spatial_join::join::brute_force_knn(&queries, &pts, 8);
    let got: Vec<(u64, Vec<u64>)> = knn
        .neighbors
        .iter()
        .map(|(q, ns)| (*q, ns.iter().map(|(id, _)| *id).collect()))
        .collect();
    assert_eq!(got, want);
}
