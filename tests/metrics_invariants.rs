//! Invariants of the metrics the evaluation reports: if these break, the
//! figures lie.

use adaptive_spatial_join::core::AgreementPolicy;
use adaptive_spatial_join::data::Catalog;
use adaptive_spatial_join::engine::Wire;
use adaptive_spatial_join::join::{adaptive_join, to_records, Algorithm, JoinSpec, Record};
use adaptive_spatial_join::prelude::*;

fn workload() -> (Catalog, Vec<Record>, Vec<Record>) {
    let catalog = Catalog::new(2_500);
    let r = to_records(&catalog.s1.points(), 8);
    let s = to_records(&catalog.s2.points(), 8);
    (catalog, r, s)
}

#[test]
fn single_node_cluster_has_zero_remote_reads() {
    let (catalog, r, s) = workload();
    let c = Cluster::new(ClusterConfig::new(1));
    let spec = JoinSpec::new(catalog.s1.bbox, 1.2).counting_only();
    let out = adaptive_join(&c, &spec, AgreementPolicy::Lpib, r, s);
    assert_eq!(out.metrics.shuffle.remote_bytes, 0);
    assert!(out.metrics.shuffle.local_bytes > 0);
}

#[test]
fn shuffled_bytes_equal_records_times_wire_size() {
    let (catalog, r, s) = workload();
    let c = Cluster::new(ClusterConfig::new(4));
    let spec = JoinSpec::new(catalog.s1.bbox, 1.2).counting_only();
    let out = adaptive_join(&c, &spec, AgreementPolicy::Lpib, r.clone(), s.clone());
    // Every shuffled record is (u64 cell key, Record); replication adds
    // copies, so total records = inputs + replicas.
    let rec_bytes = (8 + r[0].encoded_size()) as u64;
    let expected_records = (r.len() + s.len()) as u64 + out.replicated_total();
    assert_eq!(out.metrics.shuffle.records, expected_records);
    assert_eq!(
        out.metrics.shuffle.total_bytes(),
        expected_records * rec_bytes
    );
}

#[test]
fn remote_fraction_grows_with_cluster_width() {
    let (catalog, r, s) = workload();
    let spec = JoinSpec::new(catalog.s1.bbox, 1.2).counting_only();
    let mut last_remote = 0u64;
    for nodes in [1usize, 2, 4, 8] {
        let c = Cluster::new(ClusterConfig::new(nodes));
        let out = adaptive_join(&c, &spec, AgreementPolicy::Lpib, r.clone(), s.clone());
        assert!(
            out.metrics.shuffle.remote_bytes >= last_remote,
            "remote reads must not shrink when nodes grow"
        );
        last_remote = out.metrics.shuffle.remote_bytes;
    }
    assert!(last_remote > 0);
}

#[test]
fn replication_drops_with_larger_eps_on_skewed_data() {
    // §7.2.1: "when the distance threshold is increased … our algorithms
    // require less replication", because larger ε means larger cells and the
    // skewed clusters increasingly fit inside single cells. Compare the two
    // extremes of the sweep (intermediate values may jitter at small scale).
    let (catalog, r, s) = workload();
    let c = Cluster::new(ClusterConfig::new(4));
    let run = |eps: f64| {
        let spec = JoinSpec::new(catalog.s1.bbox, eps).counting_only();
        adaptive_join(&c, &spec, AgreementPolicy::Lpib, r.clone(), s.clone()).replicated_total()
    };
    let fine = run(0.5);
    let coarse = run(1.8);
    assert!(
        coarse < fine,
        "larger eps must replicate less on clustered data: eps=1.8 -> {coarse}, eps=0.5 -> {fine}"
    );
}

#[test]
fn candidates_bound_results_and_cost_model_holds() {
    let (catalog, r, s) = workload();
    let c = Cluster::new(ClusterConfig::new(4));
    let spec = JoinSpec::new(catalog.s1.bbox, 1.2).counting_only();
    for algo in [Algorithm::Lpib, Algorithm::UniR, Algorithm::EpsGrid] {
        let out = algo.run(&c, &spec, r.clone(), s.clone());
        assert!(out.candidates >= out.result_count, "{}", algo.name());
    }
}

#[test]
fn times_are_consistent() {
    let (catalog, r, s) = workload();
    let c = Cluster::new(ClusterConfig::new(4));
    let spec = JoinSpec::new(catalog.s1.bbox, 1.2).counting_only();
    let out = adaptive_join(&c, &spec, AgreementPolicy::Diff, r, s);
    let m = &out.metrics;
    assert!(m.simulated_time() >= m.construction.makespan());
    assert!(m.simulated_time() >= m.join.makespan());
    // Makespan can never exceed total busy time.
    assert!(m.join.makespan() <= m.join.total_busy() + std::time::Duration::from_micros(1));
    assert!(m.join.imbalance() >= 0.99);
}
