//! Reproducibility: every run is a pure function of (data, spec, seed) —
//! the property that makes the experiment tables trustworthy.

use adaptive_spatial_join::core::AgreementPolicy;
use adaptive_spatial_join::data::Catalog;
use adaptive_spatial_join::join::{adaptive_join, to_records, Algorithm, JoinSpec};
use adaptive_spatial_join::prelude::*;

#[test]
fn identical_runs_produce_identical_everything() {
    let catalog = Catalog::new(2_000);
    let c = Cluster::new(ClusterConfig::new(5));
    let spec = JoinSpec::new(catalog.s1.bbox, 1.3);
    let r = to_records(&catalog.s1.points(), 4);
    let s = to_records(&catalog.s2.points(), 4);
    for algo in Algorithm::ALL {
        let a = algo.run(&c, &spec, r.clone(), s.clone());
        let b = algo.run(&c, &spec, r.clone(), s.clone());
        assert_eq!(a.pairs, b.pairs, "{}", algo.name());
        assert_eq!(a.replicated, b.replicated);
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.metrics.shuffle, b.metrics.shuffle);
    }
}

#[test]
fn different_seed_changes_sample_but_not_results() {
    let catalog = Catalog::new(2_000);
    let c = Cluster::new(ClusterConfig::new(5));
    let r = to_records(&catalog.s1.points(), 0);
    let s = to_records(&catalog.s2.points(), 0);
    let a = adaptive_join(
        &c,
        &JoinSpec::new(catalog.s1.bbox, 1.3).with_seed(1),
        AgreementPolicy::Lpib,
        r.clone(),
        s.clone(),
    );
    let b = adaptive_join(
        &c,
        &JoinSpec::new(catalog.s1.bbox, 1.3).with_seed(2),
        AgreementPolicy::Lpib,
        r,
        s,
    );
    // The sampled agreement graph may differ, the result set must not.
    let mut pa = a.pairs.clone();
    let mut pb = b.pairs.clone();
    pa.sort_unstable();
    pb.sort_unstable();
    assert_eq!(pa, pb);
}

#[test]
fn cluster_width_and_partition_count_never_change_results() {
    let catalog = Catalog::new(2_000);
    let r = to_records(&catalog.s1.points(), 0);
    let s = to_records(&catalog.s2.points(), 0);
    let mut reference: Option<Vec<(u64, u64)>> = None;
    for nodes in [1usize, 3, 12] {
        for partitions in [7usize, 24, 96] {
            let c = Cluster::new(ClusterConfig::new(nodes));
            let spec = JoinSpec::new(catalog.s1.bbox, 1.3).with_partitions(partitions);
            let out = adaptive_join(&c, &spec, AgreementPolicy::Diff, r.clone(), s.clone());
            let mut pairs = out.pairs;
            pairs.sort_unstable();
            match &reference {
                None => reference = Some(pairs),
                Some(want) => {
                    assert_eq!(&pairs, want, "nodes={nodes} partitions={partitions}")
                }
            }
        }
    }
}
