//! Regression tests for `spec.kernel` plumbing: every distributed algorithm
//! must actually route its partition-local work through the requested kernel.
//!
//! Before the shared `kernels::local_join` entry point existed, the
//! reference-point and Sedona-like joins ran a hard-wired kernel and silently
//! ignored `spec.kernel`. The detector here is the candidate counter: the
//! nested loop evaluates every `|R_i| × |S_i|` pair of a cell group while the
//! plane sweep only counts pairs surviving its window, so on any workload
//! with non-trivial groups the two requests must report *different* candidate
//! counts — while the result pairs stay byte-identical, because every kernel
//! applies the same exact distance refinement.

use adaptive_spatial_join::core::AgreementPolicy;
use adaptive_spatial_join::geom::{Point, Polygon, Rect, Shape};
use adaptive_spatial_join::join::{
    adaptive_join_dedup, extent_join, pbsm_refpoint_join, self_join, to_records, Algorithm,
    ExtentRecord, JoinOutput, JoinSpec, LocalKernel, Record,
};
use adaptive_spatial_join::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig::new(4))
}

fn spec() -> JoinSpec {
    JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 0.9)
        .with_partitions(12)
        .with_sample_fraction(0.4)
}

fn random_records(n: usize, seed: u64) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)))
        .collect();
    to_records(&pts, 0)
}

/// Same pairs, different candidate counts — the signature of a join that
/// honors the requested kernel instead of running a hard-wired one.
fn assert_kernel_is_honored(name: &str, nl: &JoinOutput, ps: &JoinOutput) {
    let mut a = nl.pairs.clone();
    let mut b = ps.pairs.clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "{name}: result pairs must not depend on the kernel");
    assert_eq!(nl.result_count, ps.result_count, "{name}");
    assert_ne!(
        nl.candidates, ps.candidates,
        "{name}: nested-loop and plane-sweep must report different candidate \
         counts (is the kernel flag ignored?)"
    );
    assert!(
        ps.candidates < nl.candidates,
        "{name}: the sweep window must prune below the nested loop's r*s \
         ({} vs {})",
        ps.candidates,
        nl.candidates
    );
}

#[test]
fn every_two_set_algorithm_honors_the_kernel_flag() {
    let c = cluster();
    let r = random_records(400, 91);
    let s = random_records(400, 92);
    for algo in Algorithm::ALL {
        let nl = algo.run(
            &c,
            &spec().with_kernel(LocalKernel::NestedLoop),
            r.clone(),
            s.clone(),
        );
        let ps = algo.run(
            &c,
            &spec().with_kernel(LocalKernel::PlaneSweep),
            r.clone(),
            s.clone(),
        );
        assert_kernel_is_honored(algo.name(), &nl, &ps);
    }
}

#[test]
fn refpoint_join_honors_the_kernel_flag() {
    let c = cluster();
    let r = random_records(400, 93);
    let s = random_records(400, 94);
    let nl = pbsm_refpoint_join(
        &c,
        &spec().with_kernel(LocalKernel::NestedLoop),
        r.clone(),
        s.clone(),
    );
    let ps = pbsm_refpoint_join(&c, &spec().with_kernel(LocalKernel::PlaneSweep), r, s);
    assert_kernel_is_honored("refpoint", &nl, &ps);
}

#[test]
fn dedup_join_honors_the_kernel_flag() {
    let c = cluster();
    let r = random_records(350, 95);
    let s = random_records(350, 96);
    let nl = adaptive_join_dedup(
        &c,
        &spec().with_kernel(LocalKernel::NestedLoop),
        AgreementPolicy::Lpib,
        r.clone(),
        s.clone(),
    );
    let ps = adaptive_join_dedup(
        &c,
        &spec().with_kernel(LocalKernel::PlaneSweep),
        AgreementPolicy::Lpib,
        r,
        s,
    );
    assert_kernel_is_honored("dedup", &nl, &ps);
}

#[test]
fn self_join_honors_the_kernel_flag() {
    let c = cluster();
    let input = random_records(500, 97);
    let nl = self_join(
        &c,
        &spec().with_kernel(LocalKernel::NestedLoop),
        input.clone(),
    );
    let ps = self_join(&c, &spec().with_kernel(LocalKernel::PlaneSweep), input);
    assert_kernel_is_honored("self-join", &nl, &ps);
}

#[test]
fn extent_join_honors_the_kernel_flag() {
    let c = cluster();
    let mut rng = StdRng::seed_from_u64(98);
    let mut boxes = |n: usize| -> Vec<ExtentRecord> {
        (0..n)
            .map(|i| {
                let x = rng.gen_range(0.0..18.0);
                let y = rng.gen_range(0.0..18.0);
                let w = rng.gen_range(0.1..1.5);
                let h = rng.gen_range(0.1..1.5);
                ExtentRecord::new(
                    i as u64,
                    Shape::Polygon(Polygon::from_rect(Rect::new(x, y, x + w, y + h))),
                )
            })
            .collect()
    };
    let a = boxes(250);
    let b = boxes(250);
    let nl = extent_join(
        &c,
        &spec().with_kernel(LocalKernel::NestedLoop),
        a.clone(),
        b.clone(),
    );
    let ps = extent_join(&c, &spec().with_kernel(LocalKernel::PlaneSweep), a, b);
    assert_kernel_is_honored("extent", &nl, &ps);
}
