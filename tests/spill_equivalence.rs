//! Property tests for memory-governed execution: a per-node budget may force
//! shuffle buckets through disk spill segments, but it must never change a
//! single byte of any result — partitions, their order, and every
//! `ShuffleStats` field stay identical to an unbudgeted run — while the
//! enforced invariant `peak_memory_bytes <= budget` holds on every node.
//! Alongside, the `partition_bytes` histogram is pinned to ground truth: each
//! entry equals the summed encoded size of the records that actually landed
//! in that partition, for every algorithm and under seeded fault retries.

use adaptive_spatial_join::engine::{
    Cluster, ClusterConfig, FaultPlan, HashPartitioner, KeyedDataset, RetryPolicy, ShuffleMode,
    ShuffleStats, Wire,
};
use adaptive_spatial_join::join::{to_records, Algorithm, JoinSpec, Record};
use adaptive_spatial_join::prelude::*;
use proptest::prelude::*;

/// Records are `(key, (tag, payload))`: a variable-length payload exercises
/// the byte metering and the spill codec beyond fixed-size records.
type Rec = (u64, (u64, Vec<u8>));

fn records(max_key: u64) -> impl Strategy<Value = Vec<Rec>> {
    prop::collection::vec(
        (
            0..max_key,
            any::<u64>(),
            prop::collection::vec(any::<u8>(), 0..24),
        )
            .prop_map(|(k, tag, payload)| (k, (tag, payload))),
        0..400,
    )
}

/// Splits records into `parts` chunks round-robin (deterministic, uneven).
fn into_partitions(recs: Vec<Rec>, parts: usize) -> Vec<Vec<Rec>> {
    let mut out: Vec<Vec<Rec>> = (0..parts).map(|_| Vec::new()).collect();
    for (i, r) in recs.into_iter().enumerate() {
        out[i % parts].push(r);
    }
    out
}

/// Ground truth for one shuffled partition: the summed wire size of the
/// records that actually landed there.
fn landed_bytes(part: &[Rec]) -> u64 {
    part.iter()
        .map(|(k, v)| k.encoded_size() as u64 + v.encoded_size() as u64)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Budgeted execution is invisible in the results: whatever fraction of
    /// the natural peak the budget allows, the shuffle produces the same
    /// partitions in the same order with the same stats — spilling more and
    /// more of the data through disk as the budget shrinks — and no node's
    /// peak ever exceeds the budget.
    #[test]
    fn budgeted_shuffle_is_byte_identical(
        recs in records(64),
        sources in 1usize..7,
        targets in 1usize..25,
        nodes in 1usize..6,
        budget_pct in 1u64..120,
    ) {
        let parts = into_partitions(recs, sources);
        let p = HashPartitioner::new(targets);
        let free = Cluster::new(ClusterConfig::with_threads(nodes, 2));
        let (df, sf, ef) = KeyedDataset::from_partitions(parts.clone())
            .shuffle(&free, &p);
        prop_assert_eq!(ef.spilled_bytes, 0, "no budget, nothing spills");

        let budget = (ef.peak_memory_bytes * budget_pct / 100).max(1);
        let tight = Cluster::new(ClusterConfig::with_threads(nodes, 2))
            .with_memory_budget(budget);
        let (dt, st, et) = KeyedDataset::from_partitions(parts).shuffle(&tight, &p);
        prop_assert_eq!(&st, &sf, "ShuffleStats are spill-agnostic");
        prop_assert_eq!(
            dt.into_partitions(),
            df.into_partitions(),
            "spilling must not change results"
        );
        prop_assert!(
            et.peak_memory_bytes <= budget,
            "peak {} exceeds budget {}", et.peak_memory_bytes, budget
        );
        let acct = tight.memory_accountant();
        for node in 0..nodes {
            prop_assert!(acct.peak_of_node(node) <= budget);
            prop_assert_eq!(acct.resident_bytes(node), 0, "charges release at commit");
        }
        // A budget meaningfully below the natural peak must actually deny
        // something (and therefore spill) whenever any bytes moved at all.
        if budget_pct <= 50 && ef.peak_memory_bytes > 1 && sf.total_bytes() > 0 {
            prop_assert!(
                et.spilled_bytes > 0,
                "budget {} under natural peak {} must spill",
                budget, ef.peak_memory_bytes
            );
        }
    }

    /// Spilling composes with fault recovery: failed attempts abandon their
    /// charges and spill files, retried attempts redo both, and the output
    /// still matches an undisturbed legacy run byte for byte.
    #[test]
    fn budgeted_shuffle_survives_injected_faults(
        recs in records(48),
        sources in 2usize..6,
        targets in 1usize..13,
        nodes in 2usize..5,
        seed in any::<u64>(),
        fail_task in 0usize..6,
        budget_pct in 5u64..60,
    ) {
        let parts = into_partitions(recs, sources);
        let p = HashPartitioner::new(targets);
        let free = Cluster::new(ClusterConfig::with_threads(nodes, 2));
        let (_, _, ef) = KeyedDataset::from_partitions(parts.clone()).shuffle(&free, &p);
        let budget = (ef.peak_memory_bytes * budget_pct / 100).max(1);

        let plan = FaultPlan::none()
            .with_seed(seed)
            .with_stage_fail_prob("shuffle", 0.2)
            .with_fail_point("shuffle", fail_task % sources, 1);
        let faulty = Cluster::new(ClusterConfig::with_threads(nodes, 2))
            .with_memory_budget(budget)
            .with_fault_policy(plan, RetryPolicy::default().with_max_attempts(8));
        let clean = Cluster::new(ClusterConfig::with_threads(nodes, 2))
            .with_shuffle_mode(ShuffleMode::Legacy);
        let (df, sf, ex) = KeyedDataset::from_partitions(parts.clone()).shuffle(&faulty, &p);
        let (dc, sc, _) = KeyedDataset::from_partitions(parts).shuffle(&clean, &p);
        prop_assert_eq!(sf, sc);
        prop_assert_eq!(df.into_partitions(), dc.into_partitions());
        prop_assert!(ex.peak_memory_bytes <= budget);
        for node in 0..nodes {
            prop_assert_eq!(
                faulty.memory_accountant().resident_bytes(node),
                0,
                "loser attempts' charges must not leak"
            );
        }
    }

    /// `partition_bytes` is ground truth, not an estimate: every entry equals
    /// the summed encoded size of the records that landed in that partition —
    /// with and without a budget, and under seeded fault retries.
    #[test]
    fn partition_bytes_match_landed_records(
        recs in records(32),
        sources in 1usize..6,
        targets in 1usize..17,
        nodes in 1usize..5,
        seed in any::<u64>(),
        budgeted in any::<bool>(),
    ) {
        let parts = into_partitions(recs, sources);
        let p = HashPartitioner::new(targets);
        let mut cluster = Cluster::new(ClusterConfig::with_threads(nodes, 2))
            .with_fault_policy(
                FaultPlan::none().with_seed(seed).with_stage_fail_prob("shuffle", 0.15),
                RetryPolicy::default().with_max_attempts(8),
            );
        if budgeted {
            cluster = cluster.with_memory_budget(64);
        }
        let (ds, stats, _) = KeyedDataset::from_partitions(parts).shuffle(&cluster, &p);
        let shuffled = ds.into_partitions();
        prop_assert_eq!(shuffled.len(), targets);
        prop_assert_eq!(stats.partition_bytes.len(), targets);
        for (t, part) in shuffled.iter().enumerate() {
            prop_assert_eq!(
                stats.partition_bytes[t],
                landed_bytes(part),
                "partition {} bytes must equal its landed records", t
            );
        }
        prop_assert_eq!(
            stats.partition_bytes.iter().sum::<u64>(),
            stats.total_bytes(),
            "histogram sums to the total shuffle volume"
        );
    }
}

/// Join-algorithm level: the full pipelines report the same results and the
/// same `partition_bytes` histogram whether shuffles run radix (with seeded
/// fault retries and a sub-peak memory budget) or legacy (which re-encodes
/// the records that actually landed in each partition — the ground truth the
/// histogram is being checked against).
fn uniform_records(n: usize, seed: u64, extent: f64, payload: usize) -> Vec<Record> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
        .collect();
    to_records(&pts, payload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn algorithms_report_ground_truth_partition_bytes(
        seed in 0u64..1000,
        algo_idx in 0usize..6,
    ) {
        let algo = Algorithm::ALL[algo_idx];
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 12.0, 12.0), 0.8)
            .with_partitions(8)
            .with_sample_fraction(0.3)
            .with_seed(seed);
        let r = uniform_records(120, seed.wrapping_mul(3), 12.0, 8);
        let s = uniform_records(120, seed.wrapping_mul(5).wrapping_add(1), 12.0, 8);

        let plan = FaultPlan::none()
            .with_seed(seed)
            .with_stage_fail_prob("shuffle.R", 0.2)
            .with_fail_point("shuffle.S", 0, 1);
        let radix = Cluster::new(ClusterConfig::with_threads(3, 2))
            .with_memory_budget(4 * 1024)
            .with_fault_policy(plan, RetryPolicy::default().with_max_attempts(8));
        let legacy = Cluster::new(ClusterConfig::with_threads(3, 2))
            .with_shuffle_mode(ShuffleMode::Legacy);

        let out_r = algo.run(&radix, &spec, r.clone(), s.clone());
        let out_l = algo.run(&legacy, &spec, r, s);
        prop_assert_eq!(out_r.result_count, out_l.result_count, "{}", algo.name());
        let mut pr = out_r.pairs.clone();
        let mut pl = out_l.pairs.clone();
        pr.sort_unstable();
        pl.sort_unstable();
        prop_assert_eq!(pr, pl);
        // The legacy reduce side computes partition_bytes by re-encoding the
        // records that landed in each partition; matching it entry-by-entry
        // pins the radix map-side metering to that ground truth.
        prop_assert_eq!(
            &out_r.metrics.shuffle.partition_bytes,
            &out_l.metrics.shuffle.partition_bytes,
            "{}", algo.name()
        );
        let sh: &ShuffleStats = &out_r.metrics.shuffle;
        prop_assert_eq!(sh.partition_bytes.iter().sum::<u64>(), sh.total_bytes());
        prop_assert!(out_r.metrics.peak_memory_bytes() <= 4 * 1024);
    }
}
