//! End-to-end fault-tolerance: a seeded, deterministic [`FaultPlan`] —
//! random task failures, slowed nodes (stragglers), whole lost nodes —
//! must be *recovery-transparent*: the ε-join under chaos produces exactly
//! the result set, counters and shuffle accounting of the fault-free run,
//! while `ExecStats` records the extra attempts, and the trace shows every
//! failed attempt as a span on its node's lane.

use adaptive_spatial_join::core::AgreementPolicy;
use adaptive_spatial_join::engine::{Dataset, FaultContext, Lane};
use adaptive_spatial_join::geom::{Point, Rect};
use adaptive_spatial_join::join::{adaptive_join, oracle, to_records, JoinSpec, Record};
use adaptive_spatial_join::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn clouds(seed: u64, n: usize) -> (Vec<Record>, Vec<Record>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cloud = |rng: &mut StdRng| -> Vec<Point> {
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)))
            .collect()
    };
    let r = cloud(&mut rng);
    let s = cloud(&mut rng);
    (to_records(&r, 0), to_records(&s, 0))
}

fn spec() -> JoinSpec {
    JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 0.7)
        .with_partitions(12)
        .with_sample_fraction(0.4)
}

/// Joins under `faults` and asserts output equality against a fault-free
/// run; returns the faulted run's combined exec stats.
fn assert_recovery_transparent(
    faults: FaultPlan,
    policy: RetryPolicy,
    nodes: usize,
    seed: u64,
) -> ExecStats {
    let (r, s) = clouds(seed, 400);
    let spec = spec();
    let clean = Cluster::new(ClusterConfig::with_threads(nodes, 3));
    let chaotic = clean.clone().with_fault_policy(faults, policy);
    let base = adaptive_join(&clean, &spec, AgreementPolicy::Lpib, r.clone(), s.clone());
    let recovered = adaptive_join(&chaotic, &spec, AgreementPolicy::Lpib, r, s);

    // Byte-identical results: same pairs in the same order, same counters.
    assert_eq!(recovered.pairs, base.pairs);
    assert_eq!(recovered.result_count, base.result_count);
    assert_eq!(recovered.candidates, base.candidates);
    assert_eq!(recovered.replicated, base.replicated);
    // Identical shuffle accounting, and the remote/local split covers it.
    assert_eq!(
        recovered.metrics.shuffle.remote_bytes,
        base.metrics.shuffle.remote_bytes
    );
    assert_eq!(
        recovered.metrics.shuffle.local_bytes,
        base.metrics.shuffle.local_bytes
    );
    assert_eq!(
        recovered.metrics.shuffle.remote_bytes + recovered.metrics.shuffle.local_bytes,
        recovered.metrics.shuffle.total_bytes()
    );
    assert_eq!(
        recovered.metrics.shuffle.records,
        base.metrics.shuffle.records
    );

    let mut exec = ExecStats::default();
    exec.accumulate(&recovered.metrics.construction);
    exec.accumulate(&recovered.metrics.join);
    exec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seeded fault plan — random failure rate, a straggler node, a
    /// stage-targeted failure spike — recovers to the exact fault-free
    /// output.
    #[test]
    fn seeded_fault_plans_are_recovery_transparent(
        fault_seed in 0u64..1_000,
        data_seed in 0u64..1_000,
        fail_prob in 0.0f64..0.25,
        slow_node in 0usize..4,
        slow_mult in 1.0f64..3.0,
    ) {
        let plan = FaultPlan::none()
            .with_seed(fault_seed)
            .with_fail_prob(fail_prob)
            .with_slow_node(slow_node, slow_mult)
            .with_stage_fail_prob("cogroup_join", (fail_prob * 1.5).min(0.3));
        let exec = assert_recovery_transparent(
            plan,
            RetryPolicy::default().with_max_attempts(12),
            4,
            data_seed,
        );
        prop_assert!(exec.attempts >= exec.retries);
        prop_assert_eq!(exec.retries, exec.failed_attempts);
    }
}

#[test]
fn chaos_with_node_loss_and_stragglers_recovers_exactly() {
    // The standard chaos plan: p=0.03 everywhere, node 1 runs 3x slower,
    // node 2 is lost outright after its fifth attempt starts.
    let exec = assert_recovery_transparent(
        FaultPlan::chaos(7),
        RetryPolicy::default().with_max_attempts(10),
        5,
        99,
    );
    // The recovery actually happened: more attempts than a clean run, and
    // the attempts the plan killed are on the books.
    assert!(exec.attempts > 0);
    assert!(
        exec.failed_attempts > 0,
        "chaos(7) must inject at least one failure across the pipeline"
    );
    assert_eq!(exec.retries, exec.failed_attempts);
}

#[test]
fn speculation_under_chaos_stays_transparent() {
    let exec = assert_recovery_transparent(
        FaultPlan::chaos(13),
        RetryPolicy::default()
            .with_max_attempts(10)
            .with_speculation(true),
        5,
        100,
    );
    assert!(exec.attempts > 0);
}

#[test]
fn failed_attempts_appear_as_spans_on_node_lanes() {
    let (r, s) = clouds(5, 300);
    let spec = spec();
    // Deterministically kill the first attempt of two local-join tasks
    // (the stage label of the cogroup executor under the "local_join"
    // trace phase).
    let plan = FaultPlan::none()
        .with_seed(3)
        .with_fail_point("cogroup_join", 0, 1)
        .with_fail_point("cogroup_join", 3, 1);
    let recorder = Recorder::for_nodes(4);
    let cluster = Cluster::new(ClusterConfig::with_threads(4, 2))
        .with_recorder(recorder.clone())
        .with_faults(plan);
    let out = adaptive_join(&cluster, &spec, AgreementPolicy::Lpib, r, s);
    let trace = recorder.snapshot();

    let failed: Vec<_> = trace
        .spans
        .iter()
        .filter(|sp| sp.stage.ends_with("!failed"))
        .collect();
    assert_eq!(failed.len(), 2, "one span per killed attempt");
    for sp in &failed {
        assert!(
            matches!(sp.lane, Lane::Node(_)),
            "failed attempts live on node lanes"
        );
        assert_eq!(sp.stage, "cogroup_join!failed");
    }
    // The retries were billed to the simulated clock: per-node lane totals
    // still reconcile exactly with the job's busy time (including the
    // failed spans), which `tests/trace_consistency.rs` checks lane by
    // lane for clean runs.
    let mut exec = ExecStats::default();
    exec.accumulate(&out.metrics.construction);
    exec.accumulate(&out.metrics.join);
    assert_eq!(exec.retries, 2);
    assert_eq!(exec.failed_attempts, 2);
    for n in 0..4 {
        let lane_total: u64 = trace
            .spans
            .iter()
            .filter(|sp| sp.lane == Lane::Node(n))
            .map(|sp| sp.sim_dur_ns)
            .sum();
        let busy = out.metrics.construction.per_node_busy[n].as_nanos() as u64
            + out.metrics.join.per_node_busy[n].as_nanos() as u64;
        assert_eq!(lane_total, busy, "node {n} lane must bill every attempt");
    }
    // Recovery telemetry flows through the recorder too.
    assert!(trace.events.iter().any(|e| e.name == "task_retry"));
}

#[test]
fn unsurvivable_plans_surface_as_job_errors() {
    // Every attempt of the map stage fails: the retry budget exhausts and
    // the error names the stage instead of poisoning the scope.
    let plan = FaultPlan::none()
        .with_seed(1)
        .with_stage_fail_prob("map", 1.0);
    let cluster = Cluster::new(ClusterConfig::with_threads(3, 2))
        .with_fault_policy(plan, RetryPolicy::default().with_max_attempts(3));
    let ds = Dataset::from_vec((0..60u64).collect::<Vec<_>>(), 6);
    let err = ds
        .try_map(&cluster, |x| x * 2)
        .expect_err("a 100% failure rate cannot succeed");
    assert_eq!(err.stage, "map");
    assert_eq!(err.attempts, 3);

    // Losing every node is equally fatal — and equally non-panicking.
    let all_lost = FaultPlan::none()
        .with_seed(2)
        .with_lost_node(0, 0)
        .with_lost_node(1, 0);
    let cluster = Cluster::new(ClusterConfig::with_threads(2, 2))
        .with_fault_policy(all_lost, RetryPolicy::default());
    let ds = Dataset::from_vec((0..10u64).collect::<Vec<_>>(), 4);
    let err = ds
        .try_map(&cluster, |x| x + 1)
        .expect_err("no usable node may remain");
    assert!(
        err.to_string().contains("map"),
        "error names the stage: {err}"
    );
}

#[test]
fn zero_fault_runs_take_the_legacy_path_and_match_exactly() {
    // A cluster without a fault context must behave byte-for-byte like the
    // seed engine: same results AND same span structure (count per stage),
    // which the golden trace tests elsewhere rely on.
    let (r, s) = clouds(11, 350);
    let spec = spec();
    let plain = Cluster::new(ClusterConfig::with_threads(4, 2));
    assert!(plain.fault_context().is_none());
    let base = adaptive_join(&plain, &spec, AgreementPolicy::Lpib, r.clone(), s.clone());
    let expected = oracle::brute_force_pairs(&r, &s, spec.eps);
    assert_eq!(base.result_count as usize, expected.len());

    // An *inert* fault context (no plan, default policy) routes through the
    // recovering executor yet still computes the same join.
    let routed =
        Cluster::new(ClusterConfig::with_threads(4, 2)).with_retry_policy(RetryPolicy::default());
    assert!(routed.fault_context().is_some());
    let via_ft = adaptive_join(&routed, &spec, AgreementPolicy::Lpib, r, s);
    assert_eq!(via_ft.pairs, base.pairs);
    assert_eq!(via_ft.result_count, base.result_count);
}

#[test]
fn fault_state_is_shared_across_stages_of_a_job() {
    // Node blacklisting accumulates over the life of the cluster: a node
    // that keeps failing early stages is avoided in later ones, because
    // every stage executes against the same `FaultState`.
    let plan = FaultPlan::none().with_seed(4).with_fail_prob(0.0);
    let cluster = Cluster::new(ClusterConfig::with_threads(3, 2)).with_faults(plan);
    let ctx: &FaultContext = cluster.fault_context().expect("context attached");
    let policy = RetryPolicy::default().with_blacklist_after(2);
    assert!(!ctx.state.is_blacklisted(1));
    assert!(
        !ctx.state.note_failure(&policy, 1),
        "one failure is forgiven"
    );
    assert!(ctx.state.note_failure(&policy, 1), "the second blacklists");
    assert!(ctx.state.is_blacklisted(1));
    assert_eq!(ctx.state.blacklisted_count(), 1);
}
