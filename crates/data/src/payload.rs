/// The paper's *tuple size factor* (Figs. 16–18): real records carry
/// non-spatial attributes (names, descriptions, …) that must travel with the
/// tuple through the shuffle. Each factor adds a fixed payload per tuple on
/// top of the spatial information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TupleSizeFactor {
    F0,
    F1,
    F2,
    F3,
    F4,
}

impl TupleSizeFactor {
    pub const ALL: [TupleSizeFactor; 5] = [
        TupleSizeFactor::F0,
        TupleSizeFactor::F1,
        TupleSizeFactor::F2,
        TupleSizeFactor::F3,
        TupleSizeFactor::F4,
    ];

    /// Extra bytes per tuple beyond id and coordinates. The paper does not
    /// publish the absolute sizes, only that factors grow monotonically; we
    /// use a doubling ladder starting at 32 B (a short name string) up to
    /// 256 B (name + description + tags).
    pub fn payload_bytes(self) -> usize {
        match self {
            TupleSizeFactor::F0 => 0,
            TupleSizeFactor::F1 => 32,
            TupleSizeFactor::F2 => 64,
            TupleSizeFactor::F3 => 128,
            TupleSizeFactor::F4 => 256,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            TupleSizeFactor::F0 => "f0",
            TupleSizeFactor::F1 => "f1",
            TupleSizeFactor::F2 => "f2",
            TupleSizeFactor::F3 => "f3",
            TupleSizeFactor::F4 => "f4",
        }
    }

    /// Deterministic filler payload for a tuple id (pseudo-text bytes, so
    /// payloads differ across tuples like real attributes do).
    pub fn make_payload(self, id: u64) -> Vec<u8> {
        let n = self.payload_bytes();
        let mut out = Vec::with_capacity(n);
        let mut state = id
            .wrapping_mul(0x5851_F42D_4C95_7F2D)
            .wrapping_add(0x14057B7E);
        while out.len() < n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Printable ASCII range keeps payloads text-like.
            out.push(b' ' + ((state >> 33) % 94) as u8);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_grow_monotonically() {
        let sizes: Vec<usize> = TupleSizeFactor::ALL
            .iter()
            .map(|f| f.payload_bytes())
            .collect();
        assert_eq!(sizes[0], 0);
        for w in sizes.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn payload_has_exact_size_and_is_deterministic() {
        for f in TupleSizeFactor::ALL {
            let a = f.make_payload(42);
            let b = f.make_payload(42);
            assert_eq!(a.len(), f.payload_bytes());
            assert_eq!(a, b);
        }
        assert_ne!(
            TupleSizeFactor::F2.make_payload(1),
            TupleSizeFactor::F2.make_payload(2)
        );
    }

    #[test]
    fn payload_is_printable_ascii() {
        let p = TupleSizeFactor::F4.make_payload(7);
        assert!(p.iter().all(|&b| (b' '..=b'~').contains(&b)));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(TupleSizeFactor::F0.name(), "f0");
        assert_eq!(TupleSizeFactor::F4.name(), "f4");
    }
}
