//! Workload generators and the dataset catalog for the evaluation.
//!
//! The paper evaluates on two real datasets obtained from the SpatialHadoop
//! repository — TIGER/Area Hydrography (94.1 M points, `R1`) and OSM/Parks
//! (42.7 M points, `R2`) — plus synthetic Gaussian datasets (`S1`, `S2`,
//! 100 M points each: 30 clustered areas with per-cluster standard deviation
//! drawn from [0.1, 0.8], generated inside the same minimum bounding
//! rectangle as the real data).
//!
//! The real files are not redistributable here, so this crate generates
//! *skew-equivalent* substitutes in the same bounding box (see DESIGN.md):
//!
//! * [`GenKind::GaussianClusters`] — the paper's synthetic generator,
//!   parameterized exactly as described.
//! * [`GenKind::Hydrography`] — river-polyline random walks plus lake blobs,
//!   mimicking the linear, strongly clustered skew of TIGER hydrography.
//! * [`GenKind::Parks`] — power-law-sized urban clusters over a sparse
//!   background, mimicking OSM parks.
//! * [`GenKind::Uniform`] — uniform background, used by tests and ablations.
//!
//! Generation is deterministic in the seed and **partition-stable**: a
//! dataset can be produced partition-by-partition in parallel
//! ([`DatasetSpec::partition_points`]) and always yields the same points.

mod catalog;
mod generators;
mod io;
mod payload;
mod shapes;

pub use catalog::{Catalog, DatasetSpec, GenKind, PAPER_BBOX};
pub use generators::{gaussian_cluster_params, gaussian_cluster_params_scaled, GenParams};
pub use io::{read_points_csv, write_points_csv};
pub use payload::TupleSizeFactor;
pub use shapes::{random_boxes, random_polylines};
