use asj_geom::{Point, Polygon, Polyline, Rect};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random-walk polylines ("rivers"/"roads") inside `bbox`, for the extent
/// join. Each polyline has `2..=max_vertices` vertices with steps of about
/// 1 % of the bbox diagonal.
pub fn random_polylines(bbox: Rect, n: usize, max_vertices: usize, seed: u64) -> Vec<Polyline> {
    assert!(max_vertices >= 2, "polylines need at least 2 vertices");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x11E5);
    let diag = (bbox.width().powi(2) + bbox.height().powi(2)).sqrt();
    let step = diag / 100.0;
    (0..n)
        .map(|_| {
            let mut p = Point::new(
                rng.gen_range(bbox.min_x..bbox.max_x),
                rng.gen_range(bbox.min_y..bbox.max_y),
            );
            let mut dir: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let count = rng.gen_range(2..=max_vertices);
            let mut pts = Vec::with_capacity(count);
            for _ in 0..count {
                pts.push(p);
                dir += rng.gen_range(-0.7..0.7);
                p = Point::new(
                    (p.x + step * dir.cos()).clamp(bbox.min_x, bbox.max_x),
                    (p.y + step * dir.sin()).clamp(bbox.min_y, bbox.max_y),
                );
            }
            Polyline::new(pts)
        })
        .collect()
}

/// Axis-aligned rectangular polygons ("parks"/"lots") inside `bbox`, with
/// sides up to `max_side`.
pub fn random_boxes(bbox: Rect, n: usize, max_side: f64, seed: u64) -> Vec<Polygon> {
    assert!(max_side > 0.0, "max_side must be positive");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xB0C5);
    (0..n)
        .map(|_| {
            let w = rng.gen_range(max_side * 0.05..max_side);
            let h = rng.gen_range(max_side * 0.05..max_side);
            let x = rng.gen_range(bbox.min_x..(bbox.max_x - w).max(bbox.min_x + 1e-9));
            let y = rng.gen_range(bbox.min_y..(bbox.max_y - h).max(bbox.min_y + 1e-9));
            Polygon::from_rect(Rect::new(x, y, x + w, y + h))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbox() -> Rect {
        Rect::new(0.0, 0.0, 50.0, 30.0)
    }

    #[test]
    fn polylines_stay_inside_and_are_deterministic() {
        let a = random_polylines(bbox(), 40, 8, 3);
        let b = random_polylines(bbox(), 40, 8, 3);
        assert_eq!(a, b);
        for l in &a {
            assert!(l.points().len() >= 2 && l.points().len() <= 8);
            for p in l.points() {
                assert!(bbox().contains(*p));
            }
        }
    }

    #[test]
    fn boxes_stay_inside_with_bounded_sides() {
        let boxes = random_boxes(bbox(), 60, 4.0, 9);
        for g in &boxes {
            let e = g.envelope();
            assert!(e.width() <= 4.0 && e.height() <= 4.0);
            assert!(bbox().contains(Point::new(e.min_x, e.min_y)));
            assert!(bbox().contains(Point::new(e.max_x, e.max_y)));
        }
    }
}
