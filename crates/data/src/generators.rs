use asj_geom::{Point, Rect};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cluster parameters shared by all partitions of a Gaussian dataset:
/// 30 centers uniform in the bounding box, standard deviation per cluster
/// drawn from [0.1, 0.8] (§7.1 of the paper; the σ range is in the same
/// coordinate units as the data space).
#[derive(Debug, Clone)]
pub struct GenParams {
    pub centers: Vec<Point>,
    pub sigmas: Vec<f64>,
}

/// Derives the shared cluster layout for a Gaussian dataset from its seed
/// (every partition must agree on it).
pub fn gaussian_cluster_params(bbox: Rect, clusters: usize, seed: u64) -> GenParams {
    gaussian_cluster_params_scaled(bbox, clusters, seed, 1.0)
}

/// [`gaussian_cluster_params`] with the per-cluster σ range scaled by
/// `sigma_scale`. Downscaled reproductions scale ε up to preserve
/// points-per-cell; scaling σ alongside preserves the paper's
/// clusters-span-multiple-cells geometry (see DESIGN.md).
pub fn gaussian_cluster_params_scaled(
    bbox: Rect,
    clusters: usize,
    seed: u64,
    sigma_scale: f64,
) -> GenParams {
    assert!(sigma_scale > 0.0 && sigma_scale.is_finite());
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC1A5_7E85_EED5_u64);
    let centers = (0..clusters)
        .map(|_| {
            Point::new(
                rng.gen_range(bbox.min_x..bbox.max_x),
                rng.gen_range(bbox.min_y..bbox.max_y),
            )
        })
        .collect();
    let sigmas = (0..clusters)
        .map(|_| rng.gen_range(0.1..0.8) * sigma_scale)
        .collect();
    GenParams { centers, sigmas }
}

/// One standard normal variate via Box–Muller (the `rand_distr` crate is
/// intentionally not a dependency; two uniforms suffice).
fn std_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples around `center` with deviation `sigma`, clamped into the bbox
/// after a few rejection attempts (keeps border cells from accumulating
/// clipped mass without ever looping unboundedly).
fn gaussian_point(rng: &mut SmallRng, bbox: Rect, center: Point, sigma: f64) -> Point {
    for _ in 0..8 {
        let p = Point::new(
            center.x + sigma * std_normal(rng),
            center.y + sigma * std_normal(rng),
        );
        if bbox.contains(p) {
            return p;
        }
    }
    Point::new(
        (center.x + sigma * std_normal(rng)).clamp(bbox.min_x, bbox.max_x),
        (center.y + sigma * std_normal(rng)).clamp(bbox.min_y, bbox.max_y),
    )
}

pub(crate) fn gaussian_partition(
    bbox: Rect,
    params: &GenParams,
    n: usize,
    seed: u64,
) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = rng.gen_range(0..params.centers.len());
            gaussian_point(&mut rng, bbox, params.centers[c], params.sigmas[c])
        })
        .collect()
}

pub(crate) fn uniform_partition(bbox: Rect, n: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(bbox.min_x..bbox.max_x),
                rng.gen_range(bbox.min_y..bbox.max_y),
            )
        })
        .collect()
}

/// River-like layout shared by all partitions: random-walk polylines (rivers)
/// plus compact blobs (lakes).
#[derive(Debug, Clone)]
pub(crate) struct HydroParams {
    /// Vertices of each river polyline.
    rivers: Vec<Vec<Point>>,
    /// (center, radius) of each lake.
    lakes: Vec<(Point, f64)>,
}

pub(crate) fn hydro_params(bbox: Rect, seed: u64) -> HydroParams {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4D7D_0B10);
    let diag = (bbox.width().powi(2) + bbox.height().powi(2)).sqrt();
    let step = diag / 150.0;
    let rivers = (0..40)
        .map(|_| {
            let mut p = Point::new(
                rng.gen_range(bbox.min_x..bbox.max_x),
                rng.gen_range(bbox.min_y..bbox.max_y),
            );
            let mut dir: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let mut pts = Vec::with_capacity(80);
            for _ in 0..80 {
                pts.push(p);
                dir += rng.gen_range(-0.5..0.5);
                p = Point::new(
                    (p.x + step * dir.cos()).clamp(bbox.min_x, bbox.max_x),
                    (p.y + step * dir.sin()).clamp(bbox.min_y, bbox.max_y),
                );
            }
            pts
        })
        .collect();
    let lakes = (0..25)
        .map(|_| {
            let c = Point::new(
                rng.gen_range(bbox.min_x..bbox.max_x),
                rng.gen_range(bbox.min_y..bbox.max_y),
            );
            (c, rng.gen_range(diag / 400.0..diag / 60.0))
        })
        .collect();
    HydroParams { rivers, lakes }
}

pub(crate) fn hydrography_partition(
    bbox: Rect,
    params: &HydroParams,
    n: usize,
    seed: u64,
) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let diag = (bbox.width().powi(2) + bbox.height().powi(2)).sqrt();
    let jitter = diag / 800.0;
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.65) {
                // On a river: pick a polyline, a segment, a position along it.
                let river = &params.rivers[rng.gen_range(0..params.rivers.len())];
                let i = rng.gen_range(0..river.len() - 1);
                let t: f64 = rng.gen_range(0.0..1.0);
                let a = river[i];
                let b = river[i + 1];
                let base = Point::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y));
                Point::new(
                    (base.x + jitter * std_normal(&mut rng)).clamp(bbox.min_x, bbox.max_x),
                    (base.y + jitter * std_normal(&mut rng)).clamp(bbox.min_y, bbox.max_y),
                )
            } else {
                // In a lake blob.
                let (c, r) = params.lakes[rng.gen_range(0..params.lakes.len())];
                gaussian_point(&mut rng, bbox, c, r)
            }
        })
        .collect()
}

/// Park-like layout: many urban clusters whose populations follow a power
/// law, plus a thin uniform background.
#[derive(Debug, Clone)]
pub(crate) struct ParksParams {
    centers: Vec<Point>,
    radii: Vec<f64>,
    /// Cumulative distribution over clusters (power-law weights).
    cdf: Vec<f64>,
}

pub(crate) fn parks_params(bbox: Rect, seed: u64) -> ParksParams {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9A55_77A2);
    let diag = (bbox.width().powi(2) + bbox.height().powi(2)).sqrt();
    let k = 120usize;
    let centers = (0..k)
        .map(|_| {
            Point::new(
                rng.gen_range(bbox.min_x..bbox.max_x),
                rng.gen_range(bbox.min_y..bbox.max_y),
            )
        })
        .collect();
    let radii = (0..k)
        .map(|_| rng.gen_range(diag / 500.0..diag / 80.0))
        .collect();
    // Zipf-like weights: w_i ∝ 1 / (i+1)^0.9.
    let weights: Vec<f64> = (0..k).map(|i| 1.0 / (i as f64 + 1.0).powf(0.9)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    let cdf = weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect();
    ParksParams {
        centers,
        radii,
        cdf,
    }
}

pub(crate) fn parks_partition(bbox: Rect, params: &ParksParams, n: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.9) {
                let u: f64 = rng.gen_range(0.0..1.0);
                let c = params
                    .cdf
                    .partition_point(|&x| x < u)
                    .min(params.centers.len() - 1);
                gaussian_point(&mut rng, bbox, params.centers[c], params.radii[c])
            } else {
                Point::new(
                    rng.gen_range(bbox.min_x..bbox.max_x),
                    rng.gen_range(bbox.min_y..bbox.max_y),
                )
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbox() -> Rect {
        Rect::new(-124.85, 24.40, -66.89, 49.38)
    }

    #[test]
    fn gaussian_params_match_paper_spec() {
        let p = gaussian_cluster_params(bbox(), 30, 7);
        assert_eq!(p.centers.len(), 30);
        assert_eq!(p.sigmas.len(), 30);
        for &s in &p.sigmas {
            assert!((0.1..0.8).contains(&s));
        }
        for c in &p.centers {
            assert!(bbox().contains(*c));
        }
    }

    #[test]
    fn all_generators_stay_in_bbox() {
        let b = bbox();
        let gp = gaussian_cluster_params(b, 30, 1);
        let hp = hydro_params(b, 2);
        let pp = parks_params(b, 3);
        for pts in [
            gaussian_partition(b, &gp, 2000, 10),
            uniform_partition(b, 2000, 11),
            hydrography_partition(b, &hp, 2000, 12),
            parks_partition(b, &pp, 2000, 13),
        ] {
            assert_eq!(pts.len(), 2000);
            for p in pts {
                assert!(b.contains(p), "{p:?} escaped bbox");
                assert!(p.is_finite());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let b = bbox();
        let gp = gaussian_cluster_params(b, 30, 5);
        let a = gaussian_partition(b, &gp, 500, 42);
        let c = gaussian_partition(b, &gp, 500, 42);
        assert_eq!(a, c);
        let d = gaussian_partition(b, &gp, 500, 43);
        assert_ne!(a, d);
    }

    #[test]
    fn std_normal_has_sane_moments() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| std_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn skewed_generators_are_actually_skewed() {
        // Split the bbox into a 10×10 grid and compare max/mean occupancy:
        // clustered data must be far from uniform.
        let b = bbox();
        let occupancy = |pts: &[Point]| -> f64 {
            let mut counts = [0u32; 100];
            for p in pts {
                let cx = (((p.x - b.min_x) / b.width() * 10.0) as usize).min(9);
                let cy = (((p.y - b.min_y) / b.height() * 10.0) as usize).min(9);
                counts[cy * 10 + cx] += 1;
            }
            let max = *counts.iter().max().unwrap() as f64;
            max / (pts.len() as f64 / 100.0)
        };
        let gp = gaussian_cluster_params(b, 30, 21);
        let hp = hydro_params(b, 22);
        let pp = parks_params(b, 23);
        let uni = occupancy(&uniform_partition(b, 20_000, 1));
        assert!(uni < 2.0, "uniform occupancy ratio {uni}");
        for (name, pts) in [
            ("gaussian", gaussian_partition(b, &gp, 20_000, 2)),
            ("hydro", hydrography_partition(b, &hp, 20_000, 3)),
            ("parks", parks_partition(b, &pp, 20_000, 4)),
        ] {
            let ratio = occupancy(&pts);
            assert!(ratio > 3.0, "{name} not skewed enough: ratio {ratio}");
        }
    }
}
