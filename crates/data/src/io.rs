use asj_geom::Point;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Writes points as `id,x,y` CSV lines — the raw text format the paper's
/// pipeline loads from HDFS (`sc.textFile(path).map(line → tup)`).
pub fn write_points_csv(path: &Path, points: &[Point]) -> io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    for (id, p) in points.iter().enumerate() {
        writeln!(out, "{id},{},{}", p.x, p.y)?;
    }
    out.flush()
}

/// Reads `id,x,y` CSV lines back into `(id, point)` tuples.
///
/// Malformed lines are reported as errors with their line number — a corrupt
/// record should fail loudly rather than silently skew a join result.
pub fn read_points_csv(path: &Path) -> io::Result<Vec<(u64, Point)>> {
    let file = std::fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    let mut out = Vec::new();
    let mut line = String::new();
    let mut lines = reader.lines();
    let mut lineno = 0usize;
    loop {
        lineno += 1;
        line.clear();
        match lines.next() {
            None => break,
            Some(l) => line.push_str(&l?),
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.splitn(3, ',');
        let parse = |s: Option<&str>, what: &str| -> io::Result<f64> {
            s.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}: missing {what}"),
                )
            })?
            .trim()
            .parse::<f64>()
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}: bad {what}: {e}"),
                )
            })
        };
        let id = parse(fields.next(), "id")? as u64;
        let x = parse(fields.next(), "x")?;
        let y = parse(fields.next(), "y")?;
        if !x.is_finite() || !y.is_finite() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {lineno}: non-finite coordinate"),
            ));
        }
        out.push((id, Point::new(x, y)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("asj-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip() {
        let path = tmpfile("roundtrip.csv");
        let pts = vec![
            Point::new(1.5, -2.25),
            Point::new(0.0, 0.0),
            Point::new(-100.0, 49.0),
        ];
        write_points_csv(&path, &pts).unwrap();
        let back = read_points_csv(&path).unwrap();
        assert_eq!(back.len(), 3);
        for (i, (id, p)) in back.iter().enumerate() {
            assert_eq!(*id, i as u64);
            assert_eq!(*p, pts[i]);
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_lines_are_skipped() {
        let path = tmpfile("blank.csv");
        std::fs::write(&path, "0,1.0,2.0\n\n1,3.0,4.0\n").unwrap();
        let back = read_points_csv(&path).unwrap();
        assert_eq!(back.len(), 2);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn malformed_line_reports_position() {
        let path = tmpfile("bad.csv");
        std::fs::write(&path, "0,1.0,2.0\n1,oops,4.0\n").unwrap();
        let err = read_points_csv(&path).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn non_finite_rejected() {
        let path = tmpfile("inf.csv");
        std::fs::write(&path, "0,inf,2.0\n").unwrap();
        assert!(read_points_csv(&path).is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_field_rejected() {
        let path = tmpfile("short.csv");
        std::fs::write(&path, "0,1.0\n").unwrap();
        let err = read_points_csv(&path).unwrap_err();
        assert!(err.to_string().contains("missing y"), "{err}");
        std::fs::remove_file(path).unwrap();
    }
}
