use crate::generators::{
    gaussian_cluster_params_scaled, gaussian_partition, hydro_params, hydrography_partition,
    parks_params, parks_partition, uniform_partition,
};
use asj_geom::{Point, Rect};

/// Minimum bounding rectangle of the paper's datasets (continental United
/// States, the extent of TIGER and the OSM extracts; the synthetic sets are
/// generated in the same MBR, §7.1).
pub const PAPER_BBOX: Rect = Rect {
    min_x: -124.85,
    min_y: 24.40,
    max_x: -66.89,
    max_y: 49.38,
};

/// Distribution family of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenKind {
    /// 30 Gaussian clusters, σ ∈ [0.1, 0.8] — the paper's SYNTHETIC/Gaussian.
    GaussianClusters,
    /// River polylines + lake blobs — stand-in for TIGER/Area Hydrography.
    Hydrography,
    /// Power-law urban clusters — stand-in for OSM/Parks.
    Parks,
    /// Uniform background (tests/ablations only).
    Uniform,
}

/// A named, reproducible dataset: distribution, cardinality and seed.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Codename used in the paper's tables (R1, R2, S1, S2).
    pub name: &'static str,
    pub kind: GenKind,
    pub cardinality: usize,
    pub seed: u64,
    pub bbox: Rect,
    /// Scale applied to the Gaussian clusters' σ range (see
    /// [`Catalog::sigma_scale_for`]); 1.0 reproduces the paper's [0.1, 0.8].
    pub sigma_scale: f64,
}

impl DatasetSpec {
    /// Points of partition `part` out of `parts` (cardinality is split as
    /// evenly as possible; earlier partitions take the remainder).
    /// Deterministic: the same `(spec, part, parts)` always yields the same
    /// points, and the union over partitions is the dataset.
    pub fn partition_points(&self, part: usize, parts: usize) -> Vec<Point> {
        assert!(part < parts, "partition index out of range");
        let base = self.cardinality / parts;
        let extra = self.cardinality % parts;
        let n = base + usize::from(part < extra);
        let seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(part as u64);
        match self.kind {
            GenKind::GaussianClusters => {
                let params =
                    gaussian_cluster_params_scaled(self.bbox, 30, self.seed, self.sigma_scale);
                gaussian_partition(self.bbox, &params, n, seed)
            }
            GenKind::Hydrography => {
                let params = hydro_params(self.bbox, self.seed);
                hydrography_partition(self.bbox, &params, n, seed)
            }
            GenKind::Parks => {
                let params = parks_params(self.bbox, self.seed);
                parks_partition(self.bbox, &params, n, seed)
            }
            GenKind::Uniform => uniform_partition(self.bbox, n, seed),
        }
    }

    /// The whole dataset, generated in one piece.
    pub fn points(&self) -> Vec<Point> {
        self.partition_points(0, 1)
    }

    /// Same dataset scaled to a different cardinality.
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        DatasetSpec {
            cardinality: (self.cardinality as f64 * factor).round() as usize,
            ..self.clone()
        }
    }
}

/// The four datasets of Table 2, scaled down from the paper's cardinalities.
///
/// `base` is the cardinality of the synthetic sets (the paper's 100 M); the
/// real-data stand-ins keep the paper's ratios: |R1|/|S1| = 0.941,
/// |R2|/|S1| = 0.427.
///
/// # Example
///
/// ```
/// use asj_data::Catalog;
///
/// let catalog = Catalog::new(10_000);
/// let s1 = catalog.s1.points();
/// assert_eq!(s1.len(), 10_000);
/// assert!(s1.iter().all(|p| catalog.s1.bbox.contains(*p)));
/// // Deterministic: rebuilding yields identical data.
/// assert_eq!(Catalog::new(10_000).s1.points(), s1);
/// ```
#[derive(Debug, Clone)]
pub struct Catalog {
    pub r1: DatasetSpec,
    pub r2: DatasetSpec,
    pub s1: DatasetSpec,
    pub s2: DatasetSpec,
}

impl Catalog {
    /// σ scale for a downscaled reproduction: with `base` points instead of
    /// the paper's 100 M, ε is scaled by `sqrt(100 M / base)` to preserve
    /// points-per-cell; scaling σ by the *fourth root* (the geometric mean
    /// between keeping σ/world and keeping σ/cell constant) keeps clusters
    /// both clearly skewed and spanning multiple cells, as in the paper.
    pub fn sigma_scale_for(base: usize) -> f64 {
        assert!(base > 0);
        (100_000_000.0 / base as f64).powf(0.08)
    }

    pub fn new(base: usize) -> Self {
        let bbox = PAPER_BBOX;
        let sigma_scale = Self::sigma_scale_for(base);
        Catalog {
            r1: DatasetSpec {
                name: "R1",
                kind: GenKind::Hydrography,
                cardinality: (base as f64 * 0.941) as usize,
                seed: 101,
                bbox,
                sigma_scale,
            },
            r2: DatasetSpec {
                name: "R2",
                kind: GenKind::Parks,
                cardinality: (base as f64 * 0.427) as usize,
                seed: 202,
                bbox,
                sigma_scale,
            },
            s1: DatasetSpec {
                name: "S1",
                kind: GenKind::GaussianClusters,
                cardinality: base,
                seed: 303,
                bbox,
                sigma_scale,
            },
            s2: DatasetSpec {
                name: "S2",
                kind: GenKind::GaussianClusters,
                cardinality: base,
                seed: 404,
                bbox,
                sigma_scale,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_preserves_paper_ratios() {
        let c = Catalog::new(100_000);
        assert_eq!(c.s1.cardinality, 100_000);
        assert_eq!(c.s2.cardinality, 100_000);
        assert_eq!(c.r1.cardinality, 94_100);
        assert_eq!(c.r2.cardinality, 42_700);
        // S1 and S2 differ (different seeds).
        assert_ne!(c.s1.points()[..50], c.s2.points()[..50]);
    }

    #[test]
    fn partitioned_generation_covers_cardinality() {
        let c = Catalog::new(10_000);
        for spec in [&c.r1, &c.r2, &c.s1] {
            let total: usize = (0..8).map(|p| spec.partition_points(p, 8).len()).sum();
            assert_eq!(total, spec.cardinality, "{}", spec.name);
        }
    }

    #[test]
    fn partitions_are_deterministic_and_distinct() {
        let c = Catalog::new(10_000);
        let a = c.s1.partition_points(3, 8);
        let b = c.s1.partition_points(3, 8);
        assert_eq!(a, b);
        let other = c.s1.partition_points(4, 8);
        assert_ne!(a[..10], other[..10]);
    }

    #[test]
    fn scaled_changes_only_cardinality() {
        let c = Catalog::new(10_000);
        let s = c.s1.scaled(4.0);
        assert_eq!(s.cardinality, 40_000);
        assert_eq!(s.seed, c.s1.seed);
        // The cluster layout (derived from the seed) is unchanged: scaling
        // the data multiplies density, not geometry.
        let small = c.s1.points();
        let big = s.points();
        assert_eq!(small.len() * 4, big.len());
    }

    #[test]
    fn paper_bbox_is_continental_us() {
        assert!(PAPER_BBOX.width() > 50.0 && PAPER_BBOX.height() > 20.0);
        assert!(PAPER_BBOX.contains(Point::new(-100.0, 40.0)));
    }
}
