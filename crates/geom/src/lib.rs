//! Geometry primitives shared by every layer of the adaptive-replication
//! spatial-join stack.
//!
//! The ε-distance join `R ⋈ε S` (Definition 3.1 of the paper) operates on
//! 2-dimensional points with Euclidean distance. Everything in this crate is
//! deliberately small and allocation-free: these types sit on the innermost
//! loops of the join kernels, so they are `Copy`, `#[inline]`-friendly and
//! compare squared distances to avoid `sqrt` in hot paths.

mod point;
mod rect;
mod segment;
mod shape;

pub use point::Point;
pub use rect::Rect;
pub use segment::Segment;
pub use shape::{Polygon, Polyline, Shape};

/// Strict total order over `f64` values that never panics.
///
/// All coordinates flowing through the system are produced by our own
/// generators or parsers and are finite; NaNs are ordered last so that a
/// corrupted record cannot abort a multi-minute join job inside a sort.
#[inline]
pub fn total_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

/// Returns `true` when the two points are within distance `eps`
/// (inclusive, as in Definition 3.1: `d(r, s) <= ε`).
#[inline]
pub fn within_eps(a: Point, b: Point, eps: f64) -> bool {
    a.dist2(b) <= eps * eps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_eps_is_inclusive() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!(within_eps(a, b, 5.0));
        assert!(!within_eps(a, b, 4.999_999));
    }

    #[test]
    fn total_cmp_orders_nan_last() {
        let mut v = [f64::NAN, 1.0, -2.0];
        v.sort_by(|a, b| total_cmp(*a, *b));
        assert_eq!(v[0], -2.0);
        assert_eq!(v[1], 1.0);
        assert!(v[2].is_nan());
    }
}
