/// A 2-dimensional point with `f64` coordinates.
///
/// Points are the only geometry the ε-distance join of the paper operates on
/// (extension to polygons/polylines is listed as future work in §8).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Hot-loop form: callers compare against `ε²` instead of taking a root.
    #[inline]
    pub fn dist2(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Chebyshev (L∞) distance; used when reasoning about grid squares, e.g.
    /// membership in the ε×ε merged duplicate-prone square of a corner.
    #[inline]
    pub fn linf_dist(self, other: Point) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Both coordinates finite (not NaN / ±∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dist_matches_pythagoras() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist2(b), 25.0);
    }

    #[test]
    fn linf_is_max_axis_gap() {
        let a = Point::new(0.0, 0.0);
        assert_eq!(a.linf_dist(Point::new(3.0, -7.0)), 7.0);
        assert_eq!(a.linf_dist(Point::new(-9.0, 2.0)), 9.0);
    }

    #[test]
    fn finite_detects_nan_and_inf() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }

    proptest! {
        #[test]
        fn dist_is_symmetric(ax in -1e3f64..1e3, ay in -1e3f64..1e3,
                             bx in -1e3f64..1e3, by in -1e3f64..1e3) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert_eq!(a.dist2(b), b.dist2(a));
        }

        #[test]
        fn triangle_inequality(ax in -1e3f64..1e3, ay in -1e3f64..1e3,
                               bx in -1e3f64..1e3, by in -1e3f64..1e3,
                               cx in -1e3f64..1e3, cy in -1e3f64..1e3) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-9);
        }

        #[test]
        fn linf_bounds_euclidean(ax in -1e3f64..1e3, ay in -1e3f64..1e3,
                                 bx in -1e3f64..1e3, by in -1e3f64..1e3) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let linf = a.linf_dist(b);
            prop_assert!(linf <= a.dist(b) + 1e-12);
            prop_assert!(a.dist(b) <= linf * 2f64.sqrt() + 1e-9);
        }
    }
}
