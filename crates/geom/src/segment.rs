use crate::{Point, Rect};

/// A line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

impl Segment {
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Axis-aligned bounding box.
    pub fn envelope(&self) -> Rect {
        let mut r = Rect::from_point(self.a);
        r.extend(self.b);
        r
    }

    /// Squared distance from `p` to the closest point of the segment.
    pub fn dist2_to_point(&self, p: Point) -> f64 {
        let dx = self.b.x - self.a.x;
        let dy = self.b.y - self.a.y;
        let len2 = dx * dx + dy * dy;
        if len2 == 0.0 {
            return self.a.dist2(p);
        }
        let t = (((p.x - self.a.x) * dx + (p.y - self.a.y) * dy) / len2).clamp(0.0, 1.0);
        let q = Point::new(self.a.x + t * dx, self.a.y + t * dy);
        q.dist2(p)
    }

    /// Orientation of the triple `(a, b, c)`: >0 counter-clockwise,
    /// <0 clockwise, 0 collinear.
    fn orient(a: Point, b: Point, c: Point) -> f64 {
        (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    }

    /// Whether the two segments intersect (including touching endpoints and
    /// collinear overlap).
    pub fn intersects(&self, other: &Segment) -> bool {
        let d1 = Self::orient(other.a, other.b, self.a);
        let d2 = Self::orient(other.a, other.b, self.b);
        let d3 = Self::orient(self.a, self.b, other.a);
        let d4 = Self::orient(self.a, self.b, other.b);
        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        let on = |p: Point, s: &Segment, d: f64| -> bool {
            d == 0.0
                && p.x >= s.a.x.min(s.b.x)
                && p.x <= s.a.x.max(s.b.x)
                && p.y >= s.a.y.min(s.b.y)
                && p.y <= s.a.y.max(s.b.y)
        };
        on(self.a, other, d1)
            || on(self.b, other, d2)
            || on(other.a, self, d3)
            || on(other.b, self, d4)
    }

    /// Squared distance between two segments (0 when they intersect).
    pub fn dist2_to_segment(&self, other: &Segment) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        self.dist2_to_point(other.a)
            .min(self.dist2_to_point(other.b))
            .min(other.dist2_to_point(self.a))
            .min(other.dist2_to_point(self.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn point_distance_projection_cases() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        // Projects onto the interior.
        assert_eq!(s.dist2_to_point(Point::new(5.0, 3.0)), 9.0);
        // Clamps to the endpoints.
        assert_eq!(s.dist2_to_point(Point::new(-3.0, 4.0)), 25.0);
        assert_eq!(s.dist2_to_point(Point::new(13.0, 4.0)), 25.0);
        // On the segment.
        assert_eq!(s.dist2_to_point(Point::new(7.0, 0.0)), 0.0);
    }

    #[test]
    fn degenerate_segment_is_a_point() {
        let s = seg(2.0, 2.0, 2.0, 2.0);
        assert_eq!(s.dist2_to_point(Point::new(5.0, 6.0)), 25.0);
        assert_eq!(s.dist2_to_segment(&seg(2.0, 2.0, 2.0, 2.0)), 0.0);
    }

    #[test]
    fn crossing_segments_intersect() {
        let a = seg(0.0, 0.0, 10.0, 10.0);
        let b = seg(0.0, 10.0, 10.0, 0.0);
        assert!(a.intersects(&b));
        assert_eq!(a.dist2_to_segment(&b), 0.0);
    }

    #[test]
    fn touching_endpoint_counts_as_intersection() {
        let a = seg(0.0, 0.0, 5.0, 5.0);
        let b = seg(5.0, 5.0, 9.0, 0.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn collinear_overlap_and_gap() {
        let a = seg(0.0, 0.0, 5.0, 0.0);
        let overlap = seg(3.0, 0.0, 8.0, 0.0);
        assert!(a.intersects(&overlap));
        let gap = seg(6.0, 0.0, 9.0, 0.0);
        assert!(!a.intersects(&gap));
        assert_eq!(a.dist2_to_segment(&gap), 1.0);
    }

    #[test]
    fn parallel_segments_distance() {
        let a = seg(0.0, 0.0, 10.0, 0.0);
        let b = seg(0.0, 3.0, 10.0, 3.0);
        assert!(!a.intersects(&b));
        assert_eq!(a.dist2_to_segment(&b), 9.0);
    }

    #[test]
    fn envelope_covers_both_endpoints() {
        let s = seg(3.0, -1.0, -2.0, 4.0);
        let e = s.envelope();
        assert_eq!(e, Rect::new(-2.0, -1.0, 3.0, 4.0));
    }

    proptest! {
        /// Segment distance is symmetric and bounded by endpoint distances.
        #[test]
        fn seg_distance_symmetric(
            ax in -10.0f64..10.0, ay in -10.0f64..10.0,
            bx in -10.0f64..10.0, by in -10.0f64..10.0,
            cx in -10.0f64..10.0, cy in -10.0f64..10.0,
            dx in -10.0f64..10.0, dy in -10.0f64..10.0,
        ) {
            let s1 = seg(ax, ay, bx, by);
            let s2 = seg(cx, cy, dx, dy);
            let d12 = s1.dist2_to_segment(&s2);
            let d21 = s2.dist2_to_segment(&s1);
            prop_assert!((d12 - d21).abs() < 1e-9);
            prop_assert!(d12 <= s1.a.dist2(s2.a) + 1e-9);
        }

        /// Distance to a sampled point on the segment is never below the
        /// reported segment distance.
        #[test]
        fn point_distance_is_minimum(
            ax in -10.0f64..10.0, ay in -10.0f64..10.0,
            bx in -10.0f64..10.0, by in -10.0f64..10.0,
            px in -10.0f64..10.0, py in -10.0f64..10.0,
            t in 0.0f64..1.0,
        ) {
            let s = seg(ax, ay, bx, by);
            let p = Point::new(px, py);
            let d = s.dist2_to_point(p);
            let on = Point::new(ax + t * (bx - ax), ay + t * (by - ay));
            prop_assert!(on.dist2(p) + 1e-9 >= d);
        }
    }
}
