use crate::{Point, Rect, Segment};

/// A polyline (open chain of segments), e.g. a river or a road.
#[derive(Debug, Clone, PartialEq)]
pub struct Polyline {
    points: Vec<Point>,
}

impl Polyline {
    /// # Panics
    /// Panics if fewer than 2 vertices are given.
    pub fn new(points: Vec<Point>) -> Self {
        assert!(points.len() >= 2, "a polyline needs at least 2 vertices");
        Polyline { points }
    }

    pub fn points(&self) -> &[Point] {
        &self.points
    }

    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    pub fn envelope(&self) -> Rect {
        let mut r = Rect::from_point(self.points[0]);
        for &p in &self.points[1..] {
            r.extend(p);
        }
        r
    }

    pub fn dist2_to_point(&self, p: Point) -> f64 {
        self.segments()
            .map(|s| s.dist2_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    pub fn dist2_to_polyline(&self, other: &Polyline) -> f64 {
        let mut best = f64::INFINITY;
        for s1 in self.segments() {
            for s2 in other.segments() {
                best = best.min(s1.dist2_to_segment(&s2));
                if best == 0.0 {
                    return 0.0;
                }
            }
        }
        best
    }
}

/// A simple polygon given as a ring of vertices in order (the closing edge
/// from the last vertex back to the first is implicit). Assumed
/// non-self-intersecting.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    ring: Vec<Point>,
}

impl Polygon {
    /// # Panics
    /// Panics if fewer than 3 vertices are given.
    pub fn new(ring: Vec<Point>) -> Self {
        assert!(ring.len() >= 3, "a polygon needs at least 3 vertices");
        Polygon { ring }
    }

    /// Axis-aligned rectangle as a polygon.
    pub fn from_rect(r: Rect) -> Self {
        Polygon::new(vec![
            Point::new(r.min_x, r.min_y),
            Point::new(r.max_x, r.min_y),
            Point::new(r.max_x, r.max_y),
            Point::new(r.min_x, r.max_y),
        ])
    }

    pub fn ring(&self) -> &[Point] {
        &self.ring
    }

    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.ring.len();
        (0..n).map(move |i| Segment::new(self.ring[i], self.ring[(i + 1) % n]))
    }

    pub fn envelope(&self) -> Rect {
        let mut r = Rect::from_point(self.ring[0]);
        for &p in &self.ring[1..] {
            r.extend(p);
        }
        r
    }

    /// Even-odd (ray casting) containment test; boundary points count as
    /// inside for distance purposes (their boundary distance is 0 anyway).
    pub fn contains(&self, p: Point) -> bool {
        let n = self.ring.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let (pi, pj) = (self.ring[i], self.ring[j]);
            if ((pi.y > p.y) != (pj.y > p.y))
                && (p.x < (pj.x - pi.x) * (p.y - pi.y) / (pj.y - pi.y) + pi.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Squared distance from a point (0 when inside or on the boundary).
    pub fn dist2_to_point(&self, p: Point) -> f64 {
        if self.contains(p) {
            return 0.0;
        }
        self.edges()
            .map(|e| e.dist2_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Squared distance to a polyline (0 when they intersect or the line
    /// runs inside the polygon).
    pub fn dist2_to_polyline(&self, line: &Polyline) -> f64 {
        if line.points().iter().any(|&p| self.contains(p)) {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for e in self.edges() {
            for s in line.segments() {
                best = best.min(e.dist2_to_segment(&s));
                if best == 0.0 {
                    return 0.0;
                }
            }
        }
        best
    }

    /// Squared distance to another polygon (0 when they intersect or one
    /// contains the other).
    pub fn dist2_to_polygon(&self, other: &Polygon) -> f64 {
        if self.contains(other.ring[0]) || other.contains(self.ring[0]) {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for a in self.edges() {
            for b in other.edges() {
                best = best.min(a.dist2_to_segment(&b));
                if best == 0.0 {
                    return 0.0;
                }
            }
        }
        best
    }
}

/// Any spatial object the extent join supports — the generalization beyond
/// points the paper lists as future work (§8).
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    Point(Point),
    Polyline(Polyline),
    Polygon(Polygon),
}

impl Shape {
    pub fn envelope(&self) -> Rect {
        match self {
            Shape::Point(p) => Rect::from_point(*p),
            Shape::Polyline(l) => l.envelope(),
            Shape::Polygon(g) => g.envelope(),
        }
    }

    /// Squared distance between two shapes (0 on intersection/containment).
    pub fn dist2(&self, other: &Shape) -> f64 {
        use Shape::*;
        match (self, other) {
            (Point(a), Point(b)) => a.dist2(*b),
            (Point(p), Polyline(l)) | (Polyline(l), Point(p)) => l.dist2_to_point(*p),
            (Point(p), Polygon(g)) | (Polygon(g), Point(p)) => g.dist2_to_point(*p),
            (Polyline(a), Polyline(b)) => a.dist2_to_polyline(b),
            (Polyline(l), Polygon(g)) | (Polygon(g), Polyline(l)) => g.dist2_to_polyline(l),
            (Polygon(a), Polygon(b)) => a.dist2_to_polygon(b),
        }
    }

    /// Whether the shapes are within distance `eps` (inclusive), with an
    /// envelope pre-filter.
    pub fn within_eps(&self, other: &Shape, eps: f64) -> bool {
        let e2 = eps * eps;
        if self.envelope().expand(eps).intersects(&other.envelope()) {
            self.dist2(other) <= e2
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x: f64, y: f64, side: f64) -> Polygon {
        Polygon::from_rect(Rect::new(x, y, x + side, y + side))
    }

    #[test]
    fn polyline_basics() {
        let l = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ]);
        assert_eq!(l.segments().count(), 2);
        assert_eq!(l.envelope(), Rect::new(0.0, 0.0, 10.0, 10.0));
        assert_eq!(l.dist2_to_point(Point::new(5.0, 4.0)), 16.0);
        // Closest to the vertical arm.
        assert_eq!(l.dist2_to_point(Point::new(12.0, 5.0)), 4.0);
    }

    #[test]
    fn polyline_to_polyline() {
        let a = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let b = Polyline::new(vec![Point::new(0.0, 3.0), Point::new(10.0, 3.0)]);
        assert_eq!(a.dist2_to_polyline(&b), 9.0);
        let crossing = Polyline::new(vec![Point::new(5.0, -1.0), Point::new(5.0, 1.0)]);
        assert_eq!(a.dist2_to_polyline(&crossing), 0.0);
    }

    #[test]
    fn polygon_containment() {
        let g = square(0.0, 0.0, 10.0);
        assert!(g.contains(Point::new(5.0, 5.0)));
        assert!(!g.contains(Point::new(15.0, 5.0)));
        assert!(!g.contains(Point::new(-0.1, 5.0)));
        assert_eq!(g.dist2_to_point(Point::new(5.0, 5.0)), 0.0);
        assert_eq!(g.dist2_to_point(Point::new(13.0, 5.0)), 9.0);
        // Corner distance.
        assert_eq!(g.dist2_to_point(Point::new(13.0, 14.0)), 25.0);
    }

    #[test]
    fn concave_polygon_containment() {
        // A "C" shape: the notch on the right is outside.
        let g = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 3.0),
            Point::new(3.0, 3.0),
            Point::new(3.0, 7.0),
            Point::new(10.0, 7.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ]);
        assert!(g.contains(Point::new(1.5, 5.0))); // spine
        assert!(!g.contains(Point::new(7.0, 5.0))); // notch
        assert!(g.contains(Point::new(7.0, 1.5))); // lower arm
        assert!((g.dist2_to_point(Point::new(7.0, 5.0)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn polygon_to_polygon() {
        let a = square(0.0, 0.0, 4.0);
        let b = square(7.0, 0.0, 4.0);
        assert_eq!(a.dist2_to_polygon(&b), 9.0);
        let overlapping = square(3.0, 3.0, 4.0);
        assert_eq!(a.dist2_to_polygon(&overlapping), 0.0);
        // Containment without edge intersection.
        let outer = square(-1.0, -1.0, 20.0);
        assert_eq!(outer.dist2_to_polygon(&a), 0.0);
        assert_eq!(a.dist2_to_polygon(&outer), 0.0);
    }

    #[test]
    fn polygon_to_polyline() {
        let g = square(0.0, 0.0, 4.0);
        let near = Polyline::new(vec![Point::new(6.0, 0.0), Point::new(6.0, 4.0)]);
        assert_eq!(g.dist2_to_polyline(&near), 4.0);
        let inside = Polyline::new(vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)]);
        assert_eq!(g.dist2_to_polyline(&inside), 0.0);
        let crossing = Polyline::new(vec![Point::new(-1.0, 2.0), Point::new(5.0, 2.0)]);
        assert_eq!(g.dist2_to_polyline(&crossing), 0.0);
    }

    #[test]
    fn shape_dispatch_is_symmetric() {
        let shapes = vec![
            Shape::Point(Point::new(1.0, 1.0)),
            Shape::Polyline(Polyline::new(vec![
                Point::new(3.0, 0.0),
                Point::new(3.0, 5.0),
            ])),
            Shape::Polygon(square(6.0, 0.0, 2.0)),
        ];
        for a in &shapes {
            for b in &shapes {
                assert!((a.dist2(b) - b.dist2(a)).abs() < 1e-9);
            }
        }
        // Spot checks: point to vertical line at x=3 is 2 away.
        assert_eq!(shapes[0].dist2(&shapes[1]), 4.0);
        // Line x=3 to square starting at x=6 is 3 away.
        assert_eq!(shapes[1].dist2(&shapes[2]), 9.0);
    }

    #[test]
    fn within_eps_uses_envelope_prefilter() {
        let a = Shape::Point(Point::new(0.0, 0.0));
        let b = Shape::Point(Point::new(3.0, 4.0));
        assert!(a.within_eps(&b, 5.0));
        assert!(!a.within_eps(&b, 4.9));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn polyline_rejects_single_point() {
        let _ = Polyline::new(vec![Point::new(0.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn polygon_rejects_degenerate_ring() {
        let _ = Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
    }
}

#[cfg(test)]
mod sampled_distance_properties {
    use super::*;
    use proptest::prelude::*;

    /// Dense parametric samples of a polyline.
    fn sample_polyline(l: &Polyline, steps: usize) -> Vec<Point> {
        let mut out = Vec::new();
        for seg in l.segments() {
            for i in 0..=steps {
                let t = i as f64 / steps as f64;
                out.push(Point::new(
                    seg.a.x + t * (seg.b.x - seg.a.x),
                    seg.a.y + t * (seg.b.y - seg.a.y),
                ));
            }
        }
        out
    }

    fn arb_polyline() -> impl Strategy<Value = Polyline> {
        prop::collection::vec((-8.0f64..8.0, -8.0f64..8.0), 2..6)
            .prop_map(|pts| Polyline::new(pts.into_iter().map(|(x, y)| Point::new(x, y)).collect()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// No pair of sampled points may be closer than the reported
        /// polyline-polyline distance, and some sampled pair must come
        /// within a tolerance of it.
        #[test]
        fn polyline_distance_is_tight_lower_bound(a in arb_polyline(), b in arb_polyline()) {
            let d2 = a.dist2_to_polyline(&b);
            let sa = sample_polyline(&a, 24);
            let sb = sample_polyline(&b, 24);
            let mut best = f64::INFINITY;
            for &p in &sa {
                for &q in &sb {
                    best = best.min(p.dist2(q));
                }
            }
            prop_assert!(best + 1e-9 >= d2, "sampled pair beats reported distance");
            // Sampling at 1/24 resolution on segments of length <= ~22 means
            // the best sampled pair is within one step of the true minimum.
            let step = 22.0 / 24.0;
            let tol = (d2.sqrt() + 2.0 * step).powi(2);
            prop_assert!(best <= tol + 1e-9, "reported distance unreachable: {best} vs {d2}");
        }

        /// Point-polygon distance is zero exactly on containment, and always
        /// bounded by the distance to any ring vertex.
        #[test]
        fn polygon_point_distance_bounds(
            px in -10.0f64..10.0, py in -10.0f64..10.0,
            x in -5.0f64..5.0, y in -5.0f64..5.0, w in 0.5f64..4.0, h in 0.5f64..4.0,
        ) {
            let g = Polygon::from_rect(Rect::new(x, y, x + w, y + h));
            let p = Point::new(px, py);
            let d2 = g.dist2_to_point(p);
            prop_assert_eq!(d2 == 0.0, g.contains(p) || g.edges().any(|e| e.dist2_to_point(p) == 0.0));
            for v in g.ring() {
                prop_assert!(d2 <= v.dist2(p) + 1e-9);
            }
        }
    }
}
