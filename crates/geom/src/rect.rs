use crate::Point;

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]` (closed).
///
/// Used for the data-space MBR, grid cells, quadtree regions and R-tree
/// bounding boxes. `MINDIST(point, rect)` (the paper's replication predicate,
/// §3.2) is [`Rect::mindist`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle; panics in debug builds if the bounds are inverted.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "inverted rect bounds");
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// The degenerate rectangle covering exactly one point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect::new(p.x, p.y, p.x, p.y)
    }

    /// An "empty" rectangle suitable as the identity for [`Rect::union`].
    #[inline]
    pub fn empty() -> Self {
        Rect {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    #[inline]
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    #[inline]
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) * 0.5,
            (self.min_y + self.max_y) * 0.5,
        )
    }

    /// Closed containment test (boundary points are inside).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Half-open containment `[min, max)`, used by grid cells so that a point
    /// on a shared border belongs to exactly one cell.
    #[inline]
    pub fn contains_half_open(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x < self.max_x && p.y >= self.min_y && p.y < self.max_y
    }

    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Smallest rectangle covering both.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Grows the rectangle by `pad` on every side.
    #[inline]
    pub fn expand(&self, pad: f64) -> Rect {
        Rect {
            min_x: self.min_x - pad,
            min_y: self.min_y - pad,
            max_x: self.max_x + pad,
            max_y: self.max_y + pad,
        }
    }

    /// Extends the rectangle to cover `p`.
    #[inline]
    pub fn extend(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Squared `MINDIST(p, rect)`: the squared distance from `p` to the
    /// closest point of the rectangle (0 when `p` is inside).
    #[inline]
    pub fn mindist2(&self, p: Point) -> f64 {
        let dx = if p.x < self.min_x {
            self.min_x - p.x
        } else if p.x > self.max_x {
            p.x - self.max_x
        } else {
            0.0
        };
        let dy = if p.y < self.min_y {
            self.min_y - p.y
        } else if p.y > self.max_y {
            p.y - self.max_y
        } else {
            0.0
        };
        dx * dx + dy * dy
    }

    /// `MINDIST(p, rect)` — the replication predicate of the paper:
    /// a point `o` is a candidate for replication to cell `c` when
    /// `MINDIST(o, c) <= ε`.
    #[inline]
    pub fn mindist(&self, p: Point) -> f64 {
        self.mindist2(p).sqrt()
    }

    /// `true` when the ε-disk around `p` intersects the rectangle, i.e.
    /// `MINDIST(p, rect) <= eps`.
    #[inline]
    pub fn within_eps_of(&self, p: Point, eps: f64) -> bool {
        self.mindist2(p) <= eps * eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn contains_closed_vs_half_open() {
        let r = unit();
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(!r.contains_half_open(Point::new(1.0, 0.5)));
        assert!(r.contains_half_open(Point::new(0.0, 0.0)));
    }

    #[test]
    fn mindist_zero_inside() {
        assert_eq!(unit().mindist(Point::new(0.5, 0.5)), 0.0);
        assert_eq!(unit().mindist(Point::new(0.0, 1.0)), 0.0);
    }

    #[test]
    fn mindist_axis_and_corner() {
        let r = unit();
        assert_eq!(r.mindist(Point::new(2.0, 0.5)), 1.0);
        assert_eq!(r.mindist(Point::new(0.5, -2.0)), 2.0);
        // Corner case: distance to (1,1) from (4,5) is 5.
        assert_eq!(r.mindist(Point::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn union_and_empty_identity() {
        let e = Rect::empty();
        assert!(e.is_empty());
        let u = e.union(&unit());
        assert_eq!(u, unit());
    }

    #[test]
    fn expand_grows_every_side() {
        let r = unit().expand(0.5);
        assert_eq!(r, Rect::new(-0.5, -0.5, 1.5, 1.5));
    }

    #[test]
    fn extend_covers_point() {
        let mut r = Rect::from_point(Point::new(1.0, 1.0));
        r.extend(Point::new(-1.0, 3.0));
        assert_eq!(r, Rect::new(-1.0, 1.0, 1.0, 3.0));
    }

    #[test]
    fn intersects_shared_edge() {
        let a = unit();
        let b = Rect::new(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        let c = Rect::new(1.000001, 0.0, 2.0, 1.0);
        assert!(!a.intersects(&c));
    }

    proptest! {
        #[test]
        fn mindist_consistent_with_within_eps(
            px in -10.0f64..10.0, py in -10.0f64..10.0, eps in 0.0f64..5.0) {
            let r = unit();
            let p = Point::new(px, py);
            prop_assert_eq!(r.within_eps_of(p, eps), r.mindist(p) <= eps);
        }

        #[test]
        fn mindist_is_min_over_sampled_rect_points(
            px in -10.0f64..10.0, py in -10.0f64..10.0) {
            let r = unit();
            let p = Point::new(px, py);
            let md = r.mindist(p);
            // No sampled point of the rect may be closer than MINDIST.
            for i in 0..=10 {
                for j in 0..=10 {
                    let q = Point::new(i as f64 / 10.0, j as f64 / 10.0);
                    prop_assert!(p.dist(q) + 1e-12 >= md);
                }
            }
        }

        #[test]
        fn union_contains_both(ax in -5.0f64..5.0, ay in -5.0f64..5.0,
                               bx in -5.0f64..5.0, by in -5.0f64..5.0) {
            let a = Rect::from_point(Point::new(ax, ay));
            let b = Rect::from_point(Point::new(bx, by));
            let u = a.union(&b);
            prop_assert!(u.contains(Point::new(ax, ay)));
            prop_assert!(u.contains(Point::new(bx, by)));
        }
    }
}
