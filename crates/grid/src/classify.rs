use crate::{CellCoord, Dir, Grid, QuartetId};
use asj_geom::Point;

/// The replication-relevant area of a cell that a point falls into
/// (Figure 9 of the paper), together with the quartets whose *supplementary
/// areas* (Definition 4.10) may additionally contain the point.
///
/// With cell side `l > 2ε` a point is within ε of at most one vertical and at
/// most one horizontal cell boundary, so exactly three cases arise:
///
/// * [`AreaClass::Interior`] — farther than ε from every neighboring cell;
///   never replicated (Algorithm 2, line 3).
/// * [`AreaClass::PlainStrip`] — within ε of exactly one side-adjacent
///   neighbor (Algorithm 2, line 12). The point may also lie in a
///   supplementary area of up to two quartets: the ones whose reference
///   points are the endpoints of the shared boundary, when within `2ε`.
/// * [`AreaClass::CornerSquare`] — inside the ε×ε *merged duplicate-prone
///   square* at a quartet's reference point (Algorithm 2, line 5; §4.5.3);
///   may additionally lie in supplementary areas of the two quartets adjacent
///   along the two boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AreaClass {
    Interior,
    PlainStrip {
        /// Direction from the native cell to the neighbor within ε.
        dir: Dir,
        /// The single neighbor with `MINDIST ≤ ε`.
        neighbor: CellCoord,
        /// Quartets (boundary endpoints) whose reference point is within 2ε.
        sup_quartets: [Option<QuartetId>; 2],
    },
    CornerSquare {
        /// The quartet whose merged duplicate-prone area contains the point.
        quartet: QuartetId,
        /// The two adjacent quartets (`q'`, `q''` in Algorithm 2) whose
        /// reference point is within 2ε, if any.
        sup_quartets: [Option<QuartetId>; 2],
    },
}

impl Grid {
    /// Classifies `p` into a Figure-9 area of its native cell.
    ///
    /// Requires [`Grid::supports_agreements`]; in debug builds this is
    /// asserted.
    pub fn classify(&self, p: Point) -> AreaClass {
        self.classify_in_cell(p, self.cell_of(p))
    }

    /// [`Grid::classify`] with the native cell already computed.
    pub fn classify_in_cell(&self, p: Point, c: CellCoord) -> AreaClass {
        debug_assert!(self.supports_agreements());
        debug_assert!(self.cell_in_bounds(c));
        let eps = self.eps();
        let rect = self.cell_rect(c);

        // Distance to each cell boundary, only meaningful when a neighbor
        // exists on the other side. Clamp for points snapped into the grid
        // from slightly outside the bbox.
        let near_w = c.x > 0 && (p.x - rect.min_x) <= eps;
        let near_e = c.x + 1 < self.nx() && (rect.max_x - p.x) <= eps;
        let near_s = c.y > 0 && (p.y - rect.min_y) <= eps;
        let near_n = c.y + 1 < self.ny() && (rect.max_y - p.y) <= eps;
        debug_assert!(!(near_w && near_e), "cell side must exceed 2*eps");
        debug_assert!(!(near_s && near_n), "cell side must exceed 2*eps");

        let h = if near_w {
            Some(Dir::W)
        } else if near_e {
            Some(Dir::E)
        } else {
            None
        };
        let v = if near_s {
            Some(Dir::S)
        } else if near_n {
            Some(Dir::N)
        } else {
            None
        };

        match (h, v) {
            (None, None) => AreaClass::Interior,
            (Some(dh), Some(dv)) => {
                let qx = if dh == Dir::W { c.x } else { c.x + 1 };
                let qy = if dv == Dir::S { c.y } else { c.y + 1 };
                let quartet = QuartetId { x: qx, y: qy };
                debug_assert!(self.quartet_in_bounds(quartet));
                // Adjacent quartets: other end of the vertical boundary and
                // other end of the horizontal boundary.
                let qv = QuartetId {
                    x: qx,
                    y: if dv == Dir::S { c.y + 1 } else { c.y },
                };
                let qh = QuartetId {
                    x: if dh == Dir::W { c.x + 1 } else { c.x },
                    y: qy,
                };
                AreaClass::CornerSquare {
                    quartet,
                    sup_quartets: [self.sup_candidate(p, qv), self.sup_candidate(p, qh)],
                }
            }
            (Some(dh), None) => {
                let qx = if dh == Dir::W { c.x } else { c.x + 1 };
                let lo = QuartetId { x: qx, y: c.y };
                let hi = QuartetId { x: qx, y: c.y + 1 };
                AreaClass::PlainStrip {
                    dir: dh,
                    neighbor: c
                        .step(dh, self.nx(), self.ny())
                        .expect("near flag implies neighbor exists"),
                    sup_quartets: [self.sup_candidate(p, lo), self.sup_candidate(p, hi)],
                }
            }
            (None, Some(dv)) => {
                let qy = if dv == Dir::S { c.y } else { c.y + 1 };
                let lo = QuartetId { x: c.x, y: qy };
                let hi = QuartetId { x: c.x + 1, y: qy };
                AreaClass::PlainStrip {
                    dir: dv,
                    neighbor: c
                        .step(dv, self.nx(), self.ny())
                        .expect("near flag implies neighbor exists"),
                    sup_quartets: [self.sup_candidate(p, lo), self.sup_candidate(p, hi)],
                }
            }
        }
    }

    /// `q` as a supplementary-area candidate for `p`: must be a valid quartet
    /// with reference point within `2ε` of `p` (Definition 4.10).
    #[inline]
    fn sup_candidate(&self, p: Point, q: QuartetId) -> Option<QuartetId> {
        if !self.quartet_in_bounds(q) {
            return None;
        }
        let r = self.corner_point(q);
        let two_eps = 2.0 * self.eps();
        (p.dist2(r) <= two_eps * two_eps).then_some(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridSpec;
    use asj_geom::Rect;
    use proptest::prelude::*;

    fn grid() -> Grid {
        // 4×4 cells of side 2.5, ε = 1.
        Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0))
    }

    #[test]
    fn interior_point() {
        assert_eq!(grid().classify(Point::new(3.75, 3.75)), AreaClass::Interior);
    }

    #[test]
    fn plain_strip_west() {
        let g = grid();
        // Cell (1,1) spans [2.5,5.0]²; x=2.9 is within ε of the west
        // boundary, y=3.75 is > ε from both horizontal boundaries.
        match g.classify(Point::new(2.9, 3.75)) {
            AreaClass::PlainStrip {
                dir,
                neighbor,
                sup_quartets,
            } => {
                assert_eq!(dir, Dir::W);
                assert_eq!(neighbor, CellCoord { x: 0, y: 1 });
                // Corners (2.5,2.5) and (2.5,5.0) are both ~1.3 away ≤ 2ε.
                assert_eq!(sup_quartets[0], Some(QuartetId { x: 1, y: 1 }));
                assert_eq!(sup_quartets[1], Some(QuartetId { x: 1, y: 2 }));
            }
            other => panic!("expected plain strip, got {other:?}"),
        }
    }

    #[test]
    fn plain_strip_far_from_corners() {
        // Coarse cells (factor 5 ⇒ side 2.5 = 5ε) so that the midpoint of a
        // boundary is farther than 2ε from both of its corners.
        let g = Grid::new(GridSpec::with_factor(
            Rect::new(0.0, 0.0, 10.0, 10.0),
            0.5,
            5.0,
        ));
        assert_eq!(g.cell_side(), (2.5, 2.5));
        match g.classify(Point::new(2.6, 3.75)) {
            AreaClass::PlainStrip {
                dir, sup_quartets, ..
            } => {
                assert_eq!(dir, Dir::W);
                assert_eq!(sup_quartets, [None, None]);
            }
            other => panic!("expected plain strip, got {other:?}"),
        }
    }

    #[test]
    fn corner_square_identifies_quartet() {
        let g = grid();
        // Cell (1,1), near both west (x=2.6) and south (y=2.7) boundaries ⇒
        // quartet at corner (2.5, 2.5) = QuartetId {1,1}.
        match g.classify(Point::new(2.6, 2.7)) {
            AreaClass::CornerSquare {
                quartet,
                sup_quartets,
            } => {
                assert_eq!(quartet, QuartetId { x: 1, y: 1 });
                // Adjacent corners are at (2.5,5.0) and (5.0,2.5), both ~2.3
                // away > 2ε ⇒ no supplementary candidates.
                assert_eq!(sup_quartets, [None, None]);
            }
            other => panic!("expected corner square, got {other:?}"),
        }
    }

    #[test]
    fn corner_square_with_supplementary_candidates() {
        // Cells of side 2.2 (just above 2ε): adjacent corners lie within 2ε.
        let g = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 8.8, 8.8), 1.0));
        assert_eq!(g.nx(), 4);
        // Deep in the ε×ε square of corner (2.2, 2.2): 0.9 from both
        // boundaries, so the adjacent corners at (2.2, 4.4) and (4.4, 2.2)
        // are √(0.81 + 1.69) ≈ 1.58 ≤ 2ε away.
        match g.classify(Point::new(3.1, 3.1)) {
            AreaClass::CornerSquare {
                quartet,
                sup_quartets,
            } => {
                assert_eq!(quartet, QuartetId { x: 1, y: 1 });
                assert_eq!(sup_quartets[0], Some(QuartetId { x: 1, y: 2 }));
                assert_eq!(sup_quartets[1], Some(QuartetId { x: 2, y: 1 }));
            }
            other => panic!("expected corner square, got {other:?}"),
        }
    }

    #[test]
    fn grid_border_has_no_replication() {
        let g = grid();
        // Near the global west boundary: no neighbor exists there.
        assert_eq!(g.classify(Point::new(0.1, 3.75)), AreaClass::Interior);
        // Global corner.
        assert_eq!(g.classify(Point::new(0.1, 0.1)), AreaClass::Interior);
    }

    proptest! {
        /// Classification agrees with the raw MINDIST≤ε neighbor enumeration:
        /// Interior ⇔ 0 neighbors, PlainStrip ⇔ exactly 1, CornerSquare ⇔ 2–3.
        #[test]
        fn classes_match_neighbor_counts(px in 0.0f64..10.0, py in 0.0f64..10.0) {
            let g = grid();
            let p = Point::new(px, py);
            let mut neigh = Vec::new();
            g.push_cells_within_eps(p, &mut neigh);
            match g.classify(p) {
                AreaClass::Interior => prop_assert_eq!(neigh.len(), 0),
                AreaClass::PlainStrip { neighbor, .. } => {
                    prop_assert_eq!(neigh.clone(), vec![neighbor]);
                }
                AreaClass::CornerSquare { quartet, .. } => {
                    prop_assert!(neigh.len() == 2 || neigh.len() == 3, "{:?}", neigh);
                    // All neighbors belong to the quartet.
                    let cells = g.quartet_cells(quartet);
                    for n in &neigh {
                        prop_assert!(cells.contains(n));
                    }
                    // 3 neighbors iff the reference point is within ε.
                    let within = p.dist(g.corner_point(quartet)) <= g.eps();
                    prop_assert_eq!(neigh.len() == 3, within);
                }
            }
        }

        /// Supplementary candidates always carry a reference point within 2ε
        /// and are valid quartets.
        #[test]
        fn sup_candidates_within_two_eps(px in 0.0f64..10.0, py in 0.0f64..10.0) {
            let g = grid();
            let p = Point::new(px, py);
            let sups = match g.classify(p) {
                AreaClass::Interior => [None, None],
                AreaClass::PlainStrip { sup_quartets, .. } => sup_quartets,
                AreaClass::CornerSquare { sup_quartets, .. } => sup_quartets,
            };
            for q in sups.into_iter().flatten() {
                prop_assert!(g.quartet_in_bounds(q));
                prop_assert!(p.dist(g.corner_point(q)) <= 2.0 * g.eps() + 1e-12);
            }
        }
    }
}
