/// Grid-cell coordinates (column `x`, row `y`), zero-based from the
/// south-west corner of the data space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellCoord {
    pub x: u32,
    pub y: u32,
}

impl CellCoord {
    /// The neighboring cell in direction `d`, if it stays within a grid of
    /// `nx × ny` cells.
    #[inline]
    pub fn step(self, d: Dir, nx: u32, ny: u32) -> Option<CellCoord> {
        let (x, y) = match d {
            Dir::W => (self.x.checked_sub(1)?, self.y),
            Dir::E => (self.x + 1, self.y),
            Dir::S => (self.x, self.y.checked_sub(1)?),
            Dir::N => (self.x, self.y + 1),
        };
        (x < nx && y < ny).then_some(CellCoord { x, y })
    }
}

/// Identifier of a quartet of cells: the grid-interior corner (reference
/// point, §5.1) where the four cells touch. Corner `(x, y)` is the lattice
/// point between columns `x−1, x` and rows `y−1, y`; valid quartets have
/// `1 ≤ x ≤ nx−1` and `1 ≤ y ≤ ny−1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QuartetId {
    pub x: u32,
    pub y: u32,
}

/// One of the four axis directions from a cell to a side-adjacent neighbor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    W,
    E,
    S,
    N,
}

impl Dir {
    pub const ALL: [Dir; 4] = [Dir::W, Dir::E, Dir::S, Dir::N];

    #[inline]
    pub fn opposite(self) -> Dir {
        match self {
            Dir::W => Dir::E,
            Dir::E => Dir::W,
            Dir::S => Dir::N,
            Dir::N => Dir::S,
        }
    }

    #[inline]
    pub fn is_horizontal(self) -> bool {
        matches!(self, Dir::W | Dir::E)
    }
}

/// Position of a cell within its quartet, encoded so that flipping bit 0
/// crosses the vertical boundary (east/west) and flipping bit 1 crosses the
/// horizontal boundary (north/south):
///
/// * `quadrant ^ 1` — the horizontal (side) neighbor,
/// * `quadrant ^ 2` — the vertical (side) neighbor,
/// * `quadrant ^ 3` — the diagonal cell sharing only the reference point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Quadrant {
    Sw = 0,
    Se = 1,
    Nw = 2,
    Ne = 3,
}

impl Quadrant {
    pub const ALL: [Quadrant; 4] = [Quadrant::Sw, Quadrant::Se, Quadrant::Nw, Quadrant::Ne];

    #[inline]
    pub fn from_bits(east: bool, north: bool) -> Quadrant {
        match (east, north) {
            (false, false) => Quadrant::Sw,
            (true, false) => Quadrant::Se,
            (false, true) => Quadrant::Nw,
            (true, true) => Quadrant::Ne,
        }
    }

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    #[inline]
    pub fn from_index(i: usize) -> Quadrant {
        Quadrant::ALL[i]
    }

    /// The quadrant across the vertical boundary (same row).
    #[inline]
    pub fn horizontal(self) -> Quadrant {
        Quadrant::from_index(self.index() ^ 1)
    }

    /// The quadrant across the horizontal boundary (same column).
    #[inline]
    pub fn vertical(self) -> Quadrant {
        Quadrant::from_index(self.index() ^ 2)
    }

    /// The quadrant sharing only the reference point.
    #[inline]
    pub fn diagonal(self) -> Quadrant {
        Quadrant::from_index(self.index() ^ 3)
    }

    /// Whether two quadrants are side-adjacent (share a cell border rather
    /// than only the reference point).
    #[inline]
    pub fn side_adjacent(self, other: Quadrant) -> bool {
        let x = self.index() ^ other.index();
        x == 1 || x == 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_respects_bounds() {
        let c = CellCoord { x: 0, y: 0 };
        assert_eq!(c.step(Dir::W, 4, 4), None);
        assert_eq!(c.step(Dir::S, 4, 4), None);
        assert_eq!(c.step(Dir::E, 4, 4), Some(CellCoord { x: 1, y: 0 }));
        assert_eq!(c.step(Dir::N, 4, 4), Some(CellCoord { x: 0, y: 1 }));
        let edge = CellCoord { x: 3, y: 3 };
        assert_eq!(edge.step(Dir::E, 4, 4), None);
        assert_eq!(edge.step(Dir::N, 4, 4), None);
    }

    #[test]
    fn dir_opposites() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(d.is_horizontal(), d.opposite().is_horizontal());
        }
    }

    #[test]
    fn quadrant_neighbors() {
        assert_eq!(Quadrant::Sw.horizontal(), Quadrant::Se);
        assert_eq!(Quadrant::Sw.vertical(), Quadrant::Nw);
        assert_eq!(Quadrant::Sw.diagonal(), Quadrant::Ne);
        assert_eq!(Quadrant::Ne.diagonal(), Quadrant::Sw);
        for q in Quadrant::ALL {
            // Applying the same move twice returns home.
            assert_eq!(q.horizontal().horizontal(), q);
            assert_eq!(q.vertical().vertical(), q);
            assert_eq!(q.diagonal().diagonal(), q);
            assert!(q.side_adjacent(q.horizontal()));
            assert!(q.side_adjacent(q.vertical()));
            assert!(!q.side_adjacent(q.diagonal()));
            assert!(!q.side_adjacent(q));
        }
    }

    #[test]
    fn quadrant_bits_roundtrip() {
        for (east, north) in [(false, false), (true, false), (false, true), (true, true)] {
            let q = Quadrant::from_bits(east, north);
            assert_eq!(Quadrant::from_index(q.index()), q);
        }
    }
}
