//! Regular-grid space partitioning for ε-distance spatial joins.
//!
//! The paper (§4.1) partitions the data space into equi-sized cells whose side
//! length `l` exceeds `2ε`, which guarantees that a point can be a replication
//! candidate for **at most three** neighboring cells: the horizontal neighbor,
//! the vertical neighbor and the diagonal neighbor that all meet at the grid
//! corner nearest to the point. Those four cells around an interior corner are
//! a *quartet* and the corner itself is the quartet's *reference point* (§5.1).
//!
//! This crate owns:
//!
//! * [`GridSpec`] / [`Grid`] — grid construction and cell addressing,
//! * [`CellCoord`] / [`QuartetId`] / [`Quadrant`] — the coordinate system the
//!   agreement graph (crate `asj-core`) is built on,
//! * [`AreaClass`] and [`Grid::classify`] — the Figure-9 decomposition of a
//!   cell into *no-replication area*, *plain replication strips* and *merged
//!   duplicate-prone corner squares*, plus the candidate quartets whose
//!   *supplementary areas* may contain the point,
//! * [`Grid::push_cells_within_eps`] — the plain `MINDIST ≤ ε` replication
//!   enumeration used by the PBSM and ε-grid baselines (any cell size).

mod cell;
mod classify;

pub use cell::{CellCoord, Dir, Quadrant, QuartetId};
pub use classify::AreaClass;

use asj_geom::{Point, Rect};

/// Parameters from which a [`Grid`] is derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    /// Minimum bounding rectangle of the data space (`m` in Algorithm 5).
    pub bbox: Rect,
    /// Distance-join threshold ε.
    pub eps: f64,
    /// Resolution factor `k`: cells are at least `k·ε` on each side. The
    /// paper uses `k = 2` by default and evaluates `k ∈ {2,3,4,5}` in
    /// Fig. 15. `k = 1` yields the ε-grid baseline resolution (for which the
    /// agreement machinery is disabled — see [`Grid::supports_agreements`]).
    pub factor: f64,
}

impl GridSpec {
    /// Grid with the paper's default `2ε` resolution.
    pub fn new(bbox: Rect, eps: f64) -> Self {
        GridSpec {
            bbox,
            eps,
            factor: 2.0,
        }
    }

    /// Grid with cell side at least `factor·ε`.
    pub fn with_factor(bbox: Rect, eps: f64, factor: f64) -> Self {
        GridSpec { bbox, eps, factor }
    }
}

/// A regular grid of `nx × ny` equi-sized cells over a bounding box.
///
/// # Example
///
/// ```
/// use asj_geom::{Point, Rect};
/// use asj_grid::{AreaClass, Grid, GridSpec};
///
/// let grid = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0));
/// assert!(grid.supports_agreements());         // cell side > 2ε
/// let p = Point::new(2.4, 2.4);                // near an interior corner
/// match grid.classify(p) {
///     AreaClass::CornerSquare { quartet, .. } => {
///         assert!(grid.quartet_in_bounds(quartet));
///     }
///     other => panic!("expected a corner square, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Grid {
    bbox: Rect,
    eps: f64,
    nx: u32,
    ny: u32,
    lx: f64,
    ly: f64,
}

impl Grid {
    /// Builds the grid for `spec`.
    ///
    /// The cell count per axis is the largest `n` with `extent / n ≥ k·ε`;
    /// when `k ≥ 2` the count is further reduced (if necessary) until the
    /// side is **strictly** greater than `2ε`, the precondition of the
    /// agreement framework (§4.2). Degenerate extents yield a single cell on
    /// that axis.
    ///
    /// # Panics
    /// Panics if `eps <= 0`, `factor < 1`, the bbox is empty, or any bound is
    /// non-finite.
    pub fn new(spec: GridSpec) -> Self {
        assert!(
            spec.eps > 0.0 && spec.eps.is_finite(),
            "eps must be positive"
        );
        assert!(spec.factor >= 1.0, "resolution factor must be >= 1");
        assert!(!spec.bbox.is_empty(), "bbox must be non-empty");
        assert!(
            spec.bbox.min_x.is_finite()
                && spec.bbox.min_y.is_finite()
                && spec.bbox.max_x.is_finite()
                && spec.bbox.max_y.is_finite(),
            "bbox must be finite"
        );
        let axis = |extent: f64| -> u32 {
            let min_side = spec.factor * spec.eps;
            let mut n = (extent / min_side).floor() as u32;
            n = n.max(1);
            if spec.factor >= 2.0 {
                // Strict l > 2ε so that a point is never within ε of two
                // parallel boundaries of its cell at once.
                while n > 1 && extent / n as f64 <= 2.0 * spec.eps {
                    n -= 1;
                }
            }
            n
        };
        let nx = axis(spec.bbox.width());
        let ny = axis(spec.bbox.height());
        Grid {
            bbox: spec.bbox,
            eps: spec.eps,
            nx,
            ny,
            lx: spec.bbox.width() / nx as f64,
            ly: spec.bbox.height() / ny as f64,
        }
    }

    #[inline]
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of cells along x.
    #[inline]
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Number of cells along y.
    #[inline]
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Cell side lengths `(lx, ly)`.
    #[inline]
    pub fn cell_side(&self) -> (f64, f64) {
        (self.lx, self.ly)
    }

    #[inline]
    pub fn num_cells(&self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// Number of interior corners, i.e. quartets: `(nx−1)·(ny−1)`.
    #[inline]
    pub fn num_quartets(&self) -> usize {
        (self.nx as usize).saturating_sub(1) * (self.ny as usize).saturating_sub(1)
    }

    /// Whether the agreement framework may run on this grid: every axis with
    /// more than one cell has side strictly greater than `2ε` (§4.2).
    #[inline]
    pub fn supports_agreements(&self) -> bool {
        (self.nx == 1 || self.lx > 2.0 * self.eps) && (self.ny == 1 || self.ly > 2.0 * self.eps)
    }

    /// The cell enclosing `p`. Points on shared borders belong to the cell on
    /// their upper-right (half-open cells); points on the global maximum
    /// border, or slightly outside the bbox, are clamped into the grid.
    #[inline]
    pub fn cell_of(&self, p: Point) -> CellCoord {
        let fx = (p.x - self.bbox.min_x) / self.lx;
        let fy = (p.y - self.bbox.min_y) / self.ly;
        let cx = (fx.floor() as i64).clamp(0, self.nx as i64 - 1) as u32;
        let cy = (fy.floor() as i64).clamp(0, self.ny as i64 - 1) as u32;
        CellCoord { x: cx, y: cy }
    }

    /// The rectangle covered by a cell.
    #[inline]
    pub fn cell_rect(&self, c: CellCoord) -> Rect {
        debug_assert!(self.cell_in_bounds(c));
        Rect::new(
            self.bbox.min_x + c.x as f64 * self.lx,
            self.bbox.min_y + c.y as f64 * self.ly,
            self.bbox.min_x + (c.x + 1) as f64 * self.lx,
            self.bbox.min_y + (c.y + 1) as f64 * self.ly,
        )
    }

    #[inline]
    pub fn cell_in_bounds(&self, c: CellCoord) -> bool {
        c.x < self.nx && c.y < self.ny
    }

    /// Dense index of a cell in `0..num_cells()` (row-major).
    #[inline]
    pub fn cell_index(&self, c: CellCoord) -> usize {
        debug_assert!(self.cell_in_bounds(c));
        c.y as usize * self.nx as usize + c.x as usize
    }

    /// Inverse of [`Grid::cell_index`].
    #[inline]
    pub fn cell_at(&self, index: usize) -> CellCoord {
        debug_assert!(index < self.num_cells());
        CellCoord {
            x: (index % self.nx as usize) as u32,
            y: (index / self.nx as usize) as u32,
        }
    }

    /// Whether `q` names an interior corner (a valid quartet).
    #[inline]
    pub fn quartet_in_bounds(&self, q: QuartetId) -> bool {
        q.x >= 1 && q.x < self.nx && q.y >= 1 && q.y < self.ny
    }

    /// Dense index of a quartet in `0..num_quartets()`.
    #[inline]
    pub fn quartet_index(&self, q: QuartetId) -> usize {
        debug_assert!(self.quartet_in_bounds(q));
        (q.y as usize - 1) * (self.nx as usize - 1) + (q.x as usize - 1)
    }

    /// Inverse of [`Grid::quartet_index`].
    #[inline]
    pub fn quartet_at(&self, index: usize) -> QuartetId {
        debug_assert!(index < self.num_quartets());
        let w = self.nx as usize - 1;
        QuartetId {
            x: (index % w) as u32 + 1,
            y: (index / w) as u32 + 1,
        }
    }

    /// The reference point (common touching point) of a quartet.
    #[inline]
    pub fn corner_point(&self, q: QuartetId) -> Point {
        Point::new(
            self.bbox.min_x + q.x as f64 * self.lx,
            self.bbox.min_y + q.y as f64 * self.ly,
        )
    }

    /// The four cells of a quartet, indexed by [`Quadrant`]
    /// (`[SW, SE, NW, NE]`).
    #[inline]
    pub fn quartet_cells(&self, q: QuartetId) -> [CellCoord; 4] {
        debug_assert!(self.quartet_in_bounds(q));
        [
            CellCoord {
                x: q.x - 1,
                y: q.y - 1,
            },
            CellCoord { x: q.x, y: q.y - 1 },
            CellCoord { x: q.x - 1, y: q.y },
            CellCoord { x: q.x, y: q.y },
        ]
    }

    /// The quadrant a cell occupies within a quartet, or `None` if the cell
    /// is not part of it.
    #[inline]
    pub fn quadrant_of(&self, c: CellCoord, q: QuartetId) -> Option<Quadrant> {
        let east = if c.x + 1 == q.x {
            false
        } else if c.x == q.x {
            true
        } else {
            return None;
        };
        let north = if c.y + 1 == q.y {
            false
        } else if c.y == q.y {
            true
        } else {
            return None;
        };
        Some(Quadrant::from_bits(east, north))
    }

    /// Iterates over all quartets of the grid.
    pub fn quartets(&self) -> impl Iterator<Item = QuartetId> + '_ {
        let nx = self.nx;
        let ny = self.ny;
        (1..ny).flat_map(move |y| (1..nx).map(move |x| QuartetId { x, y }))
    }

    /// Serialized size of the grid when broadcast to every node: the bbox
    /// (four `f64`), ε, the two cell counts and the two side lengths. Every
    /// task that routes points to cells needs this closure, exactly like the
    /// agreement graph's `broadcast_bytes` accounts for its own shipping.
    #[inline]
    pub fn broadcast_bytes(&self) -> u64 {
        (4 * 8 + 8 + 2 * 4 + 2 * 8) as u64
    }

    /// Appends to `out` every cell whose rectangle intersects `rect`
    /// (clamped to the grid). Used by the extent join to assign objects with
    /// spatial extent by their (possibly ε-expanded) envelopes.
    pub fn push_cells_intersecting(&self, rect: Rect, out: &mut Vec<CellCoord>) {
        if rect.is_empty() {
            return;
        }
        let lo = self.cell_of(Point::new(rect.min_x, rect.min_y));
        let hi = self.cell_of(Point::new(rect.max_x, rect.max_y));
        for cy in lo.y..=hi.y {
            for cx in lo.x..=hi.x {
                out.push(CellCoord { x: cx, y: cy });
            }
        }
    }

    /// Appends to `out` every cell other than `p`'s native cell whose
    /// `MINDIST` to `p` is at most ε — the universal replication rule of PBSM
    /// (§3.2) and of the ε-grid baseline. Works for any resolution factor.
    pub fn push_cells_within_eps(&self, p: Point, out: &mut Vec<CellCoord>) {
        let native = self.cell_of(p);
        let lo = self.cell_of(Point::new(p.x - self.eps, p.y - self.eps));
        let hi = self.cell_of(Point::new(p.x + self.eps, p.y + self.eps));
        let e2 = self.eps * self.eps;
        for cy in lo.y..=hi.y {
            for cx in lo.x..=hi.x {
                let c = CellCoord { x: cx, y: cy };
                if c == native {
                    continue;
                }
                if self.cell_rect(c).mindist2(p) <= e2 {
                    out.push(c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(w: f64, h: f64, eps: f64) -> Grid {
        Grid::new(GridSpec::new(Rect::new(0.0, 0.0, w, h), eps))
    }

    #[test]
    fn cell_side_exceeds_two_eps() {
        let g = grid(10.0, 10.0, 1.0);
        assert_eq!(g.nx(), 4); // 10/2.0 = 5 cells would give l = 2ε exactly
        assert!(g.cell_side().0 > 2.0);
        assert!(g.supports_agreements());
    }

    #[test]
    fn single_cell_for_tiny_extent() {
        let g = grid(1.0, 1.0, 1.0);
        assert_eq!((g.nx(), g.ny()), (1, 1));
        assert_eq!(g.num_quartets(), 0);
        assert!(g.supports_agreements());
    }

    #[test]
    fn eps_grid_resolution() {
        let g = Grid::new(GridSpec::with_factor(
            Rect::new(0.0, 0.0, 10.0, 10.0),
            1.0,
            1.0,
        ));
        assert_eq!(g.nx(), 10);
        assert!(!g.supports_agreements());
    }

    #[test]
    fn cell_of_clamps_boundary_points() {
        let g = grid(10.0, 10.0, 1.0);
        assert_eq!(g.cell_of(Point::new(10.0, 10.0)), CellCoord { x: 3, y: 3 });
        assert_eq!(g.cell_of(Point::new(-0.5, 5.0)).x, 0);
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), CellCoord { x: 0, y: 0 });
    }

    #[test]
    fn cell_index_roundtrip() {
        let g = grid(10.0, 7.0, 1.0);
        for i in 0..g.num_cells() {
            assert_eq!(g.cell_index(g.cell_at(i)), i);
        }
    }

    #[test]
    fn quartet_index_roundtrip() {
        let g = grid(13.0, 9.0, 1.0);
        assert!(g.num_quartets() > 0);
        for i in 0..g.num_quartets() {
            let q = g.quartet_at(i);
            assert!(g.quartet_in_bounds(q));
            assert_eq!(g.quartet_index(q), i);
        }
    }

    #[test]
    fn quartet_cells_meet_at_corner() {
        let g = grid(10.0, 10.0, 1.0);
        let q = QuartetId { x: 2, y: 1 };
        let corner = g.corner_point(q);
        for c in g.quartet_cells(q) {
            assert_eq!(g.cell_rect(c).mindist(corner), 0.0);
        }
    }

    #[test]
    fn quadrant_of_quartet_cells() {
        let g = grid(10.0, 10.0, 1.0);
        let q = QuartetId { x: 2, y: 2 };
        let cells = g.quartet_cells(q);
        assert_eq!(g.quadrant_of(cells[0], q), Some(Quadrant::Sw));
        assert_eq!(g.quadrant_of(cells[1], q), Some(Quadrant::Se));
        assert_eq!(g.quadrant_of(cells[2], q), Some(Quadrant::Nw));
        assert_eq!(g.quadrant_of(cells[3], q), Some(Quadrant::Ne));
        assert_eq!(g.quadrant_of(CellCoord { x: 0, y: 0 }, q), None);
    }

    #[test]
    fn quartets_iterator_matches_count() {
        let g = grid(12.0, 8.0, 1.0);
        assert_eq!(g.quartets().count(), g.num_quartets());
    }

    #[test]
    fn cells_within_eps_center_point_is_empty() {
        let g = grid(10.0, 10.0, 1.0);
        let mut out = Vec::new();
        // Center of cell (1,1): side is 2.5 so center is 1.25 > ε from all
        // boundaries.
        g.push_cells_within_eps(Point::new(3.75, 3.75), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn cells_within_eps_near_corner_gives_three() {
        let g = grid(10.0, 10.0, 1.0);
        let mut out = Vec::new();
        // Just inside cell (0,0) near the interior corner (2.5, 2.5).
        g.push_cells_within_eps(Point::new(2.4, 2.4), &mut out);
        out.sort();
        assert_eq!(
            out,
            vec![
                CellCoord { x: 0, y: 1 },
                CellCoord { x: 1, y: 0 },
                CellCoord { x: 1, y: 1 },
            ]
        );
    }

    #[test]
    fn cells_within_eps_eps_grid_many_neighbors() {
        let g = Grid::new(GridSpec::with_factor(
            Rect::new(0.0, 0.0, 10.0, 10.0),
            1.0,
            1.0,
        ));
        let mut out = Vec::new();
        g.push_cells_within_eps(Point::new(5.5, 5.5), &mut out);
        // ε-disk of radius 1 centered in a 1×1 cell touches the 8 surrounding
        // cells' boundaries within distance ε.
        assert!(out.len() >= 4, "got {out:?}");
        for c in &out {
            assert!(g.cell_rect(*c).within_eps_of(Point::new(5.5, 5.5), 1.0));
        }
    }
}

#[cfg(test)]
mod intersect_tests {
    use super::*;

    #[test]
    fn cells_intersecting_covers_rect() {
        let g = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0));
        let mut out = Vec::new();
        // Rect spanning cells (0,0)-(1,1).
        g.push_cells_intersecting(Rect::new(1.0, 1.0, 3.0, 3.0), &mut out);
        out.sort();
        assert_eq!(
            out,
            vec![
                CellCoord { x: 0, y: 0 },
                CellCoord { x: 0, y: 1 },
                CellCoord { x: 1, y: 0 },
                CellCoord { x: 1, y: 1 },
            ]
        );
    }

    #[test]
    fn cells_intersecting_clamps_outside_rects() {
        let g = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0));
        let mut out = Vec::new();
        g.push_cells_intersecting(Rect::new(-5.0, -5.0, -1.0, -1.0), &mut out);
        assert_eq!(out, vec![CellCoord { x: 0, y: 0 }]);
        out.clear();
        g.push_cells_intersecting(Rect::empty(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn single_point_rect_is_one_cell() {
        let g = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0));
        let mut out = Vec::new();
        g.push_cells_intersecting(Rect::from_point(Point::new(4.0, 4.0)), &mut out);
        assert_eq!(out, vec![g.cell_of(Point::new(4.0, 4.0))]);
    }
}
