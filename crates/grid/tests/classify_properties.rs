//! Classification invariants on arbitrary grid shapes: rectangular bounding
//! boxes, non-square cells, coarse resolution factors, degenerate single-row
//! and single-column grids.

use asj_geom::{Point, Rect};
use asj_grid::{AreaClass, Grid, GridSpec};
use proptest::prelude::*;

fn check_point(grid: &Grid, p: Point) -> Result<(), TestCaseError> {
    let mut neigh = Vec::new();
    grid.push_cells_within_eps(p, &mut neigh);
    match grid.classify(p) {
        AreaClass::Interior => prop_assert_eq!(neigh.len(), 0),
        AreaClass::PlainStrip { neighbor, .. } => {
            prop_assert_eq!(neigh.clone(), vec![neighbor]);
        }
        AreaClass::CornerSquare { quartet, .. } => {
            prop_assert!(grid.quartet_in_bounds(quartet));
            prop_assert!((2..=3).contains(&neigh.len()), "{:?}", neigh);
            let cells = grid.quartet_cells(quartet);
            for n in &neigh {
                prop_assert!(cells.contains(n));
            }
            let within = p.dist(grid.corner_point(quartet)) <= grid.eps();
            prop_assert_eq!(neigh.len() == 3, within);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any grid supporting agreements, classification must agree with
    /// raw MINDIST neighbor enumeration everywhere.
    #[test]
    fn classification_matches_mindist_on_arbitrary_grids(
        w in 3.0f64..80.0,
        h in 3.0f64..80.0,
        eps in 0.2f64..1.4,
        factor in 2.0f64..5.0,
        points in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 200),
    ) {
        let grid = Grid::new(GridSpec::with_factor(Rect::new(0.0, 0.0, w, h), eps, factor));
        prop_assume!(grid.supports_agreements());
        for (fx, fy) in points {
            check_point(&grid, Point::new(fx * w, fy * h))?;
        }
    }

    /// Thin worlds: one row or one column of cells (no quartets on that
    /// axis) must classify without panicking and never emit corner squares
    /// pointing at out-of-bounds quartets.
    #[test]
    fn single_row_and_column_grids(
        long in 10.0f64..60.0,
        thin in 1.0f64..2.4,
        eps in 0.3f64..0.9,
        points in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 120),
    ) {
        for (w, h) in [(long, thin), (thin, long)] {
            let grid = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, w, h), eps));
            prop_assume!(grid.supports_agreements());
            for &(fx, fy) in &points {
                check_point(&grid, Point::new(fx * w, fy * h))?;
            }
        }
    }

    /// Points exactly on cell boundaries (worst case for half-open cell
    /// membership) still classify consistently.
    #[test]
    fn boundary_points_are_consistent(
        cols in 2u32..8,
        rows in 2u32..8,
        eps in 0.2f64..0.45,
    ) {
        let w = cols as f64;
        let h = rows as f64;
        let grid = Grid::new(GridSpec::new(Rect::new(0.0, 0.0, w, h), eps));
        prop_assume!(grid.supports_agreements());
        let (lx, ly) = grid.cell_side();
        for i in 0..=grid.nx() {
            for j in 0..=grid.ny() {
                let p = Point::new((i as f64 * lx).min(w), (j as f64 * ly).min(h));
                check_point(&grid, p)?;
            }
        }
    }
}
