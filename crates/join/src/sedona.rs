use crate::pipeline::map_stage;
use crate::{JoinOutput, JoinSpec, Record};
use asj_engine::{Cluster, Dataset, ExecStats, JobMetrics, Partitioner};
use asj_index::{kernels, QuadTreePartitioner};
use std::time::Instant;

/// The Sedona-like baseline of §7.1: the join runs in three phases —
/// **QuadTree space partitioning** built on the driver from a sample of the
/// input with the fewest objects, **per-leaf local indexing** of each
/// partition, and **join computation** through the shared
/// [`kernels::local_join`] entry point (so `spec.kernel` is honored here
/// exactly like everywhere else; `Auto` typically resolves quadtree leaves —
/// whose extent dwarfs ε — to the ε-bucket grid, the moral equivalent of
/// Sedona's per-partition R-tree probe).
///
/// The sampled (smaller) set is the replicated one: each of its points is
/// assigned to every quadtree leaf intersecting its ε-disk; the larger set
/// is single-assigned, which keeps results duplicate-free. Each leaf is one
/// join partition — the paper attributes Sedona's slowness to exactly these
/// "quite large partitions", which reduce replication but blow up the
/// per-partition candidate work.
pub fn sedona_like_join(
    cluster: &Cluster,
    spec: &JoinSpec,
    r: Vec<Record>,
    s: Vec<Record>,
) -> JoinOutput {
    let r_is_small = r.len() <= s.len();
    let rdd_r = Dataset::from_vec(r, spec.input_partitions);
    let rdd_s = Dataset::from_vec(s, spec.input_partitions);
    let mut construction = ExecStats::default();

    // Phase 1: sample the smaller set and build the QuadTree partitioner on
    // the driver.
    let (sample, ex) = if r_is_small {
        rdd_r.sample(cluster, spec.sample_fraction, spec.seed)
    } else {
        rdd_s.sample(cluster, spec.sample_fraction, spec.seed)
    };
    construction.accumulate(&ex);
    let driver_start = Instant::now();
    let sample_points: Vec<asj_geom::Point> = sample.iter().map(|rec| rec.point).collect();
    // Leaf capacity chosen so the leaf count lands near the configured
    // partition count (Sedona sizes its quadtree from the partition target).
    let capacity = (sample_points.len() / spec.num_partitions.max(1)).max(1);
    let qt = QuadTreePartitioner::build(spec.bbox, &sample_points, capacity, 12);
    let broadcast_bytes = qt.broadcast_bytes();
    let driver = driver_start.elapsed();
    let qt_b = cluster.broadcast(qt);

    // Phase 1b: route both sets to leaves (the smaller one replicated).
    let eps = spec.eps;
    let replicated_assign = {
        let qt_b = qt_b.clone();
        move |p: asj_geom::Point, cells: &mut Vec<u64>, _: &mut Vec<asj_grid::CellCoord>| {
            let mut leaves = Vec::with_capacity(4);
            qt_b.leaves_within(p, eps, &mut leaves);
            let native = qt_b.leaf_of(p);
            cells.push(native as u64);
            cells.extend(
                leaves
                    .into_iter()
                    .filter(|&l| l != native)
                    .map(|l| l as u64),
            );
        }
    };
    let single_assign = {
        let qt_b = qt_b.clone();
        move |p: asj_geom::Point, cells: &mut Vec<u64>, _: &mut Vec<asj_grid::CellCoord>| {
            cells.push(qt_b.leaf_of(p) as u64);
        }
    };

    let (keyed_r, rep_r, ex) = if r_is_small {
        map_stage(cluster, rdd_r, &replicated_assign)
    } else {
        map_stage(cluster, rdd_r, &single_assign)
    };
    construction.accumulate(&ex);
    let (keyed_s, rep_s, ex) = if r_is_small {
        map_stage(cluster, rdd_s, &single_assign)
    } else {
        map_stage(cluster, rdd_s, &replicated_assign)
    };
    construction.accumulate(&ex);

    // Shuffle both sides by leaf id: one partition per leaf.
    let leaf_partitioner = LeafPartitioner {
        leaves: qt_b.num_leaves(),
    };
    let (keyed_r, sh_r, ex_r) = keyed_r.shuffle(cluster, &leaf_partitioner);
    let (keyed_s, sh_s, ex_s) = keyed_s.shuffle(cluster, &leaf_partitioner);
    let mut shuffle = sh_r;
    shuffle.merge(&sh_s);
    construction.accumulate(&ex_r);
    construction.accumulate(&ex_s);

    // Phase 2+3: per leaf, run the shared local-join entry point (honoring
    // `spec.kernel`; `Auto` consults the calibrated cost model with the
    // leaf group's measured extent).
    let placement: Vec<usize> = (0..qt_b.num_leaves())
        .map(|p| cluster.node_of_partition(p))
        .collect();
    let collect = spec.collect_pairs;
    let kernel = spec.kernel;
    let model = cluster.kernel_cost_model(kernels::calibrate_cost_model);
    type LeafTasks = Vec<(Vec<(u64, Record)>, Vec<(u64, Record)>)>;
    let tasks: LeafTasks = keyed_r
        .into_partitions()
        .into_iter()
        .zip(keyed_s.into_partitions())
        .collect();
    let (pair_parts, join_exec) = cluster.run_placed(tasks, &placement, |_, (rs, ss)| {
        let mut out: Vec<(u64, u64)> = Vec::new();
        let outcome = kernels::local_join(
            kernel,
            &model,
            eps,
            false,
            &rs,
            &ss,
            |(_, rec)| rec.point,
            |(_, rec)| rec.point,
            |i, j| {
                if collect {
                    out.push((rs[i].1.id, ss[j].1.id));
                }
            },
        );
        // Counts travel with the task result (per-attempt, committed once) —
        // shared atomics would double-count retried attempts.
        (out, outcome.stats.candidates, outcome.stats.results)
    });

    JoinOutput {
        algorithm: "Sedona".to_string(),
        pairs: pair_parts
            .iter()
            .flat_map(|(out, _, _)| out)
            .copied()
            .collect(),
        result_count: pair_parts.iter().map(|(_, _, r)| r).sum(),
        candidates: pair_parts.iter().map(|(_, c, _)| c).sum(),
        replicated: [rep_r, rep_s],
        metrics: JobMetrics {
            shuffle,
            construction,
            join: join_exec,
            driver,
            broadcast_bytes,
        },
    }
}

/// Identity partitioner: leaf id = partition id.
struct LeafPartitioner {
    leaves: usize,
}

impl Partitioner<u64> for LeafPartitioner {
    fn num_partitions(&self) -> usize {
        self.leaves
    }

    fn partition_of(&self, key: &u64) -> usize {
        debug_assert!((*key as usize) < self.leaves);
        *key as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_records;
    use asj_engine::ClusterConfig;
    use asj_geom::{Point, Rect};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::with_threads(4, 2))
    }

    fn clustered_records(n: usize, seed: u64) -> Vec<Record> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.7) {
                    Point::new(
                        5.0 + rng.gen_range(-2.0..2.0),
                        5.0 + rng.gen_range(-2.0..2.0),
                    )
                } else {
                    Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0))
                }
            })
            .collect();
        to_records(&pts, 0)
    }

    #[test]
    fn matches_brute_force() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 0.8)
            .with_partitions(16)
            .with_sample_fraction(0.5);
        let r = clustered_records(350, 21);
        let s = clustered_records(500, 22);
        let expected = crate::oracle::brute_force_pairs(&r, &s, spec.eps);
        let out = sedona_like_join(&c, &spec, r, s);
        let mut got = out.pairs.clone();
        got.sort_unstable();
        assert_eq!(got, expected);
        assert_eq!(out.algorithm, "Sedona");
        assert!(
            out.metrics.broadcast_bytes > 0,
            "quadtree broadcast must be metered"
        );
    }

    #[test]
    fn replicates_only_smaller_side() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 0.8).with_sample_fraction(0.5);
        let r = clustered_records(200, 23); // smaller
        let s = clustered_records(600, 24);
        let out = sedona_like_join(&c, &spec, r, s);
        assert_eq!(out.replicated[1], 0, "larger side must be single-assigned");
        // The swap case.
        let r = clustered_records(600, 25);
        let s = clustered_records(200, 26); // smaller
        let out = sedona_like_join(&c, &spec, r, s);
        assert_eq!(out.replicated[0], 0);
    }
}
