use crate::{JoinOutput, JoinSpec, Record};
use asj_core::{AgreementPolicy, KernelKind};
use asj_engine::{
    ensure_remaining, Cluster, Dataset, ExecStats, KeyedDataset, Partitioner, ShuffleStats, Wire,
    WireError,
};
use bytes::{Buf, BufMut};
use asj_geom::Point;
use asj_index::{kernels, PointBatch};

/// Every join algorithm of the paper's evaluation, dispatchable by name —
/// the benchmark harness iterates over these to produce each figure's
/// series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Adaptive replication, LPiB instantiation.
    Lpib,
    /// Adaptive replication, DIFF instantiation.
    Diff,
    /// PBSM universally replicating R.
    UniR,
    /// PBSM universally replicating S.
    UniS,
    /// ε×ε grid replicating the smaller input.
    EpsGrid,
    /// QuadTree partitioning + per-partition R-tree (Sedona-like).
    Sedona,
    /// LPiB with an unmarked (duplicate-producing) graph and the paper's
    /// distributed-dedup operator bolted on — Table 6's comparison arm.
    /// Not part of [`Algorithm::ALL`] (the figures list six algorithms);
    /// its distinguishing property for the serve stack is a *post-join*
    /// stage, so a crash can land between a completed join and job
    /// completion — the window join-phase checkpoints exist for.
    LpibDedup,
}

impl Algorithm {
    /// The six algorithms in the order the paper's figures list them.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Lpib,
        Algorithm::Diff,
        Algorithm::UniR,
        Algorithm::UniS,
        Algorithm::EpsGrid,
        Algorithm::Sedona,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Lpib => "LPiB",
            Algorithm::Diff => "DIFF",
            Algorithm::UniR => "UNI(R)",
            Algorithm::UniS => "UNI(S)",
            Algorithm::EpsGrid => "eps-grid",
            Algorithm::Sedona => "Sedona",
            Algorithm::LpibDedup => "LPiB+dedup",
        }
    }

    /// Runs this algorithm on the given inputs.
    pub fn run(
        self,
        cluster: &Cluster,
        spec: &JoinSpec,
        r: Vec<Record>,
        s: Vec<Record>,
    ) -> JoinOutput {
        match self {
            Algorithm::Lpib => crate::adaptive_join(cluster, spec, AgreementPolicy::Lpib, r, s),
            Algorithm::Diff => crate::adaptive_join(cluster, spec, AgreementPolicy::Diff, r, s),
            Algorithm::UniR => crate::pbsm_join(cluster, spec, crate::ReplicateSide::R, r, s),
            Algorithm::UniS => crate::pbsm_join(cluster, spec, crate::ReplicateSide::S, r, s),
            Algorithm::EpsGrid => crate::eps_grid_join(cluster, spec, r, s),
            Algorithm::Sedona => crate::sedona_like_join(cluster, spec, r, s),
            Algorithm::LpibDedup => {
                crate::adaptive_join_dedup(cluster, spec, AgreementPolicy::Lpib, r, s)
            }
        }
    }
}

/// Spatial-mapping stage: routes every record to the cell keys chosen by
/// `assign` (Spark's `flatMapToPair`). Returns the keyed dataset, the number
/// of replicas (pairs emitted beyond one per record) and the stage's
/// execution stats.
pub(crate) fn map_stage<F>(
    cluster: &Cluster,
    input: Dataset<Record>,
    assign: F,
) -> (KeyedDataset<u64, Record>, u64, ExecStats)
where
    F: Fn(Point, &mut Vec<u64>, &mut Vec<asj_grid::CellCoord>) + Sync,
{
    let records_in: u64 = input.len() as u64;
    cluster.recorder().phase_attrs("marking", |attrs| {
        let (parts, stats) = cluster.run_partitioned_stage(
            "marking",
            input.into_partitions(),
            |_, part: Vec<Record>| {
                let mut out: Vec<(u64, Record)> = Vec::with_capacity(part.len() + part.len() / 8);
                let mut cells: Vec<u64> = Vec::with_capacity(4);
                let mut scratch: Vec<asj_grid::CellCoord> = Vec::with_capacity(4);
                for rec in part {
                    cells.clear();
                    assign(rec.point, &mut cells, &mut scratch);
                    debug_assert!(!cells.is_empty(), "every record must map to >= 1 cell");
                    // Clone for the replicas, move the original into the last.
                    for &c in &cells[1..] {
                        out.push((c, rec.clone()));
                    }
                    out.push((cells[0], rec));
                }
                out
            },
        );
        let keyed = KeyedDataset::from_partitions(parts);
        let replicas = keyed.len() as u64 - records_in;
        *attrs = attrs.records(records_in).cells(replicas);
        cluster
            .recorder()
            .counter_add("marking", "replicas", replicas);
        (keyed, replicas, stats)
    })
}

/// Shuffle + partition-local join with immediate refinement (Algorithm 5,
/// line 9). Returns pairs (if collected), result/candidate counts, combined
/// shuffle stats, and the exec stats of the shuffle and join stages.
pub(crate) fn join_stage<P>(
    cluster: &Cluster,
    spec: &JoinSpec,
    keyed_r: KeyedDataset<u64, Record>,
    keyed_s: KeyedDataset<u64, Record>,
    partitioner: &P,
) -> JoinStageOutput
where
    P: Partitioner<u64> + ?Sized,
{
    let recorder = cluster.recorder().clone();
    let (keyed_r, keyed_s, shuffle, shuffle_exec) = recorder.phase_attrs("shuffle", |attrs| {
        let (keyed_r, sh_r, ex_r) = keyed_r.shuffle_stage(cluster, partitioner, "shuffle.R");
        let (keyed_s, sh_s, ex_s) = keyed_s.shuffle_stage(cluster, partitioner, "shuffle.S");
        let mut shuffle = sh_r;
        shuffle.merge(&sh_s);
        let mut shuffle_exec = ex_r;
        shuffle_exec.accumulate(&ex_s);
        *attrs = attrs.records(shuffle.records).bytes(shuffle.total_bytes());
        (keyed_r, keyed_s, shuffle, shuffle_exec)
    });

    let placement: Vec<usize> = (0..partitioner.num_partitions())
        .map(|p| cluster.node_of_partition(p))
        .collect();
    let eps = spec.eps;
    let collect = spec.collect_pairs;
    let kernel = spec.kernel;
    let model = cluster.kernel_cost_model(kernels::calibrate_cost_model);
    // Candidate/result counts fold into a per-partition accumulator that is
    // committed with the task output: shared atomics here would be
    // double-counted by retried or speculatively re-executed tasks.
    //
    // Each task converts its two shuffled partitions into columnar
    // `PointBatch`es once — the permutation sort groups records by cell in
    // ascending-x order and gathers `x`/`y`/`id` into flat lanes — then
    // merges the ascending key lists and runs the SoA kernel per common
    // cell, streaming contiguous memory instead of re-extracting positions
    // per group.
    assert_eq!(
        keyed_r.num_partitions(),
        keyed_s.num_partitions(),
        "joined datasets must share the partitioner"
    );
    type CellGroup = Vec<(u64, Record)>;
    let tasks: Vec<(CellGroup, CellGroup)> = keyed_r
        .into_partitions()
        .into_iter()
        .zip(keyed_s.into_partitions())
        .collect();
    // `run_placed_stage_checkpointed`: with a checkpoint store attached the
    // per-partition `(pairs, tally)` outputs are persisted after the stage
    // and replayed on recovery, so a recovered server skips the join phase —
    // the ε-grid's memory-pressure peak — entirely, not just the shuffles.
    let (folded, join_exec) = recorder.phase("local_join", || {
        cluster.run_placed_stage_checkpointed("cogroup_join", tasks, &placement, |_, (rs, ss)| {
            let pos = |r: &Record| r.point;
            let rid = |r: &Record| r.id;
            let br = PointBatch::from_keyed(&rs, pos, rid);
            let bs = PointBatch::from_keyed(&ss, pos, rid);
            let mut out: Vec<(u64, u64)> = Vec::new();
            let mut acc = KernelTally {
                batches: 2,
                batch_points: (br.num_points() + bs.num_points()) as u64,
                ..KernelTally::default()
            };
            let (mut gi, mut gj) = (0usize, 0usize);
            while gi < br.num_groups() && gj < bs.num_groups() {
                match br.keys()[gi].cmp(&bs.keys()[gj]) {
                    std::cmp::Ordering::Less => gi += 1,
                    std::cmp::Ordering::Greater => gj += 1,
                    std::cmp::Ordering::Equal => {
                        let (va, vb) = (br.group(gi), bs.group(gj));
                        let (ids_a, ids_b) = (br.group_ids(gi), bs.group_ids(gj));
                        let outcome =
                            kernels::local_join_view(kernel, &model, eps, va, vb, |i, j| {
                                if collect {
                                    out.push((ids_a[i], ids_b[j]));
                                }
                            });
                        acc.record(outcome, va.len() as u64 * vb.len() as u64);
                        gi += 1;
                        gj += 1;
                    }
                }
            }
            (out, acc)
        })
    });
    let mut tally = KernelTally::default();
    let mut pairs = Vec::new();
    for (part, t) in folded {
        tally.merge(&t);
        pairs.extend(part);
    }
    tally.publish(cluster, "local_join");
    JoinStageOutput {
        pairs,
        result_count: tally.results,
        candidates: tally.candidates,
        shuffle,
        shuffle_exec,
        join_exec,
    }
}

/// Per-partition fold of what the adaptive kernel layer did: counts, the
/// resolved-kernel picks, and the worst-case `Σ r·s` the nested loop would
/// have evaluated (so pruning is observable).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct KernelTally {
    pub candidates: u64,
    pub results: u64,
    /// `Σ |R_i|·|S_i|` over the groups — the nested-loop candidate count.
    pub worst_case: u64,
    pub picks_nl: u64,
    pub picks_ps: u64,
    pub picks_bucket: u64,
    /// Columnar batches built at shuffle-receive time.
    pub batches: u64,
    /// Points gathered into those batches' SoA lanes.
    pub batch_points: u64,
}

impl KernelTally {
    pub fn record(&mut self, outcome: kernels::LocalJoinOutcome, worst_case: u64) {
        self.candidates += outcome.stats.candidates;
        self.results += outcome.stats.results;
        self.worst_case += worst_case;
        match outcome.kind {
            KernelKind::NestedLoop => self.picks_nl += 1,
            KernelKind::PlaneSweep => self.picks_ps += 1,
            KernelKind::GridBucket => self.picks_bucket += 1,
        }
    }

    pub fn merge(&mut self, other: &KernelTally) {
        self.candidates += other.candidates;
        self.results += other.results;
        self.worst_case += other.worst_case;
        self.picks_nl += other.picks_nl;
        self.picks_ps += other.picks_ps;
        self.picks_bucket += other.picks_bucket;
        self.batches += other.batches;
        self.batch_points += other.batch_points;
    }

    /// The tally's eight counters in field order — one place to keep the
    /// wire layout and the struct in sync.
    fn fields(&self) -> [u64; 8] {
        [
            self.candidates,
            self.results,
            self.worst_case,
            self.picks_nl,
            self.picks_ps,
            self.picks_bucket,
            self.batches,
            self.batch_points,
        ]
    }

    /// Publishes the tally as observability counters under `phase`.
    pub fn publish(&self, cluster: &Cluster, phase: &str) {
        let recorder = cluster.recorder();
        recorder.counter_add(phase, "candidates", self.candidates);
        recorder.counter_add(phase, "results", self.results);
        recorder.counter_add(phase, "kernel_auto_nl", self.picks_nl);
        recorder.counter_add(phase, "kernel_auto_ps", self.picks_ps);
        recorder.counter_add(phase, "kernel_auto_bucket", self.picks_bucket);
        recorder.counter_add(phase, "batches_built", self.batches);
        recorder.counter_add(phase, "batch_points", self.batch_points);
        recorder.counter_add(
            phase,
            "candidates_pruned",
            self.worst_case.saturating_sub(self.candidates),
        );
    }
}

/// Join-phase checkpointing serializes the per-partition accumulator next
/// to the emitted pairs: eight fixed-width little-endian `u64`s in field
/// order.
impl Wire for KernelTally {
    fn encoded_size(&self) -> usize {
        8 * std::mem::size_of::<u64>()
    }

    fn encode(&self, buf: &mut impl BufMut) {
        for field in self.fields() {
            field.encode(buf);
        }
    }

    fn try_decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        ensure_remaining(buf, 8 * std::mem::size_of::<u64>())?;
        Ok(KernelTally {
            candidates: u64::decode(buf),
            results: u64::decode(buf),
            worst_case: u64::decode(buf),
            picks_nl: u64::decode(buf),
            picks_ps: u64::decode(buf),
            picks_bucket: u64::decode(buf),
            batches: u64::decode(buf),
            batch_points: u64::decode(buf),
        })
    }
}

pub(crate) struct JoinStageOutput {
    pub pairs: Vec<(u64, u64)>,
    pub result_count: u64,
    pub candidates: u64,
    pub shuffle: ShuffleStats,
    pub shuffle_exec: ExecStats,
    pub join_exec: ExecStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_engine::{ClusterConfig, HashPartitioner};
    use asj_geom::Rect;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::with_threads(2, 2))
    }

    #[test]
    fn map_stage_counts_replicas() {
        let c = cluster();
        let recs = crate::to_records(
            &[
                Point::new(0.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(2.0, 2.0),
            ],
            0,
        );
        // Every record goes to its id cell, even ids get one replica.
        let ds = Dataset::from_vec(recs, 2);
        let (keyed, replicas, _) = map_stage(&c, ds, |p, cells, _| {
            cells.push(p.x as u64);
            if (p.x as u64).is_multiple_of(2) {
                cells.push(100 + p.x as u64);
            }
        });
        assert_eq!(replicas, 2);
        assert_eq!(keyed.len(), 5);
    }

    #[test]
    fn join_stage_finds_pairs_in_shared_cells() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0);
        let r = crate::to_records(&[Point::new(1.0, 1.0), Point::new(8.0, 8.0)], 0);
        let s = crate::to_records(&[Point::new(1.5, 1.0), Point::new(4.0, 4.0)], 0);
        // Everything keyed to one cell: the kernel sees all candidates.
        let (kr, _, _) = map_stage(&c, Dataset::from_vec(r.clone(), 1), |_, cells, _| {
            cells.push(0)
        });
        let (ks, _, _) = map_stage(&c, Dataset::from_vec(s.clone(), 1), |_, cells, _| {
            cells.push(0)
        });
        // Default Auto resolves the tiny 2x2 group to a nested loop.
        let out = join_stage(&c, &spec, kr, ks, &HashPartitioner::new(4));
        assert_eq!(out.result_count, 1); // only (1,1)-(1.5,1) within eps
        assert_eq!(out.candidates, 4);
        assert_eq!(out.pairs, vec![(0, 0)]);
        assert_eq!(out.shuffle.records, 4);
        // An explicit plane-sweep request is honored: the epsilon window
        // prunes everything but the matching pair.
        let spec_ps = spec.with_kernel(crate::LocalKernel::PlaneSweep);
        let (kr, _, _) = map_stage(&c, Dataset::from_vec(r, 1), |_, cells, _| cells.push(0));
        let (ks, _, _) = map_stage(&c, Dataset::from_vec(s, 1), |_, cells, _| cells.push(0));
        let out_ps = join_stage(&c, &spec_ps, kr, ks, &HashPartitioner::new(4));
        assert_eq!(out_ps.result_count, 1);
        assert_eq!(out_ps.pairs, vec![(0, 0)]);
        assert_eq!(out_ps.candidates, 1, "sweep window must prune");
    }

    #[test]
    fn kernel_tally_round_trips_over_the_wire() {
        let tally = KernelTally {
            candidates: 101,
            results: 7,
            worst_case: 10_000,
            picks_nl: 1,
            picks_ps: 2,
            picks_bucket: 3,
            batches: 4,
            batch_points: 555,
        };
        let mut buf = Vec::new();
        tally.encode(&mut buf);
        assert_eq!(buf.len(), tally.encoded_size());
        let got = KernelTally::try_decode(&mut buf.as_slice()).expect("decode");
        assert_eq!(got.fields(), tally.fields());
        assert!(
            KernelTally::try_decode(&mut &buf[..buf.len() - 1]).is_err(),
            "truncated tally is a decode error, not garbage"
        );
    }

    #[test]
    fn algorithm_names_match_paper() {
        let names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["LPiB", "DIFF", "UNI(R)", "UNI(S)", "eps-grid", "Sedona"]
        );
    }
}

#[cfg(test)]
mod kernel_choice_tests {
    use super::*;
    use crate::{to_records, LocalKernel};
    use asj_core::AgreementPolicy;
    use asj_engine::ClusterConfig;
    use asj_geom::{Point, Rect};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Both local kernels produce identical result sets; the sweep evaluates
    /// fewer candidates.
    #[test]
    fn plane_sweep_kernel_matches_nested_loop() {
        let c = Cluster::new(ClusterConfig::with_threads(3, 2));
        let mut rng = StdRng::seed_from_u64(55);
        let pts = |rng: &mut StdRng, n: usize| -> Vec<Point> {
            (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..15.0), rng.gen_range(0.0..15.0)))
                .collect()
        };
        let r = to_records(&pts(&mut rng, 400), 0);
        let s = to_records(&pts(&mut rng, 400), 0);
        let base = JoinSpec::new(Rect::new(0.0, 0.0, 15.0, 15.0), 0.8).with_partitions(8);
        let nl = crate::adaptive_join(
            &c,
            &base.clone().with_kernel(LocalKernel::NestedLoop),
            AgreementPolicy::Lpib,
            r.clone(),
            s.clone(),
        );
        let ps = crate::adaptive_join(
            &c,
            &base.with_kernel(LocalKernel::PlaneSweep),
            AgreementPolicy::Lpib,
            r,
            s,
        );
        let mut a = nl.pairs.clone();
        let mut b = ps.pairs.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(
            ps.candidates < nl.candidates,
            "sweep must prune: {} vs {}",
            ps.candidates,
            nl.candidates
        );
    }
}
