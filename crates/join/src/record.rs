use asj_engine::{Wire, WireError};
use asj_geom::Point;
use bytes::{Buf, BufMut};

/// One spatial tuple: identifier, coordinates and the non-spatial attributes
/// that travel with it (the *tuple size factor* payload of Figs. 16–18).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    pub id: u64,
    pub point: Point,
    pub payload: Vec<u8>,
}

impl Record {
    pub fn new(id: u64, point: Point) -> Self {
        Record {
            id,
            point,
            payload: Vec::new(),
        }
    }

    pub fn with_payload(id: u64, point: Point, payload: Vec<u8>) -> Self {
        Record { id, point, payload }
    }

    /// A copy of this record without its non-spatial attributes — what the
    /// post-processing variant of Table 5 ships through the spatial join.
    pub fn stripped(&self) -> Record {
        Record {
            id: self.id,
            point: self.point,
            payload: Vec::new(),
        }
    }
}

impl Wire for Record {
    #[inline]
    fn encoded_size(&self) -> usize {
        8 + 8 + 8 + 4 + self.payload.len()
    }

    #[inline]
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.id);
        buf.put_f64_le(self.point.x);
        buf.put_f64_le(self.point.y);
        buf.put_u32_le(self.payload.len() as u32);
        buf.put_slice(&self.payload);
    }

    #[inline]
    fn try_decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let id = u64::try_decode(buf)?;
        let x = f64::try_decode(buf)?;
        let y = f64::try_decode(buf)?;
        let payload = Vec::<u8>::try_decode(buf)?;
        Ok(Record {
            id,
            point: Point::new(x, y),
            payload,
        })
    }
}

/// Wraps raw points into [`Record`]s with sequential ids and a fixed-size
/// deterministic payload (`payload_bytes` per tuple; 0 for bare points).
pub fn to_records(points: &[Point], payload_bytes: usize) -> Vec<Record> {
    points
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let mut payload = Vec::with_capacity(payload_bytes);
            let mut state = (i as u64).wrapping_mul(0x5851_F42D_4C95_7F2D) ^ 0xA5A5;
            while payload.len() < payload_bytes {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                payload.push(b'a' + ((state >> 60) % 26) as u8);
            }
            Record::with_payload(i as u64, p, payload)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn wire_roundtrip() {
        let r = Record::with_payload(7, Point::new(1.5, -2.5), vec![1, 2, 3]);
        let mut buf = BytesMut::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), r.encoded_size());
        let back = Record::decode(&mut buf.freeze());
        assert_eq!(back, r);
    }

    #[test]
    fn encoded_size_grows_with_payload() {
        let bare = Record::new(1, Point::new(0.0, 0.0));
        let fat = Record::with_payload(1, Point::new(0.0, 0.0), vec![0; 256]);
        assert_eq!(bare.encoded_size(), 28);
        assert_eq!(fat.encoded_size(), 28 + 256);
    }

    #[test]
    fn truncated_record_decodes_to_error() {
        let r = Record::with_payload(7, Point::new(1.5, -2.5), vec![1, 2, 3]);
        let mut buf = BytesMut::new();
        r.encode(&mut buf);
        let bytes = buf.freeze();
        // Every proper prefix must error, never panic.
        for cut in 0..r.encoded_size() {
            let mut partial = BytesMut::new();
            let mut whole = bytes.clone();
            let mut raw = vec![0u8; cut];
            whole.copy_to_slice(&mut raw);
            partial.put_slice(&raw);
            assert!(
                Record::try_decode(&mut partial.freeze()).is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
        assert_eq!(Record::try_decode(&mut bytes.clone()), Ok(r));
    }

    #[test]
    fn to_records_assigns_sequential_ids_and_payload() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let recs = to_records(&pts, 16);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, 0);
        assert_eq!(recs[1].id, 1);
        assert_eq!(recs[0].payload.len(), 16);
        assert_ne!(recs[0].payload, recs[1].payload);
        // Deterministic.
        assert_eq!(to_records(&pts, 16), recs);
    }

    #[test]
    fn stripped_drops_payload_only() {
        let r = Record::with_payload(9, Point::new(2.0, 3.0), vec![1; 64]);
        let s = r.stripped();
        assert_eq!(s.id, 9);
        assert_eq!(s.point, r.point);
        assert!(s.payload.is_empty());
    }
}
