use crate::{JoinSpec, Record};
use asj_engine::{Cluster, Dataset, ExecStats, HashPartitioner, KeyedDataset, ShuffleStats};
use asj_geom::Point;
use asj_grid::{CellCoord, Grid, GridSpec};
use std::collections::HashMap;

/// Zipped per-partition (queries, data) inputs of one search round.
type RoundTasks = Vec<(Vec<(u64, Record)>, Vec<(u64, Record)>)>;

/// Result of a [`knn_join`].
#[derive(Debug, Clone)]
pub struct KnnOutput {
    /// For every query id: its `k` nearest neighbor ids with distances,
    /// ascending (fewer than `k` only when `|S| < k`).
    pub neighbors: Vec<(u64, Vec<(u64, f64)>)>,
    /// Search rounds executed (radius doubles per round).
    pub rounds: usize,
    pub shuffle: ShuffleStats,
    pub exec: ExecStats,
}

/// Distributed **k-nearest-neighbor join**: for every point of `r`, its `k`
/// nearest points of `s` — the companion operation of the distance join in
/// the Spark-based spatial engines the paper compares against (Simba,
/// LocationSpark; studied for Sedona in \[9\]).
///
/// Expanding-ring implementation on the same grid substrate: `s` is shuffled
/// once by native cell; queries probe the cells within a search radius that
/// starts at one cell size and doubles each round, until the k-th neighbor
/// distance is within the searched radius (then no unseen point can improve
/// the answer). Per cell only the k best candidates of a query travel back,
/// so result traffic stays `O(|R|·k)` per round.
///
/// The grid resolution comes from `spec` (`grid_factor · eps` cells); `k`
/// must be positive. Ties are broken by neighbor id, making the result
/// deterministic.
pub fn knn_join(
    cluster: &Cluster,
    spec: &JoinSpec,
    k: usize,
    r: Vec<Record>,
    s: Vec<Record>,
) -> KnnOutput {
    knn_join_probe(cluster, spec, k, r, s, true)
}

/// [`knn_join`] with the probe strategy explicit. `annulus_only = true` (the
/// public behavior) routes each pending query only to the cells of the
/// current round's annulus `prev_radius < MINDIST ≤ radius`; `false` is the
/// naive full-disk re-probe (every cell within the radius, every round),
/// kept as the oracle the regression test measures shuffle savings against.
fn knn_join_probe(
    cluster: &Cluster,
    spec: &JoinSpec,
    k: usize,
    r: Vec<Record>,
    s: Vec<Record>,
    annulus_only: bool,
) -> KnnOutput {
    assert!(k > 0, "k must be positive");
    let grid = Grid::new(GridSpec::with_factor(spec.bbox, spec.eps, spec.grid_factor));
    let s_total = s.len();
    let partitioner = HashPartitioner::new(spec.num_partitions);
    let placement: Vec<usize> = (0..spec.num_partitions)
        .map(|p| cluster.node_of_partition(p))
        .collect();
    let mut exec = ExecStats::default();
    let mut shuffle = ShuffleStats::default();

    // Shuffle S once by its native cell.
    let grid_b = cluster.broadcast(grid);
    let rdd_s = Dataset::from_vec(s, spec.input_partitions);
    let (s_parts, ex) = cluster.run_partitioned(rdd_s.into_partitions(), |_, part| {
        part.into_iter()
            .map(|rec| (grid_b.cell_index(grid_b.cell_of(rec.point)) as u64, rec))
            .collect::<Vec<_>>()
    });
    exec.accumulate(&ex);
    let (s_cells, sh, ex) = KeyedDataset::from_partitions(s_parts).shuffle(cluster, &partitioner);
    shuffle.merge(&sh);
    exec.accumulate(&ex);
    // S stays resident; rounds re-join against it.
    let s_parts: Vec<Vec<(u64, Record)>> = s_cells.into_partitions();

    // Per-query best-so-far lists, merged on the driver between rounds.
    let mut best: HashMap<u64, Vec<(f64, u64)>> = HashMap::new();
    let mut pending: Vec<Record> = r;
    for q in &pending {
        best.insert(q.id, Vec::new());
    }
    let (lx, ly) = grid_b.cell_side();
    let mut radius = lx.max(ly);
    let world = (grid_b.bbox().width().powi(2) + grid_b.bbox().height().powi(2)).sqrt();
    let mut rounds = 0usize;
    // Squared radius already probed by every still-pending query (the
    // pending set only shrinks, so all of them share it). Starts below any
    // real MINDIST² so round 1 includes the query's own cell.
    let mut probed2 = -1.0f64;

    while !pending.is_empty() {
        rounds += 1;
        // Route every pending query to the cells of this round's annulus:
        // prev_radius < MINDIST <= radius. Everything inside prev_radius was
        // already probed in earlier rounds — re-sending the query there only
        // manufactures duplicate candidates for the driver-side dedup.
        let rad = radius;
        let prev2 = if annulus_only { probed2 } else { -1.0 };
        let grid_q = grid_b.clone();
        let rdd_q = Dataset::from_vec(pending.clone(), spec.input_partitions);
        let (q_parts, ex) = cluster.run_partitioned(rdd_q.into_partitions(), |_, part| {
            let mut out = Vec::new();
            let mut cells: Vec<CellCoord> = Vec::new();
            for rec in part {
                cells.clear();
                let lo = grid_q.cell_of(Point::new(rec.point.x - rad, rec.point.y - rad));
                let hi = grid_q.cell_of(Point::new(rec.point.x + rad, rec.point.y + rad));
                for cy in lo.y..=hi.y {
                    for cx in lo.x..=hi.x {
                        let c = CellCoord { x: cx, y: cy };
                        let m2 = grid_q.cell_rect(c).mindist2(rec.point);
                        if m2 > prev2 && m2 <= rad * rad {
                            cells.push(c);
                        }
                    }
                }
                for &c in &cells {
                    out.push((grid_q.cell_index(c) as u64, rec.clone()));
                }
            }
            out
        });
        exec.accumulate(&ex);
        let (q_cells, sh, ex) =
            KeyedDataset::from_partitions(q_parts).shuffle(cluster, &partitioner);
        shuffle.merge(&sh);
        exec.accumulate(&ex);

        // Per partition: for each query in a cell, its k best candidates
        // among the cell's S points.
        let tasks: RoundTasks = q_cells
            .into_partitions()
            .into_iter()
            .zip(s_parts.iter().cloned())
            .collect();
        let (cand_parts, ex) = cluster.run_placed(tasks, &placement, |_, (mut qs, mut ss)| {
            qs.sort_unstable_by_key(|x| x.0);
            ss.sort_unstable_by_key(|x| x.0);
            let mut out: Vec<(u64, Vec<(f64, u64)>)> = Vec::new();
            let mut si = 0usize;
            let mut qi = 0usize;
            while qi < qs.len() {
                let cell = qs[qi].0;
                while si < ss.len() && ss[si].0 < cell {
                    si += 1;
                }
                let s_start = si;
                let mut s_end = si;
                while s_end < ss.len() && ss[s_end].0 == cell {
                    s_end += 1;
                }
                while qi < qs.len() && qs[qi].0 == cell {
                    let q = &qs[qi].1;
                    if s_end > s_start {
                        let mut cands: Vec<(f64, u64)> = ss[s_start..s_end]
                            .iter()
                            .map(|(_, srec)| (q.point.dist2(srec.point), srec.id))
                            .collect();
                        cands.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                        cands.truncate(k);
                        out.push((q.id, cands));
                    }
                    qi += 1;
                }
            }
            out
        });
        exec.accumulate(&ex);

        // Driver: merge candidates and decide which queries are resolved.
        for part in cand_parts {
            for (qid, cands) in part {
                let entry = best.get_mut(&qid).expect("query must exist");
                entry.extend(cands);
                entry.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                entry.dedup_by_key(|e| e.1);
                entry.truncate(k);
            }
        }
        let r2 = radius * radius;
        pending.retain(|q| {
            let found = &best[&q.id];
            let complete = found.len() >= k.min(s_total);
            let safe = found
                .len()
                .checked_sub(1)
                .map(|last| found[last].0 <= r2)
                .unwrap_or(false);
            !(complete && (safe || radius >= world))
        });
        probed2 = radius * radius;
        if radius >= world {
            break;
        }
        radius = (radius * 2.0).min(world);
    }

    let mut neighbors: Vec<(u64, Vec<(u64, f64)>)> = best
        .into_iter()
        .map(|(qid, list)| {
            (
                qid,
                list.into_iter().map(|(d2, sid)| (sid, d2.sqrt())).collect(),
            )
        })
        .collect();
    neighbors.sort_unstable_by_key(|x| x.0);
    KnnOutput {
        neighbors,
        rounds,
        shuffle,
        exec,
    }
}

/// Brute-force kNN oracle (ids of the k nearest, ties by id).
pub fn brute_force_knn(r: &[Record], s: &[Record], k: usize) -> Vec<(u64, Vec<u64>)> {
    let mut out: Vec<(u64, Vec<u64>)> = r
        .iter()
        .map(|q| {
            let mut d: Vec<(f64, u64)> = s.iter().map(|p| (q.point.dist2(p.point), p.id)).collect();
            d.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            d.truncate(k);
            (q.id, d.into_iter().map(|(_, id)| id).collect())
        })
        .collect();
    out.sort_unstable_by_key(|x| x.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_records;
    use asj_engine::ClusterConfig;
    use asj_geom::Rect;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::with_threads(3, 2))
    }

    fn records(n: usize, seed: u64, extent: f64) -> Vec<Record> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
            .collect();
        to_records(&pts, 0)
    }

    #[test]
    fn matches_brute_force_uniform() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 1.0).with_partitions(8);
        let r = records(120, 91, 20.0);
        let s = records(300, 92, 20.0);
        for k in [1usize, 3, 10] {
            let expected = brute_force_knn(&r, &s, k);
            let out = knn_join(&c, &spec, k, r.clone(), s.clone());
            let got: Vec<(u64, Vec<u64>)> = out
                .neighbors
                .iter()
                .map(|(q, ns)| (*q, ns.iter().map(|(id, _)| *id).collect()))
                .collect();
            assert_eq!(got, expected, "k={k}");
        }
    }

    #[test]
    fn sparse_queries_need_multiple_rounds() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 40.0, 40.0), 1.0).with_partitions(8);
        // One query in an empty corner, S clustered far away.
        let r = to_records(&[Point::new(1.0, 1.0)], 0);
        let mut rng = StdRng::seed_from_u64(93);
        let s_pts: Vec<Point> = (0..50)
            .map(|_| {
                Point::new(
                    35.0 + rng.gen_range(0.0..4.0),
                    35.0 + rng.gen_range(0.0..4.0),
                )
            })
            .collect();
        let s = to_records(&s_pts, 0);
        let expected = brute_force_knn(&r, &s, 5);
        let out = knn_join(&c, &spec, 5, r, s);
        assert!(out.rounds > 1, "far neighbors require ring expansion");
        let got: Vec<(u64, Vec<u64>)> = out
            .neighbors
            .iter()
            .map(|(q, ns)| (*q, ns.iter().map(|(id, _)| *id).collect()))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn annulus_probing_ships_strictly_less_than_full_disk() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 40.0, 40.0), 1.0).with_partitions(8);
        // Queries spread out, S clustered: several expansion rounds, so the
        // full-disk baseline re-probes ever-larger disks it already covered.
        let r = to_records(
            &[
                Point::new(1.0, 1.0),
                Point::new(20.0, 3.0),
                Point::new(3.0, 22.0),
            ],
            0,
        );
        let mut rng = StdRng::seed_from_u64(93);
        let s_pts: Vec<Point> = (0..60)
            .map(|_| {
                Point::new(
                    33.0 + rng.gen_range(0.0..6.0),
                    33.0 + rng.gen_range(0.0..6.0),
                )
            })
            .collect();
        let s = to_records(&s_pts, 0);
        let full = knn_join_probe(&c, &spec, 5, r.clone(), s.clone(), false);
        let annulus = knn_join_probe(&c, &spec, 5, r, s, true);
        assert!(full.rounds > 1, "scenario must need ring expansion");
        assert_eq!(annulus.rounds, full.rounds, "same rounds, smaller probes");
        assert_eq!(
            annulus.neighbors, full.neighbors,
            "probe strategy must not change the answer"
        );
        assert!(
            annulus.shuffle.records < full.shuffle.records,
            "annulus probing must ship strictly fewer records: {} vs {}",
            annulus.shuffle.records,
            full.shuffle.records
        );
        assert!(annulus.shuffle.total_bytes() < full.shuffle.total_bytes());
    }

    #[test]
    fn k_larger_than_s_returns_everything() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0).with_partitions(4);
        let r = records(5, 94, 10.0);
        let s = records(3, 95, 10.0);
        let out = knn_join(&c, &spec, 10, r, s);
        for (_, ns) in &out.neighbors {
            assert_eq!(ns.len(), 3);
        }
    }

    #[test]
    fn distances_are_ascending() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 1.0).with_partitions(8);
        let r = records(50, 96, 20.0);
        let s = records(200, 97, 20.0);
        let out = knn_join(&c, &spec, 4, r, s);
        assert_eq!(out.neighbors.len(), 50);
        for (_, ns) in &out.neighbors {
            assert!(ns.windows(2).all(|w| w[0].1 <= w[1].1));
        }
    }

    #[test]
    fn clustered_data_matches_brute_force() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 30.0, 30.0), 1.0).with_partitions(12);
        let mut rng = StdRng::seed_from_u64(98);
        let mut pts = Vec::new();
        for _ in 0..6 {
            let cx: f64 = rng.gen_range(2.0..28.0);
            let cy: f64 = rng.gen_range(2.0..28.0);
            for _ in 0..40 {
                pts.push(Point::new(
                    (cx + rng.gen_range(-1.0..1.0)).clamp(0.0, 30.0),
                    (cy + rng.gen_range(-1.0..1.0)).clamp(0.0, 30.0),
                ));
            }
        }
        let s = to_records(&pts, 0);
        let r = records(60, 99, 30.0);
        let expected = brute_force_knn(&r, &s, 7);
        let out = knn_join(&c, &spec, 7, r, s);
        let got: Vec<(u64, Vec<u64>)> = out
            .neighbors
            .iter()
            .map(|(q, ns)| (*q, ns.iter().map(|(id, _)| *id).collect()))
            .collect();
        assert_eq!(got, expected);
    }
}

#[cfg(test)]
mod kdtree_oracle_tests {
    use super::*;
    use crate::to_records;
    use asj_engine::ClusterConfig;
    use asj_geom::Rect;
    use asj_index::KdTree;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Independent cross-check: the distributed kNN join against the k-d
    /// tree's exact kNN (a different algorithm from the brute-force oracle).
    #[test]
    fn knn_join_matches_kdtree() {
        let c = Cluster::new(ClusterConfig::with_threads(3, 2));
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 25.0, 25.0), 1.0).with_partitions(8);
        let mut rng = StdRng::seed_from_u64(123);
        let pts = |rng: &mut StdRng, n: usize| -> Vec<Point> {
            (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..25.0), rng.gen_range(0.0..25.0)))
                .collect()
        };
        let r = to_records(&pts(&mut rng, 80), 0);
        let s = to_records(&pts(&mut rng, 400), 0);
        let tree = KdTree::build(s.iter().map(|rec| (rec.point, rec.id)).collect());
        let k = 5;
        let out = knn_join(&c, &spec, k, r.clone(), s);
        for (qid, ns) in &out.neighbors {
            let q = &r[*qid as usize];
            let expect = tree.nearest(q.point, k);
            assert_eq!(ns.len(), expect.len());
            for ((_, got_d), (want_d2, _)) in ns.iter().zip(&expect) {
                assert!(
                    (got_d * got_d - want_d2).abs() < 1e-9,
                    "query {qid}: {got_d} vs {}",
                    want_d2.sqrt()
                );
            }
        }
    }
}
