use crate::pipeline::{join_stage, map_stage};
use crate::{JoinOutput, JoinSpec, Record};
use asj_engine::{Cluster, Dataset, ExecStats, HashPartitioner, JobMetrics};
use asj_grid::{Grid, GridSpec};

/// Which input PBSM replicates universally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicateSide {
    R,
    S,
}

impl ReplicateSide {
    pub fn name(self) -> &'static str {
        match self {
            ReplicateSide::R => "UNI(R)",
            ReplicateSide::S => "UNI(S)",
        }
    }
}

/// The PBSM adaptation of the paper's evaluation: a `2ε` grid (same
/// resolution as the adaptive algorithms) with **universal replication** of
/// one input — every point of the chosen set is copied to each cell within
/// distance ε; the other set is single-assigned. Partitions are distributed
/// with the hash partitioner, as in the paper.
pub fn pbsm_join(
    cluster: &Cluster,
    spec: &JoinSpec,
    side: ReplicateSide,
    r: Vec<Record>,
    s: Vec<Record>,
) -> JoinOutput {
    let grid = Grid::new(GridSpec::with_factor(spec.bbox, spec.eps, spec.grid_factor));
    grid_baseline_join(cluster, spec, grid, side.name(), side, r, s)
}

/// The ε-grid baseline: `ε×ε` cells, replicating the input with the fewest
/// objects. The finer grid multiplies the number of cells a point is within
/// ε of, which is exactly the excessive-replication behaviour the paper
/// reports (up to 7.1× more replication, out-of-memory at large scales).
pub fn eps_grid_join(
    cluster: &Cluster,
    spec: &JoinSpec,
    r: Vec<Record>,
    s: Vec<Record>,
) -> JoinOutput {
    let grid = Grid::new(GridSpec::with_factor(spec.bbox, spec.eps, 1.0));
    let side = if r.len() <= s.len() {
        ReplicateSide::R
    } else {
        ReplicateSide::S
    };
    grid_baseline_join(cluster, spec, grid, "eps-grid", side, r, s)
}

fn grid_baseline_join(
    cluster: &Cluster,
    spec: &JoinSpec,
    grid: Grid,
    name: &str,
    side: ReplicateSide,
    r: Vec<Record>,
    s: Vec<Record>,
) -> JoinOutput {
    let broadcast_bytes = grid.broadcast_bytes();
    let rdd_r = Dataset::from_vec(r, spec.input_partitions);
    let rdd_s = Dataset::from_vec(s, spec.input_partitions);
    let mut construction = ExecStats::default();

    let grid_b = cluster.broadcast(grid);
    // Replicated side: native cell + every cell within eps. Single side:
    // native cell only.
    let replicated_assign = {
        let grid_b = grid_b.clone();
        move |p: asj_geom::Point, cells: &mut Vec<u64>, scratch: &mut Vec<asj_grid::CellCoord>| {
            scratch.clear();
            scratch.push(grid_b.cell_of(p));
            grid_b.push_cells_within_eps(p, scratch);
            cells.extend(scratch.iter().map(|&c| grid_b.cell_index(c) as u64));
        }
    };
    let single_assign = {
        let grid_b = grid_b.clone();
        move |p: asj_geom::Point, cells: &mut Vec<u64>, _: &mut Vec<asj_grid::CellCoord>| {
            cells.push(grid_b.cell_index(grid_b.cell_of(p)) as u64);
        }
    };

    let (keyed_r, rep_r, ex) = match side {
        ReplicateSide::R => map_stage(cluster, rdd_r, &replicated_assign),
        ReplicateSide::S => map_stage(cluster, rdd_r, &single_assign),
    };
    construction.accumulate(&ex);
    let (keyed_s, rep_s, ex) = match side {
        ReplicateSide::R => map_stage(cluster, rdd_s, &single_assign),
        ReplicateSide::S => map_stage(cluster, rdd_s, &replicated_assign),
    };
    construction.accumulate(&ex);

    let partitioner = HashPartitioner::new(spec.num_partitions);
    let out = join_stage(cluster, spec, keyed_r, keyed_s, &partitioner);
    construction.accumulate(&out.shuffle_exec);

    JoinOutput {
        algorithm: name.to_string(),
        pairs: out.pairs,
        result_count: out.result_count,
        candidates: out.candidates,
        replicated: [rep_r, rep_s],
        metrics: JobMetrics {
            shuffle: out.shuffle,
            construction,
            join: out.join_exec,
            driver: std::time::Duration::ZERO,
            broadcast_bytes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_records;
    use asj_engine::ClusterConfig;
    use asj_geom::{Point, Rect};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::with_threads(4, 2))
    }

    fn random_records(n: usize, seed: u64, extent: f64) -> Vec<Record> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
            .collect();
        to_records(&pts, 0)
    }

    #[test]
    fn pbsm_both_sides_match_brute_force() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 1.0).with_partitions(8);
        let r = random_records(400, 11, 20.0);
        let s = random_records(400, 12, 20.0);
        let expected = crate::oracle::brute_force_pairs(&r, &s, spec.eps);
        for side in [ReplicateSide::R, ReplicateSide::S] {
            let out = pbsm_join(&c, &spec, side, r.clone(), s.clone());
            let mut got = out.pairs.clone();
            got.sort_unstable();
            assert_eq!(got, expected, "{}", side.name());
            assert!(
                out.metrics.broadcast_bytes > 0,
                "grid broadcast must be metered"
            );
        }
    }

    #[test]
    fn pbsm_replicates_only_chosen_side() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 1.0).with_partitions(4);
        let r = random_records(300, 13, 20.0);
        let s = random_records(300, 14, 20.0);
        let out_r = pbsm_join(&c, &spec, ReplicateSide::R, r.clone(), s.clone());
        assert!(out_r.replicated[0] > 0, "R must be replicated");
        assert_eq!(out_r.replicated[1], 0, "S must not be replicated");
        let out_s = pbsm_join(&c, &spec, ReplicateSide::S, r, s);
        assert_eq!(out_s.replicated[0], 0);
        assert!(out_s.replicated[1] > 0);
    }

    #[test]
    fn eps_grid_matches_brute_force_and_replicates_more() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 1.0).with_partitions(8);
        let r = random_records(300, 15, 20.0);
        let s = random_records(350, 16, 20.0);
        let expected = crate::oracle::brute_force_pairs(&r, &s, spec.eps);
        let out = eps_grid_join(&c, &spec, r.clone(), s.clone());
        let mut got = out.pairs.clone();
        got.sort_unstable();
        assert_eq!(got, expected);
        assert!(
            out.metrics.broadcast_bytes > 0,
            "grid broadcast must be metered"
        );
        // R is smaller, so R is the replicated side.
        assert!(out.replicated[0] > 0);
        assert_eq!(out.replicated[1], 0);
        // The finer grid replicates more than PBSM on the same data.
        let pbsm = pbsm_join(&c, &spec, ReplicateSide::R, r, s);
        assert!(
            out.replicated[0] > pbsm.replicated[0],
            "eps-grid {} vs PBSM {}",
            out.replicated[0],
            pbsm.replicated[0]
        );
    }
}
