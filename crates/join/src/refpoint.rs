use crate::pipeline::map_stage;
use crate::{JoinOutput, JoinSpec, Record};
use asj_engine::{Cluster, Dataset, ExecStats, HashPartitioner, JobMetrics, Partitioner};
use asj_grid::{Grid, GridSpec};
use asj_index::kernels;

/// PBSM with **both** inputs replicated and the *reference-point duplicate
/// avoidance* technique of Dittrich & Seeger \[5\] — the classic MASJ
/// alternative the paper's related-work section contrasts against
/// agreement-based replication.
///
/// Every point of both sets is assigned to each cell within ε, so a result
/// pair may be co-located in up to 4 cells. Instead of deduplicating after
/// the join, each pair is reported only by the cell that contains the pair's
/// *reference point* — the midpoint of the two points. The midpoint is
/// within `d(r,s)/2 ≤ ε/2` of both endpoints, so both are guaranteed to be
/// replicated into that cell, and exactly one cell contains it: correct and
/// duplicate-free, at the price of replicating *both* inputs.
pub fn pbsm_refpoint_join(
    cluster: &Cluster,
    spec: &JoinSpec,
    r: Vec<Record>,
    s: Vec<Record>,
) -> JoinOutput {
    let grid = Grid::new(GridSpec::with_factor(spec.bbox, spec.eps, spec.grid_factor));
    let broadcast_bytes = grid.broadcast_bytes();
    let rdd_r = Dataset::from_vec(r, spec.input_partitions);
    let rdd_s = Dataset::from_vec(s, spec.input_partitions);
    let mut construction = ExecStats::default();

    let grid_b = cluster.broadcast(grid);
    let assign = {
        let grid_b = grid_b.clone();
        move |p: asj_geom::Point, cells: &mut Vec<u64>, scratch: &mut Vec<asj_grid::CellCoord>| {
            scratch.clear();
            scratch.push(grid_b.cell_of(p));
            grid_b.push_cells_within_eps(p, scratch);
            cells.extend(scratch.iter().map(|&c| grid_b.cell_index(c) as u64));
        }
    };
    let (keyed_r, rep_r, ex) = map_stage(cluster, rdd_r, &assign);
    construction.accumulate(&ex);
    let (keyed_s, rep_s, ex) = map_stage(cluster, rdd_s, &assign);
    construction.accumulate(&ex);

    let partitioner = HashPartitioner::new(spec.num_partitions);
    let (keyed_r, sh_r, ex_r) = keyed_r.shuffle(cluster, &partitioner);
    let (keyed_s, sh_s, ex_s) = keyed_s.shuffle(cluster, &partitioner);
    let mut shuffle = sh_r;
    shuffle.merge(&sh_s);
    construction.accumulate(&ex_r);
    construction.accumulate(&ex_s);

    let placement: Vec<usize> = (0..partitioner.num_partitions())
        .map(|p| cluster.node_of_partition(p))
        .collect();
    let eps = spec.eps;
    let collect = spec.collect_pairs;
    let kernel = spec.kernel;
    let model = cluster.kernel_cost_model(kernels::calibrate_cost_model);
    // Per-partition count accumulators, committed with the task result (a
    // retried attempt would double-count shared atomics). The secondary sort
    // feeds each cell group to the kernel already in ascending-x order.
    let (joined, counts, join_exec) = keyed_r.cogroup_join_sorted_fold(
        cluster,
        keyed_s,
        &placement,
        |r: &Record| r.point.x,
        |s: &Record| s.point.x,
        |cell, rs: &[Record], ss: &[Record], out: &mut Vec<(u64, u64)>, acc: &mut (u64, u64)| {
            let mut local_results = 0u64;
            let outcome = kernels::local_join(
                kernel,
                &model,
                eps,
                true,
                rs,
                ss,
                |r| r.point,
                |s| s.point,
                |i, j| {
                    // Reference-point test: report only in the cell holding
                    // the midpoint of the pair.
                    let mid = asj_geom::Point::new(
                        (rs[i].point.x + ss[j].point.x) * 0.5,
                        (rs[i].point.y + ss[j].point.y) * 0.5,
                    );
                    if grid_b.cell_index(grid_b.cell_of(mid)) as u64 == cell {
                        local_results += 1;
                        if collect {
                            out.push((rs[i].id, ss[j].id));
                        }
                    }
                },
            );
            acc.0 += outcome.stats.candidates;
            acc.1 += local_results;
        },
    );

    JoinOutput {
        algorithm: "PBSM+refpoint".to_string(),
        pairs: joined.collect(),
        result_count: counts.iter().map(|c| c.1).sum(),
        candidates: counts.iter().map(|c| c.0).sum(),
        replicated: [rep_r, rep_s],
        metrics: JobMetrics {
            shuffle,
            construction,
            join: join_exec,
            driver: std::time::Duration::ZERO,
            broadcast_bytes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pbsm_join, to_records, ReplicateSide};
    use asj_engine::ClusterConfig;
    use asj_geom::{Point, Rect};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn records(n: usize, seed: u64) -> Vec<Record> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..18.0), rng.gen_range(0.0..18.0)))
            .collect();
        to_records(&pts, 0)
    }

    #[test]
    fn matches_brute_force() {
        let c = Cluster::new(ClusterConfig::with_threads(4, 2));
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 18.0, 18.0), 1.0).with_partitions(8);
        let r = records(400, 61);
        let s = records(400, 62);
        let expected = crate::oracle::brute_force_pairs(&r, &s, spec.eps);
        let out = pbsm_refpoint_join(&c, &spec, r, s);
        let mut got = out.pairs.clone();
        got.sort_unstable();
        assert_eq!(got, expected);
        assert_eq!(out.algorithm, "PBSM+refpoint");
        assert!(
            out.metrics.broadcast_bytes > 0,
            "grid broadcast must be metered"
        );
    }

    #[test]
    fn replicates_both_sides_and_more_than_single_side_pbsm() {
        let c = Cluster::new(ClusterConfig::with_threads(4, 2));
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 18.0, 18.0), 1.0)
            .with_partitions(8)
            .counting_only();
        let r = records(500, 63);
        let s = records(500, 64);
        let refp = pbsm_refpoint_join(&c, &spec, r.clone(), s.clone());
        assert!(
            refp.replicated[0] > 0 && refp.replicated[1] > 0,
            "both sides replicate"
        );
        let single = pbsm_join(&c, &spec, ReplicateSide::R, r, s);
        assert!(
            refp.replicated_total() > single.replicated_total(),
            "MASJ with both sides replicated must move more copies"
        );
        assert_eq!(refp.result_count, single.result_count);
    }

    #[test]
    fn pair_on_cell_border_is_reported_once() {
        // Pair whose midpoint lies exactly on a cell border: the half-open
        // cell convention must attribute it to exactly one cell.
        let c = Cluster::new(ClusterConfig::with_threads(2, 1));
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0).with_partitions(4);
        // Cells of side 2.5: border at x = 2.5; midpoint = (2.5, 1.0).
        let r = to_records(&[Point::new(2.2, 1.0)], 0);
        let s = to_records(&[Point::new(2.8, 1.0)], 0);
        let out = pbsm_refpoint_join(&c, &spec, r, s);
        assert_eq!(out.pairs, vec![(0, 0)]);
    }
}
