use crate::pipeline::{join_stage, map_stage};
use crate::{JoinOutput, JoinSpec, Record};
use asj_core::{AgreementGraph, AgreementPolicy, GridSample, SetLabel};
use asj_engine::{Cluster, Dataset, HashPartitioner, JobMetrics, KeyedDataset};
use asj_grid::{Grid, GridSpec};
use std::time::Instant;

/// The Table-6 variant: the *simplified, non-duplicate-free* assignment
/// (agreement types without edge marking/locking/supplementary areas) joined
/// as usual, followed by an explicit **distributed deduplication operator**
/// (Spark's `distinct`, run in parallel because collecting the result on the
/// driver "is infeasible for really large outputs").
///
/// The returned `result_count` is the deduplicated count; `candidates`
/// includes the duplicated work, and the dedup shuffle is folded into the
/// job's shuffle/join metrics — exactly the cost the paper measures to be
/// > 7× the duplicate-free approach.
pub fn adaptive_join_dedup(
    cluster: &Cluster,
    spec: &JoinSpec,
    policy: AgreementPolicy,
    r: Vec<Record>,
    s: Vec<Record>,
) -> JoinOutput {
    let grid = Grid::new(GridSpec::with_factor(spec.bbox, spec.eps, spec.grid_factor));
    let rdd_r = Dataset::from_vec(r, spec.input_partitions);
    let rdd_s = Dataset::from_vec(s, spec.input_partitions);
    let mut construction = asj_engine::ExecStats::default();

    let (sample_r, ex) = rdd_r.sample(cluster, spec.sample_fraction, spec.seed);
    construction.accumulate(&ex);
    let (sample_s, ex) = rdd_s.sample(cluster, spec.sample_fraction, spec.seed ^ 0x5151);
    construction.accumulate(&ex);

    let driver_start = Instant::now();
    let sample = GridSample::from_points(
        &grid,
        sample_r.iter().map(|rec| rec.point),
        sample_s.iter().map(|rec| rec.point),
    );
    // No Algorithm 1: the graph keeps its duplicate-producing triangles.
    let graph = AgreementGraph::build_unmarked(&grid, &sample, policy);
    let broadcast_bytes = graph.broadcast_bytes();
    let driver = driver_start.elapsed();

    let graph_b = cluster.broadcast(graph);
    let assign = |label: SetLabel| {
        let graph_b = graph_b.clone();
        move |p: asj_geom::Point, cells: &mut Vec<u64>, scratch: &mut Vec<asj_grid::CellCoord>| {
            graph_b.assign_naive(p, label, scratch);
            cells.extend(scratch.iter().map(|&c| graph_b.grid().cell_index(c) as u64));
        }
    };
    let (keyed_r, rep_r, ex) = map_stage(cluster, rdd_r, assign(SetLabel::R));
    construction.accumulate(&ex);
    let (keyed_s, rep_s, ex) = map_stage(cluster, rdd_s, assign(SetLabel::S));
    construction.accumulate(&ex);

    // Join with duplicates: pairs must be materialized for the distinct
    // operator regardless of `collect_pairs`.
    let mut collect_spec = spec.clone();
    collect_spec.collect_pairs = true;
    let partitioner = HashPartitioner::new(spec.num_partitions);
    let out = join_stage(cluster, &collect_spec, keyed_r, keyed_s, &partitioner);
    construction.accumulate(&out.shuffle_exec);

    // Distributed distinct: shuffle pairs by their R id, then sort + dedup
    // each partition.
    let duplicated_count = out.result_count;
    let mut shuffle = out.shuffle;
    let mut join_exec = out.join_exec;
    let deduped_parts = cluster.recorder().clone().phase_attrs("dedup", |attrs| {
        let pair_data =
            KeyedDataset::from_partitions(vec![out.pairs.into_iter().collect::<Vec<(u64, u64)>>()]);
        let (pair_data, dedup_shuffle, ex) =
            pair_data.shuffle_stage(cluster, &partitioner, "dedup");
        shuffle.merge(&dedup_shuffle);
        join_exec.accumulate(&ex);
        let (deduped_parts, ex) =
            cluster.run_partitioned_stage("dedup", pair_data.into_partitions(), |_, mut part| {
                part.sort_unstable();
                part.dedup();
                part
            });
        join_exec.accumulate(&ex);
        *attrs = attrs.records(duplicated_count);
        deduped_parts
    });

    let result_count: u64 = deduped_parts.iter().map(|p| p.len() as u64).sum();
    let pairs: Vec<(u64, u64)> = if spec.collect_pairs {
        deduped_parts.into_iter().flatten().collect()
    } else {
        Vec::new()
    };

    JoinOutput {
        algorithm: format!("{}+dedup", policy.name()),
        pairs,
        result_count,
        candidates: out.candidates.max(duplicated_count),
        replicated: [rep_r, rep_s],
        metrics: JobMetrics {
            shuffle,
            construction,
            join: join_exec,
            driver,
            broadcast_bytes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{adaptive_join, to_records};
    use asj_engine::ClusterConfig;
    use asj_geom::{Point, Rect};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::with_threads(4, 2))
    }

    #[test]
    fn dedup_variant_matches_duplicate_free_results() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 1.0)
            .with_partitions(8)
            .with_sample_fraction(0.4);
        let mut rng = StdRng::seed_from_u64(31);
        let pts = |rng: &mut StdRng, n: usize| -> Vec<Point> {
            (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)))
                .collect()
        };
        let r = to_records(&pts(&mut rng, 400), 0);
        let s = to_records(&pts(&mut rng, 400), 0);
        let clean = adaptive_join(&c, &spec, AgreementPolicy::Lpib, r.clone(), s.clone());
        let dedup = adaptive_join_dedup(&c, &spec, AgreementPolicy::Lpib, r, s);
        let mut a = clean.pairs.clone();
        let mut b = dedup.pairs.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "dedup variant must produce the same result set");
        assert_eq!(dedup.algorithm, "LPiB+dedup");
        // The naive assignment should have produced at least as much work.
        assert!(dedup.candidates >= clean.result_count);
        assert!(
            dedup.metrics.broadcast_bytes > 0,
            "graph broadcast must be metered"
        );
    }
}
