use crate::{JoinOutput, JoinSpec};
use asj_engine::{
    ensure_remaining, Cluster, Dataset, ExecStats, HashPartitioner, JobMetrics, KeyedDataset,
    Partitioner, Wire, WireError,
};
use asj_geom::{Point, Polygon, Polyline, Shape};
use asj_grid::{Grid, GridSpec};
use asj_index::kernels;
use bytes::{Buf, BufMut};

/// A spatial object with extent: the generalization beyond point data that
/// the paper defers to future work (§8: "extend the abstraction … for other
/// spatial objects, such as polygons and polylines").
#[derive(Debug, Clone, PartialEq)]
pub struct ExtentRecord {
    pub id: u64,
    pub shape: Shape,
}

impl ExtentRecord {
    pub fn new(id: u64, shape: Shape) -> Self {
        ExtentRecord { id, shape }
    }
}

fn encode_points(pts: &[Point], buf: &mut impl BufMut) {
    buf.put_u32_le(pts.len() as u32);
    for p in pts {
        buf.put_f64_le(p.x);
        buf.put_f64_le(p.y);
    }
}

fn decode_points(buf: &mut impl Buf) -> Result<Vec<Point>, WireError> {
    let n = u32::try_decode(buf)? as usize;
    // Validate against the remaining bytes before allocating, so a corrupt
    // count cannot trigger a giant allocation or an underflow panic.
    ensure_remaining(buf, 16 * n)?;
    Ok((0..n)
        .map(|_| Point::new(buf.get_f64_le(), buf.get_f64_le()))
        .collect())
}

impl Wire for ExtentRecord {
    fn encoded_size(&self) -> usize {
        let vertices = match &self.shape {
            Shape::Point(_) => 1,
            Shape::Polyline(l) => l.points().len(),
            Shape::Polygon(g) => g.ring().len(),
        };
        8 + 1 + 4 + 16 * vertices
    }

    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.id);
        match &self.shape {
            Shape::Point(p) => {
                buf.put_u8(0);
                encode_points(std::slice::from_ref(p), buf);
            }
            Shape::Polyline(l) => {
                buf.put_u8(1);
                encode_points(l.points(), buf);
            }
            Shape::Polygon(g) => {
                buf.put_u8(2);
                encode_points(g.ring(), buf);
            }
        }
    }

    fn try_decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let id = u64::try_decode(buf)?;
        let tag = u8::try_decode(buf)?;
        let pts = decode_points(buf)?;
        let shape = match tag {
            0 => Shape::Point(
                *pts.first()
                    .ok_or_else(|| WireError::Malformed("point shape with no vertex".into()))?,
            ),
            1 => Shape::Polyline(Polyline::new(pts)),
            2 => Shape::Polygon(Polygon::new(pts)),
            other => {
                return Err(WireError::Malformed(format!("unknown shape tag {other}")));
            }
        };
        Ok(ExtentRecord { id, shape })
    }
}

/// Distributed ε-distance join over objects **with extent** (points,
/// polylines, polygons).
///
/// MASJ scheme with reference-point duplicate avoidance, the classical
/// technique for extended objects (Dittrich & Seeger; used by SJMR and
/// Sedona): side A is assigned to every grid cell intersecting its envelope
/// expanded by ε, side B to every cell intersecting its envelope. For a
/// result pair the two regions overlap, and the pair is reported only by the
/// cell containing the *reference point* — the min-corner of
/// `env(a).expand(ε) ∩ env(b)` — which both sides are guaranteed to be
/// assigned to. Envelope intersection pre-filters the exact (segment-level)
/// distance refinement.
///
/// Adaptive agreements for extended objects remain open research (the point
/// framework's quartet geometry assumes an object occupies one native cell);
/// this entry point provides the substrate and baseline the generalization
/// would be measured against.
pub fn extent_join(
    cluster: &Cluster,
    spec: &JoinSpec,
    a: Vec<ExtentRecord>,
    b: Vec<ExtentRecord>,
) -> JoinOutput {
    let grid = Grid::new(GridSpec::with_factor(spec.bbox, spec.eps, spec.grid_factor));
    let broadcast_bytes = grid.broadcast_bytes();
    let eps = spec.eps;
    let mut construction = ExecStats::default();
    let grid_b = cluster.broadcast(grid);

    let route = |expand: f64| {
        let grid_b = grid_b.clone();
        move |part: Vec<ExtentRecord>| -> (Vec<(u64, ExtentRecord)>, u64) {
            let mut out = Vec::with_capacity(part.len());
            let mut cells = Vec::with_capacity(8);
            let mut records = 0u64;
            for rec in part {
                records += 1;
                cells.clear();
                grid_b.push_cells_intersecting(rec.shape.envelope().expand(expand), &mut cells);
                debug_assert!(!cells.is_empty());
                for &c in &cells[1..] {
                    out.push((grid_b.cell_index(c) as u64, rec.clone()));
                }
                let first = cells[0];
                out.push((grid_b.cell_index(first) as u64, rec));
            }
            (out, records)
        }
    };
    let map_side = |input: Vec<ExtentRecord>,
                    expand: f64,
                    construction: &mut ExecStats|
     -> (KeyedDataset<u64, ExtentRecord>, u64) {
        let ds = Dataset::from_vec(input, spec.input_partitions);
        let records: u64 = ds.len() as u64;
        let f = route(expand);
        let (parts, ex) = cluster.run_partitioned(ds.into_partitions(), |_, part| f(part).0);
        construction.accumulate(&ex);
        let keyed = KeyedDataset::from_partitions(parts);
        let replicas = keyed.len() as u64 - records;
        (keyed, replicas)
    };

    let (keyed_a, rep_a) = map_side(a, eps, &mut construction);
    let (keyed_b, rep_b) = map_side(b, 0.0, &mut construction);

    let partitioner = HashPartitioner::new(spec.num_partitions);
    let (keyed_a, sh_a, ex_a) = keyed_a.shuffle(cluster, &partitioner);
    let (keyed_b, sh_b, ex_b) = keyed_b.shuffle(cluster, &partitioner);
    let mut shuffle = sh_a;
    shuffle.merge(&sh_b);
    construction.accumulate(&ex_a);
    construction.accumulate(&ex_b);

    let placement: Vec<usize> = (0..partitioner.num_partitions())
        .map(|p| cluster.node_of_partition(p))
        .collect();
    let collect = spec.collect_pairs;
    let e2 = eps * eps;
    let kernel = spec.kernel;
    let model = cluster.kernel_cost_model(kernels::calibrate_cost_model);
    // Counts fold into per-partition accumulators committed with the task
    // result — safe under retries and speculative re-execution. The envelope
    // kernel enumerates candidate pairs (all of them under a nested loop,
    // only overlap-surviving ones under the sweep); the callback applies the
    // envelope filter, the reference-point dedup and the exact distance.
    let (joined, counts, join_exec) = keyed_a.cogroup_join_fold(
        cluster,
        keyed_b,
        &placement,
        |cell,
         avs: &[ExtentRecord],
         bvs: &[ExtentRecord],
         out: &mut Vec<(u64, u64)>,
         acc: &mut (u64, u64)| {
            let outcome = kernels::local_join_rects(
                kernel,
                &model,
                eps,
                avs,
                bvs,
                |a| a.shape.envelope().expand(eps),
                |b| b.shape.envelope(),
                |i, j| {
                    let (ra, rb) = (&avs[i], &bvs[j]);
                    let ea = ra.shape.envelope().expand(eps);
                    let eb = rb.shape.envelope();
                    if !ea.intersects(&eb) {
                        return false;
                    }
                    // Reference-point test before the expensive distance.
                    let refp = Point::new(ea.min_x.max(eb.min_x), ea.min_y.max(eb.min_y));
                    if grid_b.cell_index(grid_b.cell_of(refp)) as u64 != cell {
                        return false;
                    }
                    if ra.shape.dist2(&rb.shape) <= e2 {
                        if collect {
                            out.push((ra.id, rb.id));
                        }
                        true
                    } else {
                        false
                    }
                },
            );
            acc.0 += outcome.stats.candidates;
            acc.1 += outcome.stats.results;
        },
    );

    JoinOutput {
        algorithm: "extent-join".to_string(),
        pairs: joined.collect(),
        result_count: counts.iter().map(|c| c.1).sum(),
        candidates: counts.iter().map(|c| c.0).sum(),
        replicated: [rep_a, rep_b],
        metrics: JobMetrics {
            shuffle,
            construction,
            join: join_exec,
            driver: std::time::Duration::ZERO,
            broadcast_bytes,
        },
    }
}

/// Brute-force oracle for the extent join.
pub fn brute_force_extent_pairs(
    a: &[ExtentRecord],
    b: &[ExtentRecord],
    eps: f64,
) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for ra in a {
        for rb in b {
            if ra.shape.within_eps(&rb.shape, eps) {
                out.push((ra.id, rb.id));
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_engine::ClusterConfig;
    use asj_geom::Rect;
    use bytes::BytesMut;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_shape(rng: &mut StdRng, extent: f64) -> Shape {
        let base = Point::new(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent));
        match rng.gen_range(0..3) {
            0 => Shape::Point(base),
            1 => {
                let mut pts = vec![base];
                let mut p = base;
                for _ in 0..rng.gen_range(1..5) {
                    p = Point::new(
                        (p.x + rng.gen_range(-1.0..1.0)).clamp(0.0, extent),
                        (p.y + rng.gen_range(-1.0..1.0)).clamp(0.0, extent),
                    );
                    pts.push(p);
                }
                Shape::Polyline(Polyline::new(pts))
            }
            _ => {
                let w = rng.gen_range(0.1..1.5);
                let h = rng.gen_range(0.1..1.5);
                Shape::Polygon(Polygon::from_rect(Rect::new(
                    base.x.min(extent - w),
                    base.y.min(extent - h),
                    base.x.min(extent - w) + w,
                    base.y.min(extent - h) + h,
                )))
            }
        }
    }

    fn random_records(n: usize, seed: u64, extent: f64) -> Vec<ExtentRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| ExtentRecord::new(i as u64, random_shape(&mut rng, extent)))
            .collect()
    }

    #[test]
    fn wire_roundtrip_for_all_shapes() {
        for rec in random_records(50, 5, 10.0) {
            let mut buf = BytesMut::new();
            rec.encode(&mut buf);
            assert_eq!(buf.len(), rec.encoded_size());
            let back = ExtentRecord::decode(&mut buf.freeze());
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn malformed_extent_bytes_decode_to_errors() {
        // Unknown shape tag.
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.put_u8(9);
        buf.put_u32_le(0);
        assert!(matches!(
            ExtentRecord::try_decode(&mut buf.freeze()),
            Err(WireError::Malformed(_))
        ));
        // Point shape with zero vertices.
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.put_u8(0);
        buf.put_u32_le(0);
        assert!(matches!(
            ExtentRecord::try_decode(&mut buf.freeze()),
            Err(WireError::Malformed(_))
        ));
        // Corrupt vertex count far beyond the buffer.
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.put_u8(2);
        buf.put_u32_le(u32::MAX);
        assert!(matches!(
            ExtentRecord::try_decode(&mut buf.freeze()),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn matches_brute_force_on_mixed_shapes() {
        let c = Cluster::new(ClusterConfig::with_threads(4, 2));
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 0.7).with_partitions(12);
        let a = random_records(150, 81, 20.0);
        let b = random_records(150, 82, 20.0);
        let expected = brute_force_extent_pairs(&a, &b, spec.eps);
        assert!(!expected.is_empty());
        let out = extent_join(&c, &spec, a, b);
        let mut got = out.pairs.clone();
        got.sort_unstable();
        assert_eq!(got, expected);
        assert_eq!(out.algorithm, "extent-join");
        assert!(out.replicated[0] > 0, "expanded envelopes must replicate");
        assert!(
            out.metrics.broadcast_bytes > 0,
            "grid broadcast must be metered"
        );
    }

    #[test]
    fn intersecting_objects_are_found_at_eps_zero_distance() {
        let c = Cluster::new(ClusterConfig::with_threads(2, 1));
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 0.5).with_partitions(4);
        // A polyline crossing a polygon: distance 0 regardless of eps.
        let a = vec![ExtentRecord::new(
            0,
            Shape::Polyline(Polyline::new(vec![
                Point::new(1.0, 3.0),
                Point::new(6.0, 3.0),
            ])),
        )];
        let b = vec![ExtentRecord::new(
            0,
            Shape::Polygon(Polygon::from_rect(Rect::new(3.0, 1.0, 4.5, 5.0))),
        )];
        let out = extent_join(&c, &spec, a, b);
        assert_eq!(out.pairs, vec![(0, 0)]);
    }

    #[test]
    fn large_objects_spanning_many_cells_report_once() {
        let c = Cluster::new(ClusterConfig::with_threads(2, 2));
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 0.5).with_partitions(8);
        // A long river crossing most of the space, near a big park.
        let a = vec![ExtentRecord::new(
            7,
            Shape::Polyline(Polyline::new(vec![
                Point::new(0.5, 10.0),
                Point::new(8.0, 11.0),
                Point::new(19.5, 9.5),
            ])),
        )];
        let b = vec![ExtentRecord::new(
            9,
            Shape::Polygon(Polygon::from_rect(Rect::new(5.0, 11.2, 15.0, 18.0))),
        )];
        let expected = brute_force_extent_pairs(&a, &b, spec.eps);
        let out = extent_join(&c, &spec, a, b);
        let mut got = out.pairs.clone();
        got.sort_unstable();
        assert_eq!(got, expected, "exactly-once despite multi-cell assignment");
    }
}
