use asj_engine::{JobMetrics, Placement};
use asj_geom::Rect;

/// Partition-local join kernel (ablation A1 in DESIGN.md). Re-exported from
/// `asj-core`, where the calibrated [`asj_core::KernelCostModel`] resolves
/// the default `Auto` per cell group.
pub use asj_core::LocalKernel;

/// Parameters of one distributed ε-distance join run, mirroring Table 3 of
/// the paper (defaults in **bold** there are defaults here).
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// Minimum bounding rectangle of the data space (`m` in Algorithm 5).
    pub bbox: Rect,
    /// Distance threshold ε.
    pub eps: f64,
    /// Grid resolution factor (cell side ≥ `grid_factor · ε`); the paper
    /// uses 2 and sweeps 2–5 in Fig. 15.
    pub grid_factor: f64,
    /// Number of shuffle partitions for the join (the paper's Spark default
    /// is 96).
    pub num_partitions: usize,
    /// Number of input partitions the raw datasets are split into.
    pub input_partitions: usize,
    /// Sampling fraction φ (the paper found 3 % best).
    pub sample_fraction: f64,
    /// Cell → partition placement: Spark-default hash or LPT (§6.2).
    pub placement: Placement,
    /// Seed for sampling and any randomized choices; runs are reproducible.
    pub seed: u64,
    /// Materialize result pairs (`(r.id, s.id)`) in the output. Disable for
    /// large runs where only counts and metrics matter.
    pub collect_pairs: bool,
    /// Partition-local join kernel (default [`LocalKernel::Auto`]: the
    /// calibrated cost model picks per cell group).
    pub kernel: LocalKernel,
}

impl JoinSpec {
    pub fn new(bbox: Rect, eps: f64) -> Self {
        JoinSpec {
            bbox,
            eps,
            grid_factor: 2.0,
            num_partitions: 96,
            input_partitions: 16,
            sample_fraction: 0.03,
            placement: Placement::Hash,
            seed: 0xA5A5_5EED,
            collect_pairs: true,
            kernel: LocalKernel::default(),
        }
    }

    pub fn with_kernel(mut self, kernel: LocalKernel) -> Self {
        self.kernel = kernel;
        self
    }

    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    pub fn with_grid_factor(mut self, factor: f64) -> Self {
        self.grid_factor = factor;
        self
    }

    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.num_partitions = partitions;
        self
    }

    pub fn with_sample_fraction(mut self, fraction: f64) -> Self {
        self.sample_fraction = fraction;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn counting_only(mut self) -> Self {
        self.collect_pairs = false;
        self
    }
}

/// Typed failure of a fallible join entry point.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinError {
    /// The requested grid resolution leaves cell sides below `2ε`, so the
    /// agreement construction (Algorithms 2–4) cannot be made
    /// duplicate-free. Raise [`JoinSpec::with_grid_factor`] to at least
    /// `min_factor`, or use [`adaptive_join`](crate::adaptive_join), which
    /// auto-coarsens with a warning instead of failing.
    GridTooFine {
        /// The factor the spec asked for.
        grid_factor: f64,
        /// The smallest factor the agreement construction supports.
        min_factor: f64,
    },
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::GridTooFine {
                grid_factor,
                min_factor,
            } => write!(
                f,
                "grid too fine for adaptive replication: grid_factor {grid_factor} \
                 puts cell sides below 2*eps (need grid_factor >= {min_factor})"
            ),
        }
    }
}

impl std::error::Error for JoinError {}

/// Everything one join run produced — results plus the paper's metrics.
#[derive(Debug, Clone)]
pub struct JoinOutput {
    /// Algorithm display name (matches the paper's figure legends).
    pub algorithm: String,
    /// Materialized `(r.id, s.id)` pairs (empty when `collect_pairs` is off).
    pub pairs: Vec<(u64, u64)>,
    /// Number of result pairs (always populated).
    pub result_count: u64,
    /// Candidate pairs whose exact distance was evaluated.
    pub candidates: u64,
    /// Replicated objects `[R, S]`: copies beyond the native assignment —
    /// metric (b) of §7.1.
    pub replicated: [u64; 2],
    /// Shuffle volume, phase timings and simulated cluster time.
    pub metrics: JobMetrics,
}

impl JoinOutput {
    /// Total replicated objects across both inputs.
    pub fn replicated_total(&self) -> u64 {
        self.replicated[0] + self.replicated[1]
    }

    /// Join selectivity in percent: `result / (|R|·|S|) · 100` (Table 4).
    pub fn selectivity_pct(&self, r_len: usize, s_len: usize) -> f64 {
        if r_len == 0 || s_len == 0 {
            return 0.0;
        }
        self.result_count as f64 / (r_len as f64 * s_len as f64) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_apply() {
        let bbox = Rect::new(0.0, 0.0, 10.0, 10.0);
        let s = JoinSpec::new(bbox, 0.5)
            .with_placement(Placement::Lpt)
            .with_grid_factor(3.0)
            .with_partitions(48)
            .with_sample_fraction(0.1)
            .with_seed(7)
            .counting_only();
        assert_eq!(s.placement, Placement::Lpt);
        assert_eq!(s.grid_factor, 3.0);
        assert_eq!(s.num_partitions, 48);
        assert_eq!(s.sample_fraction, 0.1);
        assert_eq!(s.seed, 7);
        assert!(!s.collect_pairs);
        // Paper defaults.
        let d = JoinSpec::new(bbox, 0.5);
        assert_eq!(d.num_partitions, 96);
        assert_eq!(d.sample_fraction, 0.03);
        assert_eq!(d.grid_factor, 2.0);
        assert_eq!(d.placement, Placement::Hash);
        assert_eq!(d.kernel, LocalKernel::Auto, "Auto is the default kernel");
        let k = JoinSpec::new(bbox, 0.5).with_kernel(LocalKernel::GridBucket);
        assert_eq!(k.kernel, LocalKernel::GridBucket);
    }

    #[test]
    fn selectivity_matches_table4_definition() {
        let out = JoinOutput {
            algorithm: "x".into(),
            pairs: Vec::new(),
            result_count: 50,
            candidates: 100,
            replicated: [3, 4],
            metrics: JobMetrics::default(),
        };
        assert_eq!(out.replicated_total(), 7);
        // 50 / (100 * 100) * 100 = 0.5 %
        assert!((out.selectivity_pct(100, 100) - 0.5).abs() < 1e-12);
        assert_eq!(out.selectivity_pct(0, 100), 0.0);
    }
}
