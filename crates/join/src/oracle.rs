//! Reference implementations used to validate the distributed algorithms.

use crate::Record;
use asj_geom::Rect;
use asj_index::RTree;

/// All result pairs by exhaustive comparison, sorted — `O(|R|·|S|)`, for
/// tests only.
pub fn brute_force_pairs(r: &[Record], s: &[Record], eps: f64) -> Vec<(u64, u64)> {
    let e2 = eps * eps;
    let mut out = Vec::new();
    for a in r {
        for b in s {
            if a.point.dist2(b.point) <= e2 {
                out.push((a.id, b.id));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Result count only.
pub fn brute_force_count(r: &[Record], s: &[Record], eps: f64) -> u64 {
    let e2 = eps * eps;
    let mut n = 0u64;
    for a in r {
        for b in s {
            if a.point.dist2(b.point) <= e2 {
                n += 1;
            }
        }
    }
    n
}

/// Centralized R-tree join: index S, probe with R. Faster than brute force
/// for medium-sized validation runs; still single-threaded and exact.
pub fn rtree_pairs(r: &[Record], s: &[Record], eps: f64) -> Vec<(u64, u64)> {
    let tree = RTree::bulk_load(
        s.iter()
            .map(|rec| (Rect::from_point(rec.point), rec.id))
            .collect(),
        16,
    );
    let e2 = eps * eps;
    let mut out = Vec::new();
    for a in r {
        tree.query_within(a.point, eps, |rect, &sid| {
            // Point entries: MINDIST to a degenerate rect is the distance.
            debug_assert!(rect.mindist2(a.point) <= e2);
            out.push((a.id, sid));
        });
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_records;
    use asj_geom::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn oracles_agree() {
        let mut rng = StdRng::seed_from_u64(77);
        let pts = |n: usize, rng: &mut StdRng| -> Vec<Point> {
            (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
                .collect()
        };
        let r = to_records(&pts(300, &mut rng), 0);
        let s = to_records(&pts(300, &mut rng), 0);
        let bf = brute_force_pairs(&r, &s, 0.5);
        let rt = rtree_pairs(&r, &s, 0.5);
        assert_eq!(bf, rt);
        assert_eq!(bf.len() as u64, brute_force_count(&r, &s, 0.5));
        assert!(!bf.is_empty());
    }
}
