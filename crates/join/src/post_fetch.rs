use crate::{adaptive_join, JoinOutput, JoinSpec, Record};
use asj_core::AgreementPolicy;
use asj_engine::{Cluster, Dataset, HashPartitioner, KeyedDataset};

/// The Table-5 alternative for carrying non-spatial attributes: the spatial
/// join runs on **stripped tuples** (id + coordinates only), and the extra
/// attributes are fetched afterwards by two distributed id-joins — result
/// pairs ⋈ R on `r.id`, then ⋈ S on `s.id`.
///
/// The paper measures this post-processing to be ~3× slower than shipping
/// the attributes through the spatial join, because the result set is much
/// larger than the inputs and must be shuffled twice more.
pub fn adaptive_join_post_fetch(
    cluster: &Cluster,
    spec: &JoinSpec,
    policy: AgreementPolicy,
    r: Vec<Record>,
    s: Vec<Record>,
) -> JoinOutput {
    // Attribute tables stay behind (id → payload), the join sees bare tuples.
    let r_attrs: Vec<(u64, Vec<u8>)> = r.iter().map(|rec| (rec.id, rec.payload.clone())).collect();
    let s_attrs: Vec<(u64, Vec<u8>)> = s.iter().map(|rec| (rec.id, rec.payload.clone())).collect();
    let r_bare: Vec<Record> = r.into_iter().map(|rec| rec.stripped()).collect();
    let s_bare: Vec<Record> = s.into_iter().map(|rec| rec.stripped()).collect();

    let mut collect_spec = spec.clone();
    collect_spec.collect_pairs = true;
    let mut out = adaptive_join(cluster, &collect_spec, policy, r_bare, s_bare);

    // --- Post-processing: fetch attributes with two id-joins. ---
    let partitioner = HashPartitioner::new(spec.num_partitions);
    let placement: Vec<usize> = (0..spec.num_partitions)
        .map(|p| cluster.node_of_partition(p))
        .collect();

    // Join 1: pairs (keyed by r.id) ⋈ R attributes. Both id-join inputs are
    // split across the spec's input partitions — a single-partition dataset
    // would put every map task of the extra shuffles on node 0 and serialize
    // exactly the post-processing the paper measures.
    let pairs_by_rid = KeyedDataset::from_partitions(
        Dataset::from_vec(out.pairs.clone(), spec.input_partitions).into_partitions(),
    );
    let r_table = KeyedDataset::from_partitions(
        Dataset::from_vec(r_attrs, spec.input_partitions).into_partitions(),
    );
    let (pairs_by_rid, sh, ex) = pairs_by_rid.shuffle(cluster, &partitioner);
    out.metrics.shuffle.merge(&sh);
    out.metrics.join.accumulate(&ex);
    let (r_table, sh, ex) = r_table.shuffle(cluster, &partitioner);
    out.metrics.shuffle.merge(&sh);
    out.metrics.join.accumulate(&ex);
    let (half, ex) = pairs_by_rid.cogroup_join(
        cluster,
        r_table,
        &placement,
        |rid, sids: &[u64], payloads: &[Vec<u8>], out: &mut Vec<(u64, (u64, Vec<u8>))>| {
            for &sid in sids {
                for payload in payloads {
                    out.push((sid, (rid, payload.clone())));
                }
            }
        },
    );
    out.metrics.join.accumulate(&ex);

    // Join 2: half-enriched rows (keyed by s.id) ⋈ S attributes.
    let half = KeyedDataset::from_partitions(half.into_partitions());
    let s_table = KeyedDataset::from_partitions(
        Dataset::from_vec(s_attrs, spec.input_partitions).into_partitions(),
    );
    let (half, sh, ex) = half.shuffle(cluster, &partitioner);
    out.metrics.shuffle.merge(&sh);
    out.metrics.join.accumulate(&ex);
    let (s_table, sh, ex) = s_table.shuffle(cluster, &partitioner);
    out.metrics.shuffle.merge(&sh);
    out.metrics.join.accumulate(&ex);
    // Enrichment counts fold into per-partition accumulators (retry-safe).
    let (_, fold_counts, ex) = half.cogroup_join_fold(
        cluster,
        s_table,
        &placement,
        |_sid,
         halves: &[(u64, Vec<u8>)],
         payloads: &[Vec<u8>],
         _out: &mut Vec<()>,
         acc: &mut (u64, u64)| {
            for (_, rpay) in halves {
                for spay in payloads {
                    acc.0 += 1;
                    acc.1 += (rpay.len() + spay.len()) as u64;
                }
            }
        },
    );
    out.metrics.join.accumulate(&ex);

    let enriched: u64 = fold_counts.iter().map(|c| c.0).sum();
    assert_eq!(
        enriched, out.result_count,
        "every result pair must be enriched exactly once"
    );
    out.algorithm = format!("{}+post-fetch", policy.name());
    if !spec.collect_pairs {
        out.pairs = Vec::new();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_records;
    use asj_engine::ClusterConfig;
    use asj_geom::{Point, Rect};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn post_fetch_enriches_every_pair() {
        let recorder = asj_obs::Recorder::for_nodes(4);
        let c = Cluster::new(ClusterConfig::with_threads(4, 2)).with_recorder(recorder.clone());
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 1.0)
            .with_partitions(8)
            .with_sample_fraction(0.4);
        let mut rng = StdRng::seed_from_u64(91);
        let pts = |rng: &mut StdRng, n: usize| -> Vec<Point> {
            (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)))
                .collect()
        };
        let r = to_records(&pts(&mut rng, 300), 64);
        let s = to_records(&pts(&mut rng, 300), 64);
        let expected = crate::oracle::brute_force_pairs(&r, &s, spec.eps);
        let inline = adaptive_join(&c, &spec, AgreementPolicy::Lpib, r.clone(), s.clone());
        let fetched = adaptive_join_post_fetch(&c, &spec, AgreementPolicy::Lpib, r, s);
        assert_eq!(fetched.result_count as usize, expected.len());
        assert_eq!(fetched.result_count, inline.result_count);
        assert_eq!(fetched.algorithm, "LPiB+post-fetch");
        // The post-processing joins shuffle extra data on top of the spatial
        // join's own shuffle.
        assert!(fetched.metrics.shuffle.total_bytes() > inline.metrics.shuffle.total_bytes());
        // The id-join inputs are split across input partitions, so their map
        // tasks (the only stages named plain "shuffle") must land on more
        // than one simulated node — the old single-partition inputs pinned
        // all of them to node 0.
        let trace = recorder.snapshot();
        let id_join_nodes: std::collections::BTreeSet<_> = trace
            .spans
            .iter()
            .filter(|sp| sp.stage == "shuffle")
            .map(|sp| sp.lane)
            .collect();
        assert!(
            id_join_nodes.len() >= 2,
            "id-join map tasks must run on multiple nodes, saw {id_join_nodes:?}"
        );
        let busy_nodes = fetched
            .metrics
            .join
            .per_node_busy
            .iter()
            .filter(|d| !d.is_zero())
            .count();
        assert!(busy_nodes >= 2, "join phase busy on {busy_nodes} node(s)");
    }
}
