use crate::{JoinSpec, Record};
use asj_engine::{Cluster, Dataset, ExecStats, HashPartitioner, KeyedDataset, ShuffleStats};
use asj_geom::{Point, Rect};
use asj_grid::{Grid, GridSpec};

/// A grid-partitioned dataset ready to serve range queries: the distributed
/// analog of a spatial table registered with a partitioner (every engine of
/// the paper's related work exposes this alongside joins).
#[derive(Debug)]
pub struct PartitionedPoints {
    grid: Grid,
    parts: Vec<Vec<(u64, Record)>>,
    pub build_shuffle: ShuffleStats,
    pub build_exec: ExecStats,
}

impl PartitionedPoints {
    /// Shuffles `data` by native grid cell (unique assignment — range
    /// queries need no replication).
    pub fn build(cluster: &Cluster, spec: &JoinSpec, data: Vec<Record>) -> Self {
        let grid = Grid::new(GridSpec::with_factor(spec.bbox, spec.eps, spec.grid_factor));
        let grid_b = cluster.broadcast(grid.clone());
        let rdd = Dataset::from_vec(data, spec.input_partitions);
        let (parts, mut exec) = cluster.run_partitioned(rdd.into_partitions(), |_, part| {
            part.into_iter()
                .map(|rec| (grid_b.cell_index(grid_b.cell_of(rec.point)) as u64, rec))
                .collect::<Vec<_>>()
        });
        let partitioner = HashPartitioner::new(spec.num_partitions);
        let (keyed, shuffle, ex) =
            KeyedDataset::from_partitions(parts).shuffle(cluster, &partitioner);
        exec.accumulate(&ex);
        PartitionedPoints {
            grid,
            parts: keyed.into_partitions(),
            build_shuffle: shuffle,
            build_exec: exec,
        }
    }

    pub fn len(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(Vec::is_empty)
    }

    /// All record ids inside `region` (closed bounds), with per-cell pruning:
    /// partitions only scan records of cells intersecting the region.
    pub fn range_query(&self, cluster: &Cluster, region: Rect) -> (Vec<u64>, ExecStats) {
        if region.is_empty() {
            return (Vec::new(), ExecStats::default());
        }
        let grid = &self.grid;
        let refs: Vec<&Vec<(u64, Record)>> = self.parts.iter().collect();
        let (found, exec) = cluster.run_partitioned(refs, |_, part| {
            part.iter()
                .filter(|(cell, _)| {
                    grid.cell_rect(grid.cell_at(*cell as usize))
                        .intersects(&region)
                })
                .filter(|(_, rec)| region.contains(rec.point))
                .map(|(_, rec)| rec.id)
                .collect::<Vec<u64>>()
        });
        let mut out: Vec<u64> = found.into_iter().flatten().collect();
        out.sort_unstable();
        (out, exec)
    }

    /// All record ids within distance `radius` of `center`.
    pub fn circle_query(
        &self,
        cluster: &Cluster,
        center: Point,
        radius: f64,
    ) -> (Vec<u64>, ExecStats) {
        assert!(radius >= 0.0, "radius must be non-negative");
        let grid = &self.grid;
        let r2 = radius * radius;
        let refs: Vec<&Vec<(u64, Record)>> = self.parts.iter().collect();
        let (found, exec) = cluster.run_partitioned(refs, |_, part| {
            part.iter()
                .filter(|(cell, _)| {
                    grid.cell_rect(grid.cell_at(*cell as usize))
                        .mindist2(center)
                        <= r2
                })
                .filter(|(_, rec)| rec.point.dist2(center) <= r2)
                .map(|(_, rec)| rec.id)
                .collect::<Vec<u64>>()
        });
        let mut out: Vec<u64> = found.into_iter().flatten().collect();
        out.sort_unstable();
        (out, exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_records;
    use asj_engine::ClusterConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (Cluster, PartitionedPoints, Vec<Record>) {
        let cluster = Cluster::new(ClusterConfig::with_threads(3, 2));
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 1.0).with_partitions(12);
        let mut rng = StdRng::seed_from_u64(314);
        let pts: Vec<Point> = (0..800)
            .map(|_| Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)))
            .collect();
        let records = to_records(&pts, 0);
        let table = PartitionedPoints::build(&cluster, &spec, records.clone());
        (cluster, table, records)
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let (cluster, table, records) = setup();
        assert_eq!(table.len(), 800);
        for region in [
            Rect::new(2.0, 3.0, 7.5, 9.0),
            Rect::new(0.0, 0.0, 20.0, 20.0),
            Rect::new(19.0, 19.0, 25.0, 25.0),
            Rect::new(-5.0, -5.0, -1.0, -1.0),
        ] {
            let (got, _) = table.range_query(&cluster, region);
            let mut want: Vec<u64> = records
                .iter()
                .filter(|r| region.contains(r.point))
                .map(|r| r.id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "{region:?}");
        }
    }

    #[test]
    fn circle_query_matches_linear_scan() {
        let (cluster, table, records) = setup();
        for (center, radius) in [
            (Point::new(10.0, 10.0), 3.0),
            (Point::new(0.0, 0.0), 5.0),
            (Point::new(10.0, 10.0), 0.0),
            (Point::new(10.0, 10.0), 100.0),
        ] {
            let (got, _) = table.circle_query(&cluster, center, radius);
            let mut want: Vec<u64> = records
                .iter()
                .filter(|r| r.point.dist2(center) <= radius * radius)
                .map(|r| r.id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "center {center:?} radius {radius}");
        }
    }

    #[test]
    fn empty_region_is_empty() {
        let (cluster, table, _) = setup();
        let (got, _) = table.range_query(&cluster, Rect::empty());
        assert!(got.is_empty());
        assert!(!table.is_empty());
    }
}
