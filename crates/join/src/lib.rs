//! End-to-end parallel ε-distance spatial joins on the [`asj_engine`]
//! substrate — the distributed layer of the paper (§6) plus every baseline
//! of its evaluation (§7):
//!
//! | Algorithm | Entry point | Paper name |
//! |---|---|---|
//! | Adaptive replication, LPiB or DIFF instantiation | [`adaptive_join`] | LPiB / DIFF |
//! | PBSM with universal replication of one input | [`pbsm_join`] | UNI(R) / UNI(S) |
//! | ε×ε grid replicating the smaller input | [`eps_grid_join`] | ε-grid |
//! | QuadTree partitioning + per-partition R-tree | [`sedona_like_join`] | Sedona |
//!
//! Every algorithm runs the same Algorithm-5 skeleton: (optional) sampling
//! and construction on the driver, broadcast, spatial mapping of each record
//! to one or more cell keys (`flatMapToPair`), a metered keyed shuffle, and a
//! partition-local join with immediate distance refinement. They return a
//! [`JoinOutput`] carrying the paper's three metrics — replicated objects,
//! shuffle remote reads and (simulated + wall) execution time — plus result
//! counts, so the benchmark harness can regenerate each figure.
//!
//! Supporting variants used by individual experiments:
//!
//! * [`adaptive_join_dedup`] — the non-duplicate-free assignment with an
//!   explicit distributed `distinct` operator (Table 6),
//! * [`adaptive_join_post_fetch`] — attributes fetched by id-joins after the
//!   spatial join instead of travelling with the tuples (Table 5),
//! * [`pbsm_refpoint_join`] — the classic MASJ alternative: both inputs
//!   replicated, duplicates avoided with the reference-point technique of
//!   Dittrich & Seeger (related-work baseline / ablation),
//! * [`self_join`] — the ε-distance self-join (MR-DSJ setting), one input
//!   shuffled once with reference-point duplicate avoidance,
//! * [`extent_join`] — ε-distance join over polylines/polygons (the paper's
//!   §8 future-work direction), MASJ with envelope-based assignment and
//!   reference-point deduplication,
//! * [`knn_join`] — expanding-ring k-nearest-neighbor join on the same grid
//!   substrate (the companion operation of Simba/LocationSpark/\[9\]),
//! * [`PartitionedPoints`] — a grid-partitioned table serving distributed
//!   rectangle and circle range queries with cell pruning,
//! * [`oracle`] — brute-force and R-tree reference implementations used by
//!   the correctness tests.

mod adaptive;
mod dedup;
mod extent;
mod knn;
pub mod oracle;
mod pbsm;
mod pipeline;
mod post_fetch;
mod range;
mod record;
mod refpoint;
mod sedona;
mod selfjoin;
mod spec;

pub use adaptive::{adaptive_join, try_adaptive_join};
pub use dedup::adaptive_join_dedup;
pub use extent::{brute_force_extent_pairs, extent_join, ExtentRecord};
pub use knn::{brute_force_knn, knn_join, KnnOutput};
pub use pbsm::{eps_grid_join, pbsm_join, ReplicateSide};
pub use pipeline::Algorithm;
pub use post_fetch::adaptive_join_post_fetch;
pub use range::PartitionedPoints;
pub use record::{to_records, Record};
pub use refpoint::pbsm_refpoint_join;
pub use sedona::sedona_like_join;
pub use selfjoin::{brute_force_self_pairs, self_join};
pub use spec::{JoinError, JoinOutput, JoinSpec, LocalKernel};

#[cfg(test)]
mod empty_input_tests {
    use crate::{to_records, Algorithm, JoinSpec};
    use asj_engine::{Cluster, ClusterConfig};
    use asj_geom::{Point, Rect};

    /// Empty inputs on either side must yield empty results for every
    /// algorithm, without panicking anywhere in the pipeline.
    #[test]
    fn empty_inputs_produce_empty_results() {
        let c = Cluster::new(ClusterConfig::with_threads(2, 2));
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0).with_partitions(4);
        let some = to_records(&[Point::new(1.0, 1.0), Point::new(5.0, 5.0)], 0);
        for algo in Algorithm::ALL {
            for (r, s) in [
                (Vec::new(), some.clone()),
                (some.clone(), Vec::new()),
                (Vec::new(), Vec::new()),
            ] {
                let out = algo.run(&c, &spec, r, s);
                assert_eq!(out.result_count, 0, "{}", algo.name());
                assert!(out.pairs.is_empty());
            }
        }
    }
}
