use crate::pipeline::{join_stage, map_stage};
use crate::{JoinError, JoinOutput, JoinSpec, Record};
use asj_core::{cell_costs, AgreementGraph, AgreementPolicy, GridSample, SetLabel};
use asj_engine::{
    Cluster, Dataset, ExplicitPartitioner, HashPartitioner, JobMetrics, Partitioner, Placement,
};
use asj_grid::{Grid, GridSpec};
use asj_index::kernels;
use asj_obs::{Attrs, Lane};
use std::time::Instant;

/// Smallest grid factor the agreement construction supports: cell sides must
/// exceed `2ε` so a record's neighborhood spans at most the 3×3 block that
/// Algorithms 2–4 reason about.
const MIN_AGREEMENT_FACTOR: f64 = 2.0;

/// The paper's Algorithm 5: parallel ε-distance join with **adaptive
/// replication** (LPiB or DIFF instantiation of the graph of agreements).
///
/// Stages, with their metric attribution:
///
/// 1. **Grid determination** and input partitioning (driver, cheap).
/// 2. **Sampling** of both inputs (parallel; part of construction) and
///    **agreement-based grid construction** on the driver: the sampled
///    statistics instantiate the graph of agreements and Algorithm 1 makes
///    it duplicate-free (driver time).
/// 3. **Spatial mapping**: the broadcast graph assigns every record to cell
///    keys via Algorithms 2–4 (parallel; construction).
/// 4. **Shuffle** with hash or LPT cell placement (metered; construction).
/// 5. **Partition-local join** with immediate distance refinement (parallel;
///    join phase).
pub fn adaptive_join(
    cluster: &Cluster,
    spec: &JoinSpec,
    policy: AgreementPolicy,
    r: Vec<Record>,
    s: Vec<Record>,
) -> JoinOutput {
    let grid = Grid::new(GridSpec::with_factor(spec.bbox, spec.eps, spec.grid_factor));
    let grid = if grid.supports_agreements() {
        grid
    } else {
        // A too-fine grid is a recoverable configuration problem, not a
        // crash: coarsen to the minimum supported factor, leave a warning
        // event on the driver lane, and run. Callers that would rather
        // decide themselves use `try_adaptive_join`.
        cluster.recorder().event(
            "grid.coarsened",
            Lane::Driver,
            None,
            Attrs::new().cells(grid.num_cells() as u64),
        );
        Grid::new(GridSpec::with_factor(
            spec.bbox,
            spec.eps,
            MIN_AGREEMENT_FACTOR,
        ))
    };
    adaptive_join_on_grid(cluster, spec, policy, grid, r, s)
}

/// Fallible [`adaptive_join`]: a `grid_factor` below the supported minimum
/// surfaces as [`JoinError::GridTooFine`] instead of silently coarsening.
pub fn try_adaptive_join(
    cluster: &Cluster,
    spec: &JoinSpec,
    policy: AgreementPolicy,
    r: Vec<Record>,
    s: Vec<Record>,
) -> Result<JoinOutput, JoinError> {
    let grid = Grid::new(GridSpec::with_factor(spec.bbox, spec.eps, spec.grid_factor));
    if !grid.supports_agreements() {
        return Err(JoinError::GridTooFine {
            grid_factor: spec.grid_factor,
            min_factor: MIN_AGREEMENT_FACTOR,
        });
    }
    Ok(adaptive_join_on_grid(cluster, spec, policy, grid, r, s))
}

fn adaptive_join_on_grid(
    cluster: &Cluster,
    spec: &JoinSpec,
    policy: AgreementPolicy,
    grid: Grid,
    r: Vec<Record>,
    s: Vec<Record>,
) -> JoinOutput {
    debug_assert!(grid.supports_agreements());
    let rdd_r = Dataset::from_vec(r, spec.input_partitions);
    let rdd_s = Dataset::from_vec(s, spec.input_partitions);

    // --- Sampling (parallel) + graph construction (driver). ---
    let recorder = cluster.recorder().clone();
    let mut construction = asj_engine::ExecStats::default();
    let (sample_r, sample_s) = recorder.phase_attrs("sampling", |attrs| {
        let (sample_r, ex) = rdd_r.sample(cluster, spec.sample_fraction, spec.seed);
        construction.accumulate(&ex);
        let (sample_s, ex) = rdd_s.sample(cluster, spec.sample_fraction, spec.seed ^ 0x5151);
        construction.accumulate(&ex);
        *attrs = attrs.records((sample_r.len() + sample_s.len()) as u64);
        (sample_r, sample_s)
    });

    let driver_start = Instant::now();
    let (graph, partitioner) = recorder.phase_attrs("agreement_graph", |attrs| {
        let sample = GridSample::from_points(
            &grid,
            sample_r.iter().map(|rec| rec.point),
            sample_s.iter().map(|rec| rec.point),
        );
        let graph = AgreementGraph::build(&grid, &sample, policy);
        *attrs = attrs.cells(grid.num_cells() as u64);

        // Cell placement: Spark-default hash, or LPT over sampled cell costs.
        let partitioner: Box<dyn Partitioner<u64> + Sync> = match spec.placement {
            Placement::Hash => Box::new(HashPartitioner::new(spec.num_partitions)),
            Placement::RoundRobin => {
                Box::new(asj_engine::RoundRobinPartitioner::new(spec.num_partitions))
            }
            Placement::Lpt => {
                let costs = cell_costs(
                    &graph,
                    sample_r.iter().map(|rec| &rec.point),
                    sample_s.iter().map(|rec| &rec.point),
                );
                // Cell weight = the calibrated cost model's prediction for
                // the kernel that will actually run the cell (replicas can
                // reach up to eps beyond the cell rectangle on each side),
                // instead of the raw worst-case r*s product.
                let model = cluster.kernel_cost_model(kernels::calibrate_cost_model);
                let (cell_w, cell_h) = grid.cell_side();
                let (ext_w, ext_h) = (cell_w + 2.0 * spec.eps, cell_h + 2.0 * spec.eps);
                let weighted: Vec<(u64, u64)> = costs
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let w = model.lpt_weight(spec.kernel, c.r, c.s, spec.eps, ext_w, ext_h);
                        (i as u64, w)
                    })
                    .filter(|&(_, w)| w > 0)
                    .collect();
                let map = asj_engine::lpt_assign(&weighted, spec.num_partitions);
                Box::new(ExplicitPartitioner::new(map, spec.num_partitions))
            }
        };
        (graph, partitioner)
    });
    let broadcast_bytes = graph.broadcast_bytes();
    recorder.counter_add("agreement_graph", "broadcast_bytes", broadcast_bytes);
    let driver = driver_start.elapsed();

    // --- Spatial mapping (Algorithms 2-4) on the broadcast graph. ---
    let graph_b = cluster.broadcast(graph);
    let assign = |label: SetLabel| {
        let graph_b = graph_b.clone();
        move |p: asj_geom::Point, cells: &mut Vec<u64>, scratch: &mut Vec<asj_grid::CellCoord>| {
            graph_b.assign(p, label, scratch);
            cells.extend(scratch.iter().map(|&c| graph_b.grid().cell_index(c) as u64));
        }
    };
    let (keyed_r, rep_r, ex) = map_stage(cluster, rdd_r, assign(SetLabel::R));
    construction.accumulate(&ex);
    let (keyed_s, rep_s, ex) = map_stage(cluster, rdd_s, assign(SetLabel::S));
    construction.accumulate(&ex);

    // --- Shuffle + local join with refinement. ---
    let out = join_stage(cluster, spec, keyed_r, keyed_s, &*partitioner);
    construction.accumulate(&out.shuffle_exec);

    JoinOutput {
        algorithm: policy.name().to_string(),
        pairs: out.pairs,
        result_count: out.result_count,
        candidates: out.candidates,
        replicated: [rep_r, rep_s],
        metrics: JobMetrics {
            shuffle: out.shuffle,
            construction,
            join: out.join_exec,
            driver,
            broadcast_bytes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_records;
    use asj_engine::ClusterConfig;
    use asj_geom::{Point, Rect};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::with_threads(4, 2))
    }

    fn random_records(n: usize, seed: u64, extent: f64) -> Vec<Record> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
            .collect();
        to_records(&pts, 0)
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 1.0)
            .with_partitions(8)
            .with_sample_fraction(0.3);
        let r = random_records(400, 1, 20.0);
        let s = random_records(400, 2, 20.0);
        let expected = crate::oracle::brute_force_pairs(&r, &s, spec.eps);
        for policy in [AgreementPolicy::Lpib, AgreementPolicy::Diff] {
            let out = adaptive_join(&c, &spec, policy, r.clone(), s.clone());
            let mut got = out.pairs.clone();
            got.sort_unstable();
            assert_eq!(got, expected, "{}", policy.name());
            assert_eq!(out.result_count as usize, expected.len());
            assert!(out.candidates >= out.result_count);
        }
    }

    #[test]
    fn lpt_placement_keeps_results_identical() {
        let c = cluster();
        let base = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 1.0)
            .with_partitions(8)
            .with_sample_fraction(0.5);
        let r = random_records(300, 3, 20.0);
        let s = random_records(300, 4, 20.0);
        let hash = adaptive_join(&c, &base, AgreementPolicy::Lpib, r.clone(), s.clone());
        let lpt = adaptive_join(
            &c,
            &base.clone().with_placement(Placement::Lpt),
            AgreementPolicy::Lpib,
            r,
            s,
        );
        let mut a = hash.pairs.clone();
        let mut b = lpt.pairs.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(hash.replicated, lpt.replicated);
    }

    #[test]
    fn counting_mode_skips_materialization() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 1.0)
            .with_partitions(4)
            .counting_only();
        let r = random_records(200, 5, 20.0);
        let s = random_records(200, 6, 20.0);
        let expected = crate::oracle::brute_force_pairs(&r, &s, spec.eps);
        let out = adaptive_join(&c, &spec, AgreementPolicy::Lpib, r, s);
        assert!(out.pairs.is_empty());
        assert_eq!(out.result_count as usize, expected.len());
    }

    #[test]
    fn too_fine_grid_errors_typed_or_coarsens() {
        let c = cluster();
        // grid_factor 1.0 puts cell sides below 2*eps — the config the old
        // assert used to panic on.
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 1.0)
            .with_partitions(8)
            .with_grid_factor(1.0);
        let r = random_records(250, 9, 20.0);
        let s = random_records(250, 10, 20.0);
        let expected = crate::oracle::brute_force_pairs(&r, &s, spec.eps);
        for policy in [AgreementPolicy::Lpib, AgreementPolicy::Diff] {
            // Fallible entry point: a typed error, not a panic.
            let err = crate::try_adaptive_join(&c, &spec, policy, r.clone(), s.clone())
                .expect_err("grid_factor 1.0 must be rejected");
            assert_eq!(
                err,
                crate::JoinError::GridTooFine {
                    grid_factor: 1.0,
                    min_factor: 2.0
                },
                "{}",
                policy.name()
            );
            assert!(err.to_string().contains("grid_factor 1"));

            // Infallible entry point: auto-coarsen and still be correct.
            let out = adaptive_join(&c, &spec, policy, r.clone(), s.clone());
            let mut got = out.pairs.clone();
            got.sort_unstable();
            assert_eq!(got, expected, "{} after coarsening", policy.name());
        }
        // A supported factor passes through the fallible path untouched.
        let ok = crate::try_adaptive_join(
            &c,
            &spec.clone().with_grid_factor(2.0),
            AgreementPolicy::Lpib,
            r,
            s,
        )
        .expect("grid_factor 2.0 is supported");
        assert_eq!(ok.pairs.len(), expected.len());
    }

    #[test]
    fn metrics_are_populated() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 20.0, 20.0), 1.0).with_partitions(4);
        let r = random_records(500, 7, 20.0);
        let s = random_records(500, 8, 20.0);
        let out = adaptive_join(&c, &spec, AgreementPolicy::Diff, r, s);
        assert!(out.metrics.shuffle.records >= 1000, "all records shuffle");
        assert!(out.metrics.shuffle.total_bytes() > 0);
        assert!(out.metrics.simulated_time() > std::time::Duration::ZERO);
        assert!(out.metrics.wall_time() >= out.metrics.driver);
        assert!(
            out.metrics.broadcast_bytes > 0,
            "grid broadcast must be metered"
        );
        assert_eq!(out.algorithm, "DIFF");
    }
}
