use crate::pipeline::map_stage;
use crate::{JoinOutput, JoinSpec, Record};
use asj_engine::{Cluster, Dataset, ExecStats, HashPartitioner, JobMetrics, Partitioner};
use asj_grid::{Grid, GridSpec};
use asj_index::kernels;

/// Distributed ε-distance **self-join**: all unordered pairs `{a, b}`,
/// `a.id < b.id`, of one dataset within distance ε — the MR-DSJ setting of
/// the paper's related work (Seidl et al.), implemented in the MASJ style
/// with reference-point duplicate avoidance.
///
/// Every point is shuffled once, keyed by *all* cells within ε of it; each
/// cell joins its points against themselves and a pair is reported only by
/// the cell containing the pair's midpoint (which both endpoints are always
/// replicated into, since `d/2 ≤ ε/2 < ε`).
pub fn self_join(cluster: &Cluster, spec: &JoinSpec, input: Vec<Record>) -> JoinOutput {
    let grid = Grid::new(GridSpec::with_factor(spec.bbox, spec.eps, spec.grid_factor));
    let broadcast_bytes = grid.broadcast_bytes();
    let rdd = Dataset::from_vec(input, spec.input_partitions);
    let mut construction = ExecStats::default();

    let grid_b = cluster.broadcast(grid);
    let assign = {
        let grid_b = grid_b.clone();
        move |p: asj_geom::Point, cells: &mut Vec<u64>, scratch: &mut Vec<asj_grid::CellCoord>| {
            scratch.clear();
            scratch.push(grid_b.cell_of(p));
            grid_b.push_cells_within_eps(p, scratch);
            cells.extend(scratch.iter().map(|&c| grid_b.cell_index(c) as u64));
        }
    };
    let (keyed, replicas, ex) = map_stage(cluster, rdd, &assign);
    construction.accumulate(&ex);

    let partitioner = HashPartitioner::new(spec.num_partitions);
    let (keyed, shuffle, ex) = keyed.shuffle(cluster, &partitioner);
    construction.accumulate(&ex);

    let placement: Vec<usize> = (0..partitioner.num_partitions())
        .map(|p| cluster.node_of_partition(p))
        .collect();
    let eps = spec.eps;
    let collect = spec.collect_pairs;
    let kernel = spec.kernel;
    let model = cluster.kernel_cost_model(kernels::calibrate_cost_model);
    // Counts ride in per-partition accumulators committed with the task
    // result, so retried/speculative attempts cannot double-count them.
    let (joined, counts, join_exec) = keyed.process_groups_fold(
        cluster,
        &placement,
        |cell, pts: &[Record], out, acc: &mut (u64, u64)| {
            let mut local_results = 0u64;
            let outcome = kernels::local_self_join(
                kernel,
                &model,
                eps,
                pts,
                |rec| rec.point,
                |i, j| {
                    let (a, b) = (&pts[i], &pts[j]);
                    if a.id == b.id {
                        return;
                    }
                    let mid = asj_geom::Point::new(
                        (a.point.x + b.point.x) * 0.5,
                        (a.point.y + b.point.y) * 0.5,
                    );
                    if grid_b.cell_index(grid_b.cell_of(mid)) as u64 == cell {
                        local_results += 1;
                        if collect {
                            let (lo, hi) = if a.id < b.id {
                                (a.id, b.id)
                            } else {
                                (b.id, a.id)
                            };
                            out.push((lo, hi));
                        }
                    }
                },
            );
            acc.0 += outcome.stats.candidates;
            acc.1 += local_results;
        },
    );

    JoinOutput {
        algorithm: "self-join".to_string(),
        pairs: joined.collect(),
        result_count: counts.iter().map(|c| c.1).sum(),
        candidates: counts.iter().map(|c| c.0).sum(),
        replicated: [replicas, 0],
        metrics: JobMetrics {
            shuffle,
            construction,
            join: join_exec,
            driver: std::time::Duration::ZERO,
            broadcast_bytes,
        },
    }
}

/// Brute-force self-join oracle: unordered pairs `(a.id < b.id)` within ε.
pub fn brute_force_self_pairs(pts: &[Record], eps: f64) -> Vec<(u64, u64)> {
    let e2 = eps * eps;
    let mut out = Vec::new();
    for (i, a) in pts.iter().enumerate() {
        for b in &pts[i + 1..] {
            if a.point.dist2(b.point) <= e2 {
                let (lo, hi) = if a.id < b.id {
                    (a.id, b.id)
                } else {
                    (b.id, a.id)
                };
                out.push((lo, hi));
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_records;
    use asj_engine::ClusterConfig;
    use asj_geom::{Point, Rect};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::with_threads(3, 2))
    }

    #[test]
    fn matches_brute_force() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 16.0, 16.0), 0.9).with_partitions(8);
        let mut rng = StdRng::seed_from_u64(71);
        let pts: Vec<Point> = (0..500)
            .map(|_| Point::new(rng.gen_range(0.0..16.0), rng.gen_range(0.0..16.0)))
            .collect();
        let recs = to_records(&pts, 0);
        let expected = brute_force_self_pairs(&recs, spec.eps);
        assert!(!expected.is_empty());
        let out = self_join(&c, &spec, recs);
        let mut got = out.pairs.clone();
        got.sort_unstable();
        assert_eq!(got, expected);
        assert!(out.candidates >= out.result_count);
        assert!(
            out.metrics.broadcast_bytes > 0,
            "grid broadcast must be metered"
        );
    }

    #[test]
    fn no_self_pairs_and_no_ordered_duplicates() {
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0).with_partitions(4);
        // Duplicate coordinates: ids differ, so they pair once.
        let recs = to_records(&[Point::new(1.0, 1.0), Point::new(1.0, 1.0)], 0);
        let out = self_join(&c, &spec, recs);
        assert_eq!(out.pairs, vec![(0, 1)]);
    }

    #[test]
    fn dense_corner_cluster_still_exact() {
        // Points packed around an interior grid corner: maximum replication
        // overlap, worst case for the reference-point dedup.
        let c = cluster();
        let spec = JoinSpec::new(Rect::new(0.0, 0.0, 10.0, 10.0), 1.0).with_partitions(8);
        let mut rng = StdRng::seed_from_u64(73);
        let pts: Vec<Point> = (0..200)
            .map(|_| {
                Point::new(
                    2.5 + rng.gen_range(-1.2..1.2),
                    2.5 + rng.gen_range(-1.2..1.2),
                )
            })
            .collect();
        let recs = to_records(&pts, 0);
        let expected = brute_force_self_pairs(&recs, spec.eps);
        let out = self_join(&c, &spec, recs);
        let mut got = out.pairs.clone();
        got.sort_unstable();
        assert_eq!(got, expected);
    }
}
