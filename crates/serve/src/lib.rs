//! Multi-tenant front end over the engine's [`JobServer`]: parse a tenant
//! queue file, estimate each tenant's working set for admission control, run
//! the queue under a scheduling policy and report per-tenant observables.
//!
//! The engine crate owns the mechanism (lockstep fair-share scheduling,
//! per-job obs lanes, fault/pool/memory isolation — `asj_engine::jobs`);
//! this crate owns the *driver surface*: what a tenant IS (an ε-join over
//! generated inputs), how its memory footprint is estimated before any task
//! runs, and how a multi-tenant run is checked against solo runs.
//!
//! ```
//! use asj_engine::{Cluster, ClusterConfig, SchedPolicy};
//! use asj_serve::{parse_queue, run_queue, solo_outcome};
//!
//! let queue = parse_queue(
//!     "job alpha algo=lpib eps=0.5 n=600 partitions=8 seed=11\n\
//!      job beta  algo=uni-r eps=0.3 n=900 partitions=8 seed=23 weight=2\n",
//! )
//! .expect("queue parses");
//! let cluster = Cluster::new(ClusterConfig::with_threads(4, 2));
//! let run = run_queue(&cluster, &queue, SchedPolicy::FairShare).expect("runs");
//! for (tenant, report) in queue.iter().zip(&run.tenants) {
//!     let solo = solo_outcome(&cluster, tenant).expect("solo");
//!     assert_eq!(report.outcome.as_ref().expect("ok"), &solo, "isolation");
//! }
//! ```
//!
//! [`JobServer`]: asj_engine::JobServer

mod estimate;
mod queue;
mod run;

pub use estimate::{estimate_working_set, WorkingSetModel};
pub use queue::{parse_bytes, parse_queue, QueueError, TenantSpec};
pub use run::{
    calibrated_model, calibrated_model_for, checksum_pairs, run_queue, run_queue_recoverable,
    solo_outcome, tenant_job, QueueRun, RecoveryOptions, ServeError, TenantOutcome, TenantReport,
};
