use crate::estimate::WorkingSetModel;
use crate::queue::TenantSpec;
use asj_data::{DatasetSpec, PAPER_BBOX};
use asj_engine::{
    Cluster, FaultPlan, JobServer, JobSpec, PoolStats, RetryPolicy, SchedPolicy, SubmitError,
};
use asj_join::{JoinSpec, Record};
use std::time::Duration;

/// What one tenant's join produced, reduced to the fields that must be
/// byte-identical between a solo run and any multi-tenant interleaving.
/// Durations and spill volumes are intentionally absent: host timings and
/// shared-accountant pressure vary; results must not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantOutcome {
    pub result_count: u64,
    pub candidates: u64,
    /// Replicated objects across both inputs.
    pub replicated: u64,
    /// FNV-1a over the sorted result pairs (and the count) — the isolation
    /// oracle's fingerprint.
    pub checksum: u64,
}

/// FNV-1a 64 over the result cardinality and the sorted `(r, s)` pairs.
/// Sorting first makes the fingerprint independent of partition emit order.
pub fn checksum_pairs(result_count: u64, pairs: &[(u64, u64)]) -> u64 {
    let mut sorted = pairs.to_vec();
    sorted.sort_unstable();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |value: u64| {
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(result_count);
    for (r, s) in sorted {
        eat(r);
        eat(s);
    }
    hash
}

/// The per-tenant slice of one multi-tenant run: scheduling observables from
/// the job server plus the join outcome (or the panic message if the tenant
/// crashed — a crash fails only its own tenant).
#[derive(Debug, Clone)]
pub struct TenantReport {
    pub name: String,
    pub weight: u32,
    /// Working-set estimate admission control used (override or model).
    pub estimate_bytes: u64,
    pub outcome: Result<TenantOutcome, String>,
    /// Submit-to-first-quantum on the server clock.
    pub queue_wait: Duration,
    /// Submit-to-completion on the server clock.
    pub turnaround: Duration,
    /// Parallel stages this tenant ran.
    pub stages: u64,
    /// Scheduler quanta this tenant consumed.
    pub quanta: u64,
    /// Task attempts, including retries under this tenant's fault plan.
    pub attempts: u64,
    pub retries: u64,
    /// Bytes this tenant's stages spilled under memory pressure.
    pub spilled_bytes: u64,
    /// Buffer-pool activity attributable to this tenant alone.
    pub pool: PoolStats,
    /// Leak audit: bytes still resident at completion (0 unless a charge
    /// guard failed to settle).
    pub residual_bytes: u64,
}

impl TenantReport {
    /// One aligned report line per tenant, for the CLI and bench logs.
    pub fn summary_line(&self) -> String {
        match &self.outcome {
            Ok(out) => format!(
                "job {name:<12} ok    results {results:>9}  checksum {checksum:016x}  \
                 wait {wait:>8.3?}  turnaround {turnaround:>8.3?}  stages {stages:>3}  \
                 retries {retries:>2}  spilled {spilled}",
                name = self.name,
                results = out.result_count,
                checksum = out.checksum,
                wait = self.queue_wait,
                turnaround = self.turnaround,
                stages = self.stages,
                retries = self.retries,
                spilled = self.spilled_bytes,
            ),
            Err(message) => format!(
                "job {name:<12} FAILED  {message}",
                name = self.name,
                message = message
            ),
        }
    }
}

/// One multi-tenant run: per-tenant reports in submit order plus the
/// server-level observables (grant log, final clock).
#[derive(Debug, Clone)]
pub struct QueueRun {
    pub policy: SchedPolicy,
    pub tenants: Vec<TenantReport>,
    /// Quantum grant log (job ids, in grant order) — deterministic for a
    /// fixed queue and policy.
    pub grants: Vec<usize>,
    /// Final server clock: serialized simulated time of the whole queue.
    pub clock: Duration,
}

/// Typed failure of [`run_queue`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A tenant's spec could not be turned into a job (bad fault plan, …).
    Spec { tenant: String, message: String },
    /// The job server refused the tenant at submit time.
    Submit { tenant: String, error: SubmitError },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Spec { tenant, message } => {
                write!(f, "tenant '{tenant}': {message}")
            }
            ServeError::Submit { tenant, error } => {
                write!(f, "tenant '{tenant}' rejected: {error}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

fn tenant_records(tenant: &TenantSpec, seed: u64) -> Vec<Record> {
    let points = DatasetSpec {
        name: "serve",
        kind: tenant.kind,
        cardinality: tenant.cardinality,
        seed,
        bbox: PAPER_BBOX,
        sigma_scale: 1.0,
    }
    .points();
    points
        .into_iter()
        .enumerate()
        .map(|(i, p)| Record::new(i as u64, p))
        .collect()
}

fn tenant_join_spec(tenant: &TenantSpec) -> JoinSpec {
    JoinSpec::new(PAPER_BBOX, tenant.eps)
        .with_partitions(tenant.partitions)
        .with_grid_factor(tenant.grid_factor)
        .with_kernel(tenant.kernel)
        .with_seed(tenant.seed)
}

fn tenant_faults(tenant: &TenantSpec) -> Result<Option<(FaultPlan, RetryPolicy)>, String> {
    let plan = match &tenant.faults {
        Some(spec) => Some(FaultPlan::parse(spec, tenant.fault_seed)?),
        None => None,
    };
    let mut policy = RetryPolicy::default();
    if let Some(n) = tenant.max_attempts {
        policy = policy.with_max_attempts(n);
    }
    match plan {
        Some(plan) => Ok(Some((plan, policy))),
        // A retry budget without a plan still pins this tenant's fault state
        // to its own context instead of inheriting the server's.
        None if tenant.max_attempts.is_some() => Ok(Some((FaultPlan::none(), policy))),
        None => Ok(None),
    }
}

fn run_tenant_body(tenant: &TenantSpec, cluster: &Cluster) -> TenantOutcome {
    let r = tenant_records(tenant, tenant.seed);
    let s = tenant_records(tenant, tenant.seed.wrapping_add(1));
    let spec = tenant_join_spec(tenant);
    let out = tenant.algorithm.run(cluster, &spec, r, s);
    TenantOutcome {
        result_count: out.result_count,
        candidates: out.candidates,
        replicated: out.replicated_total(),
        checksum: checksum_pairs(out.result_count, &out.pairs),
    }
}

/// Builds the [`JobSpec`] for one tenant: the join body, the fair-share
/// weight, the tenant's own fault plan and the working-set estimate
/// (override, or `model` applied to the tenant's sampled inputs).
pub fn tenant_job(
    tenant: &TenantSpec,
    nodes: usize,
    model: &WorkingSetModel,
) -> Result<JobSpec<TenantOutcome>, String> {
    let estimate = tenant
        .estimate_override
        .unwrap_or_else(|| model.estimate(tenant, nodes));
    let owned = tenant.clone();
    let mut spec = JobSpec::new(tenant.name.clone(), move |cluster: &Cluster| {
        run_tenant_body(&owned, cluster)
    })
    .with_weight(tenant.weight)
    .with_estimate(estimate);
    if let Some((plan, policy)) = tenant_faults(tenant)? {
        spec = spec.with_faults(plan, policy);
    }
    Ok(spec)
}

/// Runs a whole tenant queue on `cluster` under `policy` and reports every
/// tenant in submit order. Admission estimates come from a
/// [`WorkingSetModel`] calibrated on the first tenant's sampled records.
pub fn run_queue(
    cluster: &Cluster,
    tenants: &[TenantSpec],
    policy: SchedPolicy,
) -> Result<QueueRun, ServeError> {
    let model = calibrated_model(tenants);
    let mut server = JobServer::new(cluster.clone())
        .with_policy(policy)
        .with_queue_capacity(tenants.len().max(1));
    for tenant in tenants {
        let job =
            tenant_job(tenant, cluster.nodes(), &model).map_err(|message| ServeError::Spec {
                tenant: tenant.name.clone(),
                message,
            })?;
        server.submit(job).map_err(|error| ServeError::Submit {
            tenant: tenant.name.clone(),
            error,
        })?;
    }
    let run = server.run();
    let tenants = run
        .reports
        .into_iter()
        .map(|report| TenantReport {
            name: report.name.clone(),
            weight: report.weight,
            estimate_bytes: report.estimate_bytes,
            outcome: report.result,
            queue_wait: report.first_service_at,
            turnaround: report.finished_at,
            stages: report.stages,
            quanta: report.quanta,
            attempts: report.stats.attempts,
            retries: report.stats.retries,
            spilled_bytes: report.stats.spilled_bytes,
            pool: report.pool,
            residual_bytes: report.residual_bytes,
        })
        .collect();
    Ok(QueueRun {
        policy: run.policy,
        tenants,
        grants: run.grants,
        clock: run.clock,
    })
}

/// The estimator model [`run_queue`] uses: record size calibrated on a small
/// sample of the first tenant's generated records (all tenants' records share
/// the payload-free shape, so one probe calibrates the queue).
pub fn calibrated_model(tenants: &[TenantSpec]) -> WorkingSetModel {
    match tenants.first() {
        Some(first) => {
            let mut probe = first.clone();
            probe.cardinality = first.cardinality.min(256);
            WorkingSetModel::calibrated(&tenant_records(&probe, probe.seed))
        }
        None => WorkingSetModel::default(),
    }
}

/// The isolation oracle: runs `tenant` alone on a FRESH cluster of the same
/// shape (own accountant, own buffer pool, no gate) and returns the outcome
/// a multi-tenant run must reproduce byte-identically.
pub fn solo_outcome(cluster: &Cluster, tenant: &TenantSpec) -> Result<TenantOutcome, String> {
    let mut solo = Cluster::new(cluster.config());
    if let Some((plan, policy)) = tenant_faults(tenant)? {
        solo = solo.with_fault_policy(plan, policy);
    } else if let Some(ctx) = cluster.fault_context() {
        // Mirror the server: tenants without their own plan inherit the base
        // cluster's (with fresh state, as the per-job context is rebuilt).
        solo = solo.with_fault_policy(ctx.plan.clone(), ctx.policy);
    }
    Ok(run_tenant_body(tenant, &solo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_engine::ClusterConfig;
    use asj_join::Algorithm;

    fn two_tenants() -> Vec<TenantSpec> {
        let mut a = TenantSpec::new("alpha", 0.5, 900);
        a.algorithm = Algorithm::Lpib;
        a.partitions = 8;
        a.seed = 11;
        let mut b = TenantSpec::new("beta", 0.3, 1_400);
        b.algorithm = Algorithm::UniR;
        b.partitions = 8;
        b.seed = 23;
        b.weight = 2;
        vec![a, b]
    }

    fn test_cluster() -> Cluster {
        Cluster::new(ClusterConfig::with_threads(4, 2))
    }

    #[test]
    fn checksum_is_order_independent_and_content_sensitive() {
        let a = checksum_pairs(2, &[(1, 2), (3, 4)]);
        let b = checksum_pairs(2, &[(3, 4), (1, 2)]);
        assert_eq!(a, b, "pair order must not matter");
        assert_ne!(a, checksum_pairs(2, &[(1, 2), (3, 5)]));
        assert_ne!(checksum_pairs(0, &[]), checksum_pairs(1, &[]));
    }

    #[test]
    fn queue_outcomes_match_solo_runs() {
        let cluster = test_cluster();
        let tenants = two_tenants();
        let run = run_queue(&cluster, &tenants, SchedPolicy::FairShare).expect("queue runs");
        assert_eq!(run.tenants.len(), 2);
        for (tenant, report) in tenants.iter().zip(&run.tenants) {
            let solo = solo_outcome(&cluster, tenant).expect("solo runs");
            let shared = report.outcome.as_ref().expect("tenant succeeded");
            assert_eq!(shared, &solo, "tenant '{}' isolation", tenant.name);
            assert!(shared.result_count > 0, "joins must produce results");
            assert_eq!(report.residual_bytes, 0, "leak audit");
        }
        // Interleaved under fair-share: both tenants are served before
        // either finishes (the grant log mixes job ids).
        let first_of_1 = run.grants.iter().position(|&g| g == 1);
        let last_of_0 = run.grants.iter().rposition(|&g| g == 0);
        assert!(
            first_of_1.expect("job 1 granted") < last_of_0.expect("job 0 granted"),
            "fair-share must interleave: {:?}",
            run.grants
        );
    }

    #[test]
    fn queue_runs_are_deterministic() {
        let tenants = two_tenants();
        let a = run_queue(&test_cluster(), &tenants, SchedPolicy::FairShare).expect("run a");
        let b = run_queue(&test_cluster(), &tenants, SchedPolicy::FairShare).expect("run b");
        assert_eq!(a.grants, b.grants, "grant log is deterministic");
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(
                x.outcome.as_ref().expect("ok"),
                y.outcome.as_ref().expect("ok"),
                "outcomes are deterministic"
            );
            // Queue waits and turnarounds are simulated-clock values built
            // from measured stage makespans: reproducible in ORDER (the
            // grant log) but not to the nanosecond, so they are not
            // asserted equal here.
            assert_eq!(x.stages, y.stages, "stage counts are deterministic");
            assert_eq!(x.quanta, y.quanta);
        }
    }

    #[test]
    fn oversized_tenant_is_a_typed_submit_error() {
        let cluster = Cluster::new(ClusterConfig::with_threads(4, 2).with_memory_budget(1 << 20));
        let mut tenants = two_tenants();
        tenants[1].estimate_override = Some(u64::MAX);
        let err = run_queue(&cluster, &tenants, SchedPolicy::Fifo).unwrap_err();
        match err {
            ServeError::Submit {
                tenant,
                error: SubmitError::RejectedMemory { budget_bytes, .. },
            } => {
                assert_eq!(tenant, "beta");
                assert_eq!(budget_bytes, 1 << 20);
            }
            other => panic!("expected RejectedMemory, got {other:?}"),
        }
    }

    #[test]
    fn bad_fault_spec_is_a_typed_spec_error() {
        let mut tenants = two_tenants();
        tenants[0].faults = Some("gremlins".into());
        let err = run_queue(&test_cluster(), &tenants, SchedPolicy::Fifo).unwrap_err();
        match err {
            ServeError::Spec { tenant, .. } => assert_eq!(tenant, "alpha"),
            other => panic!("expected Spec error, got {other:?}"),
        }
    }

    #[test]
    fn faulty_tenant_retries_without_touching_the_calm_one() {
        let mut tenants = two_tenants();
        tenants[0].faults = Some("p=0.4".into());
        tenants[0].max_attempts = Some(8);
        let run = run_queue(&test_cluster(), &tenants, SchedPolicy::FairShare).expect("runs");
        let chaotic = &run.tenants[0];
        let calm = &run.tenants[1];
        assert_eq!(calm.retries, 0, "fault plans are per-tenant");
        // The chaotic tenant still matches its solo outcome (recovery is
        // deterministic given the plan seed).
        let solo = solo_outcome(&test_cluster(), &tenants[0]).expect("solo");
        assert_eq!(chaotic.outcome.as_ref().expect("recovered"), &solo);
    }

    #[test]
    fn summary_lines_render_both_arms() {
        let ok = TenantReport {
            name: "alpha".into(),
            weight: 1,
            estimate_bytes: 1024,
            outcome: Ok(TenantOutcome {
                result_count: 42,
                candidates: 99,
                replicated: 7,
                checksum: 0xDEAD_BEEF,
            }),
            queue_wait: Duration::from_millis(3),
            turnaround: Duration::from_millis(9),
            stages: 4,
            quanta: 5,
            attempts: 4,
            retries: 0,
            spilled_bytes: 0,
            pool: PoolStats::default(),
            residual_bytes: 0,
        };
        let line = ok.summary_line();
        assert!(line.contains("alpha") && line.contains("ok"), "{line}");
        assert!(line.contains("00000000deadbeef"), "{line}");
        let mut failed = ok.clone();
        failed.outcome = Err("boom".into());
        let line = failed.summary_line();
        assert!(line.contains("FAILED") && line.contains("boom"), "{line}");
    }
}
