use crate::estimate::WorkingSetModel;
use crate::queue::TenantSpec;
use asj_data::{DatasetSpec, PAPER_BBOX};
use asj_engine::{
    ensure_remaining, Cluster, FaultPlan, JobServer, JobSpec, PoolStats, RetryPolicy, SchedPolicy,
    SubmitError, Wire, WireError,
};
use asj_join::{to_records, JoinSpec, Record};
use bytes::{Buf, BufMut};
use std::path::PathBuf;
use std::time::Duration;

/// What one tenant's join produced, reduced to the fields that must be
/// byte-identical between a solo run and any multi-tenant interleaving.
/// Durations and spill volumes are intentionally absent: host timings and
/// shared-accountant pressure vary; results must not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantOutcome {
    pub result_count: u64,
    pub candidates: u64,
    /// Replicated objects across both inputs.
    pub replicated: u64,
    /// FNV-1a over the sorted result pairs (and the count) — the isolation
    /// oracle's fingerprint.
    pub checksum: u64,
}

/// Wire codec for journaled `done` records: four LE u64s, so a recovered
/// server replays a finished tenant's outcome byte-identically.
impl Wire for TenantOutcome {
    fn encoded_size(&self) -> usize {
        32
    }

    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.result_count);
        buf.put_u64_le(self.candidates);
        buf.put_u64_le(self.replicated);
        buf.put_u64_le(self.checksum);
    }

    fn try_decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        ensure_remaining(buf, 32)?;
        Ok(TenantOutcome {
            result_count: buf.get_u64_le(),
            candidates: buf.get_u64_le(),
            replicated: buf.get_u64_le(),
            checksum: buf.get_u64_le(),
        })
    }
}

/// FNV-1a 64 over the result cardinality and the sorted `(r, s)` pairs.
/// Sorting first makes the fingerprint independent of partition emit order.
pub fn checksum_pairs(result_count: u64, pairs: &[(u64, u64)]) -> u64 {
    let mut sorted = pairs.to_vec();
    sorted.sort_unstable();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |value: u64| {
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(result_count);
    for (r, s) in sorted {
        eat(r);
        eat(s);
    }
    hash
}

/// The per-tenant slice of one multi-tenant run: scheduling observables from
/// the job server plus the join outcome (or the panic message if the tenant
/// crashed — a crash fails only its own tenant).
#[derive(Debug, Clone)]
pub struct TenantReport {
    pub name: String,
    pub weight: u32,
    /// Working-set estimate admission control used (override or model).
    pub estimate_bytes: u64,
    pub outcome: Result<TenantOutcome, String>,
    /// Submit-to-first-quantum on the server clock.
    pub queue_wait: Duration,
    /// Submit-to-completion on the server clock.
    pub turnaround: Duration,
    /// Parallel stages this tenant ran.
    pub stages: u64,
    /// Scheduler quanta this tenant consumed.
    pub quanta: u64,
    /// Task attempts, including retries under this tenant's fault plan.
    pub attempts: u64,
    pub retries: u64,
    /// Bytes this tenant's stages spilled under memory pressure.
    pub spilled_bytes: u64,
    /// Buffer-pool activity attributable to this tenant alone.
    pub pool: PoolStats,
    /// Leak audit: bytes still resident at completion (0 unless a charge
    /// guard failed to settle).
    pub residual_bytes: u64,
    /// The outcome was replayed from the journal instead of re-running the
    /// join (recovery of an already-finished tenant).
    pub recovered: bool,
}

impl TenantReport {
    /// One aligned report line per tenant, for the CLI and bench logs.
    pub fn summary_line(&self) -> String {
        match &self.outcome {
            Ok(out) => format!(
                "job {name:<12} ok    results {results:>9}  checksum {checksum:016x}  \
                 wait {wait:>8.3?}  turnaround {turnaround:>8.3?}  stages {stages:>3}  \
                 retries {retries:>2}  spilled {spilled}",
                name = self.name,
                results = out.result_count,
                checksum = out.checksum,
                wait = self.queue_wait,
                turnaround = self.turnaround,
                stages = self.stages,
                retries = self.retries,
                spilled = self.spilled_bytes,
            ),
            Err(message) => format!(
                "job {name:<12} FAILED  {message}",
                name = self.name,
                message = message
            ),
        }
    }
}

/// One multi-tenant run: per-tenant reports in submit order plus the
/// server-level observables (grant log, final clock).
#[derive(Debug, Clone)]
pub struct QueueRun {
    pub policy: SchedPolicy,
    pub tenants: Vec<TenantReport>,
    /// Quantum grant log (job ids, in grant order) — deterministic for a
    /// fixed queue and policy.
    pub grants: Vec<usize>,
    /// Final server clock: serialized simulated time of the whole queue.
    pub clock: Duration,
    /// A `crash@N` fault clause stopped the server mid-queue; unfinished
    /// tenants report errors and the journal holds the recovery state.
    pub crashed: bool,
    /// Shuffle stages replayed from checkpoints instead of recomputed.
    pub stages_recovered: u64,
    /// Bytes written to stage checkpoints during this run.
    pub checkpoint_bytes: u64,
    /// For a recovered run: the crashed run's journaled grant log (a prefix
    /// of what the uncrashed run would have granted).
    pub journal_grants: Vec<usize>,
}

/// Typed failure of [`run_queue`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A tenant's spec could not be turned into a job (bad fault plan, …).
    Spec { tenant: String, message: String },
    /// The job server refused the tenant at submit time.
    Submit { tenant: String, error: SubmitError },
    /// The journal or checkpoint store could not be opened/read (message
    /// carries the rendered io error; kept as a string so `ServeError` stays
    /// `Clone + PartialEq`).
    Io { context: String, message: String },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Spec { tenant, message } => {
                write!(f, "tenant '{tenant}': {message}")
            }
            ServeError::Submit { tenant, error } => {
                write!(f, "tenant '{tenant}' rejected: {error}")
            }
            ServeError::Io { context, message } => {
                write!(f, "{context}: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

fn tenant_records(tenant: &TenantSpec, seed: u64) -> Vec<Record> {
    let points = DatasetSpec {
        name: "serve",
        kind: tenant.kind,
        cardinality: tenant.cardinality,
        seed,
        bbox: PAPER_BBOX,
        sigma_scale: 1.0,
    }
    .points();
    // `payload=0` produces the same bare records as before (an empty payload
    // encodes identically), so payload-free checksums are unchanged.
    to_records(&points, tenant.payload as usize)
}

fn tenant_join_spec(tenant: &TenantSpec) -> JoinSpec {
    JoinSpec::new(PAPER_BBOX, tenant.eps)
        .with_partitions(tenant.partitions)
        .with_grid_factor(tenant.grid_factor)
        .with_kernel(tenant.kernel)
        .with_seed(tenant.seed)
}

fn tenant_faults(tenant: &TenantSpec) -> Result<Option<(FaultPlan, RetryPolicy)>, String> {
    let plan = match &tenant.faults {
        Some(spec) => Some(FaultPlan::parse(spec, tenant.fault_seed)?),
        None => None,
    };
    let mut policy = RetryPolicy::default();
    if let Some(n) = tenant.max_attempts {
        policy = policy.with_max_attempts(n);
    }
    match plan {
        Some(plan) => Ok(Some((plan, policy))),
        // A retry budget without a plan still pins this tenant's fault state
        // to its own context instead of inheriting the server's.
        None if tenant.max_attempts.is_some() => Ok(Some((FaultPlan::none(), policy))),
        None => Ok(None),
    }
}

fn run_tenant_body(tenant: &TenantSpec, cluster: &Cluster) -> TenantOutcome {
    let r = tenant_records(tenant, tenant.seed);
    let s = tenant_records(tenant, tenant.seed.wrapping_add(1));
    let spec = tenant_join_spec(tenant);
    let out = tenant.algorithm.run(cluster, &spec, r, s);
    TenantOutcome {
        result_count: out.result_count,
        candidates: out.candidates,
        replicated: out.replicated_total(),
        checksum: checksum_pairs(out.result_count, &out.pairs),
    }
}

/// Builds the [`JobSpec`] for one tenant: the join body, the fair-share
/// weight, the tenant's own fault plan and the working-set estimate
/// (override, or `model` applied to the tenant's sampled inputs).
pub fn tenant_job(
    tenant: &TenantSpec,
    nodes: usize,
    model: &WorkingSetModel,
) -> Result<JobSpec<TenantOutcome>, String> {
    let estimate = tenant
        .estimate_override
        .unwrap_or_else(|| model.estimate(tenant, nodes));
    let owned = tenant.clone();
    let mut spec = JobSpec::new(tenant.name.clone(), move |cluster: &Cluster| {
        run_tenant_body(&owned, cluster)
    })
    .with_weight(tenant.weight)
    .with_estimate(estimate);
    if let Some((plan, policy)) = tenant_faults(tenant)? {
        spec = spec.with_faults(plan, policy);
    }
    Ok(spec)
}

/// Durability options for [`run_queue_recoverable`]: where (and whether) to
/// journal server state and checkpoint stage outputs, and whether this run
/// resumes a crashed one.
#[derive(Debug, Clone, Default)]
pub struct RecoveryOptions {
    /// Append-only JSONL write-ahead journal. Created fresh unless
    /// `recover` is set (then it is read, and reopened for append).
    pub journal: Option<PathBuf>,
    /// Directory for per-stage shuffle checkpoints (manifest + segment
    /// pairs). Opened (and swept of orphaned debris) at startup.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the journal: finished tenants replay their journaled
    /// outcomes, in-flight tenants re-run against their checkpoints.
    pub recover: bool,
    /// Compact the journal after every N durable completions (the server's
    /// `--compact-every` option); `None` leaves the journal append-only.
    pub compact_every: Option<u64>,
}

/// Runs a whole tenant queue on `cluster` under `policy` and reports every
/// tenant in submit order. Admission estimates come from a
/// [`WorkingSetModel`] calibrated per tenant on its own sampled records
/// (payload included).
pub fn run_queue(
    cluster: &Cluster,
    tenants: &[TenantSpec],
    policy: SchedPolicy,
) -> Result<QueueRun, ServeError> {
    run_queue_recoverable(cluster, tenants, policy, &RecoveryOptions::default())
}

/// [`run_queue`] with durability: optionally journals server state,
/// checkpoints completed shuffle stages, and resumes from a prior crashed
/// run's journal + checkpoint directory.
pub fn run_queue_recoverable(
    cluster: &Cluster,
    tenants: &[TenantSpec],
    policy: SchedPolicy,
    options: &RecoveryOptions,
) -> Result<QueueRun, ServeError> {
    let mut cluster = cluster.clone();
    if let Some(dir) = &options.checkpoint_dir {
        cluster = cluster
            .with_checkpoint_dir(dir)
            .map_err(|e| ServeError::Io {
                context: format!("opening checkpoint dir {}", dir.display()),
                message: e.to_string(),
            })?;
    }
    let mut server = JobServer::new(cluster.clone())
        .with_policy(policy)
        .with_queue_capacity(tenants.len().max(1));
    for tenant in tenants {
        let model = calibrated_model_for(tenant);
        let job =
            tenant_job(tenant, cluster.nodes(), &model).map_err(|message| ServeError::Spec {
                tenant: tenant.name.clone(),
                message,
            })?;
        server.submit(job).map_err(|error| ServeError::Submit {
            tenant: tenant.name.clone(),
            error,
        })?;
    }
    if let Some(path) = &options.journal {
        server = if options.recover {
            server.recover(path).map_err(|e| ServeError::Io {
                context: format!("recovering from journal {}", path.display()),
                message: e.to_string(),
            })?
        } else {
            server.with_journal(path).map_err(|e| ServeError::Io {
                context: format!("creating journal {}", path.display()),
                message: e.to_string(),
            })?
        };
        if let Some(every) = options.compact_every {
            server = server.with_compact_every(every);
        }
    }
    let run = server.run();
    let tenants = run
        .reports
        .into_iter()
        .map(|report| TenantReport {
            name: report.name.clone(),
            weight: report.weight,
            estimate_bytes: report.estimate_bytes,
            outcome: report.result,
            queue_wait: report.first_service_at,
            turnaround: report.finished_at,
            stages: report.stages,
            quanta: report.quanta,
            attempts: report.stats.attempts,
            retries: report.stats.retries,
            spilled_bytes: report.stats.spilled_bytes,
            pool: report.pool,
            residual_bytes: report.residual_bytes,
            recovered: report.recovered,
        })
        .collect();
    Ok(QueueRun {
        policy: run.policy,
        tenants,
        grants: run.grants,
        clock: run.clock,
        crashed: run.crashed,
        stages_recovered: run.stages_recovered,
        checkpoint_bytes: run.checkpoint_bytes,
        journal_grants: run.journal_grants,
    })
}

/// The estimator model [`run_queue`] uses for one tenant: record size
/// calibrated on a small sample of that tenant's own generated records.
/// Per-tenant, not per-queue: a tenant carrying `payload=` bytes encodes
/// fatter records than its payload-free neighbors, and pricing them with a
/// payload-free probe under-admits by the whole payload volume (the bug this
/// replaces: the old model calibrated once on the first tenant's bare
/// records and applied it queue-wide).
pub fn calibrated_model_for(tenant: &TenantSpec) -> WorkingSetModel {
    let mut probe = tenant.clone();
    probe.cardinality = tenant.cardinality.min(256);
    WorkingSetModel::calibrated(&tenant_records(&probe, probe.seed))
}

/// Queue-level calibration kept for callers that want one model: probes the
/// first tenant (payload included). Prefer [`calibrated_model_for`] when
/// tenants carry different payload sizes.
pub fn calibrated_model(tenants: &[TenantSpec]) -> WorkingSetModel {
    match tenants.first() {
        Some(first) => calibrated_model_for(first),
        None => WorkingSetModel::default(),
    }
}

/// The isolation oracle: runs `tenant` alone on a FRESH cluster of the same
/// shape (own accountant, own buffer pool, no gate) and returns the outcome
/// a multi-tenant run must reproduce byte-identically.
pub fn solo_outcome(cluster: &Cluster, tenant: &TenantSpec) -> Result<TenantOutcome, String> {
    let mut solo = Cluster::new(cluster.config());
    if let Some((plan, policy)) = tenant_faults(tenant)? {
        solo = solo.with_fault_policy(plan, policy);
    } else if let Some(ctx) = cluster.fault_context() {
        // Mirror the server: tenants without their own plan inherit the base
        // cluster's (with fresh state, as the per-job context is rebuilt).
        solo = solo.with_fault_policy(ctx.plan.clone(), ctx.policy);
    }
    Ok(run_tenant_body(tenant, &solo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_engine::ClusterConfig;
    use asj_join::Algorithm;

    fn two_tenants() -> Vec<TenantSpec> {
        let mut a = TenantSpec::new("alpha", 0.5, 900);
        a.algorithm = Algorithm::Lpib;
        a.partitions = 8;
        a.seed = 11;
        let mut b = TenantSpec::new("beta", 0.3, 1_400);
        b.algorithm = Algorithm::UniR;
        b.partitions = 8;
        b.seed = 23;
        b.weight = 2;
        vec![a, b]
    }

    fn test_cluster() -> Cluster {
        Cluster::new(ClusterConfig::with_threads(4, 2))
    }

    #[test]
    fn checksum_is_order_independent_and_content_sensitive() {
        let a = checksum_pairs(2, &[(1, 2), (3, 4)]);
        let b = checksum_pairs(2, &[(3, 4), (1, 2)]);
        assert_eq!(a, b, "pair order must not matter");
        assert_ne!(a, checksum_pairs(2, &[(1, 2), (3, 5)]));
        assert_ne!(checksum_pairs(0, &[]), checksum_pairs(1, &[]));
    }

    #[test]
    fn queue_outcomes_match_solo_runs() {
        let cluster = test_cluster();
        let tenants = two_tenants();
        let run = run_queue(&cluster, &tenants, SchedPolicy::FairShare).expect("queue runs");
        assert_eq!(run.tenants.len(), 2);
        for (tenant, report) in tenants.iter().zip(&run.tenants) {
            let solo = solo_outcome(&cluster, tenant).expect("solo runs");
            let shared = report.outcome.as_ref().expect("tenant succeeded");
            assert_eq!(shared, &solo, "tenant '{}' isolation", tenant.name);
            assert!(shared.result_count > 0, "joins must produce results");
            assert_eq!(report.residual_bytes, 0, "leak audit");
        }
        // Interleaved under fair-share: both tenants are served before
        // either finishes (the grant log mixes job ids).
        let first_of_1 = run.grants.iter().position(|&g| g == 1);
        let last_of_0 = run.grants.iter().rposition(|&g| g == 0);
        assert!(
            first_of_1.expect("job 1 granted") < last_of_0.expect("job 0 granted"),
            "fair-share must interleave: {:?}",
            run.grants
        );
    }

    #[test]
    fn queue_runs_are_deterministic() {
        let tenants = two_tenants();
        let a = run_queue(&test_cluster(), &tenants, SchedPolicy::FairShare).expect("run a");
        let b = run_queue(&test_cluster(), &tenants, SchedPolicy::FairShare).expect("run b");
        assert_eq!(a.grants, b.grants, "grant log is deterministic");
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(
                x.outcome.as_ref().expect("ok"),
                y.outcome.as_ref().expect("ok"),
                "outcomes are deterministic"
            );
            // Queue waits and turnarounds are simulated-clock values built
            // from measured stage makespans: reproducible in ORDER (the
            // grant log) but not to the nanosecond, so they are not
            // asserted equal here.
            assert_eq!(x.stages, y.stages, "stage counts are deterministic");
            assert_eq!(x.quanta, y.quanta);
        }
    }

    #[test]
    fn oversized_tenant_is_a_typed_submit_error() {
        let cluster = Cluster::new(ClusterConfig::with_threads(4, 2).with_memory_budget(1 << 20));
        let mut tenants = two_tenants();
        tenants[1].estimate_override = Some(u64::MAX);
        let err = run_queue(&cluster, &tenants, SchedPolicy::Fifo).unwrap_err();
        match err {
            ServeError::Submit {
                tenant,
                error: SubmitError::RejectedMemory { budget_bytes, .. },
            } => {
                assert_eq!(tenant, "beta");
                assert_eq!(budget_bytes, 1 << 20);
            }
            other => panic!("expected RejectedMemory, got {other:?}"),
        }
    }

    #[test]
    fn bad_fault_spec_is_a_typed_spec_error() {
        let mut tenants = two_tenants();
        tenants[0].faults = Some("gremlins".into());
        let err = run_queue(&test_cluster(), &tenants, SchedPolicy::Fifo).unwrap_err();
        match err {
            ServeError::Spec { tenant, .. } => assert_eq!(tenant, "alpha"),
            other => panic!("expected Spec error, got {other:?}"),
        }
    }

    #[test]
    fn faulty_tenant_retries_without_touching_the_calm_one() {
        let mut tenants = two_tenants();
        tenants[0].faults = Some("p=0.4".into());
        tenants[0].max_attempts = Some(8);
        let run = run_queue(&test_cluster(), &tenants, SchedPolicy::FairShare).expect("runs");
        let chaotic = &run.tenants[0];
        let calm = &run.tenants[1];
        assert_eq!(calm.retries, 0, "fault plans are per-tenant");
        // The chaotic tenant still matches its solo outcome (recovery is
        // deterministic given the plan seed).
        let solo = solo_outcome(&test_cluster(), &tenants[0]).expect("solo");
        assert_eq!(chaotic.outcome.as_ref().expect("recovered"), &solo);
    }

    #[test]
    fn estimator_prices_payload_bytes_in() {
        // Regression: the estimator used to calibrate on payload-free
        // samples queue-wide, so a payload-carrying tenant was priced as if
        // its records were bare — under-admitting by the payload volume.
        let bare = TenantSpec::new("bare", 0.4, 2_000);
        let mut fat = bare.clone();
        fat.payload = 256;
        let bare_est = calibrated_model_for(&bare).estimate(&bare, 4);
        let fat_est = calibrated_model_for(&fat).estimate(&fat, 4);
        assert!(
            fat_est > bare_est,
            "payload bytes must grow the estimate: {fat_est} vs {bare_est}"
        );
        // The growth is at least the payload's share of the record: bare
        // records are ~28 B, so 256 B payloads must grow the estimate
        // several-fold, not marginally.
        assert!(
            fat_est > bare_est * 4,
            "256 B payloads on ~28 B records: {fat_est} vs {bare_est}"
        );
    }

    #[test]
    fn payload_tenants_join_like_bare_ones() {
        // Payload bytes ride the shuffle but must not change join results.
        let mut tenants = two_tenants();
        tenants[0].payload = 64;
        let run = run_queue(&test_cluster(), &tenants, SchedPolicy::FairShare).expect("runs");
        let solo = solo_outcome(&test_cluster(), &tenants[0]).expect("solo");
        assert_eq!(run.tenants[0].outcome.as_ref().expect("ok"), &solo);
        assert!(solo.result_count > 0);
    }

    #[test]
    fn tenant_outcome_wire_roundtrips() {
        let out = TenantOutcome {
            result_count: 1,
            candidates: 2,
            replicated: 3,
            checksum: 0xDEAD_BEEF_F00D_CAFE,
        };
        let mut buf = Vec::new();
        out.encode(&mut buf);
        assert_eq!(buf.len(), out.encoded_size());
        let mut cursor: &[u8] = &buf;
        assert_eq!(TenantOutcome::try_decode(&mut cursor), Ok(out));
        assert!(cursor.is_empty());
        let mut short: &[u8] = &buf[..16];
        assert!(TenantOutcome::try_decode(&mut short).is_err());
    }

    #[test]
    fn crashed_queue_recovers_with_identical_outcomes() {
        let dir = std::env::temp_dir().join(format!("asj-serve-recover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let journal = dir.join("server.journal");

        let tenants = two_tenants();
        // Uncrashed oracle.
        let oracle = run_queue(&test_cluster(), &tenants, SchedPolicy::FairShare).expect("oracle");

        // Crash the journaled, checkpointed run two grants shy of done: by
        // then at least one tenant has completed shuffle stages (so the
        // recovery leg has checkpoints to replay) and at least one tenant
        // is still unfinished (so there is something to recover).
        let crash_at = (oracle.grants.len() as u64).saturating_sub(2).max(1);
        let crash_cluster = test_cluster().with_fault_policy(
            FaultPlan::none().with_crash_after_grants(crash_at),
            RetryPolicy::default(),
        );
        let opts = RecoveryOptions {
            journal: Some(journal.clone()),
            checkpoint_dir: Some(dir.clone()),
            recover: false,
            compact_every: None,
        };
        let crashed =
            run_queue_recoverable(&crash_cluster, &tenants, SchedPolicy::FairShare, &opts)
                .expect("crashing run");
        assert!(crashed.crashed);
        assert_eq!(crashed.grants[..], oracle.grants[..crash_at as usize]);

        // Recover on a fresh cluster: byte-identical outcomes, journaled
        // grant prefix intact.
        let opts = RecoveryOptions {
            journal: Some(journal),
            checkpoint_dir: Some(dir.clone()),
            recover: true,
            compact_every: None,
        };
        let recovered =
            run_queue_recoverable(&test_cluster(), &tenants, SchedPolicy::FairShare, &opts)
                .expect("recovered run");
        assert!(!recovered.crashed);
        assert_eq!(
            recovered.journal_grants[..],
            oracle.grants[..crash_at as usize]
        );
        for (a, b) in oracle.tenants.iter().zip(&recovered.tenants) {
            assert_eq!(
                a.outcome.as_ref().expect("oracle ok"),
                b.outcome.as_ref().expect("recovered ok"),
                "tenant '{}' must recover byte-identically",
                a.name
            );
        }
        // The crashed run checkpointed at least one completed shuffle stage
        // that the recovery replayed instead of recomputing.
        assert!(crashed.checkpoint_bytes > 0);
        assert!(recovered.stages_recovered > 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_lines_render_both_arms() {
        let ok = TenantReport {
            name: "alpha".into(),
            weight: 1,
            estimate_bytes: 1024,
            outcome: Ok(TenantOutcome {
                result_count: 42,
                candidates: 99,
                replicated: 7,
                checksum: 0xDEAD_BEEF,
            }),
            queue_wait: Duration::from_millis(3),
            turnaround: Duration::from_millis(9),
            stages: 4,
            quanta: 5,
            attempts: 4,
            retries: 0,
            spilled_bytes: 0,
            pool: PoolStats::default(),
            residual_bytes: 0,
            recovered: false,
        };
        let line = ok.summary_line();
        assert!(line.contains("alpha") && line.contains("ok"), "{line}");
        assert!(line.contains("00000000deadbeef"), "{line}");
        let mut failed = ok.clone();
        failed.outcome = Err("boom".into());
        let line = failed.summary_line();
        assert!(line.contains("FAILED") && line.contains("boom"), "{line}");
    }
}
