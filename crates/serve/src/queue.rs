use asj_data::GenKind;
use asj_join::{Algorithm, LocalKernel};

/// One tenant's job request, as parsed from a queue file line.
///
/// A tenant is a complete ε-distance join: two generated datasets (seeds
/// `seed` and `seed + 1`), an algorithm, its own ε, kernel and partitioning,
/// an optional fault plan, a fair-share weight and an optional working-set
/// estimate override for admission control.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Unique tenant name (reports are keyed by it).
    pub name: String,
    pub algorithm: Algorithm,
    /// Distance threshold ε of this tenant's join.
    pub eps: f64,
    /// Cardinality of each input side.
    pub cardinality: usize,
    /// Distribution family of both generated inputs.
    pub kind: GenKind,
    /// Generator seed for R; S uses `seed + 1`.
    pub seed: u64,
    /// Fair-share weight (vruntime divisor; 1 = baseline share).
    pub weight: u32,
    pub kernel: LocalKernel,
    /// Shuffle partitions of this tenant's join.
    pub partitions: usize,
    pub grid_factor: f64,
    /// Synthetic payload bytes attached to every generated record (`payload=`
    /// key, byte suffixes allowed). Payloads ride the shuffle like real
    /// attribute data would, so the admission estimator must price them in.
    pub payload: u64,
    /// Fault-plan spec (`FaultPlan::parse` syntax), injected only into this
    /// tenant's stages.
    pub faults: Option<String>,
    /// Seed for the fault plan's randomized clauses.
    pub fault_seed: u64,
    /// Retry budget override (engine default if absent).
    pub max_attempts: Option<usize>,
    /// Working-set estimate override in bytes; when absent the server
    /// estimates from a calibrated sample (see `WorkingSetModel`).
    pub estimate_override: Option<u64>,
}

impl TenantSpec {
    /// A tenant with the queue-file defaults: LPiB, uniform data, weight 1,
    /// auto kernel, 32 partitions, grid factor 2.
    pub fn new(name: impl Into<String>, eps: f64, cardinality: usize) -> Self {
        TenantSpec {
            name: name.into(),
            algorithm: Algorithm::Lpib,
            eps,
            cardinality,
            kind: GenKind::Uniform,
            seed: 7,
            weight: 1,
            kernel: LocalKernel::Auto,
            partitions: 32,
            grid_factor: 2.0,
            payload: 0,
            faults: None,
            fault_seed: 7,
            max_attempts: None,
            estimate_override: None,
        }
    }
}

/// Queue-file spelling of an algorithm (the inverse of the `algo=` parser).
fn algorithm_token(algo: Algorithm) -> &'static str {
    match algo {
        Algorithm::Lpib => "lpib",
        Algorithm::Diff => "diff",
        Algorithm::UniR => "uni-r",
        Algorithm::UniS => "uni-s",
        Algorithm::EpsGrid => "eps-grid",
        Algorithm::Sedona => "sedona",
        Algorithm::LpibDedup => "lpib-dedup",
    }
}

/// Queue-file spelling of a generator kind (the inverse of the `kind=` parser).
fn gen_kind_token(kind: GenKind) -> &'static str {
    match kind {
        GenKind::GaussianClusters => "gaussian",
        GenKind::Hydrography => "hydrography",
        GenKind::Parks => "parks",
        GenKind::Uniform => "uniform",
    }
}

/// Renders the spec back into a `job NAME key=value ...` line that
/// [`parse_queue`] accepts. Every explicit key is emitted (defaults
/// included), so `parse(format(spec)) == spec` — the round-trip property the
/// parser tests pin.
impl std::fmt::Display for TenantSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} algo={} eps={} n={} kind={} seed={} weight={} kernel={} \
             partitions={} grid-factor={} payload={}",
            self.name,
            algorithm_token(self.algorithm),
            self.eps,
            self.cardinality,
            gen_kind_token(self.kind),
            self.seed,
            self.weight,
            self.kernel.name(),
            self.partitions,
            self.grid_factor,
            self.payload,
        )?;
        if let Some(faults) = &self.faults {
            write!(f, " faults={faults} fault-seed={}", self.fault_seed)?;
        }
        if let Some(n) = self.max_attempts {
            write!(f, " max-attempts={n}")?;
        }
        if let Some(bytes) = self.estimate_override {
            write!(f, " estimate={bytes}")?;
        }
        Ok(())
    }
}

/// Typed failure of [`parse_queue`]: which line and why.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueError {
    /// 1-based line number in the queue file.
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "queue line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for QueueError {}

fn algorithm_by_name(name: &str) -> Result<Algorithm, String> {
    Ok(match name {
        "lpib" => Algorithm::Lpib,
        "diff" => Algorithm::Diff,
        "uni-r" => Algorithm::UniR,
        "uni-s" => Algorithm::UniS,
        "eps-grid" => Algorithm::EpsGrid,
        "sedona" => Algorithm::Sedona,
        "lpib-dedup" => Algorithm::LpibDedup,
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

fn gen_kind_by_name(name: &str) -> Result<GenKind, String> {
    Ok(match name {
        "gaussian" => GenKind::GaussianClusters,
        "hydrography" => GenKind::Hydrography,
        "parks" => GenKind::Parks,
        "uniform" => GenKind::Uniform,
        other => return Err(format!("unknown generator kind '{other}'")),
    })
}

fn parse_num<T: std::str::FromStr>(value: &str, key: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value for '{key}': '{value}'"))
}

/// Parses a byte size with optional binary suffix (`64m`, `2g`, `512k`).
pub fn parse_bytes(value: &str) -> Result<u64, String> {
    let lower = value.trim().to_ascii_lowercase();
    let (digits, mult) = match lower.as_bytes().last() {
        Some(b'k') => (&lower[..lower.len() - 1], 1u64 << 10),
        Some(b'm') => (&lower[..lower.len() - 1], 1 << 20),
        Some(b'g') => (&lower[..lower.len() - 1], 1 << 30),
        _ => (lower.as_str(), 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("invalid byte size: '{value}'"))?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("byte size overflows u64: '{value}'"))
}

fn parse_job_line(line: &str) -> Result<TenantSpec, String> {
    let mut tokens = line.split_whitespace();
    match tokens.next() {
        Some("job") => {}
        Some(other) => return Err(format!("expected 'job', found '{other}'")),
        None => return Err("empty job line".into()),
    }
    let name = tokens.next().ok_or("missing tenant name after 'job'")?;
    if name.contains('=') {
        return Err(format!("missing tenant name after 'job' (found '{name}')"));
    }
    let mut spec = TenantSpec::new(name, f64::NAN, 2_000);
    let mut saw_eps = false;
    let mut seen_keys: Vec<&str> = Vec::new();
    for token in tokens {
        // Split on the FIRST '=' only: fault specs carry their own '='s
        // (`faults=p=0.3,slow:1=2.0`).
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, found '{token}'"))?;
        // A repeated key is almost always a copy-paste mistake; silently
        // letting the last one win hides it, so it is an error.
        if seen_keys.contains(&key) {
            return Err(format!("duplicate key '{key}'"));
        }
        seen_keys.push(key);
        match key {
            "algo" => spec.algorithm = algorithm_by_name(value)?,
            "eps" => {
                spec.eps = parse_num(value, key)?;
                saw_eps = true;
            }
            "n" => spec.cardinality = parse_num(value, key)?,
            "kind" => spec.kind = gen_kind_by_name(value)?,
            "seed" => spec.seed = parse_num(value, key)?,
            "weight" => {
                spec.weight = parse_num(value, key)?;
                if spec.weight == 0 {
                    return Err("weight must be positive".into());
                }
            }
            "kernel" => spec.kernel = value.parse()?,
            "partitions" => {
                spec.partitions = parse_num(value, key)?;
                if spec.partitions == 0 {
                    return Err("partitions must be positive".into());
                }
            }
            "grid-factor" => spec.grid_factor = parse_num(value, key)?,
            "payload" => spec.payload = parse_bytes(value)?,
            "faults" => spec.faults = Some(value.to_string()),
            "fault-seed" => spec.fault_seed = parse_num(value, key)?,
            "max-attempts" => spec.max_attempts = Some(parse_num(value, key)?),
            "estimate" => spec.estimate_override = Some(parse_bytes(value)?),
            other => return Err(format!("unknown key '{other}'")),
        }
    }
    if !saw_eps {
        return Err("missing required key 'eps'".into());
    }
    if !spec.eps.is_finite() || spec.eps <= 0.0 {
        return Err(format!("eps must be positive, got {}", spec.eps));
    }
    if spec.cardinality == 0 {
        return Err("n must be positive".into());
    }
    Ok(spec)
}

/// Parses a tenant queue file: one `job NAME key=value ...` per line, `#`
/// comments and blank lines skipped. Tenant names must be unique.
///
/// ```text
/// # two tenants, the second twice the share and chaos-injected
/// job alpha algo=lpib eps=0.4 n=4000 kind=gaussian seed=11
/// job beta  algo=uni-r eps=0.2 n=8000 weight=2 faults=p=0.2 fault-seed=3
/// ```
pub fn parse_queue(text: &str) -> Result<Vec<TenantSpec>, QueueError> {
    let mut tenants: Vec<TenantSpec> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let spec = parse_job_line(line).map_err(|message| QueueError {
            line: idx + 1,
            message,
        })?;
        if tenants.iter().any(|t| t.name == spec.name) {
            return Err(QueueError {
                line: idx + 1,
                message: format!("duplicate tenant name '{}'", spec.name),
            });
        }
        tenants.push(spec);
    }
    Ok(tenants)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_queue() {
        let text = "\
# comment, then a blank line

job alpha algo=lpib eps=0.4 n=4000 kind=gaussian seed=11 weight=2
job beta algo=uni-r eps=0.2 n=8000 kernel=plane-sweep partitions=16 \
grid-factor=3 payload=2k faults=p=0.2,slow:1=2.0 fault-seed=3 max-attempts=5 estimate=64m
";
        let q = parse_queue(text).expect("queue parses");
        assert_eq!(q.len(), 2);
        let a = &q[0];
        assert_eq!(a.name, "alpha");
        assert_eq!(a.algorithm, Algorithm::Lpib);
        assert_eq!(a.eps, 0.4);
        assert_eq!(a.cardinality, 4000);
        assert_eq!(a.kind, GenKind::GaussianClusters);
        assert_eq!(a.seed, 11);
        assert_eq!(a.weight, 2);
        assert_eq!(a.kernel, LocalKernel::Auto, "default kernel");
        assert_eq!(a.partitions, 32, "default partitions");
        assert_eq!(a.faults, None);
        let b = &q[1];
        assert_eq!(b.algorithm, Algorithm::UniR);
        assert_eq!(b.kernel, LocalKernel::PlaneSweep);
        assert_eq!(b.partitions, 16);
        assert_eq!(b.grid_factor, 3.0);
        assert_eq!(
            b.faults.as_deref(),
            Some("p=0.2,slow:1=2.0"),
            "fault spec keeps its inner '='s"
        );
        assert_eq!(b.fault_seed, 3);
        assert_eq!(b.max_attempts, Some(5));
        assert_eq!(b.estimate_override, Some(64 << 20));
        assert_eq!(a.payload, 0, "default payload");
        assert_eq!(b.payload, 2048);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_queue("# fine\njob a eps=0.5\njob b eps=nope").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("eps"), "{}", err.message);

        let err = parse_queue("job a eps=0.5\njob a eps=0.5").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("duplicate"), "{}", err.message);

        for (bad, needle) in [
            ("job a n=100", "eps"),
            ("job a eps=0", "positive"),
            ("job a eps=0.5 weight=0", "weight"),
            ("job a eps=0.5 algo=quadtree", "unknown algorithm"),
            ("job a eps=0.5 color=red", "unknown key"),
            ("job eps=0.5", "missing tenant name"),
            ("run a eps=0.5", "expected 'job'"),
            ("job a eps=0.5 eps=0.6", "duplicate key 'eps'"),
            ("job a eps=0.5 seed=1 seed=2", "duplicate key 'seed'"),
            (
                "job a eps=0.5 faults=p=0.1 faults=p=0.2",
                "duplicate key 'faults'",
            ),
            ("job a eps=0.5 n=-4", "invalid value for 'n'"),
            ("job a eps=0.5 seed=1.5", "invalid value for 'seed'"),
            ("job a eps=0.5 weight=big", "invalid value for 'weight'"),
            ("job a eps=0.5 payload=lots", "invalid byte size"),
            ("job a eps=0.5 partitions", "expected key=value"),
            ("job a eps=0.5 kernel=turbo", "unknown kernel"),
            ("job a eps=0.5 kind=zipf", "unknown generator kind"),
        ] {
            let err = parse_queue(bad).unwrap_err();
            assert!(
                err.message.contains(needle),
                "'{bad}' should mention '{needle}', got: {}",
                err.message
            );
        }
    }

    #[test]
    fn byte_sizes_parse_with_suffixes() {
        assert_eq!(parse_bytes("1024"), Ok(1024));
        assert_eq!(parse_bytes("4k"), Ok(4096));
        assert_eq!(parse_bytes("2M"), Ok(2 << 20));
        assert_eq!(parse_bytes("1g"), Ok(1 << 30));
        assert!(parse_bytes("lots").is_err());
    }

    #[test]
    fn display_renders_a_parseable_job_line() {
        let mut spec = TenantSpec::new("alpha", 0.4, 4_000);
        spec.algorithm = Algorithm::UniS;
        spec.kind = GenKind::Parks;
        spec.kernel = LocalKernel::GridBucket;
        spec.payload = 512;
        spec.faults = Some("p=0.2,slow:1=2.0".into());
        spec.fault_seed = 3;
        spec.max_attempts = Some(5);
        spec.estimate_override = Some(64 << 20);
        let line = spec.to_string();
        let parsed = parse_queue(&line).expect("rendered line parses");
        assert_eq!(parsed, vec![spec]);
    }

    mod roundtrip {
        use super::*;
        use proptest::prelude::*;

        fn arb_tenant() -> impl Strategy<Value = TenantSpec> {
            // Two nested tuples keep within the strategy tuple arity; the
            // ε / grid-factor / payload menus are indexed rather than
            // sampled directly so every drawn float Displays to a short
            // literal that re-parses to the same bits.
            (
                (
                    any::<u64>(), // name tag
                    0..6usize,    // algorithm
                    0..5usize,    // eps menu index
                    1usize..50_000,
                    0..4usize, // generator kind
                    any::<u64>(),
                    1u32..9,
                    0..4usize, // kernel
                ),
                (
                    1usize..128,  // partitions
                    0..4usize,    // grid-factor menu index
                    0..4usize,    // payload menu index
                    0..3usize,    // fault plan: none / p=0.2 / p=0.5
                    any::<u64>(), // fault seed (used only with a plan)
                    0..13usize,   // max-attempts: 0 = none
                    0..3usize,    // estimate override menu: 0 = none
                ),
            )
                .prop_map(
                    |(
                        (name_tag, algo, eps_idx, n, kind, seed, weight, kernel),
                        (partitions, gf_idx, payload_idx, fault_idx, fault_seed, attempts, est_idx),
                    )| {
                        let eps = [0.05f64, 0.1, 0.25, 0.4, 1.5][eps_idx];
                        let mut spec = TenantSpec::new(format!("t{name_tag:x}"), eps, n);
                        spec.algorithm = Algorithm::ALL[algo];
                        spec.kind = [
                            GenKind::GaussianClusters,
                            GenKind::Hydrography,
                            GenKind::Parks,
                            GenKind::Uniform,
                        ][kind];
                        spec.seed = seed;
                        spec.weight = weight;
                        spec.kernel = [
                            LocalKernel::NestedLoop,
                            LocalKernel::PlaneSweep,
                            LocalKernel::GridBucket,
                            LocalKernel::Auto,
                        ][kernel];
                        spec.partitions = partitions;
                        spec.grid_factor = [1.0f64, 2.0, 2.5, 3.0][gf_idx];
                        spec.payload = [0u64, 1, 512, 4096][payload_idx];
                        if fault_idx > 0 {
                            spec.faults = Some(["p=0.2", "p=0.5,slow:1=2.0"][fault_idx - 1].into());
                            spec.fault_seed = fault_seed;
                        }
                        spec.max_attempts = (attempts > 0).then_some(attempts);
                        spec.estimate_override = [None, Some(4096u64), Some(64 << 20)][est_idx];
                        spec
                    },
                )
        }

        proptest! {
            /// `parse(format(spec)) == spec` for any well-formed tenant: the
            /// Display impl and the parser are exact inverses.
            #[test]
            fn job_lines_roundtrip(spec in arb_tenant()) {
                let line = spec.to_string();
                let parsed = parse_queue(&line).expect("rendered line parses");
                prop_assert_eq!(parsed, vec![spec]);
            }
        }
    }
}
