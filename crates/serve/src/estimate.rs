use crate::queue::TenantSpec;
use asj_data::{DatasetSpec, PAPER_BBOX};
use asj_engine::Wire;
use asj_geom::Point;
use asj_join::Record;

/// How many points per side the estimator samples. Small enough that an
/// estimate costs microseconds, large enough that cell-density skew and
/// border-replication rates stabilize.
const SAMPLE_POINTS: usize = 2048;

/// Upper bound on the sampling grid's cells per axis — bounds the memory of
/// one estimate regardless of how fine the tenant's join grid is.
const MAX_GRID_AXIS: usize = 256;

/// Calibrated constants of the working-set estimator used for admission
/// control, mirroring how [`asj_core::KernelCostModel`] carries hand-tuned
/// defaults that a one-shot measurement replaces at startup.
///
/// The per-node working-set estimate of a tenant is
///
/// ```text
/// (|R| + |S|) · record_bytes · replication_rate / nodes
///     · skew · landing_factor · headroom
/// ```
///
/// where `replication_rate` and `skew` come from a deterministic sample of
/// the tenant's own generated inputs: each sampled point contributes its
/// ε-neighborhood cell-overlap count (how many grid cells a record landing
/// near a border replicates into), and `skew` is the sampled peak-over-mean
/// cell density, capped at [`WorkingSetModel::max_skew`] because hash
/// placement spreads hot cells across nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkingSetModel {
    /// Wire-encoded bytes of one record. The default is the measured size of
    /// a payload-free [`Record`]; [`WorkingSetModel::calibrated`] replaces it
    /// with the mean over a real sample.
    pub record_bytes: f64,
    /// Copies of a shuffled byte co-resident during a stage (map-side
    /// buckets plus the landing partition).
    pub landing_factor: f64,
    /// Safety margin over the point estimate.
    pub headroom: f64,
    /// Cap on the sampled density-skew multiplier.
    pub max_skew: f64,
}

impl Default for WorkingSetModel {
    fn default() -> Self {
        WorkingSetModel {
            record_bytes: Record::new(0, Point::new(0.0, 0.0)).encoded_size() as f64,
            landing_factor: 2.0,
            headroom: 1.25,
            max_skew: 4.0,
        }
    }
}

impl WorkingSetModel {
    /// Replaces the default per-record size with the mean wire-encoded size
    /// of `sample` — the estimator analog of the kernel cost model's startup
    /// microbenchmark. An empty sample keeps the default.
    pub fn calibrated(sample: &[Record]) -> Self {
        let mut model = WorkingSetModel::default();
        if !sample.is_empty() {
            let total: usize = sample.iter().map(Wire::encoded_size).sum();
            model.record_bytes = total as f64 / sample.len() as f64;
        }
        model
    }

    /// Estimated per-node working set of `tenant`'s join on `nodes` nodes,
    /// in bytes. Deterministic: the sample is generated from the tenant's
    /// own seeds. This is advisory planning for admission control — the
    /// [`MemoryAccountant`](asj_engine::MemoryAccountant) stays the hard
    /// enforcement, spilling if the estimate was optimistic.
    pub fn estimate(&self, tenant: &TenantSpec, nodes: usize) -> u64 {
        assert!(nodes > 0, "cluster needs at least one node");
        let sample_n = tenant.cardinality.min(SAMPLE_POINTS);
        let r = sample_points(tenant, tenant.seed, sample_n);
        let s = sample_points(tenant, tenant.seed.wrapping_add(1), sample_n);

        let cell = (tenant.grid_factor * tenant.eps).max(f64::EPSILON);
        let (replication, skew) = sampled_replication_and_skew(&[&r, &s], cell, tenant.eps);
        let skew = skew.clamp(1.0, self.max_skew);

        let total_records = 2.0 * tenant.cardinality as f64;
        let per_node = total_records * self.record_bytes * replication / nodes as f64
            * skew
            * self.landing_factor
            * self.headroom;
        (per_node.ceil() as u64).max(1)
    }
}

/// Convenience: estimate with a model calibrated on the tenant's own sampled
/// records (payload-free, like the serve pipeline generates them).
pub fn estimate_working_set(tenant: &TenantSpec, nodes: usize) -> u64 {
    WorkingSetModel::default().estimate(tenant, nodes)
}

fn sample_points(tenant: &TenantSpec, seed: u64, n: usize) -> Vec<Point> {
    DatasetSpec {
        name: "serve-sample",
        kind: tenant.kind,
        cardinality: n,
        seed,
        bbox: PAPER_BBOX,
        sigma_scale: 1.0,
    }
    .points()
}

/// Mean ε-neighborhood cell-overlap per sampled point (the replication-rate
/// estimate) and the peak-over-mean occupancy of the sampling grid (the
/// density skew). The grid uses the tenant's own cell side, capped at
/// [`MAX_GRID_AXIS`] cells per axis.
fn sampled_replication_and_skew(sides: &[&Vec<Point>], cell: f64, eps: f64) -> (f64, f64) {
    let bbox = PAPER_BBOX;
    let width = bbox.max_x - bbox.min_x;
    let height = bbox.max_y - bbox.min_y;
    let cols = ((width / cell).ceil() as usize).clamp(1, MAX_GRID_AXIS);
    let rows = ((height / cell).ceil() as usize).clamp(1, MAX_GRID_AXIS);
    let cell_x = width / cols as f64;
    let cell_y = height / rows as f64;

    let mut counts = vec![0u64; cols * rows];
    let mut copies = 0.0f64;
    let mut points = 0usize;
    for side in sides {
        for p in side.iter() {
            let fx = ((p.x - bbox.min_x) / cell_x).floor();
            let fy = ((p.y - bbox.min_y) / cell_y).floor();
            let cx = (fx as usize).min(cols - 1);
            let cy = (fy as usize).min(rows - 1);
            counts[cy * cols + cx] += 1;
            // Offset inside the cell; a point within ε of a border also
            // lands in the neighbor across it (cell ≥ 2ε keeps the two
            // borders of one axis from double-counting).
            let dx = (p.x - bbox.min_x) - fx * cell_x;
            let dy = (p.y - bbox.min_y) - fy * cell_y;
            let extra_x = usize::from(dx < eps || cell_x - dx < eps);
            let extra_y = usize::from(dy < eps || cell_y - dy < eps);
            copies += ((1 + extra_x) * (1 + extra_y)) as f64;
            points += 1;
        }
    }
    if points == 0 {
        return (1.0, 1.0);
    }
    let replication = copies / points as f64;
    let occupied: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
    let peak = occupied.iter().copied().max().unwrap_or(0) as f64;
    let mean = occupied.iter().sum::<u64>() as f64 / occupied.len().max(1) as f64;
    let skew = if mean > 0.0 { peak / mean } else { 1.0 };
    (replication, skew)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_are_deterministic_and_positive() {
        let t = TenantSpec::new("t", 0.4, 4_000);
        let a = estimate_working_set(&t, 4);
        let b = estimate_working_set(&t, 4);
        assert_eq!(a, b, "same tenant, same estimate");
        assert!(a > 0);
    }

    #[test]
    fn estimate_grows_with_cardinality_and_shrinks_with_nodes() {
        let small = TenantSpec::new("s", 0.4, 2_000);
        let big = TenantSpec::new("b", 0.4, 20_000);
        assert!(
            estimate_working_set(&big, 4) > estimate_working_set(&small, 4),
            "10x the records must estimate a larger working set"
        );
        assert!(
            estimate_working_set(&big, 12) < estimate_working_set(&big, 2),
            "more nodes shrink the per-node share"
        );
    }

    #[test]
    fn replication_rate_reflects_eps_border_overlap() {
        // A wider ε relative to the cell side puts more points inside a
        // border band, so the sampled replication rate must not shrink.
        let narrow = TenantSpec::new("n", 0.1, 4_000);
        let mut wide = TenantSpec::new("w", 0.1, 4_000);
        // Same cell side (grid_factor · eps), wider border band.
        wide.eps = 0.2;
        wide.grid_factor = 1.0;
        assert!(estimate_working_set(&wide, 4) >= estimate_working_set(&narrow, 4));
    }

    #[test]
    fn calibration_replaces_record_bytes() {
        let model = WorkingSetModel::calibrated(&[
            Record::with_payload(0, Point::new(0.0, 0.0), vec![0u8; 100]),
            Record::with_payload(1, Point::new(1.0, 1.0), vec![0u8; 200]),
        ]);
        let bare = Record::new(0, Point::new(0.0, 0.0)).encoded_size() as f64;
        assert_eq!(model.record_bytes, bare + 150.0, "mean of 100 and 200");
        assert_eq!(
            WorkingSetModel::calibrated(&[]).record_bytes,
            bare,
            "empty sample keeps the default"
        );
    }

    #[test]
    fn skew_is_capped() {
        // Gaussian clusters concentrate mass; the skew multiplier must stay
        // within max_skew of the uniform estimate's scale.
        let mut t = TenantSpec::new("g", 0.4, 4_000);
        t.kind = asj_data::GenKind::GaussianClusters;
        let uniform = TenantSpec::new("u", 0.4, 4_000);
        let model = WorkingSetModel::default();
        let ratio = model.estimate(&t, 4) as f64 / model.estimate(&uniform, 4) as f64;
        // Replication rates differ too, but the bulk of any gap is the
        // capped skew: the ratio stays within an order of magnitude.
        assert!(ratio < model.max_skew * 4.0, "ratio {ratio}");
    }
}
