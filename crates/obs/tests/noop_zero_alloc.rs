//! The disabled recorder must be free: no allocation, no recorded state.
//! This lives in its own integration-test binary so the counting global
//! allocator only ever observes this one test.

use asj_obs::{Attrs, Lane, Recorder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates entirely to the system allocator; the counter is a
// side-effect-free atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn noop_recorder_allocates_nothing_and_records_nothing() {
    let recorder = Recorder::noop();
    let clone = recorder.clone();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..1000 {
        recorder.task_span("stage", 0, Some(i), Duration::from_micros(5), Attrs::new());
        recorder.event("ev", Lane::Node(0), None, Attrs::new().bytes(64));
        recorder.counter_add("stage", "records", 1);
        recorder.gauge_set("stage", "imbalance", 1.0);
        recorder.histogram_record("stage", "bytes", 42.0);
        let out = clone.phase("phase", || i);
        assert_eq!(out, i);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "noop recorder must not allocate on any call path"
    );

    // ...and nothing was recorded anywhere.
    assert!(!recorder.is_enabled());
    assert_eq!(recorder.counter_value("stage", "records"), None);
    assert_eq!(recorder.node_sim_total(0), Duration::ZERO);
    let trace = recorder.snapshot();
    assert!(trace.spans.is_empty());
    assert!(trace.events.is_empty());
    assert!(trace.metrics.is_empty());
}
