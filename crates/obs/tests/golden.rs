//! Golden-file test for the exporters: a hand-constructed [`Trace`] must
//! render byte-for-byte to the checked-in `tests/golden/*` files. If an
//! exporter change is intentional, update the goldens with the rendered
//! output this test prints on failure.

use asj_obs::{Attrs, Event, HistogramSummary, Lane, Span, Trace};

fn sample_trace() -> Trace {
    let mut trace = Trace::empty();
    trace.nodes = 2;
    trace.spans = vec![
        Span {
            stage: "agreement_graph".to_owned(),
            lane: Lane::Driver,
            partition: None,
            attrs: Attrs::new().cells(9),
            wall_start_ns: 1_500,
            wall_dur_ns: 250_000,
            sim_start_ns: 1_500,
            sim_dur_ns: 250_000,
        },
        Span {
            stage: "local_join".to_owned(),
            lane: Lane::Node(1),
            partition: Some(3),
            attrs: Attrs::new().records(42).bytes(1024),
            wall_start_ns: 2_000,
            wall_dur_ns: 500,
            sim_start_ns: 0,
            sim_dur_ns: 500,
        },
    ];
    trace.events = vec![Event {
        name: "shuffle.partition".to_owned(),
        lane: Lane::Node(0),
        partition: Some(0),
        attrs: Attrs::new().bytes(64),
        wall_ns: 3_000,
        sim_ns: 500,
    }];
    trace
        .metrics
        .counters
        .insert(("shuffle".to_owned(), "remote_bytes".to_owned()), 4096);
    trace
        .metrics
        .gauges
        .insert(("join".to_owned(), "imbalance".to_owned()), 1.5);
    trace.metrics.histograms.insert(
        ("shuffle".to_owned(), "partition_bytes".to_owned()),
        HistogramSummary {
            count: 2,
            min: 10.0,
            max: 30.0,
            sum: 40.0,
        },
    );
    trace
}

#[test]
fn chrome_export_matches_golden() {
    let rendered = sample_trace().to_chrome_json();
    let golden = include_str!("golden/trace.chrome.json");
    assert_eq!(rendered, golden, "rendered chrome trace:\n{rendered}");
}

#[test]
fn jsonl_export_matches_golden() {
    let rendered = sample_trace().to_jsonl();
    let golden = include_str!("golden/trace.jsonl");
    assert_eq!(rendered, golden, "rendered jsonl trace:\n{rendered}");
}
