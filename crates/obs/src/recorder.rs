//! The [`Recorder`]: thread-safe span/event/metric sink with a disabled mode
//! that costs one pointer compare per call site.
//!
//! # Dual clocks
//!
//! Every span carries two intervals. The *wall* interval is host monotonic
//! time since the recorder's epoch — what really happened on this machine,
//! where task spans from different simulated nodes overlap freely because a
//! few OS threads multiplex many nodes. The *simulated* interval re-attributes
//! the same measured duration to the span's simulated node: each node owns a
//! private monotone clock (an atomic cursor), and a task span *allocates* its
//! duration from that cursor. Consequently, per node, simulated spans are
//! disjoint, start times are monotone in recording order, and durations sum to
//! exactly the node's busy time (`ExecStats::per_node_busy`).
//!
//! # No global state
//!
//! A `Recorder` is an explicit value (internally an `Arc`), cloned into
//! whatever needs it — there is no global registry, no `set_global_default`,
//! and two recorders in one process never interfere. The default
//! [`Recorder::noop`] drops everything without locking or allocating.

use crate::export::Trace;
use crate::registry::{MetricsSnapshot, Registry};
use crate::span::{Attrs, Event, Lane, Span};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Span buffers are sharded by thread to keep pool workers from serializing
/// on one lock. 16 shards comfortably covers the host thread counts the
/// engine uses.
const N_SHARDS: usize = 16;

#[derive(Debug, Default)]
struct Shard {
    spans: Vec<Span>,
    events: Vec<Event>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    nodes: usize,
    /// Per-node simulated clock: the next free nanosecond on that node's
    /// simulated timeline. Task spans allocate from it with `fetch_add`.
    node_clocks: Vec<AtomicU64>,
    shards: [Mutex<Shard>; N_SHARDS],
    registry: Registry,
}

/// Handle to a trace being recorded; cheap to clone, `None`-backed when
/// disabled.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
    /// Optional lane namespace (e.g. `"job:3:"`), prepended to every stage,
    /// counter-scope and event name this handle records. The prefix lives on
    /// the *handle*, not the shared buffers, so many prefixed views of one
    /// recording coexist and land in the same trace.
    prefix: Option<Arc<str>>,
}

impl Recorder {
    /// A recorder that drops everything. All methods return immediately
    /// without locking or allocating.
    pub fn noop() -> Self {
        Recorder {
            inner: None,
            prefix: None,
        }
    }

    /// An enabled recorder with one simulated-time lane per node (plus the
    /// driver lane). The epoch is `Instant::now()`.
    pub fn for_nodes(nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node lane");
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                nodes,
                node_clocks: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
                shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
                registry: Registry::default(),
            })),
            prefix: None,
        }
    }

    /// A view of the same recording whose stage names, counter scopes and
    /// event names all carry `prefix` (replacing any prefix this handle
    /// already had). The job server uses this to give each tenant an isolated
    /// `job:<id>:` lane set inside one shared trace. Clocks, shards and the
    /// metric registry stay shared — only the naming changes.
    pub fn with_stage_prefix(&self, prefix: impl Into<String>) -> Self {
        let p: String = prefix.into();
        Recorder {
            inner: self.inner.clone(),
            prefix: if p.is_empty() {
                None
            } else {
                Some(Arc::from(p.as_str()))
            },
        }
    }

    /// The stage prefix carried by this handle, if any.
    pub fn stage_prefix(&self) -> Option<&str> {
        self.prefix.as_deref()
    }

    /// Applies this handle's prefix to a stage/event name. Borrows when there
    /// is no prefix so the common (unprefixed) path stays allocation-free.
    fn scoped<'a>(&self, stage: &'a str) -> std::borrow::Cow<'a, str> {
        match self.prefix.as_deref() {
            None => std::borrow::Cow::Borrowed(stage),
            Some(p) => std::borrow::Cow::Owned(format!("{p}{stage}")),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Node lanes this recorder was created with (0 when disabled).
    pub fn nodes(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.nodes)
    }

    fn shard_index() -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        (h.finish() as usize) % N_SHARDS
    }

    fn push_span(inner: &Inner, span: Span) {
        inner.shards[Self::shard_index()]
            .lock()
            .expect("recorder shard poisoned")
            .spans
            .push(span);
    }

    /// Records a span for a task that just finished running for `dur`,
    /// attributed to simulated node `node`. The wall interval ends now; the
    /// simulated interval is allocated from the node's clock.
    ///
    /// Call this from the worker thread that ran the task, right after
    /// measuring its duration.
    pub fn task_span(
        &self,
        stage: &str,
        node: usize,
        partition: Option<u64>,
        dur: Duration,
        attrs: Attrs,
    ) {
        self.task_span_sim(stage, node, partition, dur, dur, attrs);
    }

    /// Like [`Recorder::task_span`], but with distinct wall and simulated
    /// durations. The fault-aware executor uses this when the time *charged*
    /// to a node differs from what elapsed on the host — e.g. a straggler
    /// node's attempt is billed at its slowdown multiple, and a failed
    /// attempt is billed for the work it burned before dying. Only `sim_dur`
    /// advances the node's simulated clock (and hence must match what lands
    /// in `ExecStats::per_node_busy`).
    pub fn task_span_sim(
        &self,
        stage: &str,
        node: usize,
        partition: Option<u64>,
        wall_dur: Duration,
        sim_dur: Duration,
        attrs: Attrs,
    ) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        assert!(node < inner.nodes, "node {node} out of range");
        let wall_dur_ns = wall_dur.as_nanos() as u64;
        let sim_dur_ns = sim_dur.as_nanos() as u64;
        let wall_end_ns = inner.epoch.elapsed().as_nanos() as u64;
        let sim_start_ns = inner.node_clocks[node].fetch_add(sim_dur_ns, Ordering::Relaxed);
        Self::push_span(
            inner,
            Span {
                stage: self.scoped(stage).into_owned(),
                lane: Lane::Node(node),
                partition,
                attrs,
                wall_start_ns: wall_end_ns.saturating_sub(wall_dur_ns),
                wall_dur_ns,
                sim_start_ns,
                sim_dur_ns,
            },
        );
    }

    /// Runs `f` inside a driver-lane span named `stage`. Driver spans nest:
    /// a phase recorded inside another phase is contained in it on both
    /// clocks (the driver is serial, so its simulated clock is the wall
    /// clock).
    pub fn phase<R>(&self, stage: &str, f: impl FnOnce() -> R) -> R {
        self.phase_attrs(stage, |_| f())
    }

    /// Like [`Recorder::phase`], but `f` can attach attributes it computed
    /// (e.g. how many records the phase produced).
    pub fn phase_attrs<R>(&self, stage: &str, f: impl FnOnce(&mut Attrs) -> R) -> R {
        let Some(inner) = self.inner.as_deref() else {
            let mut attrs = Attrs::new();
            return f(&mut attrs);
        };
        let start_ns = inner.epoch.elapsed().as_nanos() as u64;
        let mut attrs = Attrs::new();
        let out = f(&mut attrs);
        let end_ns = inner.epoch.elapsed().as_nanos() as u64;
        let dur_ns = end_ns.saturating_sub(start_ns);
        Self::push_span(
            inner,
            Span {
                stage: self.scoped(stage).into_owned(),
                lane: Lane::Driver,
                partition: None,
                attrs,
                wall_start_ns: start_ns,
                wall_dur_ns: dur_ns,
                sim_start_ns: start_ns,
                sim_dur_ns: dur_ns,
            },
        );
        out
    }

    /// Records an instant event. Node-lane events are stamped at the node's
    /// current simulated clock (without advancing it); driver events at wall
    /// time.
    pub fn event(&self, name: &str, lane: Lane, partition: Option<u64>, attrs: Attrs) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let wall_ns = inner.epoch.elapsed().as_nanos() as u64;
        let sim_ns = match lane {
            Lane::Driver => wall_ns,
            Lane::Node(n) => {
                assert!(n < inner.nodes, "node {n} out of range");
                inner.node_clocks[n].load(Ordering::Relaxed)
            }
        };
        inner.shards[Self::shard_index()]
            .lock()
            .expect("recorder shard poisoned")
            .events
            .push(Event {
                name: self.scoped(name).into_owned(),
                lane,
                partition,
                attrs,
                wall_ns,
                sim_ns,
            });
    }

    pub fn counter_add(&self, stage: &str, name: &str, delta: u64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.registry.counter_add(&self.scoped(stage), name, delta);
        }
    }

    pub fn gauge_set(&self, stage: &str, name: &str, value: f64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.registry.gauge_set(&self.scoped(stage), name, value);
        }
    }

    pub fn histogram_record(&self, stage: &str, name: &str, value: f64) {
        if let Some(inner) = self.inner.as_deref() {
            inner
                .registry
                .histogram_record(&self.scoped(stage), name, value);
        }
    }

    /// Current value of a counter (None when absent or disabled). Looked up
    /// under this handle's stage prefix, if any.
    pub fn counter_value(&self, stage: &str, name: &str) -> Option<u64> {
        self.inner
            .as_deref()
            .and_then(|i| i.registry.counter_value(&self.scoped(stage), name))
    }

    /// Total simulated busy time allocated to `node` so far.
    pub fn node_sim_total(&self, node: usize) -> Duration {
        match self.inner.as_deref() {
            Some(inner) if node < inner.nodes => {
                Duration::from_nanos(inner.node_clocks[node].load(Ordering::Relaxed))
            }
            _ => Duration::ZERO,
        }
    }

    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner
            .as_deref()
            .map(|i| i.registry.snapshot())
            .unwrap_or_default()
    }

    /// Copies everything recorded so far into an exportable [`Trace`].
    /// Spans and events are ordered by wall start time (ties broken by lane
    /// and stage) so the output is deterministic for a given recording.
    pub fn snapshot(&self) -> Trace {
        let Some(inner) = self.inner.as_deref() else {
            return Trace::empty();
        };
        let mut spans = Vec::new();
        let mut events = Vec::new();
        for shard in &inner.shards {
            let g = shard.lock().expect("recorder shard poisoned");
            spans.extend(g.spans.iter().cloned());
            events.extend(g.events.iter().cloned());
        }
        spans.sort_by(|a, b| {
            (a.wall_start_ns, a.lane, &a.stage, a.partition).cmp(&(
                b.wall_start_ns,
                b.lane,
                &b.stage,
                b.partition,
            ))
        });
        events.sort_by(|a, b| {
            (a.wall_ns, a.lane, &a.name, a.partition).cmp(&(
                b.wall_ns,
                b.lane,
                &b.name,
                b.partition,
            ))
        });
        Trace {
            nodes: inner.nodes,
            spans,
            events,
            metrics: inner.registry.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_records_nothing() {
        let r = Recorder::noop();
        assert!(!r.is_enabled());
        r.task_span("map", 0, Some(1), Duration::from_millis(1), Attrs::new());
        r.event("e", Lane::Driver, None, Attrs::new());
        r.counter_add("s", "n", 5);
        let ran = r.phase("p", || 42);
        assert_eq!(ran, 42);
        assert_eq!(r.counter_value("s", "n"), None);
        let t = r.snapshot();
        assert!(t.spans.is_empty() && t.events.is_empty() && t.metrics.is_empty());
    }

    #[test]
    fn sim_clock_is_monotone_and_sums_per_node() {
        let r = Recorder::for_nodes(2);
        r.task_span("t", 0, Some(0), Duration::from_micros(100), Attrs::new());
        r.task_span("t", 1, Some(1), Duration::from_micros(50), Attrs::new());
        r.task_span("t", 0, Some(2), Duration::from_micros(25), Attrs::new());
        let t = r.snapshot();
        let node0: Vec<_> = t.spans.iter().filter(|s| s.lane == Lane::Node(0)).collect();
        assert_eq!(node0.len(), 2);
        // Disjoint, monotone allocation on node 0's simulated timeline.
        assert_eq!(node0[0].sim_start_ns, 0);
        assert_eq!(node0[1].sim_start_ns, 100_000);
        assert_eq!(r.node_sim_total(0), Duration::from_micros(125));
        assert_eq!(r.node_sim_total(1), Duration::from_micros(50));
    }

    #[test]
    fn task_span_sim_charges_only_sim_duration() {
        let r = Recorder::for_nodes(1);
        r.task_span_sim(
            "t!failed",
            0,
            Some(0),
            Duration::from_micros(10),
            Duration::from_micros(40),
            Attrs::new(),
        );
        let t = r.snapshot();
        assert_eq!(t.spans[0].wall_dur_ns, 10_000);
        assert_eq!(t.spans[0].sim_dur_ns, 40_000);
        assert_eq!(r.node_sim_total(0), Duration::from_micros(40));
    }

    #[test]
    fn phases_nest_on_the_driver_lane() {
        let r = Recorder::for_nodes(1);
        let v = r.phase("outer", || {
            r.phase("inner", || std::thread::sleep(Duration::from_millis(1)));
            7
        });
        assert_eq!(v, 7);
        let t = r.snapshot();
        let outer = t.spans.iter().find(|s| s.stage == "outer").unwrap();
        let inner = t.spans.iter().find(|s| s.stage == "inner").unwrap();
        assert_eq!(outer.lane, Lane::Driver);
        assert!(outer.wall_start_ns <= inner.wall_start_ns);
        assert!(inner.wall_start_ns + inner.wall_dur_ns <= outer.wall_start_ns + outer.wall_dur_ns);
        // Driver lane: simulated == wall.
        assert_eq!(outer.sim_start_ns, outer.wall_start_ns);
        assert_eq!(outer.sim_dur_ns, outer.wall_dur_ns);
    }

    #[test]
    fn phase_attrs_records_computed_attributes() {
        let r = Recorder::for_nodes(1);
        let n = r.phase_attrs("sampling", |attrs| {
            *attrs = attrs.records(123);
            123u64
        });
        assert_eq!(n, 123);
        let t = r.snapshot();
        assert_eq!(t.spans[0].attrs.records, Some(123));
    }

    #[test]
    fn events_and_counters_round_trip() {
        let r = Recorder::for_nodes(3);
        r.event("spill", Lane::Node(2), Some(9), Attrs::new().bytes(4096));
        r.counter_add("shuffle", "remote_bytes", 100);
        r.counter_add("shuffle", "remote_bytes", 11);
        let t = r.snapshot();
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].lane, Lane::Node(2));
        assert_eq!(t.events[0].attrs.bytes, Some(4096));
        assert_eq!(t.metrics.counter("shuffle", "remote_bytes"), Some(111));
        assert_eq!(r.counter_value("shuffle", "remote_bytes"), Some(111));
    }

    #[test]
    fn stage_prefix_namespaces_spans_events_and_counters() {
        let base = Recorder::for_nodes(2);
        let j0 = base.with_stage_prefix("job:0:");
        let j1 = base.with_stage_prefix("job:1:");
        assert_eq!(j0.stage_prefix(), Some("job:0:"));
        assert_eq!(base.stage_prefix(), None);

        j0.task_span("map", 0, Some(1), Duration::from_micros(10), Attrs::new());
        j1.task_span("map", 1, Some(2), Duration::from_micros(20), Attrs::new());
        j0.event("spill", Lane::Node(0), None, Attrs::new());
        j0.counter_add("shuffle", "remote_bytes", 7);
        j1.counter_add("shuffle", "remote_bytes", 9);

        // Both views share the same recording and node clocks.
        let t = base.snapshot();
        assert!(t.spans.iter().any(|s| s.stage == "job:0:map"));
        assert!(t.spans.iter().any(|s| s.stage == "job:1:map"));
        assert!(t.events.iter().any(|e| e.name == "job:0:spill"));
        assert_eq!(t.metrics.counter("job:0:shuffle", "remote_bytes"), Some(7));
        assert_eq!(t.metrics.counter("job:1:shuffle", "remote_bytes"), Some(9));
        // Lookups through a prefixed handle resolve inside its namespace.
        assert_eq!(j1.counter_value("shuffle", "remote_bytes"), Some(9));
        assert_eq!(base.counter_value("shuffle", "remote_bytes"), None);
        assert_eq!(base.node_sim_total(0), Duration::from_micros(10));
        assert_eq!(base.node_sim_total(1), Duration::from_micros(20));

        // Re-prefixing replaces, empty clears.
        let re = j0.with_stage_prefix("job:9:");
        assert_eq!(re.stage_prefix(), Some("job:9:"));
        assert_eq!(re.with_stage_prefix("").stage_prefix(), None);
    }

    #[test]
    fn concurrent_task_spans_from_many_threads() {
        let r = Recorder::for_nodes(4);
        std::thread::scope(|s| {
            for w in 0..8 {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        r.task_span(
                            "t",
                            (w + i) % 4,
                            Some(i as u64),
                            Duration::from_nanos(10),
                            Attrs::new(),
                        );
                    }
                });
            }
        });
        let t = r.snapshot();
        assert_eq!(t.spans.len(), 400);
        let total: u64 = (0..4).map(|n| r.node_sim_total(n).as_nanos() as u64).sum();
        assert_eq!(total, 400 * 10);
    }
}
