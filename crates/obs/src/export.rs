//! Trace exporters: Chrome `trace_event` JSON (open in Perfetto or
//! `chrome://tracing`) and line-delimited JSON for machine consumption.
//!
//! Chrome export convention: one process (`pid` 1), one *thread lane per
//! simulated node* plus a driver lane (`tid` = [`Lane::tid`]), timestamps and
//! durations in **simulated** microseconds. Wall-clock values ride along in
//! each event's `args` so neither clock is lost.

use crate::registry::MetricsSnapshot;
use crate::span::{Attrs, Event, Lane, Span};
use std::fmt::Write as _;

/// Output format selector, parsed from e.g. a `--trace-format` CLI flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    #[default]
    Chrome,
    Jsonl,
}

impl std::str::FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "chrome" => Ok(TraceFormat::Chrome),
            "jsonl" => Ok(TraceFormat::Jsonl),
            other => Err(format!("unknown trace format {other:?} (chrome|jsonl)")),
        }
    }
}

/// Everything a recorder captured, ready to export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Simulated node lanes the recorder was created with.
    pub nodes: usize,
    pub spans: Vec<Span>,
    pub events: Vec<Event>,
    pub metrics: MetricsSnapshot,
}

impl Trace {
    pub fn empty() -> Self {
        Trace::default()
    }

    pub fn render(&self, format: TraceFormat) -> String {
        match format {
            TraceFormat::Chrome => self.to_chrome_json(),
            TraceFormat::Jsonl => self.to_jsonl(),
        }
    }

    /// Renders and writes the trace to `path`.
    pub fn write_to(&self, path: &std::path::Path, format: TraceFormat) -> std::io::Result<()> {
        std::fs::write(path, self.render(format))
    }

    /// Chrome `trace_event` JSON object (`{"traceEvents": [...]}`).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |line: String, out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push_str(",\n");
            }
            out.push_str(&line);
        };

        // Lane names: driver + one lane per simulated node.
        push(meta_thread_name(Lane::Driver, "driver"), &mut out);
        for n in 0..self.nodes {
            push(
                meta_thread_name(Lane::Node(n), &format!("node {n} (sim)")),
                &mut out,
            );
        }

        for s in &self.spans {
            let mut line = String::new();
            let _ = write!(
                line,
                "{{\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
                json_str(&s.stage),
                s.lane.tid(),
                us(s.sim_start_ns),
                us(s.sim_dur_ns),
            );
            line.push_str(",\"args\":{");
            let mut args = ArgWriter::new(&mut line);
            args.u64_opt("partition", s.partition);
            args.attrs(&s.attrs);
            args.str("wall_ts_us", &us(s.wall_start_ns));
            args.str("wall_dur_us", &us(s.wall_dur_ns));
            line.push_str("}}");
            push(line, &mut out);
        }

        for e in &self.events {
            let mut line = String::new();
            let _ = write!(
                line,
                "{{\"name\":{},\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{}",
                json_str(&e.name),
                e.lane.tid(),
                us(e.sim_ns),
            );
            line.push_str(",\"args\":{");
            let mut args = ArgWriter::new(&mut line);
            args.u64_opt("partition", e.partition);
            args.attrs(&e.attrs);
            args.str("wall_ts_us", &us(e.wall_ns));
            line.push_str("}}");
            push(line, &mut out);
        }

        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// One JSON object per line: a `meta` header, then every span, event and
    /// metric.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\"kind\":\"meta\",\"nodes\":{}}}", self.nodes);
        for s in &self.spans {
            let mut line = format!("{{\"kind\":\"span\",\"stage\":{}", json_str(&s.stage));
            lane_field(&mut line, s.lane);
            let mut w = ArgWriter::mid(&mut line);
            w.u64_opt("partition", s.partition);
            w.attrs(&s.attrs);
            let _ = write!(
                line,
                ",\"wall_start_ns\":{},\"wall_dur_ns\":{},\"sim_start_ns\":{},\"sim_dur_ns\":{}}}",
                s.wall_start_ns, s.wall_dur_ns, s.sim_start_ns, s.sim_dur_ns
            );
            out.push_str(&line);
            out.push('\n');
        }
        for e in &self.events {
            let mut line = format!("{{\"kind\":\"event\",\"name\":{}", json_str(&e.name));
            lane_field(&mut line, e.lane);
            let mut w = ArgWriter::mid(&mut line);
            w.u64_opt("partition", e.partition);
            w.attrs(&e.attrs);
            let _ = write!(line, ",\"wall_ns\":{},\"sim_ns\":{}}}", e.wall_ns, e.sim_ns);
            out.push_str(&line);
            out.push('\n');
        }
        for ((stage, name), v) in &self.metrics.counters {
            let _ = writeln!(
                out,
                "{{\"kind\":\"counter\",\"stage\":{},\"name\":{},\"value\":{}}}",
                json_str(stage),
                json_str(name),
                v
            );
        }
        for ((stage, name), v) in &self.metrics.gauges {
            let _ = writeln!(
                out,
                "{{\"kind\":\"gauge\",\"stage\":{},\"name\":{},\"value\":{}}}",
                json_str(stage),
                json_str(name),
                json_f64(*v)
            );
        }
        for ((stage, name), h) in &self.metrics.histograms {
            let _ = writeln!(
                out,
                "{{\"kind\":\"histogram\",\"stage\":{},\"name\":{},\"count\":{},\"min\":{},\"max\":{},\"sum\":{}}}",
                json_str(stage),
                json_str(name),
                h.count,
                json_f64(h.min),
                json_f64(h.max),
                json_f64(h.sum)
            );
        }
        out
    }
}

fn meta_thread_name(lane: Lane, name: &str) -> String {
    format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":{}}}}}",
        lane.tid(),
        json_str(name)
    )
}

fn lane_field(line: &mut String, lane: Lane) {
    match lane {
        Lane::Driver => line.push_str(",\"lane\":\"driver\""),
        Lane::Node(n) => {
            let _ = write!(line, ",\"lane\":\"node\",\"node\":{n}");
        }
    }
}

/// Nanoseconds rendered as decimal microseconds (Chrome's `ts`/`dur` unit)
/// without going through floating point.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Escapes a string for embedding in JSON, quotes included.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite floats as-is; non-finite values are not valid JSON numbers, so
/// render them as null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Writes `"key":value` pairs with correct comma placement into an object
/// that may already have entries.
struct ArgWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ArgWriter<'a> {
    /// Start inside a freshly opened `{`.
    fn new(out: &'a mut String) -> Self {
        ArgWriter { out, first: true }
    }

    /// Continue an object that already has fields (always emits commas).
    fn mid(out: &'a mut String) -> Self {
        ArgWriter { out, first: false }
    }

    fn sep(&mut self) {
        if !std::mem::take(&mut self.first) {
            self.out.push(',');
        }
    }

    fn u64_opt(&mut self, key: &str, v: Option<u64>) {
        if let Some(v) = v {
            self.sep();
            let _ = write!(self.out, "\"{key}\":{v}");
        }
    }

    fn str(&mut self, key: &str, v: &str) {
        self.sep();
        let _ = write!(self.out, "\"{key}\":{}", json_str(v));
    }

    fn attrs(&mut self, attrs: &Attrs) {
        self.u64_opt("records", attrs.records);
        self.u64_opt("bytes", attrs.bytes);
        self.u64_opt("cells", attrs.cells);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_format_parses() {
        assert_eq!(
            "chrome".parse::<TraceFormat>().unwrap(),
            TraceFormat::Chrome
        );
        assert_eq!("jsonl".parse::<TraceFormat>().unwrap(), TraceFormat::Jsonl);
        assert!("xml".parse::<TraceFormat>().is_err());
    }

    #[test]
    fn json_str_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn us_renders_sub_microsecond_precision() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1_234_567), "1234.567");
        assert_eq!(us(999), "0.999");
    }

    #[test]
    fn json_f64_handles_non_finite() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
