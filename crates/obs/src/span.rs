//! The span/event model: what one recorded unit of work looks like.

/// Which timeline a span or event belongs to.
///
/// The engine multiplexes many simulated nodes over a few host threads, so
/// the interesting identity is the *simulated node*, not the OS thread. The
/// driver (everything that runs serially between parallel stages) gets its
/// own lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// Serial driver-side work (sampling aggregation, graph construction…).
    Driver,
    /// Work attributed to one simulated worker node.
    Node(usize),
}

impl Lane {
    /// Stable lane id used as the `tid` of Chrome trace events: driver is 0,
    /// node `n` is `n + 1`.
    pub fn tid(self) -> usize {
        match self {
            Lane::Driver => 0,
            Lane::Node(n) => n + 1,
        }
    }

    pub fn node(self) -> Option<usize> {
        match self {
            Lane::Driver => None,
            Lane::Node(n) => Some(n),
        }
    }
}

/// Typed attributes carried by spans and events. All optional; `None` fields
/// are omitted from exports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attrs {
    /// Records processed / moved.
    pub records: Option<u64>,
    /// Bytes processed / moved (e.g. shuffle volume).
    pub bytes: Option<u64>,
    /// Grid cells touched (e.g. cells assigned to a partition).
    pub cells: Option<u64>,
}

impl Attrs {
    pub fn new() -> Self {
        Attrs::default()
    }

    pub fn records(mut self, n: u64) -> Self {
        self.records = Some(n);
        self
    }

    pub fn bytes(mut self, n: u64) -> Self {
        self.bytes = Some(n);
        self
    }

    pub fn cells(mut self, n: u64) -> Self {
        self.cells = Some(n);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_none() && self.bytes.is_none() && self.cells.is_none()
    }
}

/// One completed unit of work with an extent on *both* clocks.
///
/// * `wall_*` — host monotonic time, nanoseconds since the recorder's epoch.
///   This is what actually happened on this machine.
/// * `sim_*` — simulated cluster time. For [`Lane::Node`] spans the interval
///   is allocated from that node's private clock, so the spans of one node
///   never overlap and their durations sum to exactly the node's busy time
///   (`ExecStats::per_node_busy`). For [`Lane::Driver`] spans the simulated
///   clock *is* the wall clock: the driver is serial, its timeline needs no
///   reattribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub stage: String,
    pub lane: Lane,
    /// Partition (= task index) this span worked on, when applicable.
    pub partition: Option<u64>,
    pub attrs: Attrs,
    pub wall_start_ns: u64,
    pub wall_dur_ns: u64,
    pub sim_start_ns: u64,
    pub sim_dur_ns: u64,
}

/// A point-in-time annotation (Chrome "instant" event).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    pub name: String,
    pub lane: Lane,
    pub partition: Option<u64>,
    pub attrs: Attrs,
    pub wall_ns: u64,
    pub sim_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_tids_are_stable_and_disjoint() {
        assert_eq!(Lane::Driver.tid(), 0);
        assert_eq!(Lane::Node(0).tid(), 1);
        assert_eq!(Lane::Node(11).tid(), 12);
        assert_eq!(Lane::Driver.node(), None);
        assert_eq!(Lane::Node(3).node(), Some(3));
    }

    #[test]
    fn attrs_builder() {
        let a = Attrs::new().records(5).bytes(80);
        assert_eq!(a.records, Some(5));
        assert_eq!(a.bytes, Some(80));
        assert_eq!(a.cells, None);
        assert!(!a.is_empty());
        assert!(Attrs::new().is_empty());
    }
}
