//! Metrics registry: counters, gauges and histograms keyed by
//! `(stage, name)`, so tests can ask e.g. "how many remote bytes did the
//! `shuffle.R` stage move?" without parsing a trace.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Streaming summary of a histogram — enough for assertions and reports
/// without retaining every observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub min: f64,
    pub max: f64,
    pub sum: f64,
}

impl HistogramSummary {
    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for HistogramSummary {
    fn default() -> Self {
        HistogramSummary {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }
}

type Key = (String, String);

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, HistogramSummary>,
}

/// Thread-safe metrics store. One global lock is fine here: metrics are
/// updated once per *stage* (not per record), so contention is negligible.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    pub fn counter_add(&self, stage: &str, name: &str, delta: u64) {
        let mut g = self.inner.lock().expect("metrics registry poisoned");
        *g.counters
            .entry((stage.to_owned(), name.to_owned()))
            .or_insert(0) += delta;
    }

    pub fn gauge_set(&self, stage: &str, name: &str, value: f64) {
        let mut g = self.inner.lock().expect("metrics registry poisoned");
        g.gauges.insert((stage.to_owned(), name.to_owned()), value);
    }

    pub fn histogram_record(&self, stage: &str, name: &str, value: f64) {
        let mut g = self.inner.lock().expect("metrics registry poisoned");
        g.histograms
            .entry((stage.to_owned(), name.to_owned()))
            .or_default()
            .observe(value);
    }

    pub fn counter_value(&self, stage: &str, name: &str) -> Option<u64> {
        let g = self.inner.lock().expect("metrics registry poisoned");
        g.counters
            .get(&(stage.to_owned(), name.to_owned()))
            .copied()
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: g.counters.clone(),
            gauges: g.gauges.clone(),
            histograms: g.histograms.clone(),
        }
    }
}

/// Point-in-time copy of the registry, ordered for deterministic export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<Key, u64>,
    pub gauges: BTreeMap<Key, f64>,
    pub histograms: BTreeMap<Key, HistogramSummary>,
}

impl MetricsSnapshot {
    pub fn counter(&self, stage: &str, name: &str) -> Option<u64> {
        self.counters
            .get(&(stage.to_owned(), name.to_owned()))
            .copied()
    }

    pub fn gauge(&self, stage: &str, name: &str) -> Option<f64> {
        self.gauges
            .get(&(stage.to_owned(), name.to_owned()))
            .copied()
    }

    pub fn histogram(&self, stage: &str, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(&(stage.to_owned(), name.to_owned()))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_stage() {
        let r = Registry::default();
        r.counter_add("shuffle.R", "remote_bytes", 100);
        r.counter_add("shuffle.R", "remote_bytes", 20);
        r.counter_add("shuffle.S", "remote_bytes", 7);
        assert_eq!(r.counter_value("shuffle.R", "remote_bytes"), Some(120));
        assert_eq!(r.counter_value("shuffle.S", "remote_bytes"), Some(7));
        assert_eq!(r.counter_value("shuffle.S", "local_bytes"), None);
        let snap = r.snapshot();
        assert_eq!(snap.counter("shuffle.R", "remote_bytes"), Some(120));
    }

    #[test]
    fn gauges_overwrite_and_histograms_summarize() {
        let r = Registry::default();
        r.gauge_set("join", "imbalance", 1.5);
        r.gauge_set("join", "imbalance", 1.25);
        r.histogram_record("join", "partition_bytes", 10.0);
        r.histogram_record("join", "partition_bytes", 30.0);
        let snap = r.snapshot();
        assert_eq!(snap.gauge("join", "imbalance"), Some(1.25));
        let h = snap.histogram("join", "partition_bytes").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 10.0);
        assert_eq!(h.max, 30.0);
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(HistogramSummary::default().mean(), 0.0);
    }
}
