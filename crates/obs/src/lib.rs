//! Dual-clock tracing and metrics for the adaptive-spatial-join engine.
//!
//! The engine simulates a cluster: a handful of host threads execute tasks on
//! behalf of many *simulated nodes*, and job time is reported on the
//! simulated clock (`ExecStats::per_node_busy` / makespan). A conventional
//! profiler therefore shows a misleading picture — host threads, not nodes.
//! This crate records spans on **both clocks at once**: each span carries its
//! host wall interval *and* a simulated interval allocated from its node's
//! private monotone clock, so a Chrome/Perfetto view shows one clean lane per
//! simulated node whose busy time matches the engine's reported stats
//! exactly.
//!
//! Entry points:
//!
//! * [`Recorder`] — explicit, clonable sink; [`Recorder::noop`] is free.
//! * [`Attrs`], [`Span`], [`Event`], [`Lane`] — the data model.
//! * [`Trace`] (via [`Recorder::snapshot`]) — exports with
//!   [`Trace::to_chrome_json`] / [`Trace::to_jsonl`].
//! * Metrics: [`Recorder::counter_add`] etc., queryable via
//!   [`Recorder::metrics`] as a [`MetricsSnapshot`].

mod export;
mod recorder;
mod registry;
mod span;

pub use export::{Trace, TraceFormat};
pub use recorder::Recorder;
pub use registry::{HistogramSummary, MetricsSnapshot, Registry};
pub use span::{Attrs, Event, Lane, Span};
