//! `repro multitenant` — the multi-tenant job-server sweep behind the
//! admission-control and fair-share scheduling work.
//!
//! One mixed-size tenant set (a large head-of-line join followed by smaller
//! ones, cycling algorithms and distributions, one tenant chaos-injected) is
//! run at 1/2/4/8 tenants under both scheduling policies on one simulated
//! cluster with a per-node memory budget sized from the working-set
//! estimates. After every leg the harness asserts:
//!
//! * **isolation** — every tenant's result checksum is byte-identical to its
//!   solo run on a fresh cluster of the same shape,
//! * **budget** — `peak_memory_bytes <= budget` (enforced by construction:
//!   the accountant spills before any node crosses it),
//! * **leak audit** — every tenant completes with zero residual bytes,
//! * **fairness** — for every mixed-size set (N ≥ 2), fair-share beats FIFO
//!   on p99 queue wait (FIFO pays head-of-line blocking behind the large
//!   tenant; fair-share serves every tenant within the first round),
//! * **determinism** — re-running a leg reproduces the grant log and every
//!   checksum (clock values are simulated from measured stage makespans and
//!   are reported, not gated).
//!
//! Results land in `BENCH_multitenant.json` for the CI `perf-smoke` job;
//! override the path with `ASJ_BENCH_MULTITENANT_OUT`.

use crate::{ExpConfig, Table};
use asj_data::GenKind;
use asj_engine::{Cluster, ClusterConfig, DurationSummary, SchedPolicy};
use asj_join::Algorithm;
use asj_serve::{calibrated_model, run_queue, solo_outcome, QueueRun, TenantOutcome, TenantSpec};
use std::collections::HashMap;
use std::time::Duration;

/// Tenant counts swept (the paper-style 1/2/4/8 scaling axis).
const TENANT_COUNTS: &[usize] = &[1, 2, 4, 8];

/// One leg of the sweep: a tenant count under one policy.
#[derive(Debug, Clone)]
pub struct MtLeg {
    pub tenants: usize,
    pub policy: SchedPolicy,
    /// Per-node budget the leg ran under (sum of working-set estimates, so
    /// every tenant admits immediately and waits measure scheduling alone).
    pub budget_bytes: u64,
    /// Final server clock (serialized simulated time of the whole queue).
    pub clock_seconds: f64,
    /// Quanta granted over the leg.
    pub grants: usize,
    pub queue_wait: DurationSummary,
    pub turnaround: DurationSummary,
    /// Largest per-tenant peak; `<= budget_bytes` by construction.
    pub peak_memory_bytes: u64,
    pub spilled_bytes: u64,
    /// Retries across all tenants (only the chaos tenant should contribute).
    pub retries: u64,
    /// Buffer-pool hits attributed to tenants (per-job slices).
    pub pool_hits: u64,
    /// Every tenant's checksum matched its solo run.
    pub isolated: bool,
    /// Per-tenant rows for the JSON report.
    pub jobs: Vec<MtJob>,
}

/// One tenant's row within a leg.
#[derive(Debug, Clone)]
pub struct MtJob {
    pub name: String,
    pub checksum: u64,
    pub results: u64,
    pub queue_wait_seconds: f64,
    pub turnaround_seconds: f64,
    pub stages: u64,
    pub retries: u64,
    pub spilled_bytes: u64,
    pub residual_bytes: u64,
}

/// The sweep's full result set (also serialized to JSON).
#[derive(Debug, Clone)]
pub struct MtReport {
    pub nodes: usize,
    pub legs: Vec<MtLeg>,
    /// p99 queue wait, fair-share vs FIFO, for every N >= 2 leg pair.
    pub fairness_wins: Vec<(usize, Duration, Duration)>,
}

/// The mixed-size tenant set at count `n`: sets are prefixes of each other
/// (tenant `i` is identical at every N), so solo oracles are computed once.
/// Tenant 0 is the deliberately large head-of-line job FIFO stalls behind;
/// tenant 2 carries a deterministic fault plan to exercise per-tenant retry
/// isolation inside the sweep itself.
pub fn tenant_set(cfg: &ExpConfig, n: usize) -> Vec<TenantSpec> {
    const ALGOS: &[Algorithm] = &[
        Algorithm::Lpib,
        Algorithm::UniR,
        Algorithm::Diff,
        Algorithm::EpsGrid,
    ];
    (0..n)
        .map(|i| {
            let large = i == 0;
            let cardinality = if large {
                (cfg.base / 2).max(600)
            } else {
                (cfg.base / 8).max(300)
            };
            let mut t = TenantSpec::new(format!("tenant-{i:02}"), cfg.default_eps, cardinality);
            t.algorithm = ALGOS[i % ALGOS.len()];
            t.kind = if i % 2 == 0 {
                GenKind::GaussianClusters
            } else {
                GenKind::Uniform
            };
            t.seed = 100 + 17 * i as u64;
            t.partitions = cfg.partitions.min(24);
            t.weight = if large { 1 } else { 2 };
            if i == 2 {
                t.faults = Some("p=0.25".to_string());
                t.fault_seed = 11;
                t.max_attempts = Some(6);
            }
            t
        })
        .collect()
}

/// Per-node budget for a tenant set: the sum of the calibrated working-set
/// estimates, so the whole set admits at clock 0 (reservations fit) and
/// queue waits measure scheduling, not deferred admission.
fn leg_budget(tenants: &[TenantSpec], nodes: usize) -> u64 {
    let model = calibrated_model(tenants);
    tenants
        .iter()
        .map(|t| {
            t.estimate_override
                .unwrap_or_else(|| model.estimate(t, nodes))
        })
        .sum::<u64>()
        .max(1)
}

fn run_leg(cfg: &ExpConfig, tenants: &[TenantSpec], policy: SchedPolicy) -> (MtLeg, QueueRun) {
    let budget = leg_budget(tenants, cfg.nodes);
    let cluster = Cluster::new(ClusterConfig::new(cfg.nodes).with_memory_budget(budget));
    let run = run_queue(&cluster, tenants, policy)
        .unwrap_or_else(|e| panic!("{} x{} tenants: {e}", policy.name(), tenants.len()));

    let waits: Vec<Duration> = run.tenants.iter().map(|t| t.queue_wait).collect();
    let turnarounds: Vec<Duration> = run.tenants.iter().map(|t| t.turnaround).collect();
    let jobs: Vec<MtJob> = run
        .tenants
        .iter()
        .map(|t| {
            let out = t
                .outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("tenant '{}' failed: {e}", t.name));
            MtJob {
                name: t.name.clone(),
                checksum: out.checksum,
                results: out.result_count,
                queue_wait_seconds: t.queue_wait.as_secs_f64(),
                turnaround_seconds: t.turnaround.as_secs_f64(),
                stages: t.stages,
                retries: t.retries,
                spilled_bytes: t.spilled_bytes,
                residual_bytes: t.residual_bytes,
            }
        })
        .collect();

    let leg = MtLeg {
        tenants: tenants.len(),
        policy,
        budget_bytes: budget,
        clock_seconds: run.clock.as_secs_f64(),
        grants: run.grants.len(),
        queue_wait: DurationSummary::from_samples(&waits),
        turnaround: DurationSummary::from_samples(&turnarounds),
        peak_memory_bytes: cluster.memory_accountant().peak_bytes(),
        spilled_bytes: run.tenants.iter().map(|t| t.spilled_bytes).sum(),
        retries: run.tenants.iter().map(|t| t.retries).sum(),
        pool_hits: run.tenants.iter().map(|t| t.pool.hits).sum(),
        isolated: false, // filled by the caller against the solo oracle
        jobs,
    };
    (leg, run)
}

fn json_job(j: &MtJob) -> String {
    format!(
        concat!(
            "{{\"name\":\"{}\",\"checksum\":\"{:016x}\",\"results\":{},",
            "\"queue_wait_seconds\":{:.6},\"turnaround_seconds\":{:.6},",
            "\"stages\":{},\"retries\":{},\"spilled_bytes\":{},",
            "\"residual_bytes\":{}}}"
        ),
        j.name,
        j.checksum,
        j.results,
        j.queue_wait_seconds,
        j.turnaround_seconds,
        j.stages,
        j.retries,
        j.spilled_bytes,
        j.residual_bytes,
    )
}

fn json_leg(leg: &MtLeg) -> String {
    let jobs: Vec<String> = leg.jobs.iter().map(json_job).collect();
    format!(
        concat!(
            "{{\"tenants\":{},\"policy\":\"{}\",\"budget_bytes\":{},",
            "\"clock_seconds\":{:.6},\"grants\":{},",
            "\"queue_wait_p50_seconds\":{:.6},\"queue_wait_p99_seconds\":{:.6},",
            "\"turnaround_p99_seconds\":{:.6},",
            "\"peak_memory_bytes\":{},\"within_budget\":{},",
            "\"spilled_bytes\":{},\"retries\":{},\"pool_hits\":{},",
            "\"isolated\":{},\"jobs\":[{}]}}"
        ),
        leg.tenants,
        leg.policy.name(),
        leg.budget_bytes,
        leg.clock_seconds,
        leg.grants,
        leg.queue_wait.p50.as_secs_f64(),
        leg.queue_wait.p99.as_secs_f64(),
        leg.turnaround.p99.as_secs_f64(),
        leg.peak_memory_bytes,
        leg.peak_memory_bytes <= leg.budget_bytes,
        leg.spilled_bytes,
        leg.retries,
        leg.pool_hits,
        leg.isolated,
        jobs.join(","),
    )
}

/// Hand-rolled JSON, same conventions as `BENCH_memory.json`.
fn render_json(rep: &MtReport) -> String {
    let legs: Vec<String> = rep.legs.iter().map(json_leg).collect();
    let fairness: Vec<String> = rep
        .fairness_wins
        .iter()
        .map(|(n, fair, fifo)| {
            format!(
                concat!(
                    "{{\"tenants\":{},\"fair_share_p99_wait_seconds\":{:.6},",
                    "\"fifo_p99_wait_seconds\":{:.6},\"fair_share_wins\":{}}}"
                ),
                n,
                fair.as_secs_f64(),
                fifo.as_secs_f64(),
                fair < fifo,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"multitenant\",\n",
            "  \"nodes\": {},\n",
            "  \"isolation_matches\": true,\n",
            "  \"fairness\": [{}],\n",
            "  \"legs\": [{}]\n",
            "}}\n"
        ),
        rep.nodes,
        fairness.join(","),
        legs.join(","),
    )
}

/// The `repro multitenant` entry point. Runs the tenant-count × policy
/// sweep, asserts the isolation / budget / leak / fairness / determinism
/// gates, prints the comparison table and writes `BENCH_multitenant.json`.
pub fn multitenant_sweep(cfg: &ExpConfig) -> MtReport {
    let max_tenants = *TENANT_COUNTS.last().expect("non-empty sweep");
    let all_tenants = tenant_set(cfg, max_tenants);

    // Solo oracle, once per tenant: sets at smaller N are prefixes. The solo
    // cluster carries the same budget as the largest leg so spill pressure
    // differs (isolation must hold regardless).
    let oracle_budget = leg_budget(&all_tenants, cfg.nodes);
    let oracle_cluster =
        Cluster::new(ClusterConfig::new(cfg.nodes).with_memory_budget(oracle_budget));
    let solo: HashMap<String, TenantOutcome> = all_tenants
        .iter()
        .map(|t| {
            let out = solo_outcome(&oracle_cluster, t)
                .unwrap_or_else(|e| panic!("solo run of '{}': {e}", t.name));
            (t.name.clone(), out)
        })
        .collect();

    let mut legs: Vec<MtLeg> = Vec::new();
    let mut fairness_wins: Vec<(usize, Duration, Duration)> = Vec::new();
    for &n in TENANT_COUNTS {
        let tenants = &all_tenants[..n];
        let mut by_policy: Vec<MtLeg> = Vec::new();
        for policy in [SchedPolicy::FairShare, SchedPolicy::Fifo] {
            let (mut leg, run) = run_leg(cfg, tenants, policy);
            // Isolation gate: byte-identical to the solo oracle.
            for (tenant, report) in tenants.iter().zip(&run.tenants) {
                let shared = report.outcome.as_ref().expect("tenant succeeded");
                let expected = &solo[&tenant.name];
                assert_eq!(
                    shared,
                    expected,
                    "{} x{n}: tenant '{}' diverged from its solo run",
                    policy.name(),
                    tenant.name
                );
                assert_eq!(
                    report.residual_bytes,
                    0,
                    "{} x{n}: tenant '{}' leaked",
                    policy.name(),
                    tenant.name
                );
            }
            leg.isolated = true;
            assert!(
                leg.peak_memory_bytes <= leg.budget_bytes,
                "{} x{n}: peak {} exceeds budget {}",
                policy.name(),
                leg.peak_memory_bytes,
                leg.budget_bytes
            );
            by_policy.push(leg);
        }
        let fair = &by_policy[0];
        let fifo = &by_policy[1];
        if n >= 2 {
            // Fairness gate: FIFO pays head-of-line blocking behind the
            // large tenant 0; fair-share serves everyone in round one.
            assert!(
                fair.queue_wait.p99 < fifo.queue_wait.p99,
                "x{n}: fair-share p99 wait {:?} must beat FIFO {:?}",
                fair.queue_wait.p99,
                fifo.queue_wait.p99
            );
            fairness_wins.push((n, fair.queue_wait.p99, fifo.queue_wait.p99));
        }
        legs.extend(by_policy);
    }

    // Determinism gate: the 2-tenant fair-share leg reruns to the same grant
    // log and checksums (clock values are measured-makespan sums and may
    // drift; they are reported, not gated).
    let (_, a) = run_leg(cfg, &all_tenants[..2], SchedPolicy::FairShare);
    let (_, b) = run_leg(cfg, &all_tenants[..2], SchedPolicy::FairShare);
    assert_eq!(a.grants, b.grants, "grant log must be deterministic");
    for (x, y) in a.tenants.iter().zip(&b.tenants) {
        assert_eq!(
            x.outcome.as_ref().expect("ok"),
            y.outcome.as_ref().expect("ok"),
            "tenant '{}' must be deterministic",
            x.name
        );
    }

    let report = MtReport {
        nodes: cfg.nodes,
        legs,
        fairness_wins,
    };

    let mut table = Table::new(vec![
        "tenants",
        "policy",
        "grants",
        "wait p50 (ms)",
        "wait p99 (ms)",
        "turn p99 (ms)",
        "clock (ms)",
        "retries",
        "spilled KiB",
    ]);
    for leg in &report.legs {
        table.row(vec![
            leg.tenants.to_string(),
            leg.policy.name().to_string(),
            leg.grants.to_string(),
            format!("{:.2}", leg.queue_wait.p50.as_secs_f64() * 1e3),
            format!("{:.2}", leg.queue_wait.p99.as_secs_f64() * 1e3),
            format!("{:.2}", leg.turnaround.p99.as_secs_f64() * 1e3),
            format!("{:.2}", leg.clock_seconds * 1e3),
            leg.retries.to_string(),
            (leg.spilled_bytes / 1024).to_string(),
        ]);
    }
    table.print(&format!(
        "multi-tenant sweep — mixed-size tenants on {} nodes, budget = sum of working-set estimates",
        report.nodes
    ));
    for (n, fair, fifo) in &report.fairness_wins {
        println!(
            "x{n}: fair-share p99 wait {:.2} ms beats FIFO {:.2} ms",
            fair.as_secs_f64() * 1e3,
            fifo.as_secs_f64() * 1e3
        );
    }
    println!("isolation held on every leg (checksums match solo runs)");

    let out = std::env::var("ASJ_BENCH_MULTITENANT_OUT")
        .unwrap_or_else(|_| "BENCH_multitenant.json".to_string());
    match std::fs::write(&out, render_json(&report)) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("warning: could not write {out}: {e}"),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multitenant_sweep_runs_at_tiny_scale() {
        let cfg = ExpConfig::quick().with_base(4_000);
        let dir = std::env::temp_dir().join("asj-mt-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        std::env::set_var(
            "ASJ_BENCH_MULTITENANT_OUT",
            dir.join("BENCH_multitenant.json"),
        );
        let report = multitenant_sweep(&cfg);
        std::env::remove_var("ASJ_BENCH_MULTITENANT_OUT");

        assert_eq!(report.legs.len(), TENANT_COUNTS.len() * 2);
        for leg in &report.legs {
            assert!(leg.isolated);
            assert!(leg.peak_memory_bytes <= leg.budget_bytes);
            assert_eq!(leg.jobs.len(), leg.tenants);
            for job in &leg.jobs {
                assert_eq!(job.residual_bytes, 0, "leak audit");
                assert!(job.results > 0, "every tenant joins something");
            }
        }
        // Only the chaos tenant retries, and only in legs that include it.
        for leg in &report.legs {
            let chaos_retries: u64 = leg
                .jobs
                .iter()
                .filter(|j| j.name == "tenant-02")
                .map(|j| j.retries)
                .sum();
            assert_eq!(leg.retries, chaos_retries, "retries isolate to tenant 2");
        }
        assert_eq!(report.fairness_wins.len(), 3, "N in {{2,4,8}} compared");

        let json =
            std::fs::read_to_string(dir.join("BENCH_multitenant.json")).expect("json written");
        assert!(json.contains("\"experiment\": \"multitenant\""));
        assert!(json.contains("\"isolation_matches\": true"));
        assert!(json.contains("\"fair_share_wins\":true"));
        assert!(!json.contains("\"fair_share_wins\":false"));
        assert!(json.contains("\"within_budget\":true"));
        assert!(!json.contains("\"within_budget\":false"));
    }

    #[test]
    fn tenant_sets_are_prefixes() {
        let cfg = ExpConfig::quick();
        let two = tenant_set(&cfg, 2);
        let eight = tenant_set(&cfg, 8);
        assert_eq!(&eight[..2], &two[..], "smaller sets are prefixes");
        assert!(
            eight[0].cardinality > eight[1].cardinality,
            "tenant 0 is large"
        );
        assert!(eight[2].faults.is_some(), "tenant 2 is the chaos tenant");
    }
}
