use crate::ExpConfig;
use asj_data::{Catalog, TupleSizeFactor};
use asj_engine::{Cluster, ExecStats, FaultPlan, RetryPolicy};
use asj_join::{to_records, Algorithm, JoinOutput, JoinSpec, Record};

/// The dataset combinations of the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combo {
    /// Synthetic ⋈ synthetic.
    S1S2,
    /// Real (hydrography-like) ⋈ synthetic.
    R1S1,
    /// Real ⋈ real (the paper joins R2 with R1).
    R2R1,
}

impl Combo {
    pub const ALL: [Combo; 3] = [Combo::S1S2, Combo::R1S1, Combo::R2R1];

    pub fn name(self) -> &'static str {
        match self {
            Combo::S1S2 => "S1 ⋈ S2",
            Combo::R1S1 => "R1 ⋈ S1",
            Combo::R2R1 => "R2 ⋈ R1",
        }
    }

    /// Generates the two inputs at the given size factor and tuple payload.
    pub fn datasets(
        self,
        cfg: &ExpConfig,
        size_factor: usize,
        tuple: TupleSizeFactor,
    ) -> (Vec<Record>, Vec<Record>) {
        let catalog = Catalog::new(cfg.base * size_factor);
        let (a, b) = match self {
            Combo::S1S2 => (&catalog.s1, &catalog.s2),
            Combo::R1S1 => (&catalog.r1, &catalog.s1),
            Combo::R2R1 => (&catalog.r2, &catalog.r1),
        };
        let payload = tuple.payload_bytes();
        (
            to_records(&a.points(), payload),
            to_records(&b.points(), payload),
        )
    }
}

/// Network model for the simulated execution time: shuffle *remote* bytes
/// are charged against the aggregate cluster bandwidth, exactly the term the
/// paper's Spark jobs pay when executors fetch remote shuffle blocks. The
/// default 117 MiB/s per node is the 1 Gbps NIC of the paper's VMs.
#[derive(Debug, Clone, Copy)]
pub struct NetModel {
    pub bytes_per_sec_per_node: f64,
    /// Effective local-disk bandwidth per node. Spark's sort-based shuffle
    /// always writes map outputs to local disk and reads them back on the
    /// reduce side (remote or not); the paper's VMs sit on Ceph-backed
    /// volumes, so this is the term that punishes replication-heavy
    /// algorithms (ε-grid ran out of memory/disk at scale).
    pub disk_bytes_per_sec_per_node: f64,
    pub nodes: usize,
}

impl NetModel {
    pub const GIGABIT: f64 = 117.0 * 1024.0 * 1024.0;
    pub const CEPH_DISK: f64 = 150.0 * 1024.0 * 1024.0;

    pub fn gigabit(nodes: usize) -> NetModel {
        NetModel {
            bytes_per_sec_per_node: Self::GIGABIT,
            disk_bytes_per_sec_per_node: Self::CEPH_DISK,
            nodes,
        }
    }

    /// Seconds to move `remote_bytes` across the cluster fabric.
    pub fn transfer_secs(&self, remote_bytes: u64) -> f64 {
        remote_bytes as f64 / (self.bytes_per_sec_per_node * self.nodes.max(1) as f64)
    }

    /// Seconds to spill + re-read all shuffle bytes through local disk
    /// (write on the map side, read on the reduce side).
    pub fn spill_secs(&self, total_bytes: u64) -> f64 {
        2.0 * total_bytes as f64 / (self.disk_bytes_per_sec_per_node * self.nodes.max(1) as f64)
    }
}

/// Flattened metrics of one run, in the units the paper plots.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub algorithm: String,
    /// Replicated objects (both inputs).
    pub replicated: u64,
    /// Shuffle remote reads, bytes.
    pub shuffle_remote: u64,
    /// Total shuffled bytes.
    pub shuffle_total: u64,
    /// Simulated execution time, seconds.
    pub sim_time: f64,
    /// …split into construction (sampling + mapping + shuffle + driver) and
    /// join processing — the stacked bars of Fig. 13c.
    pub construction_time: f64,
    pub join_time: f64,
    /// Host wall time, seconds.
    pub wall_time: f64,
    pub results: u64,
    pub candidates: u64,
    /// Largest post-shuffle partition footprint (bytes).
    pub peak_partition_bytes: u64,
}

impl RunResult {
    pub fn from_output(out: &JoinOutput, net: &NetModel) -> RunResult {
        let construction = out.metrics.driver.as_secs_f64()
            + out.metrics.construction.makespan().as_secs_f64()
            + net.transfer_secs(out.metrics.shuffle.remote_bytes)
            + net.spill_secs(out.metrics.shuffle.total_bytes())
            // Broadcast variables reach every executor over the same fabric.
            + net.transfer_secs(out.metrics.broadcast_bytes * net.nodes as u64);
        let join = out.metrics.join.makespan().as_secs_f64();
        RunResult {
            algorithm: out.algorithm.clone(),
            replicated: out.replicated_total(),
            shuffle_remote: out.metrics.shuffle.remote_bytes,
            shuffle_total: out.metrics.shuffle.total_bytes(),
            sim_time: construction + join,
            construction_time: construction,
            join_time: join,
            wall_time: out.metrics.wall_time().as_secs_f64(),
            results: out.result_count,
            candidates: out.candidates,
            peak_partition_bytes: out.metrics.shuffle.peak_partition_bytes(),
        }
    }
}

/// Runs one algorithm once.
pub fn run_once(
    cluster: &Cluster,
    spec: &JoinSpec,
    algo: Algorithm,
    r: &[Record],
    s: &[Record],
) -> RunResult {
    let out = algo.run(cluster, spec, r.to_vec(), s.to_vec());
    RunResult::from_output(&out, &NetModel::gigabit(cluster.nodes()))
}

/// Runs one algorithm once with a fresh [`Recorder`](asj_engine::Recorder)
/// attached — one per experiment, so traces of different runs never mix —
/// and returns the captured [`Trace`](asj_engine::Trace) with the result.
pub fn run_traced(
    cluster: &Cluster,
    spec: &JoinSpec,
    algo: Algorithm,
    r: &[Record],
    s: &[Record],
) -> (RunResult, asj_engine::Trace) {
    let recorder = asj_engine::Recorder::for_nodes(cluster.nodes());
    let traced = cluster.clone().with_recorder(recorder.clone());
    let out = algo.run(&traced, spec, r.to_vec(), s.to_vec());
    let result = RunResult::from_output(&out, &NetModel::gigabit(cluster.nodes()));
    (result, recorder.snapshot())
}

/// Runs one algorithm `reps` times and averages the time metrics (counts are
/// deterministic and asserted identical across repetitions).
pub fn run_avg(
    cluster: &Cluster,
    spec: &JoinSpec,
    algo: Algorithm,
    r: &[Record],
    s: &[Record],
    reps: usize,
) -> RunResult {
    assert!(reps >= 1);
    let mut acc = run_once(cluster, spec, algo, r, s);
    for _ in 1..reps {
        let next = run_once(cluster, spec, algo, r, s);
        assert_eq!(
            next.replicated, acc.replicated,
            "{algo:?} must be deterministic"
        );
        assert_eq!(next.results, acc.results);
        acc.sim_time += next.sim_time;
        acc.construction_time += next.construction_time;
        acc.join_time += next.join_time;
        acc.wall_time += next.wall_time;
    }
    let n = reps as f64;
    acc.sim_time /= n;
    acc.construction_time /= n;
    acc.join_time /= n;
    acc.wall_time /= n;
    acc
}

/// One fault-injection A/B comparison: the same join fault-free and under a
/// seeded [`FaultPlan`], plus the recovery work the faulted run performed.
#[derive(Debug, Clone)]
pub struct FaultAb {
    pub baseline: RunResult,
    pub faulted: RunResult,
    /// Task attempts of the faulted run (> tasks when anything was retried).
    pub attempts: u64,
    pub retries: u64,
    pub failed_attempts: u64,
    pub speculative_wins: u64,
    pub blacklisted_nodes: u64,
}

/// Runs `algo` twice — on `cluster` as-is and on a copy with `plan`/`policy`
/// injected — and asserts the recovered run produces the identical result
/// set (the engine's recovery-transparency guarantee).
pub fn run_fault_ab(
    cluster: &Cluster,
    spec: &JoinSpec,
    algo: Algorithm,
    r: &[Record],
    s: &[Record],
    plan: FaultPlan,
    policy: RetryPolicy,
) -> FaultAb {
    // The control run must be fault-free even when the caller's cluster
    // already carries a plan (e.g. `repro --faults` attaches one globally).
    let clean = cluster.clone().without_faults();
    let base_out = algo.run(&clean, spec, r.to_vec(), s.to_vec());
    let chaotic = cluster.clone().with_fault_policy(plan, policy);
    let fault_out = algo.run(&chaotic, spec, r.to_vec(), s.to_vec());
    assert_eq!(
        fault_out.result_count, base_out.result_count,
        "fault recovery must not change the join result"
    );
    assert_eq!(fault_out.pairs, base_out.pairs);
    let mut exec = ExecStats::default();
    exec.accumulate(&fault_out.metrics.construction);
    exec.accumulate(&fault_out.metrics.join);
    let net = NetModel::gigabit(cluster.nodes());
    FaultAb {
        baseline: RunResult::from_output(&base_out, &net),
        faulted: RunResult::from_output(&fault_out, &net),
        attempts: exec.attempts,
        retries: exec.retries,
        failed_attempts: exec.failed_attempts,
        speculative_wins: exec.speculative_wins,
        blacklisted_nodes: exec.blacklisted_nodes,
    }
}

/// Formats bytes as mebibytes with two decimals.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_data::PAPER_BBOX;

    #[test]
    fn combos_generate_expected_cardinalities() {
        let cfg = ExpConfig::quick().with_base(2000);
        let (r, s) = Combo::S1S2.datasets(&cfg, 1, TupleSizeFactor::F0);
        assert_eq!(r.len(), 2000);
        assert_eq!(s.len(), 2000);
        let (r, s) = Combo::R2R1.datasets(&cfg, 2, TupleSizeFactor::F1);
        assert_eq!(r.len(), (4000.0 * 0.427) as usize);
        assert_eq!(s.len(), (4000.0 * 0.941) as usize);
        assert_eq!(r[0].payload.len(), 32);
    }

    #[test]
    fn run_avg_is_deterministic_in_counts() {
        let cfg = ExpConfig::quick().with_base(1500);
        let cluster = cfg.cluster();
        let (r, s) = Combo::S1S2.datasets(&cfg, 1, TupleSizeFactor::F0);
        let spec = JoinSpec::new(PAPER_BBOX, cfg.default_eps)
            .with_partitions(cfg.partitions)
            .counting_only();
        let a = run_avg(&cluster, &spec, Algorithm::Lpib, &r, &s, 2);
        let b = run_once(&cluster, &spec, Algorithm::Lpib, &r, &s);
        assert_eq!(a.replicated, b.replicated);
        assert_eq!(a.results, b.results);
        assert!(a.sim_time > 0.0);
    }

    #[test]
    fn fault_ab_recovers_the_same_results() {
        let cfg = ExpConfig::quick().with_base(1200);
        let cluster = cfg.cluster();
        let (r, s) = Combo::S1S2.datasets(&cfg, 1, TupleSizeFactor::F0);
        let spec = JoinSpec::new(PAPER_BBOX, cfg.default_eps).with_partitions(cfg.partitions);
        let plan = FaultPlan::none()
            .with_seed(42)
            .with_fail_prob(0.05)
            .with_slow_node(1, 2.0);
        let ab = run_fault_ab(
            &cluster,
            &spec,
            Algorithm::Lpib,
            &r,
            &s,
            plan,
            RetryPolicy::default().with_max_attempts(8),
        );
        assert_eq!(ab.baseline.results, ab.faulted.results);
        assert!(ab.attempts > 0);
        // Without speculation every failed attempt is followed by a retry.
        assert_eq!(ab.retries, ab.failed_attempts);
    }
}
