//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§7). See `DESIGN.md` (per-experiment index) and
//! `EXPERIMENTS.md` (paper-vs-measured) at the workspace root.
//!
//! Scaling: the paper's 100 M-point synthetic sets become
//! [`ExpConfig::base`] points (100 K by default) and ε is scaled ×20 so the
//! points-per-cell regime and join selectivity match the paper's. The
//! `repro` binary runs the full suite; `cargo bench --bench figures` runs a
//! reduced `quick` configuration.

pub mod experiments;
pub mod memory;
pub mod multitenant;
pub mod perf;
pub mod recovery;
mod runner;
mod table;

pub use runner::{
    run_avg, run_fault_ab, run_once, run_traced, Combo, FaultAb, NetModel, RunResult,
};
pub use table::Table;

use asj_engine::{Cluster, ClusterConfig, FaultPlan, RetryPolicy};

/// Global experiment configuration (Table 3 of the paper, scaled).
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Cardinality of the synthetic sets at size factor x1 (paper: 100 M).
    pub base: usize,
    /// Distance thresholds swept in Figs. 10–12 (paper: 0.009–0.018; ours
    /// ×20 to match the per-cell density after downscaling the data).
    pub eps_values: Vec<f64>,
    /// Default ε (paper: 0.012 → ours 0.24).
    pub default_eps: f64,
    /// Simulated worker nodes (paper default: 12).
    pub nodes: usize,
    /// Shuffle partitions for the join (paper default: 96).
    pub partitions: usize,
    /// Repetitions per configuration; times are averaged (paper: 10).
    pub reps: usize,
    /// Size factors for the scalability experiment (paper: 1,2,4,6,8).
    pub size_factors: Vec<usize>,
    /// Deterministic fault plan and retry policy injected into every cluster
    /// this config builds (`None` = fault-free fast path).
    pub faults: Option<(FaultPlan, RetryPolicy)>,
}

impl ExpConfig {
    /// Full reproduction scale (the `repro` binary's default).
    ///
    /// ε calibration: the paper joins 100 M-point sets with ε = 0.012. At
    /// `base` points the density drops by `100 M / base`, so keeping the
    /// paper's points-per-cell and selectivity regime requires scaling ε by
    /// `sqrt(100 M / base)` — 0.24 at the default 100 K. The four swept
    /// values keep the paper's 0.75/1.0/1.25/1.5 ratios around the default.
    pub fn full() -> Self {
        let mut cfg = ExpConfig {
            base: 0,
            eps_values: Vec::new(),
            default_eps: 0.0,
            nodes: 12,
            partitions: 96,
            reps: 3,
            size_factors: vec![1, 2, 4, 6, 8],
            faults: None,
        };
        cfg.set_base(100_000);
        cfg
    }

    /// Reduced scale for `cargo bench` (every experiment still runs).
    pub fn quick() -> Self {
        let mut cfg = ExpConfig::full();
        cfg.reps = 1;
        cfg.size_factors = vec![1, 2, 4];
        cfg.set_base(20_000);
        cfg
    }

    /// Rescales the x1 cardinality and recalibrates ε (the `--scale` flag of
    /// `repro`).
    pub fn with_base(mut self, base: usize) -> Self {
        self.set_base(base);
        self
    }

    fn set_base(&mut self, base: usize) {
        assert!(base > 0, "base cardinality must be positive");
        self.base = base;
        // sqrt(100M/base) preserves mean points-per-cell; the 0.65 factor
        // calibrates the *result-weighted* density so that join results per
        // input tuple land in the paper's regime (~10 pairs per tuple at the
        // default ε) despite the σ-rescaled clusters — see EXPERIMENTS.md.
        let default = 0.012 * (100_000_000.0 / base as f64).sqrt() * 0.65;
        self.default_eps = default;
        self.eps_values = vec![0.75 * default, default, 1.25 * default, 1.5 * default];
    }

    /// Injects `plan`/`policy` into every cluster this config builds — the
    /// chaos mode of the `repro --faults` flag.
    pub fn with_faults(mut self, plan: FaultPlan, policy: RetryPolicy) -> Self {
        self.faults = Some((plan, policy));
        self
    }

    /// The simulated cluster for this configuration.
    pub fn cluster(&self) -> Cluster {
        self.cluster_with_nodes(self.nodes)
    }

    /// The cluster with an explicit node count (Fig. 14).
    pub fn cluster_with_nodes(&self, nodes: usize) -> Cluster {
        let cluster = Cluster::new(ClusterConfig::new(nodes));
        match &self.faults {
            Some((plan, policy)) => cluster.with_fault_policy(plan.clone(), *policy),
            None => cluster,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_matches_paper_defaults() {
        let cfg = ExpConfig::full();
        assert_eq!(cfg.base, 100_000);
        assert_eq!(cfg.nodes, 12);
        assert_eq!(cfg.partitions, 96);
        assert_eq!(cfg.reps, 3);
        assert_eq!(cfg.size_factors, vec![1, 2, 4, 6, 8]);
        assert_eq!(cfg.eps_values.len(), 4);
        // The sweep brackets the default with the paper's 0.75/1.0/1.25/1.5
        // ratios (0.009, 0.012, 0.015, 0.018 in the paper).
        assert!((cfg.eps_values[1] - cfg.default_eps).abs() < 1e-12);
        assert!((cfg.eps_values[0] / cfg.default_eps - 0.75).abs() < 1e-9);
        assert!((cfg.eps_values[3] / cfg.default_eps - 1.5).abs() < 1e-9);
    }

    #[test]
    fn eps_calibration_scales_with_sqrt_density() {
        let a = ExpConfig::full().with_base(100_000);
        let b = ExpConfig::full().with_base(400_000);
        // 4x the points: same points-per-cell needs eps halved.
        assert!((a.default_eps / b.default_eps - 2.0).abs() < 1e-9);
        // At the paper's own cardinality the calibration approaches the
        // paper's eps (modulo the selectivity factor).
        let paper = ExpConfig::full().with_base(100_000_000);
        assert!((paper.default_eps - 0.012 * 0.65).abs() < 1e-9);
    }

    #[test]
    fn quick_config_is_smaller_but_complete() {
        let q = ExpConfig::quick();
        let f = ExpConfig::full();
        assert!(q.base < f.base);
        assert!(q.reps <= f.reps);
        assert!(!q.size_factors.is_empty());
        assert!(
            q.default_eps > f.default_eps,
            "fewer points need larger eps"
        );
    }

    #[test]
    fn cluster_widths() {
        let cfg = ExpConfig::quick();
        assert_eq!(cfg.cluster().nodes(), 12);
        assert_eq!(cfg.cluster_with_nodes(4).nodes(), 4);
    }

    #[test]
    fn faulty_config_builds_recovering_clusters() {
        assert!(ExpConfig::quick().cluster().fault_context().is_none());
        let cfg = ExpConfig::quick().with_faults(FaultPlan::chaos(5), RetryPolicy::default());
        assert!(cfg.cluster().fault_context().is_some());
        assert!(cfg.cluster_with_nodes(4).fault_context().is_some());
    }
}
