//! Full-scale reproduction driver.
//!
//! ```text
//! repro [EXPERIMENT...] [--quick] [--scale N] [--reps N]
//!
//! EXPERIMENT: table1 fig1b fig10 table4 fig13 fig14 fig15 fig16 fig17
//!             fig18 table5 table6 table7 all   (default: all)
//! --quick     reduced scale (same as `cargo bench --bench figures`)
//! --scale N   x1 cardinality of the synthetic sets (default 100000)
//! --reps N    repetitions per configuration (times averaged; default 3)
//! ```

use asj_bench::{experiments, Combo, ExpConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::full();
    let mut wanted: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = ExpConfig::quick(),
            "--scale" => {
                i += 1;
                cfg.base = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing value for --scale"));
            }
            "--reps" => {
                i += 1;
                cfg.reps = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing value for --reps"));
            }
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag {other}")),
            other => wanted.push(other.to_string()),
        }
        i += 1;
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        experiments::run_all(&cfg);
        return;
    }
    let start = std::time::Instant::now();
    for w in &wanted {
        match w.as_str() {
            "table1" => {
                experiments::table1();
            }
            "fig1b" => {
                experiments::fig1b(&cfg);
            }
            "fig10" | "fig11" | "fig12" => {
                experiments::fig10_11_12(&cfg, Combo::S1S2);
                experiments::fig10_11_12(&cfg, Combo::R1S1);
            }
            "table4" => {
                experiments::table4(&cfg);
            }
            "fig13" => {
                experiments::fig13(&cfg);
            }
            "fig14" => {
                experiments::fig14(&cfg);
            }
            "fig15" => {
                experiments::fig15(&cfg);
            }
            "fig16" => {
                experiments::fig16_18(&cfg, Combo::S1S2);
            }
            "fig17" => {
                experiments::fig16_18(&cfg, Combo::R1S1);
            }
            "fig18" => {
                experiments::fig16_18(&cfg, Combo::R2R1);
            }
            "table5" => {
                experiments::table5(&cfg);
            }
            "table6" => {
                experiments::table6(&cfg);
            }
            "table7" => {
                experiments::table7(&cfg);
            }
            "a1" | "kernels" => {
                experiments::ablation_kernels(&cfg);
            }
            "a2" | "edgeorder" => {
                experiments::ablation_edge_order(&cfg);
            }
            "ext" | "extensions" => {
                experiments::extensions(&cfg);
            }
            other => usage(&format!("unknown experiment {other}")),
        }
    }
    eprintln!("\ncompleted in {:.1}s", start.elapsed().as_secs_f64());
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [EXPERIMENT...] [--quick] [--scale N] [--reps N]\n\
         experiments: table1 fig1b fig10 table4 fig13 fig14 fig15 fig16 \
         fig17 fig18 table5 table6 table7 a1 a2 ext all"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
