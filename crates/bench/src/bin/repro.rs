//! Full-scale reproduction driver.
//!
//! ```text
//! repro [EXPERIMENT...] [--quick] [--scale N] [--reps N]
//!       [--faults SPEC] [--fault-seed N] [--speculation]
//!
//! EXPERIMENT: table1 fig1b fig10 table4 fig13 fig14 fig15 fig16 fig17
//!             fig18 table5 table6 table7 ablation-kernels (a1) faults perf
//!             memory multitenant recovery all (default: all)
//! --quick       reduced scale (same as `cargo bench --bench figures`)
//! --scale N     x1 cardinality of the synthetic sets (default 100000)
//! --reps N      repetitions per configuration (times averaged; default 3)
//! --faults SPEC inject deterministic faults into every run, e.g. 'chaos'
//!               or 'p=0.02,slow:1=3.0' (see `asj --faults`)
//! --fault-seed N  seed for --faults and the `faults` experiment (default 7)
//! --speculation   speculatively re-execute straggler tasks
//! ```

use asj_bench::{experiments, memory, multitenant, perf, recovery, Combo, ExpConfig};
use asj_engine::{FaultPlan, RetryPolicy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::full();
    let mut wanted: Vec<String> = Vec::new();
    let mut fault_spec: Option<String> = None;
    let mut fault_seed: u64 = 7;
    let mut policy = RetryPolicy::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = ExpConfig::quick(),
            "--scale" => {
                i += 1;
                cfg.base = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing value for --scale"));
            }
            "--reps" => {
                i += 1;
                cfg.reps = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing value for --reps"));
            }
            "--faults" => {
                i += 1;
                fault_spec = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("missing value for --faults")),
                );
            }
            "--fault-seed" => {
                i += 1;
                fault_seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing value for --fault-seed"));
            }
            "--speculation" => policy = policy.with_speculation(true),
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag {other}")),
            other => wanted.push(other.to_string()),
        }
        i += 1;
    }
    let plan = match &fault_spec {
        Some(spec) => match FaultPlan::parse(spec, fault_seed) {
            Ok(plan) => Some(plan),
            Err(e) => usage(&e),
        },
        // No flag: honor ASJ_FAULTS / ASJ_FAULT_SEED, so the CI fault-matrix
        // job can chaos-test the whole figure pipeline without flag plumbing.
        None => FaultPlan::from_env(),
    };
    if let Some(plan) = &plan {
        cfg = cfg.with_faults(plan.clone(), policy);
    }
    // The dedicated A/B experiment compares against the given plan, or the
    // standard chaos plan when --faults was not passed.
    let ab_plan = plan.unwrap_or_else(|| FaultPlan::chaos(fault_seed));
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        experiments::run_all(&cfg);
        experiments::fault_tolerance(&cfg, &ab_plan, policy);
        return;
    }
    let start = std::time::Instant::now();
    for w in &wanted {
        match w.as_str() {
            "table1" => {
                experiments::table1();
            }
            "fig1b" => {
                experiments::fig1b(&cfg);
            }
            "fig10" | "fig11" | "fig12" => {
                experiments::fig10_11_12(&cfg, Combo::S1S2);
                experiments::fig10_11_12(&cfg, Combo::R1S1);
            }
            "table4" => {
                experiments::table4(&cfg);
            }
            "fig13" => {
                experiments::fig13(&cfg);
            }
            "fig14" => {
                experiments::fig14(&cfg);
            }
            "fig15" => {
                experiments::fig15(&cfg);
            }
            "fig16" => {
                experiments::fig16_18(&cfg, Combo::S1S2);
            }
            "fig17" => {
                experiments::fig16_18(&cfg, Combo::R1S1);
            }
            "fig18" => {
                experiments::fig16_18(&cfg, Combo::R2R1);
            }
            "table5" => {
                experiments::table5(&cfg);
            }
            "table6" => {
                experiments::table6(&cfg);
            }
            "table7" => {
                experiments::table7(&cfg);
            }
            "a1" | "kernels" | "ablation-kernels" => {
                experiments::ablation_kernels(&cfg);
            }
            "a2" | "edgeorder" => {
                experiments::ablation_edge_order(&cfg);
            }
            "ext" | "extensions" => {
                experiments::extensions(&cfg);
            }
            "faults" | "fault-tolerance" => {
                experiments::fault_tolerance(&cfg, &ab_plan, policy);
            }
            "perf" | "shuffle-perf" => {
                perf::shuffle_perf(&cfg);
            }
            "memory" | "memory-sweep" | "budget-sweep" => {
                memory::memory_sweep(&cfg);
            }
            "multitenant" | "multi-tenant" | "jobs" => {
                multitenant::multitenant_sweep(&cfg);
            }
            "recovery" | "crash-recovery" => {
                recovery::recovery_sweep(&cfg);
            }
            other => usage(&format!("unknown experiment {other}")),
        }
    }
    eprintln!("\ncompleted in {:.1}s", start.elapsed().as_secs_f64());
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [EXPERIMENT...] [--quick] [--scale N] [--reps N]\n\
         \x20            [--faults SPEC] [--fault-seed N] [--speculation]\n\
         experiments: table1 fig1b fig10 table4 fig13 fig14 fig15 fig16 \
         fig17 fig18 table5 table6 table7 ablation-kernels a2 ext faults \
         perf memory multitenant recovery all"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
