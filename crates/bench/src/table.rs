/// Minimal fixed-width text table for the experiment reports.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                // Left-align the first column, right-align numbers.
                if i == 0 {
                    s.push_str(&format!("{:<w$}", c, w = width[i]));
                } else {
                    s.push_str(&format!("{:>w$}", c, w = width[i]));
                }
            }
            s
        };
        let mut out = line(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["algo", "time"]);
        t.row(vec!["LPiB", "1.25"]);
        t.row(vec!["UNI(R)", "10.50"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("algo"));
        assert!(lines[2].starts_with("LPiB"));
        assert!(lines[3].ends_with("10.50"));
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}
