//! One function per paper artifact. Each prints its table(s) and returns
//! them for inspection; `run_all` regenerates the entire evaluation.

use crate::runner::{mib, run_avg, run_fault_ab, Combo, NetModel};
use crate::{ExpConfig, Table};
use asj_core::{cell_costs, AgreementGraph, AgreementPolicy, GridSample};
use asj_data::{TupleSizeFactor, PAPER_BBOX};
use asj_engine::{Cluster, ClusterConfig, FaultPlan, Placement, RetryPolicy};
use asj_geom::{Point, Rect};
use asj_grid::{Grid, GridSpec};
use asj_join::{adaptive_join, adaptive_join_dedup, adaptive_join_post_fetch, Algorithm, JoinSpec};

fn spec_for(cfg: &ExpConfig, eps: f64) -> JoinSpec {
    JoinSpec::new(PAPER_BBOX, eps)
        .with_partitions(cfg.partitions)
        .counting_only()
}

// ---------------------------------------------------------------------------
// Table 1 / Figure 2: the running example, reconstructed exactly.
// ---------------------------------------------------------------------------

/// The 16-point instance of Figure 2, reverse-engineered from Table 1's
/// replication pattern (verified cell by cell). Space `[0,5]²`, ε = 1,
/// 2×2 cells of side 2.5: A = north-west, B = north-east, C = south-east,
/// D = south-west.
pub fn figure2_instance() -> (Vec<Point>, Vec<Point>) {
    let r = vec![
        Point::new(0.7, 3.2), // r1 ∈ A → D
        Point::new(3.0, 3.1), // r2 ∈ B → A, C, D
        Point::new(4.5, 4.5), // r3 ∈ B
        Point::new(4.0, 3.2), // r4 ∈ B → C
        Point::new(3.1, 2.0), // r5 ∈ C → A, B, D
        Point::new(2.8, 0.5), // r6 ∈ C → D
        Point::new(1.7, 1.8), // r7 ∈ D → A, C
        Point::new(1.0, 1.8), // r8 ∈ D → A
    ];
    let s = vec![
        Point::new(2.3, 4.5), // s1 ∈ A → B
        Point::new(2.2, 4.0), // s2 ∈ A → B
        Point::new(2.0, 3.0), // s3 ∈ A → B, C, D
        Point::new(2.9, 4.6), // s4 ∈ B → A
        Point::new(3.2, 1.9), // s5 ∈ C → A, B, D
        Point::new(4.5, 0.5), // s6 ∈ C
        Point::new(1.9, 1.9), // s7 ∈ D → A, B, C
        Point::new(1.9, 0.4), // s8 ∈ D → C
    ];
    (r, s)
}

/// The grid of the running example.
pub fn figure2_grid() -> Grid {
    Grid::new(GridSpec::new(Rect::new(0.0, 0.0, 5.0, 5.0), 1.0))
}

/// Cell name of the running example (A = NW, B = NE, C = SE, D = SW).
fn figure2_cell_name(c: asj_grid::CellCoord) -> &'static str {
    match (c.x, c.y) {
        (0, 1) => "A",
        (1, 1) => "B",
        (1, 0) => "C",
        (0, 0) => "D",
        _ => unreachable!("running example has 4 cells"),
    }
}

/// Table 1: per-cell replicated objects and worst-case cost `r·s` under
/// universal replication of R and of S, on the reconstructed Figure-2
/// instance.
pub fn table1() -> Table {
    let grid = figure2_grid();
    let (r, s) = figure2_instance();
    let sample = GridSample::new(&grid);
    let mut table = Table::new(vec![
        "cell",
        "UNI(R) replicas",
        "UNI(R) cost",
        "UNI(S) replicas",
        "UNI(S) cost",
    ]);
    let graph_r = AgreementGraph::build(&grid, &sample, AgreementPolicy::UniformR);
    let graph_s = AgreementGraph::build(&grid, &sample, AgreementPolicy::UniformS);
    let costs_r = cell_costs(&graph_r, r.iter(), s.iter());
    let costs_s = cell_costs(&graph_s, r.iter(), s.iter());
    // Natives per cell, to derive replica counts.
    let mut native = vec![[0u64; 2]; grid.num_cells()];
    for p in &r {
        native[grid.cell_index(grid.cell_of(*p))][0] += 1;
    }
    for p in &s {
        native[grid.cell_index(grid.cell_of(*p))][1] += 1;
    }
    let mut totals = [0u64; 4]; // replicas R, cost R, replicas S, cost S
    let cells = [
        asj_grid::CellCoord { x: 0, y: 1 }, // A
        asj_grid::CellCoord { x: 1, y: 1 }, // B
        asj_grid::CellCoord { x: 1, y: 0 }, // C
        asj_grid::CellCoord { x: 0, y: 0 }, // D
    ];
    for coord in cells {
        let name = figure2_cell_name(coord);
        let ci = grid.cell_index(coord);
        let rep_r = costs_r[ci].r - native[ci][0];
        let rep_s = costs_s[ci].s - native[ci][1];
        totals[0] += rep_r;
        totals[1] += costs_r[ci].cost();
        totals[2] += rep_s;
        totals[3] += costs_s[ci].cost();
        table.row(vec![
            name.to_string(),
            rep_r.to_string(),
            costs_r[ci].cost().to_string(),
            rep_s.to_string(),
            costs_s[ci].cost().to_string(),
        ]);
    }
    table.row(vec![
        "total".to_string(),
        totals[0].to_string(),
        totals[1].to_string(),
        totals[2].to_string(),
        totals[3].to_string(),
    ]);
    table.print("Table 1: running example — universal replication of R vs S");
    table
}

// ---------------------------------------------------------------------------
// Figure 1b: relative replication overhead of PBSM over adaptive.
// ---------------------------------------------------------------------------

/// Figure 1b: for each dataset combination, the ratio of the best PBSM
/// variant's replicated objects to adaptive replication's (log-scale chart in
/// the paper; a ratio table here).
pub fn fig1b(cfg: &ExpConfig) -> Table {
    let cluster = cfg.cluster();
    let spec = spec_for(cfg, cfg.default_eps);
    let mut table = Table::new(vec![
        "combination",
        "LPiB repl.",
        "UNI(R) repl.",
        "UNI(S) repl.",
        "overhead (best UNI / LPiB)",
    ]);
    for combo in Combo::ALL {
        let (r, s) = combo.datasets(cfg, 1, TupleSizeFactor::F0);
        let lpib = run_avg(&cluster, &spec, Algorithm::Lpib, &r, &s, 1);
        let uni_r = run_avg(&cluster, &spec, Algorithm::UniR, &r, &s, 1);
        let uni_s = run_avg(&cluster, &spec, Algorithm::UniS, &r, &s, 1);
        let best = uni_r.replicated.min(uni_s.replicated);
        let ratio = best as f64 / lpib.replicated.max(1) as f64;
        table.row(vec![
            combo.name().to_string(),
            lpib.replicated.to_string(),
            uni_r.replicated.to_string(),
            uni_s.replicated.to_string(),
            format!("{ratio:.1}x"),
        ]);
    }
    table.print("Figure 1b: replication overhead of PBSM over adaptive replication");
    table
}

// ---------------------------------------------------------------------------
// Figures 10, 11, 12: varying the distance threshold ε.
// ---------------------------------------------------------------------------

/// Figures 10 (replication), 11 (shuffle remote reads) and 12 (execution
/// time) for one dataset combination over the ε sweep.
pub fn fig10_11_12(cfg: &ExpConfig, combo: Combo) -> (Table, Table, Table) {
    let cluster = cfg.cluster();
    let (r, s) = combo.datasets(cfg, 1, TupleSizeFactor::F0);
    let mut header = vec!["algorithm".to_string()];
    header.extend(cfg.eps_values.iter().map(|e| format!("eps={e:.3}")));
    let mut repl = Table::new(header.clone());
    let mut shuffle = Table::new(header.clone());
    let mut time = Table::new(header);
    for algo in Algorithm::ALL {
        let mut row_repl = vec![algo.name().to_string()];
        let mut row_sh = vec![algo.name().to_string()];
        let mut row_t = vec![algo.name().to_string()];
        for &eps in &cfg.eps_values {
            let spec = spec_for(cfg, eps);
            let res = run_avg(&cluster, &spec, algo, &r, &s, cfg.reps);
            row_repl.push(res.replicated.to_string());
            row_sh.push(mib(res.shuffle_remote));
            row_t.push(format!("{:.3}", res.sim_time));
        }
        repl.row(row_repl);
        shuffle.row(row_sh);
        time.row(row_t);
    }
    repl.print(&format!(
        "Figure 10 ({}): replicated objects vs eps",
        combo.name()
    ));
    shuffle.print(&format!(
        "Figure 11 ({}): shuffle remote reads (MiB) vs eps",
        combo.name()
    ));
    time.print(&format!(
        "Figure 12 ({}): execution time (simulated s) vs eps",
        combo.name()
    ));
    (repl, shuffle, time)
}

// ---------------------------------------------------------------------------
// Table 4: selectivity and join results.
// ---------------------------------------------------------------------------

/// Table 4: result-set selectivity and join-result counts for the ε sweep
/// (S1⋈S2, R1⋈S1), the size sweep (S1⋈S2) and R2⋈R1.
pub fn table4(cfg: &ExpConfig) -> Table {
    let cluster = cfg.cluster();
    let mut table = Table::new(vec!["configuration", "selectivity (%)", "join results"]);
    for combo in [Combo::S1S2, Combo::R1S1] {
        let (r, s) = combo.datasets(cfg, 1, TupleSizeFactor::F0);
        for &eps in &cfg.eps_values {
            let spec = spec_for(cfg, eps);
            let res = run_avg(&cluster, &spec, Algorithm::Lpib, &r, &s, 1);
            let sel = res.results as f64 / (r.len() as f64 * s.len() as f64) * 100.0;
            table.row(vec![
                format!("{} eps={eps:.3}", combo.name()),
                format!("{sel:.2e}"),
                res.results.to_string(),
            ]);
        }
    }
    for &f in cfg.size_factors.iter().skip(1) {
        let (r, s) = Combo::S1S2.datasets(cfg, f, TupleSizeFactor::F0);
        let spec = spec_for(cfg, cfg.default_eps);
        let res = run_avg(&cluster, &spec, Algorithm::Lpib, &r, &s, 1);
        let sel = res.results as f64 / (r.len() as f64 * s.len() as f64) * 100.0;
        table.row(vec![
            format!("S1 ⋈ S2 x{f}"),
            format!("{sel:.2e}"),
            res.results.to_string(),
        ]);
    }
    {
        let (r, s) = Combo::R2R1.datasets(cfg, 1, TupleSizeFactor::F0);
        let spec = spec_for(cfg, cfg.default_eps);
        let res = run_avg(&cluster, &spec, Algorithm::Lpib, &r, &s, 1);
        let sel = res.results as f64 / (r.len() as f64 * s.len() as f64) * 100.0;
        table.row(vec![
            "R2 ⋈ R1".to_string(),
            format!("{sel:.2e}"),
            res.results.to_string(),
        ]);
    }
    table.print("Table 4: result-set selectivity and join results");
    table
}

// ---------------------------------------------------------------------------
// Figure 13: scalability with data size.
// ---------------------------------------------------------------------------

/// Figure 13: replication (a), shuffle remote reads (b) and execution time
/// with construction/join split (c) while scaling S1⋈S2 from x1 upward —
/// plus a peak-partition-memory table (13d, ours) that exposes the ε-grid
/// blow-up the paper reports as an out-of-memory failure (the red ×).
pub fn fig13(cfg: &ExpConfig) -> (Table, Table, Table) {
    let cluster = cfg.cluster();
    let mut header = vec!["algorithm".to_string()];
    header.extend(cfg.size_factors.iter().map(|f| format!("x{f}")));
    let mut repl = Table::new(header.clone());
    let mut shuffle = Table::new(header.clone());
    let mut time = Table::new(header.clone());
    let mut mem = Table::new(header);
    for algo in Algorithm::ALL {
        let mut row_repl = vec![algo.name().to_string()];
        let mut row_sh = vec![algo.name().to_string()];
        let mut row_t = vec![algo.name().to_string()];
        let mut row_m = vec![algo.name().to_string()];
        for &f in &cfg.size_factors {
            // The paper raises the partition count with the input size: 96
            // up to x2, then 96 more per size step (192 at x4, 288 at x6,
            // 384 at x8).
            let partitions = match f {
                0..=2 => cfg.partitions,
                4 => cfg.partitions * 2,
                6 => cfg.partitions * 3,
                _ => cfg.partitions * 4,
            };
            let spec = spec_for(cfg, cfg.default_eps).with_partitions(partitions);
            let (r, s) = Combo::S1S2.datasets(cfg, f, TupleSizeFactor::F0);
            let res = run_avg(&cluster, &spec, algo, &r, &s, cfg.reps);
            row_repl.push(res.replicated.to_string());
            row_sh.push(mib(res.shuffle_remote));
            // Construction + join split, as in the stacked bars of Fig 13c.
            row_t.push(format!(
                "{:.3} ({:.3}+{:.3})",
                res.sim_time, res.construction_time, res.join_time
            ));
            row_m.push(mib(res.peak_partition_bytes));
        }
        repl.row(row_repl);
        shuffle.row(row_sh);
        time.row(row_t);
        mem.row(row_m);
    }
    repl.print("Figure 13a: replicated objects vs data size (S1 ⋈ S2)");
    shuffle.print("Figure 13b: shuffle remote reads (MiB) vs data size (S1 ⋈ S2)");
    time.print("Figure 13c: execution time s (construction+join) vs data size (S1 ⋈ S2)");
    mem.print("Figure 13d (ours): peak partition memory (MiB) vs data size (S1 ⋈ S2)");
    (repl, shuffle, time)
}

// ---------------------------------------------------------------------------
// Figure 14: scalability with the number of nodes.
// ---------------------------------------------------------------------------

/// Figure 14: execution time and shuffle remote reads on S1⋈S2 while varying
/// the simulated cluster from 4 to 12 nodes.
pub fn fig14(cfg: &ExpConfig) -> (Table, Table) {
    let nodes_sweep = [4usize, 6, 8, 10, 12];
    let (r, s) = Combo::S1S2.datasets(cfg, 1, TupleSizeFactor::F0);
    let spec = spec_for(cfg, cfg.default_eps);
    let mut header = vec!["algorithm".to_string()];
    header.extend(nodes_sweep.iter().map(|n| format!("{n} nodes")));
    let mut time = Table::new(header.clone());
    let mut shuffle = Table::new(header);
    for algo in Algorithm::ALL {
        let mut row_t = vec![algo.name().to_string()];
        let mut row_sh = vec![algo.name().to_string()];
        for &n in &nodes_sweep {
            let cluster = cfg.cluster_with_nodes(n);
            let res = run_avg(&cluster, &spec, algo, &r, &s, cfg.reps);
            row_t.push(format!("{:.3}", res.sim_time));
            row_sh.push(mib(res.shuffle_remote));
        }
        time.row(row_t);
        shuffle.row(row_sh);
    }
    time.print("Figure 14a: execution time (simulated s) vs number of nodes (S1 ⋈ S2)");
    shuffle.print("Figure 14b: shuffle remote reads (MiB) vs number of nodes (S1 ⋈ S2)");
    (time, shuffle)
}

// ---------------------------------------------------------------------------
// Figure 15: grid resolution.
// ---------------------------------------------------------------------------

/// Figure 15: execution time of LPiB and DIFF with grid resolution 2ε–5ε.
pub fn fig15(cfg: &ExpConfig) -> Table {
    let cluster = cfg.cluster();
    let (r, s) = Combo::S1S2.datasets(cfg, 1, TupleSizeFactor::F0);
    let factors = [2.0f64, 3.0, 4.0, 5.0];
    let mut header = vec!["algorithm".to_string()];
    header.extend(factors.iter().map(|f| format!("{f}eps")));
    let mut table = Table::new(header);
    for algo in [Algorithm::Lpib, Algorithm::Diff] {
        let mut row = vec![algo.name().to_string()];
        for &f in &factors {
            let spec = spec_for(cfg, cfg.default_eps).with_grid_factor(f);
            let res = run_avg(&cluster, &spec, algo, &r, &s, cfg.reps);
            row.push(format!("{:.3}", res.sim_time));
        }
        table.row(row);
    }
    table.print("Figure 15: execution time (simulated s) vs grid resolution (S1 ⋈ S2)");
    table
}

// ---------------------------------------------------------------------------
// Figures 16/17/18: tuple size factors.
// ---------------------------------------------------------------------------

/// Figures 16 (S1⋈S2), 17 (R1⋈S1) and 18 (R2⋈R1): shuffle remote reads and
/// execution time while increasing the tuple size factor f0–f4.
pub fn fig16_18(cfg: &ExpConfig, combo: Combo) -> (Table, Table) {
    let cluster = cfg.cluster();
    // The paper uses 192 partitions for the tuple-size experiments, except
    // 120 for the real-data combination.
    let partitions = match combo {
        Combo::R2R1 => cfg.partitions * 5 / 4,
        _ => cfg.partitions * 2,
    };
    let spec = spec_for(cfg, cfg.default_eps).with_partitions(partitions);
    let mut header = vec!["algorithm".to_string()];
    header.extend(TupleSizeFactor::ALL.iter().map(|f| f.name().to_string()));
    let mut shuffle = Table::new(header.clone());
    let mut time = Table::new(header);
    for algo in Algorithm::ALL {
        let mut row_sh = vec![algo.name().to_string()];
        let mut row_t = vec![algo.name().to_string()];
        for &factor in &TupleSizeFactor::ALL {
            let (r, s) = combo.datasets(cfg, 1, factor);
            let res = run_avg(&cluster, &spec, algo, &r, &s, cfg.reps);
            row_sh.push(mib(res.shuffle_remote));
            row_t.push(format!("{:.3}", res.sim_time));
        }
        shuffle.row(row_sh);
        time.row(row_t);
    }
    let fig = match combo {
        Combo::S1S2 => "Figure 16",
        Combo::R1S1 => "Figure 17",
        Combo::R2R1 => "Figure 18",
    };
    shuffle.print(&format!(
        "{fig}a ({}): shuffle remote reads (MiB) vs tuple size",
        combo.name()
    ));
    time.print(&format!(
        "{fig}b ({}): execution time (simulated s) vs tuple size",
        combo.name()
    ));
    (shuffle, time)
}

// ---------------------------------------------------------------------------
// Table 5: attributes on join vs post-processing.
// ---------------------------------------------------------------------------

/// Table 5: LPiB/DIFF with the f1 payload carried through the join versus
/// fetched by id-joins afterwards.
pub fn table5(cfg: &ExpConfig) -> Table {
    let cluster = cfg.cluster();
    let spec = spec_for(cfg, cfg.default_eps);
    let (r, s) = Combo::S1S2.datasets(cfg, 1, TupleSizeFactor::F1);
    let mut table = Table::new(vec!["method", "on join (s)", "post-processing (s)"]);
    for policy in [AgreementPolicy::Lpib, AgreementPolicy::Diff] {
        let net = NetModel::gigabit(cfg.nodes);
        let inline = {
            let out = adaptive_join(&cluster, &spec, policy, r.clone(), s.clone());
            crate::RunResult::from_output(&out, &net).sim_time
        };
        let fetched = {
            let out = adaptive_join_post_fetch(&cluster, &spec, policy, r.clone(), s.clone());
            crate::RunResult::from_output(&out, &net).sim_time
        };
        table.row(vec![
            policy.name().to_string(),
            format!("{inline:.3}"),
            format!("{fetched:.3}"),
        ]);
    }
    table.print(
        "Table 5: extra attributes included on join vs fetched in post-processing (S1 ⋈ S2, f1)",
    );
    table
}

// ---------------------------------------------------------------------------
// Table 6: duplicate-free vs dedup operator.
// ---------------------------------------------------------------------------

/// Table 6: duplicate-free assignment versus the simplified assignment with
/// a distributed deduplication operator.
pub fn table6(cfg: &ExpConfig) -> Table {
    let cluster = cfg.cluster();
    let spec = spec_for(cfg, cfg.default_eps);
    let (r, s) = Combo::S1S2.datasets(cfg, 1, TupleSizeFactor::F0);
    let mut table = Table::new(vec![
        "method",
        "duplicate-free (s)",
        "non dup-free + dedup (s)",
    ]);
    for policy in [AgreementPolicy::Lpib, AgreementPolicy::Diff] {
        let net = NetModel::gigabit(cfg.nodes);
        let clean = {
            let out = adaptive_join(&cluster, &spec, policy, r.clone(), s.clone());
            crate::RunResult::from_output(&out, &net).sim_time
        };
        let dedup = {
            let out = adaptive_join_dedup(&cluster, &spec, policy, r.clone(), s.clone());
            crate::RunResult::from_output(&out, &net).sim_time
        };
        table.row(vec![
            policy.name().to_string(),
            format!("{clean:.3}"),
            format!("{dedup:.3}"),
        ]);
    }
    table.print(
        "Table 6: duplicate-free vs non duplicate-free assignment with deduplication (S1 ⋈ S2)",
    );
    table
}

// ---------------------------------------------------------------------------
// Table 7: hash vs LPT placement.
// ---------------------------------------------------------------------------

/// Table 7: LPiB/DIFF execution time under hash-based and LPT cell placement
/// for S1⋈S2 (x4) and R2⋈R1, plus SJMR's round-robin tile mapping as an
/// extra related-work column.
pub fn table7(cfg: &ExpConfig) -> Table {
    let cluster = cfg.cluster();
    let mut table = Table::new(vec![
        "configuration",
        "hash (s)",
        "LPT (s)",
        "round-robin (s)",
        "LPT gain (%)",
    ]);
    let x4 = *cfg.size_factors.iter().find(|&&f| f >= 4).unwrap_or(&1);
    for (combo, factor) in [(Combo::S1S2, x4), (Combo::R2R1, 1usize)] {
        let (r, s) = combo.datasets(cfg, factor, TupleSizeFactor::F0);
        for algo in [Algorithm::Lpib, Algorithm::Diff] {
            let hash_spec = spec_for(cfg, cfg.default_eps);
            let lpt_spec = spec_for(cfg, cfg.default_eps).with_placement(Placement::Lpt);
            let rr_spec = spec_for(cfg, cfg.default_eps).with_placement(Placement::RoundRobin);
            let hash = run_avg(&cluster, &hash_spec, algo, &r, &s, cfg.reps);
            let lpt = run_avg(&cluster, &lpt_spec, algo, &r, &s, cfg.reps);
            let rr = run_avg(&cluster, &rr_spec, algo, &r, &s, cfg.reps);
            let gain = (hash.sim_time - lpt.sim_time) / hash.sim_time * 100.0;
            table.row(vec![
                format!("{} x{factor} {}", combo.name(), algo.name()),
                format!("{:.3}", hash.sim_time),
                format!("{:.3}", lpt.sim_time),
                format!("{:.3}", rr.sim_time),
                format!("{gain:.1}"),
            ]);
        }
    }
    table.print("Table 7: hash vs LPT (vs SJMR round-robin) assignment of cells to workers");
    table
}

// ---------------------------------------------------------------------------
// Ablations (ours, not in the paper).
// ---------------------------------------------------------------------------

/// Ablation A1: the distributed join under every fixed partition-local
/// kernel and under `Auto` (the calibrated cost model picking per cell
/// group), on a uniform and a skewed workload. Results are identical across
/// kernels; candidates and join times differ, and `Auto` must track the best
/// fixed kernel's simulated time on both workloads. The tolerance (5%
/// relative plus 2 ms absolute) covers measurement noise in the wall-clock
/// makespans: the kernels' construction phases are identical, and `Auto`
/// resolves each cell group to whatever fixed kernel the calibrated model
/// scores cheapest, so any genuine regression shows up well beyond it.
pub fn ablation_kernels(cfg: &ExpConfig) -> Table {
    use asj_data::{DatasetSpec, GenKind};
    use asj_join::{to_records, LocalKernel};
    let cluster = cfg.cluster();
    // Per-run times at quick scale are a few ms; extra repetitions keep the
    // auto-vs-fixed comparison out of the noise floor.
    let reps = cfg.reps.max(5);
    let mut table = Table::new(vec![
        "workload",
        "kernel",
        "candidates",
        "results",
        "join time (s)",
        "total (s)",
    ]);
    for (workload, kind) in [
        ("uniform", GenKind::Uniform),
        ("skewed", GenKind::GaussianClusters),
    ] {
        let gen = |seed: u64| {
            DatasetSpec {
                name: "ablation",
                kind,
                cardinality: cfg.base,
                seed,
                bbox: PAPER_BBOX,
                sigma_scale: 1.0,
            }
            .points()
        };
        let r = to_records(&gen(101), 0);
        let s = to_records(&gen(202), 0);
        let mut best_fixed = f64::INFINITY;
        let mut auto_time = f64::INFINITY;
        let mut results: Option<u64> = None;
        for (name, kernel) in [
            ("nested-loop", LocalKernel::NestedLoop),
            ("plane-sweep", LocalKernel::PlaneSweep),
            ("grid-bucket", LocalKernel::GridBucket),
            ("auto", LocalKernel::Auto),
        ] {
            let spec = spec_for(cfg, cfg.default_eps).with_kernel(kernel);
            let res = run_avg(&cluster, &spec, Algorithm::Lpib, &r, &s, reps);
            match results {
                None => results = Some(res.results),
                Some(n) => assert_eq!(n, res.results, "{workload}: kernels must agree"),
            }
            if kernel == LocalKernel::Auto {
                auto_time = res.sim_time;
            } else {
                best_fixed = best_fixed.min(res.sim_time);
            }
            table.row(vec![
                workload.to_string(),
                name.to_string(),
                res.candidates.to_string(),
                res.results.to_string(),
                format!("{:.3}", res.join_time),
                format!("{:.3}", res.sim_time),
            ]);
        }
        assert!(
            auto_time <= best_fixed * 1.05 + 2e-3,
            "{workload}: auto ({auto_time:.3}s) must track the best fixed kernel ({best_fixed:.3}s)"
        );
    }
    table.print("Ablation A1: partition-local join kernel (LPiB, uniform and skewed)");
    table
}

/// Ablation A2: Algorithm 1's diagonal-first edge order versus naive
/// weight-only ordering — replication induced by each (the reason the paper
/// prioritizes edges whose cells share only a touching point, §5.2).
pub fn ablation_edge_order(cfg: &ExpConfig) -> Table {
    use asj_core::{build_duplicate_free_with_order, EdgeOrder, SetLabel};
    let (r, s) = Combo::S1S2.datasets(cfg, 1, TupleSizeFactor::F0);
    let grid = Grid::new(GridSpec::new(PAPER_BBOX, cfg.default_eps));
    let sample = GridSample::from_points(
        &grid,
        r.iter().step_by(33).map(|rec| rec.point),
        s.iter().step_by(33).map(|rec| rec.point),
    );
    let mut table = Table::new(vec!["edge order", "marked edges", "replicated objects"]);
    for (name, order) in [
        ("diagonal-first", EdgeOrder::DiagonalFirst),
        ("weight-only", EdgeOrder::WeightOnly),
    ] {
        let mut graph = AgreementGraph::build_unmarked(&grid, &sample, AgreementPolicy::Lpib);
        build_duplicate_free_with_order(&mut graph, &sample, order);
        assert_eq!(graph.validate().unresolved_hazards, 0);
        let mut cells = Vec::with_capacity(4);
        let mut replicas = 0u64;
        for rec in &r {
            graph.assign(rec.point, SetLabel::R, &mut cells);
            replicas += cells.len() as u64 - 1;
        }
        for rec in &s {
            graph.assign(rec.point, SetLabel::S, &mut cells);
            replicas += cells.len() as u64 - 1;
        }
        table.row(vec![
            name.to_string(),
            graph.marked_edge_count().to_string(),
            replicas.to_string(),
        ]);
    }
    table.print("Ablation A2: Algorithm 1 edge ordering (LPiB, S1 ⋈ S2)");
    table
}

// ---------------------------------------------------------------------------
// Everything.
// ---------------------------------------------------------------------------

/// Regenerates every table and figure of the paper in order.
pub fn run_all(cfg: &ExpConfig) {
    println!(
        "# Reproduction run: base={} eps={:?} nodes={} partitions={} reps={}",
        cfg.base, cfg.eps_values, cfg.nodes, cfg.partitions, cfg.reps
    );
    table1();
    fig1b(cfg);
    fig10_11_12(cfg, Combo::S1S2);
    fig10_11_12(cfg, Combo::R1S1);
    table4(cfg);
    fig13(cfg);
    fig14(cfg);
    fig15(cfg);
    fig16_18(cfg, Combo::S1S2);
    fig16_18(cfg, Combo::R1S1);
    fig16_18(cfg, Combo::R2R1);
    table5(cfg);
    table6(cfg);
    table7(cfg);
    ablation_kernels(cfg);
    ablation_edge_order(cfg);
    extensions(cfg);
}

// ---------------------------------------------------------------------------
// Fault-tolerance A/B (ours): recovery transparency and its time overhead.
// ---------------------------------------------------------------------------

/// Fault-injection A/B: every algorithm runs fault-free and under a seeded
/// chaos plan (random failures + one slow node + one lost node); the result
/// sets must be identical and the table reports the recovery work and the
/// simulated-time overhead. Not part of the paper's evaluation — it
/// exercises the Spark fault-tolerance semantics the paper's jobs rely on.
pub fn fault_tolerance(cfg: &ExpConfig, plan: &FaultPlan, policy: RetryPolicy) -> Table {
    // Speculative copies need a second worker thread to race the straggler;
    // on a single-core host `ClusterConfig::new` would provide only one.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let cluster = Cluster::new(ClusterConfig::with_threads(cfg.nodes, threads));
    let (r, s) = Combo::S1S2.datasets(cfg, 1, TupleSizeFactor::F0);
    let spec = spec_for(cfg, cfg.default_eps);
    let mut table = Table::new(
        [
            "algorithm",
            "results",
            "attempts",
            "retries",
            "spec wins",
            "blacklisted",
            "time",
            "time (faults)",
        ]
        .map(str::to_string)
        .to_vec(),
    );
    for algo in [Algorithm::Lpib, Algorithm::Diff] {
        let ab = run_fault_ab(&cluster, &spec, algo, &r, &s, plan.clone(), policy);
        table.row(vec![
            algo.name().to_string(),
            ab.faulted.results.to_string(),
            ab.attempts.to_string(),
            ab.retries.to_string(),
            ab.speculative_wins.to_string(),
            ab.blacklisted_nodes.to_string(),
            format!("{:.3}", ab.baseline.sim_time),
            format!("{:.3}", ab.faulted.sim_time),
        ]);
    }
    table.print(&format!(
        "Fault tolerance (S1 ⋈ S2, plan seed {}): identical results under chaos",
        plan.seed
    ));
    table
}

// ---------------------------------------------------------------------------
// Extension experiments (ours): the operations beyond the paper's evaluation.
// ---------------------------------------------------------------------------

/// Extension experiments: the ε self-join (MR-DSJ setting), the
/// expanding-ring kNN join, and the polyline/polygon extent join, each with
/// its headline metrics. Not part of the paper's evaluation; they
/// characterize the substrate the future-work directions run on.
pub fn extensions(cfg: &ExpConfig) -> (Table, Table, Table) {
    use asj_data::{random_boxes, random_polylines};
    use asj_geom::Shape;
    use asj_join::{extent_join, knn_join, self_join, ExtentRecord};

    let cluster = cfg.cluster();

    // Self-join of S1 across the ε sweep.
    let (s1, _) = Combo::S1S2.datasets(cfg, 1, TupleSizeFactor::F0);
    let mut selfj = Table::new(vec![
        "eps",
        "pairs",
        "replicated",
        "shuffle (MiB)",
        "time (s)",
    ]);
    for &eps in &cfg.eps_values {
        let spec = spec_for(cfg, eps);
        let out = self_join(&cluster, &spec, s1.clone());
        let net = NetModel::gigabit(cfg.nodes);
        let res = crate::RunResult::from_output(&out, &net);
        selfj.row(vec![
            format!("{eps:.3}"),
            out.result_count.to_string(),
            out.replicated_total().to_string(),
            mib(res.shuffle_remote),
            format!("{:.3}", res.sim_time),
        ]);
    }
    selfj.print("Extension: eps self-join of S1 (MR-DSJ setting)");

    // kNN join: rounds and time vs k.
    let (r, s) = Combo::S1S2.datasets(cfg, 1, TupleSizeFactor::F0);
    let mut knn = Table::new(vec!["k", "rounds", "shuffle (MiB)", "makespan (s)"]);
    for k in [1usize, 5, 10, 20] {
        let spec = spec_for(cfg, cfg.default_eps);
        let out = knn_join(&cluster, &spec, k, r.clone(), s.clone());
        knn.row(vec![
            k.to_string(),
            out.rounds.to_string(),
            mib(out.shuffle.total_bytes()),
            format!("{:.3}", out.exec.makespan().as_secs_f64()),
        ]);
    }
    knn.print("Extension: kNN join of S1 queries against S2 (expanding ring)");

    // Extent join: rivers × parks at 1/10 of the point scale.
    let n = (cfg.base / 10).max(500);
    let bbox = PAPER_BBOX;
    let rivers: Vec<ExtentRecord> = random_polylines(bbox, n, 10, 11)
        .into_iter()
        .enumerate()
        .map(|(i, l)| ExtentRecord::new(i as u64, Shape::Polyline(l)))
        .collect();
    let parks: Vec<ExtentRecord> = random_boxes(bbox, n, 0.8, 12)
        .into_iter()
        .enumerate()
        .map(|(i, g)| ExtentRecord::new(i as u64, Shape::Polygon(g)))
        .collect();
    let mut ext = Table::new(vec!["eps", "pairs", "replicated", "peak partition (MiB)"]);
    for &eps in &cfg.eps_values {
        let spec = spec_for(cfg, eps);
        let out = extent_join(&cluster, &spec, rivers.clone(), parks.clone());
        ext.row(vec![
            format!("{eps:.3}"),
            out.result_count.to_string(),
            out.replicated_total().to_string(),
            mib(out.metrics.shuffle.peak_partition_bytes()),
        ]);
    }
    ext.print(&format!(
        "Extension: extent join, {n} river polylines x {n} park polygons"
    ));

    // Sampling-fraction sweep: the paper states 3 % "offers the best
    // performance"; this table shows the trade (construction cost vs
    // replication quality of the sampled agreement graph).
    let (r, s) = Combo::S1S2.datasets(cfg, 1, TupleSizeFactor::F0);
    let mut phi = Table::new(vec![
        "sample phi",
        "replicated",
        "construction (s)",
        "total (s)",
    ]);
    for fraction in [0.005f64, 0.01, 0.03, 0.10, 0.30] {
        let spec = spec_for(cfg, cfg.default_eps).with_sample_fraction(fraction);
        let res = run_avg(&cluster, &spec, Algorithm::Lpib, &r, &s, cfg.reps);
        phi.row(vec![
            format!("{:.1}%", fraction * 100.0),
            res.replicated.to_string(),
            format!("{:.3}", res.construction_time),
            format!("{:.3}", res.sim_time),
        ]);
    }
    phi.print("Extension: sampling fraction sweep (LPiB, S1 ⋈ S2)");
    (selfj, knn, ext)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asj_join::oracle;

    /// Table 1 must match the paper's numbers exactly: 12 replicated objects
    /// with per-cell costs (15, 4, 10, 12) under UNI(R); 13 replicated with
    /// (6, 18, 10, 8) under UNI(S).
    #[test]
    fn table1_matches_paper_exactly() {
        let t = table1();
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        let cell = |row: usize| -> Vec<String> {
            lines[row + 2]
                .split_whitespace()
                .map(str::to_string)
                .collect()
        };
        // Rows: A, B, C, D, total — columns: replicas R, cost R, replicas S, cost S.
        assert_eq!(cell(0), vec!["A", "4", "15", "3", "6"]);
        assert_eq!(cell(1), vec!["B", "1", "4", "5", "18"]);
        assert_eq!(cell(2), vec!["C", "3", "10", "3", "10"]);
        assert_eq!(cell(3), vec!["D", "4", "12", "2", "8"]);
        assert_eq!(cell(4), vec!["total", "12", "41", "13", "42"]);
    }

    /// The reconstructed Figure-2 instance must put each point in its
    /// documented cell.
    #[test]
    fn figure2_points_live_in_documented_cells() {
        let grid = figure2_grid();
        let (r, s) = figure2_instance();
        let names_r = ["A", "B", "B", "B", "C", "C", "D", "D"];
        let names_s = ["A", "A", "A", "B", "C", "C", "D", "D"];
        for (p, want) in r.iter().zip(names_r) {
            assert_eq!(super::figure2_cell_name(grid.cell_of(*p)), want);
        }
        for (p, want) in s.iter().zip(names_s) {
            assert_eq!(super::figure2_cell_name(grid.cell_of(*p)), want);
        }
    }

    /// Example 4.3 of the paper, on the reconstructed instance: between
    /// cells A and D, LPiB counts the border candidates (2 S: s3, s7 vs
    /// 3 R: r1, r7, r8) and picks α_S; DIFF looks at the most imbalanced
    /// cell (A: |1−3| = 2 beats D: |2−2| = 0) and picks the sparse set
    /// there, α_R.
    #[test]
    fn example_4_3_lpib_vs_diff_decision() {
        use asj_core::SetLabel;
        let grid = figure2_grid();
        let (r, s) = figure2_instance();
        let sample = GridSample::from_points(&grid, r.iter().copied(), s.iter().copied());
        let a = asj_grid::CellCoord { x: 0, y: 1 };
        let d = asj_grid::CellCoord { x: 0, y: 0 };
        assert_eq!(
            AgreementPolicy::Lpib.agreement_type(&grid, &sample, a, d),
            SetLabel::S
        );
        assert_eq!(
            AgreementPolicy::Diff.agreement_type(&grid, &sample, a, d),
            SetLabel::R
        );
    }

    /// Example 4.4: under the LPiB instantiation, w(e_BA) = 1·3 (one R point
    /// r2 replicated from B into A's three S points) and w(e_CB) = 1·3 (one
    /// S point s5 into B's three R points).
    #[test]
    fn example_4_4_edge_weights() {
        use asj_core::{Dir8, SetLabel};
        let grid = figure2_grid();
        let (r, s) = figure2_instance();
        let sample = GridSample::from_points(&grid, r.iter().copied(), s.iter().copied());
        let a = asj_grid::CellCoord { x: 0, y: 1 };
        let b = asj_grid::CellCoord { x: 1, y: 1 };
        let c = asj_grid::CellCoord { x: 1, y: 0 };
        // The paper's graph instance is LPiB-based with A–B of type α_R and
        // C–B of type α_S.
        assert_eq!(
            AgreementPolicy::Lpib.agreement_type(&grid, &sample, a, b),
            SetLabel::R
        );
        assert_eq!(
            AgreementPolicy::Lpib.agreement_type(&grid, &sample, c, b),
            SetLabel::S
        );
        // Weight = border candidates of the agreement's set × partner points
        // in the head cell (Example 4.4 computes both as 1 · 3 = 3).
        let w_ba = sample.border_count(grid.cell_index(b), Dir8::W, SetLabel::R)
            * sample.total(grid.cell_index(a), SetLabel::S);
        assert_eq!(w_ba, 3);
        let w_cb = sample.border_count(grid.cell_index(c), Dir8::N, SetLabel::S)
            * sample.total(grid.cell_index(b), SetLabel::R);
        assert_eq!(w_cb, 3);
    }

    /// Smoke test: a tiny full run of the headline experiment shows the
    /// paper's shape — adaptive replicates (far) less than the best PBSM
    /// variant, with identical results.
    #[test]
    fn adaptive_beats_pbsm_on_replication() {
        let cfg = ExpConfig::quick().with_base(4000);
        let cluster = cfg.cluster();
        let spec = spec_for(&cfg, cfg.default_eps);
        let (r, s) = Combo::S1S2.datasets(&cfg, 1, TupleSizeFactor::F0);
        let lpib = run_avg(&cluster, &spec, Algorithm::Lpib, &r, &s, 1);
        let uni_r = run_avg(&cluster, &spec, Algorithm::UniR, &r, &s, 1);
        let uni_s = run_avg(&cluster, &spec, Algorithm::UniS, &r, &s, 1);
        assert_eq!(lpib.results, uni_r.results);
        assert_eq!(lpib.results, uni_s.results);
        assert!(
            lpib.replicated < uni_r.replicated.min(uni_s.replicated),
            "adaptive {} vs UNI(R) {} / UNI(S) {}",
            lpib.replicated,
            uni_r.replicated,
            uni_s.replicated
        );
        // Cross-check the result count against the centralized oracle.
        let expected = oracle::rtree_pairs(&r, &s, spec.eps).len() as u64;
        assert_eq!(lpib.results, expected);
    }
}
