//! `repro recovery` — the crash/recovery sweep behind the checkpointed
//! stage-recovery and job-server journal work.
//!
//! One mixed-size tenant set (reusing the multi-tenant sweep's set, chaos
//! tenant included) runs to completion once as the **oracle**. The sweep then
//! crashes a journaled server at three grant boundaries (~1/3, ~2/3 and two
//! grants shy of done) and restarts it with `--recover` semantics, under
//! three arms: **plain** (journal only), **ckpt** (journal + stage
//! checkpoints) and **compact** (checkpoints + `--compact-every 1` journal
//! compaction). After every leg the harness asserts:
//!
//! * **write-ahead** — the crashed leg's grant log is exactly the oracle's
//!   prefix up to the crash point, and the recovery leg replays that same
//!   journaled prefix (compaction included: a compacted journal must expose
//!   the identical grant log),
//! * **equivalence** — every tenant's recovered outcome (result count,
//!   candidates, replication, checksum) is byte-identical to the oracle's,
//! * **savings** — summed across crash points, the checkpointed recovery legs
//!   re-run strictly fewer task attempts than the journal-only legs: resuming
//!   from persisted shuffle *and join* stages must beat recomputing them,
//! * **bounded disk** — after the recovery leg finishes, retention GC has
//!   collected every finished job's checkpoints and (on the compact arm)
//!   journal compaction has dropped the dead records, so checkpoint-dir
//!   bytes + journal bytes stay under the bound committed in
//!   `results/BENCH_recovery.baseline.json` (gated only when the run matches
//!   the baseline's scale).
//!
//! Results land in `BENCH_recovery.json` for the CI `recovery-matrix` job;
//! override the path with `ASJ_BENCH_RECOVERY_OUT` and the committed
//! baseline with `ASJ_BENCH_RECOVERY_BASELINE`.

use crate::multitenant::tenant_set;
use crate::{ExpConfig, Table};
use asj_engine::{Cluster, ClusterConfig, FaultPlan, RetryPolicy, SchedPolicy};
use asj_join::Algorithm;
use asj_serve::{run_queue, run_queue_recoverable, QueueRun, RecoveryOptions, TenantSpec};
use std::path::Path;

/// Tenants in the sweep's queue (a prefix of the multi-tenant sweep's set,
/// so the chaos tenant at index 2 is included: recovery must compose with
/// ordinary per-tenant retry faults).
const TENANTS: usize = 4;

/// One crash/recover leg: a crash point under one durability arm.
#[derive(Debug, Clone)]
pub struct RecLeg {
    /// Grant boundary the server was killed at.
    pub crash_at: u64,
    /// Whether this arm persisted stage checkpoints.
    pub checkpointed: bool,
    /// Whether this arm compacted the journal after every completion.
    pub compacted: bool,
    /// Crashed grant log == oracle prefix AND recovery replayed it.
    pub prefix_ok: bool,
    /// Every recovered outcome byte-identical to the oracle's.
    pub checksums_ok: bool,
    /// Tenants served straight from the journal (no re-execution).
    pub replayed_tenants: usize,
    /// Shuffle/join stages resumed from checkpoints instead of recomputed.
    pub stages_recovered: u64,
    /// Bytes the crashed leg persisted to the checkpoint store.
    pub checkpoint_bytes: u64,
    /// Task attempts the recovery leg re-ran — the recomputed-work metric.
    pub recovered_attempts: u64,
    /// Checkpoint-dir bytes + journal bytes left on disk once the recovery
    /// leg finished — what retention GC (and compaction) bound.
    pub post_gc_disk_bytes: u64,
    /// Recovery leg's final server clock (serialized simulated time).
    pub clock_seconds: f64,
}

/// The sweep's full result set (also serialized to JSON).
#[derive(Debug, Clone)]
pub struct RecReport {
    pub nodes: usize,
    pub tenants: usize,
    /// Grants the uncrashed oracle needed for the whole queue.
    pub oracle_grants: usize,
    /// Task attempts the oracle spent — the 100% recomputation baseline.
    pub oracle_attempts: u64,
    pub legs: Vec<RecLeg>,
    /// Σ recovered_attempts over the checkpointed (non-compact) arms.
    pub attempts_with_checkpoint: u64,
    /// Σ recovered_attempts over the journal-only arms.
    pub attempts_without_checkpoint: u64,
    /// Max post-recovery disk bytes over the compact-arm legs.
    pub post_gc_disk_bytes: u64,
    /// The committed disk bound this run was gated against, when the
    /// baseline matches this run's scale.
    pub disk_bound_bytes: Option<u64>,
    /// Post-GC disk stayed under the committed bound (vacuously true when
    /// no matching baseline bound exists).
    pub disk_bounded: bool,
    /// `attempts_with_checkpoint` did not regress past the committed
    /// baseline's (vacuously true without a matching baseline).
    pub attempts_within_baseline: bool,
}

impl RecReport {
    /// The headline gate: checkpoints must strictly reduce recomputed work.
    pub fn checkpoint_savings(&self) -> bool {
        self.attempts_with_checkpoint < self.attempts_without_checkpoint
    }
}

/// The durability arms, crossed with every crash point. `plain` and `ckpt`
/// are the pre-compaction A/B axis (their attempt sums feed the savings
/// gate, keeping the metric comparable across baselines); `compact` layers
/// `--compact-every 1` on the checkpointed arm and feeds the disk gate.
const ARMS: &[(&str, bool, bool)] = &[
    ("ckpt", true, false),
    ("plain", false, false),
    ("compact", true, true),
];

/// The cluster-level fault plan and retry policy this config injects
/// (`repro --faults` / the CI fault matrix), or the fault-free defaults.
fn base_policy(cfg: &ExpConfig) -> (FaultPlan, RetryPolicy) {
    match &cfg.faults {
        Some((plan, policy)) => (plan.clone(), *policy),
        None => (FaultPlan::none(), RetryPolicy::default()),
    }
}

fn total_attempts(run: &QueueRun) -> u64 {
    run.tenants.iter().map(|t| t.attempts).sum()
}

/// Total size of the regular files directly under `dir` (0 if absent).
fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.flatten()
                .filter_map(|e| e.metadata().ok())
                .filter(|m| m.is_file())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

fn file_bytes(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Crash a journaled server at `crash_at`, restart it, and gate the leg
/// against the oracle. `(checkpointed, compacted)` selects the arm.
fn crash_and_recover(
    cfg: &ExpConfig,
    tenants: &[TenantSpec],
    oracle: &QueueRun,
    crash_at: u64,
    arm: &str,
    checkpointed: bool,
    compacted: bool,
    scratch: &Path,
) -> RecLeg {
    let journal = scratch.join(format!("crash{crash_at}-{arm}.journal"));
    let ckpt_dir = checkpointed.then(|| scratch.join(format!("crash{crash_at}-{arm}-stages")));
    let compact_every = compacted.then_some(1);

    // Leg 1: the crash. Same base fault plan as the oracle plus the crash
    // clause, so per-task behavior up to the crash point is identical.
    let (plan, retry) = base_policy(cfg);
    let crash_cluster = Cluster::new(ClusterConfig::new(cfg.nodes))
        .with_fault_policy(plan.with_crash_after_grants(crash_at), retry);
    let opts = RecoveryOptions {
        journal: Some(journal.clone()),
        checkpoint_dir: ckpt_dir.clone(),
        recover: false,
        compact_every,
    };
    let crashed = run_queue_recoverable(&crash_cluster, tenants, SchedPolicy::FairShare, &opts)
        .unwrap_or_else(|e| panic!("crash@{crash_at} {arm}: {e}"));
    assert!(crashed.crashed, "crash@{crash_at} {arm}: clause must fire");

    // Leg 2: the restart, on a fresh cluster without the crash clause.
    let opts = RecoveryOptions {
        journal: Some(journal.clone()),
        checkpoint_dir: ckpt_dir.clone(),
        recover: true,
        compact_every,
    };
    let recovered = run_queue_recoverable(&cfg.cluster(), tenants, SchedPolicy::FairShare, &opts)
        .unwrap_or_else(|e| panic!("recover@{crash_at} {arm}: {e}"));
    assert!(!recovered.crashed, "recovery leg must run to completion");

    let prefix = &oracle.grants[..crash_at as usize];
    let prefix_ok = crashed.grants[..] == prefix[..] && recovered.journal_grants[..] == prefix[..];
    assert!(
        prefix_ok,
        "crash@{crash_at} {arm}: journaled grants must be the oracle prefix"
    );
    let checksums_ok = oracle.tenants.iter().zip(&recovered.tenants).all(|(a, b)| {
        match (&a.outcome, &b.outcome) {
            (Ok(x), Ok(y)) => x == y,
            _ => false,
        }
    });
    assert!(
        checksums_ok,
        "crash@{crash_at} {arm}: recovered outcomes must match the oracle"
    );
    // Measured *before* the scratch dir is torn down: everything the run
    // left durable, i.e. what a long-lived server would actually keep.
    let post_gc_disk_bytes = file_bytes(&journal)
        + ckpt_dir
            .as_deref()
            .map(dir_bytes)
            .unwrap_or(0);

    RecLeg {
        crash_at,
        checkpointed,
        compacted,
        prefix_ok,
        checksums_ok,
        replayed_tenants: recovered.tenants.iter().filter(|t| t.recovered).count(),
        stages_recovered: recovered.stages_recovered,
        checkpoint_bytes: crashed.checkpoint_bytes,
        recovered_attempts: total_attempts(&recovered),
        post_gc_disk_bytes,
        clock_seconds: recovered.clock.as_secs_f64(),
    }
}

/// Extracts the integer value of `"key"` from hand-rolled flat JSON. Enough
/// for the committed baseline file — no nesting, no string escapes near the
/// scanned keys.
fn json_u64(text: &str, key: &str) -> Option<u64> {
    let idx = text.find(&format!("\"{key}\""))?;
    let rest = &text[idx..];
    let colon = rest.find(':')?;
    let digits: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The committed baseline's gating fields, when the file exists.
struct Baseline {
    nodes: u64,
    tenants: u64,
    attempts_with_checkpoint: Option<u64>,
    disk_bound_bytes: Option<u64>,
}

fn read_baseline() -> Option<Baseline> {
    let path = std::env::var("ASJ_BENCH_RECOVERY_BASELINE")
        .unwrap_or_else(|_| "results/BENCH_recovery.baseline.json".to_string());
    let text = std::fs::read_to_string(path).ok()?;
    Some(Baseline {
        nodes: json_u64(&text, "nodes")?,
        tenants: json_u64(&text, "tenants")?,
        attempts_with_checkpoint: json_u64(&text, "attempts_with_checkpoint"),
        disk_bound_bytes: json_u64(&text, "disk_bound_bytes"),
    })
}

fn json_leg(leg: &RecLeg) -> String {
    format!(
        concat!(
            "{{\"crash_at\":{},\"checkpointed\":{},\"compacted\":{},",
            "\"prefix_ok\":{},",
            "\"checksums_ok\":{},\"replayed_tenants\":{},",
            "\"stages_recovered\":{},\"checkpoint_bytes\":{},",
            "\"recovered_attempts\":{},\"post_gc_disk_bytes\":{},",
            "\"clock_seconds\":{:.6}}}"
        ),
        leg.crash_at,
        leg.checkpointed,
        leg.compacted,
        leg.prefix_ok,
        leg.checksums_ok,
        leg.replayed_tenants,
        leg.stages_recovered,
        leg.checkpoint_bytes,
        leg.recovered_attempts,
        leg.post_gc_disk_bytes,
        leg.clock_seconds,
    )
}

/// Hand-rolled JSON, same conventions as the other `BENCH_*.json` files.
fn render_json(rep: &RecReport) -> String {
    let legs: Vec<String> = rep.legs.iter().map(json_leg).collect();
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"recovery\",\n",
            "  \"nodes\": {},\n",
            "  \"tenants\": {},\n",
            "  \"oracle_grants\": {},\n",
            "  \"oracle_attempts\": {},\n",
            "  \"attempts_with_checkpoint\": {},\n",
            "  \"attempts_without_checkpoint\": {},\n",
            "  \"checkpoint_savings\": {},\n",
            "  \"post_gc_disk_bytes\": {},\n",
            "  \"disk_bound_bytes\": {},\n",
            "  \"disk_bounded\": {},\n",
            "  \"attempts_within_baseline\": {},\n",
            "  \"legs\": [{}]\n",
            "}}\n"
        ),
        rep.nodes,
        rep.tenants,
        rep.oracle_grants,
        rep.oracle_attempts,
        rep.attempts_with_checkpoint,
        rep.attempts_without_checkpoint,
        rep.checkpoint_savings(),
        rep.post_gc_disk_bytes,
        rep.disk_bound_bytes
            .map_or_else(|| "null".to_string(), |b| b.to_string()),
        rep.disk_bounded,
        rep.attempts_within_baseline,
        legs.join(","),
    )
}

/// The `repro recovery` entry point. Runs the crash-point × durability-arm
/// sweep, asserts the write-ahead / equivalence / savings / bounded-disk
/// gates, prints the comparison table and writes `BENCH_recovery.json`.
pub fn recovery_sweep(cfg: &ExpConfig) -> RecReport {
    let mut tenants = tenant_set(cfg, TENANTS);
    // The large head-of-line tenant runs the distributed-dedup variant: its
    // dedup shuffle is a *post-join* stage, so the late crash point can land
    // between a completed join and job completion — the only window where a
    // join-phase checkpoint is ever consulted (for every other algorithm the
    // join is the job's final quantum, and a finished join means a journaled
    // `done`).
    tenants[0].algorithm = Algorithm::LpibDedup;
    let oracle = run_queue(&cfg.cluster(), &tenants, SchedPolicy::FairShare)
        .unwrap_or_else(|e| panic!("oracle run: {e}"));
    let grants = oracle.grants.len() as u64;
    assert!(grants >= 3, "queue too small to place three crash points");

    // Three crash points: early (~1/3), mid (~2/3) and late (two grants shy
    // of done, where the most checkpointed work is at stake). Deduped in
    // case the quick-scale queue is tiny.
    let mut crash_points = vec![
        (grants / 3).max(1),
        (2 * grants / 3).max(1),
        grants.saturating_sub(2).max(1),
    ];
    crash_points.dedup();

    let scratch = std::env::temp_dir().join(format!("asj-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap_or_else(|e| panic!("scratch dir: {e}"));

    let mut legs: Vec<RecLeg> = Vec::new();
    for &crash_at in &crash_points {
        for &(arm, checkpointed, compacted) in ARMS {
            legs.push(crash_and_recover(
                cfg,
                &tenants,
                &oracle,
                crash_at,
                arm,
                checkpointed,
                compacted,
                &scratch,
            ));
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let attempts_with_checkpoint = legs
        .iter()
        .filter(|l| l.checkpointed && !l.compacted)
        .map(|l| l.recovered_attempts)
        .sum();
    let attempts_without_checkpoint = legs
        .iter()
        .filter(|l| !l.checkpointed)
        .map(|l| l.recovered_attempts)
        .sum();
    let post_gc_disk_bytes = legs
        .iter()
        .filter(|l| l.compacted)
        .map(|l| l.post_gc_disk_bytes)
        .max()
        .unwrap_or(0);

    // Baseline gates apply only at the committed scale: a --quick run (or a
    // --nodes override) measures a different queue and would gate noise.
    let baseline = read_baseline().filter(|b| {
        b.nodes == cfg.nodes as u64 && b.tenants == tenants.len() as u64
    });
    let disk_bound_bytes = baseline.as_ref().and_then(|b| b.disk_bound_bytes);
    let disk_bounded = disk_bound_bytes.is_none_or(|bound| post_gc_disk_bytes <= bound);
    let attempts_within_baseline = baseline
        .as_ref()
        .and_then(|b| b.attempts_with_checkpoint)
        .is_none_or(|base| attempts_with_checkpoint <= base);

    let report = RecReport {
        nodes: cfg.nodes,
        tenants: tenants.len(),
        oracle_grants: oracle.grants.len(),
        oracle_attempts: total_attempts(&oracle),
        attempts_with_checkpoint,
        attempts_without_checkpoint,
        post_gc_disk_bytes,
        disk_bound_bytes,
        disk_bounded,
        attempts_within_baseline,
        legs,
    };
    assert!(
        report.checkpoint_savings(),
        "checkpointed recovery re-ran {} attempts vs {} without — checkpoints must save work",
        report.attempts_with_checkpoint,
        report.attempts_without_checkpoint
    );
    assert!(
        report.disk_bounded,
        "post-GC disk {} bytes exceeds the committed bound {:?}",
        report.post_gc_disk_bytes, report.disk_bound_bytes
    );
    assert!(
        report.attempts_within_baseline,
        "checkpointed recovery attempts {} regressed past the committed baseline",
        report.attempts_with_checkpoint
    );

    let mut table = Table::new(vec![
        "crash at",
        "arm",
        "replayed",
        "stages resumed",
        "ckpt KiB",
        "attempts re-run",
        "post-GC disk B",
        "clock (ms)",
    ]);
    for leg in &report.legs {
        let arm = match (leg.checkpointed, leg.compacted) {
            (true, true) => "compact",
            (true, false) => "ckpt",
            (false, _) => "plain",
        };
        table.row(vec![
            leg.crash_at.to_string(),
            arm.to_string(),
            leg.replayed_tenants.to_string(),
            leg.stages_recovered.to_string(),
            (leg.checkpoint_bytes / 1024).to_string(),
            leg.recovered_attempts.to_string(),
            leg.post_gc_disk_bytes.to_string(),
            format!("{:.2}", leg.clock_seconds * 1e3),
        ]);
    }
    table.print(&format!(
        "crash/recovery sweep — {} tenants on {} nodes, oracle = {} grants / {} attempts",
        report.tenants, report.nodes, report.oracle_grants, report.oracle_attempts
    ));
    println!(
        "checkpointed recovery re-ran {} attempts vs {} journal-only ({} in the full oracle); \
         post-GC disk {} bytes (bound: {})",
        report.attempts_with_checkpoint,
        report.attempts_without_checkpoint,
        report.oracle_attempts,
        report.post_gc_disk_bytes,
        report
            .disk_bound_bytes
            .map_or_else(|| "unset".to_string(), |b| b.to_string()),
    );

    let out = std::env::var("ASJ_BENCH_RECOVERY_OUT")
        .unwrap_or_else(|_| "BENCH_recovery.json".to_string());
    match std::fs::write(&out, render_json(&report)) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("warning: could not write {out}: {e}"),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_sweep_runs_at_tiny_scale() {
        let cfg = ExpConfig::quick().with_base(4_000);
        let dir = std::env::temp_dir().join("asj-recovery-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let out = dir.join("BENCH_recovery.json");
        std::env::set_var("ASJ_BENCH_RECOVERY_OUT", &out);
        let report = recovery_sweep(&cfg);
        std::env::remove_var("ASJ_BENCH_RECOVERY_OUT");

        // Three crash points, three arms each (dedup may shrink tiny queues).
        assert!(report.legs.len() >= 6 && report.legs.len().is_multiple_of(3));
        assert!(report.checkpoint_savings());
        for leg in &report.legs {
            assert!(leg.prefix_ok && leg.checksums_ok);
            assert!(
                leg.recovered_attempts <= report.oracle_attempts,
                "recovery must never exceed the full-recomputation baseline"
            );
            if !leg.checkpointed {
                assert_eq!(leg.stages_recovered, 0, "no checkpoints to resume");
            }
            // Retention GC ran on every journaled arm: a fully-recovered
            // queue keeps no stage checkpoints, so post-run disk is just
            // the journal (plus nothing).
            assert!(leg.post_gc_disk_bytes > 0, "the journal itself survives");
        }
        // The compact arm must not keep more disk than its uncompacted
        // sibling at the same crash point — compaction only ever drops
        // records.
        for pair in report.legs.chunks(3) {
            let (ckpt, compact) = (&pair[0], &pair[2]);
            assert!(ckpt.checkpointed && !ckpt.compacted);
            assert!(compact.compacted);
            assert!(
                compact.post_gc_disk_bytes <= ckpt.post_gc_disk_bytes,
                "compaction must not grow durable state: {} vs {}",
                compact.post_gc_disk_bytes,
                ckpt.post_gc_disk_bytes
            );
        }
        // Early crash points may precede the first completed shuffle stage,
        // but by the late one the checkpoint arm must have persisted data.
        assert!(
            report
                .legs
                .iter()
                .any(|l| l.checkpointed && l.checkpoint_bytes > 0),
            "some checkpointed leg must persist stage data"
        );
        // The late crash point leaves completed tenants in the journal.
        assert!(
            report.legs.iter().any(|l| l.replayed_tenants > 0),
            "some leg must replay a journaled result"
        );
        // ...and the checkpointed late leg resumes persisted stages.
        assert!(
            report
                .legs
                .iter()
                .any(|l| l.checkpointed && l.stages_recovered > 0),
            "some checkpointed leg must resume stages"
        );

        let json = std::fs::read_to_string(&out).expect("json written");
        assert!(json.contains("\"experiment\": \"recovery\""));
        assert!(json.contains("\"checkpoint_savings\": true"));
        assert!(json.contains("\"disk_bounded\": true"));
        assert!(json.contains("\"prefix_ok\":true"));
        assert!(!json.contains("\"prefix_ok\":false"));
        assert!(!json.contains("\"checksums_ok\":false"));
    }

    #[test]
    fn baseline_json_scan_reads_flat_keys() {
        let text = "{\n  \"nodes\": 12,\n  \"disk_bound_bytes\": 4096,\n  \"x\": true\n}";
        assert_eq!(json_u64(text, "nodes"), Some(12));
        assert_eq!(json_u64(text, "disk_bound_bytes"), Some(4096));
        assert_eq!(json_u64(text, "missing"), None);
        assert_eq!(json_u64(text, "x"), None, "non-numeric value is None");
    }
}
