//! `repro perf` — the shuffle-path A/B benchmark behind the zero-copy radix
//! shuffle work.
//!
//! Two legs run the exact same shuffle-heavy workload:
//!
//! * **legacy** — the pre-optimization engine: tuple-`Vec` shuffle
//!   materialization ([`ShuffleMode::Legacy`]) and the hash-map
//!   [`ExplicitPartitioner`] probe (`new_sparse`).
//! * **radix** — the current default: per-target radix buckets through the
//!   cluster [`BufferPool`](asj_engine::BufferPool), single-pass byte
//!   metering and the dense-table partitioner fast path.
//!
//! The legacy leg doubles as the correctness oracle: the benchmark asserts
//! both legs produce *identical* [`ShuffleStats`] and partition contents
//! (element order included) and folds the shuffled output into an FNV-1a
//! checksum that CI gates on — any semantic drift in the radix path aborts
//! the run before a single timing line is printed. A second phase replays
//! every distributed algorithm on radix and legacy clusters and checks
//! results, replication counts and metered shuffle bytes match, plus one
//! materialized-pairs comparison.
//!
//! Results land in a machine-readable `BENCH_shuffle.json` (wall-clock,
//! simulated time, byte meters, pool counters, checksum) for the CI
//! `perf-smoke` job; override the path with `ASJ_BENCH_OUT`.

use crate::runner::{run_once, NetModel};
use crate::{ExpConfig, Table};
use asj_data::{DatasetSpec, GenKind, PAPER_BBOX};
use asj_engine::{
    Cluster, ClusterConfig, ExplicitPartitioner, KeyedDataset, Partitioner, PoolStats, ShuffleMode,
    ShuffleStats,
};
use asj_join::{to_records, Algorithm, JoinSpec, Record};
use std::collections::HashMap;
use std::time::Instant;

/// Opaque payload carried by every benchmark record: large enough that the
/// shuffle moves real bytes (the paper's tuples carry geometry + attributes),
/// small enough that a quick CI run stays in memory comfortably.
pub(crate) const PAYLOAD_BYTES: usize = 64;

/// Cells per axis of the routing grid. 64×64 = 4096 contiguous cell keys —
/// the contiguous-id case the dense partitioner table exists for.
const GRID_CELLS: u64 = 64;

/// Everything `BENCH_shuffle.json` reports for one leg of the A/B.
#[derive(Debug, Clone)]
pub struct LegReport {
    pub mode: &'static str,
    /// Best-of-reps host wall time for the shuffle stage, seconds.
    pub wall_seconds: f64,
    /// Simulated stage time (makespan + modeled network transfer), seconds.
    pub sim_seconds: f64,
    pub remote_bytes: u64,
    pub total_bytes: u64,
    pub records: u64,
    /// Buffer-pool counters accumulated across all reps of this leg.
    pub pool: PoolStats,
}

/// The benchmark's full result set (also serialized to JSON).
#[derive(Debug, Clone)]
pub struct PerfReport {
    pub records: usize,
    pub sources: usize,
    pub targets: usize,
    pub nodes: usize,
    pub reps: usize,
    pub legacy: LegReport,
    pub radix: LegReport,
    /// `legacy.wall_seconds / radix.wall_seconds`.
    pub speedup: f64,
    /// FNV-1a of the shuffled output; identical for both legs by assertion.
    pub checksum: u64,
    /// Per-algorithm `(name, results, replicated, shuffle_bytes)` from the
    /// full-suite radix-vs-legacy equivalence sweep.
    pub suite: Vec<(String, u64, u64, u64)>,
}

/// FNV-1a 64-bit, folded over the shuffled partitions in order. Covers the
/// partition boundaries, every key, record id, coordinate bit pattern and
/// payload byte — any reordering or corruption moves the digest.
pub(crate) fn checksum_partitions(parts: &[Vec<(u64, Record)>]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn byte(h: &mut u64, b: u8) {
        *h ^= b as u64;
        *h = h.wrapping_mul(PRIME);
    }
    fn word(h: &mut u64, w: u64) {
        w.to_le_bytes().into_iter().for_each(|b| byte(h, b));
    }
    let mut h = OFFSET;
    for (i, part) in parts.iter().enumerate() {
        word(&mut h, 0xffff_0000_0000_0000 | i as u64);
        word(&mut h, part.len() as u64);
        for (key, rec) in part {
            word(&mut h, *key);
            word(&mut h, rec.id);
            word(&mut h, rec.point.x.to_bits());
            word(&mut h, rec.point.y.to_bits());
            word(&mut h, rec.payload.len() as u64);
            rec.payload.iter().for_each(|&b| byte(&mut h, b));
        }
    }
    h
}

/// The shuffle-heavy workload: `n` uniform points with opaque payloads,
/// keyed by routing-grid cell, split round-robin into `sources` map-side
/// partitions (round-robin input maximizes cross-partition traffic).
pub(crate) fn keyed_workload(n: usize, sources: usize) -> Vec<Vec<(u64, Record)>> {
    let points = DatasetSpec {
        name: "perf",
        kind: GenKind::Uniform,
        cardinality: n,
        seed: 4242,
        bbox: PAPER_BBOX,
        sigma_scale: 1.0,
    }
    .points();
    let records = to_records(&points, PAYLOAD_BYTES);
    let span_x = PAPER_BBOX.max_x - PAPER_BBOX.min_x;
    let span_y = PAPER_BBOX.max_y - PAPER_BBOX.min_y;
    let mut parts: Vec<Vec<(u64, Record)>> = (0..sources).map(|_| Vec::new()).collect();
    for (i, rec) in records.into_iter().enumerate() {
        let cx = (((rec.point.x - PAPER_BBOX.min_x) / span_x) * GRID_CELLS as f64) as u64;
        let cy = (((rec.point.y - PAPER_BBOX.min_y) / span_y) * GRID_CELLS as f64) as u64;
        let key = cx.min(GRID_CELLS - 1) * GRID_CELLS + cy.min(GRID_CELLS - 1);
        parts[i % sources].push((key, rec));
    }
    parts
}

/// LPT-flavored cell→partition assignment shared by both legs (the adaptive
/// join routes through exactly this kind of explicit map).
pub(crate) fn assignment(targets: usize) -> HashMap<u64, usize> {
    (0..GRID_CELLS * GRID_CELLS)
        .map(|cell| (cell, (cell as usize).wrapping_mul(7) % targets))
        .collect()
}

/// Times one leg: `reps` shuffles of a cloned input, best-of wall time.
/// Returns the shuffled partitions of the last rep for equivalence checks.
#[allow(clippy::type_complexity)]
fn time_leg(
    cluster: &Cluster,
    mode: &'static str,
    parts: &[Vec<(u64, Record)>],
    partitioner: &dyn Partitioner<u64>,
    reps: usize,
) -> (LegReport, Vec<Vec<(u64, Record)>>, ShuffleStats) {
    let net = NetModel::gigabit(cluster.nodes());
    let pool_before = cluster.buffer_pool().stats();
    let mut best_wall = f64::INFINITY;
    let mut best_sim = f64::INFINITY;
    let mut last: Option<(Vec<Vec<(u64, Record)>>, ShuffleStats)> = None;
    for _ in 0..reps {
        let input = parts.to_vec(); // cloned outside the timed region
        let start = Instant::now();
        let (ds, stats, exec) = KeyedDataset::from_partitions(input).shuffle(cluster, partitioner);
        let wall = start.elapsed().as_secs_f64();
        let sim = exec.makespan().as_secs_f64() + net.transfer_secs(stats.remote_bytes);
        best_wall = best_wall.min(wall);
        best_sim = best_sim.min(sim);
        if let Some((prev, prev_stats)) = &last {
            let rerun = ds.into_partitions();
            assert_eq!(prev, &rerun, "{mode}: shuffle must be deterministic");
            assert_eq!(prev_stats, &stats);
            last = Some((rerun, stats));
        } else {
            last = Some((ds.into_partitions(), stats));
        }
    }
    let (out, stats) = last.expect("reps >= 1");
    let report = LegReport {
        mode,
        wall_seconds: best_wall,
        sim_seconds: best_sim,
        remote_bytes: stats.remote_bytes,
        total_bytes: stats.total_bytes(),
        records: stats.records,
        pool: cluster.buffer_pool().stats().since(&pool_before),
    };
    (report, out, stats)
}

/// Full-suite equivalence sweep: every algorithm, radix vs. legacy cluster,
/// identical results / replication / shuffle bytes demanded. Returns the
/// per-algorithm summary rows.
fn suite_equivalence(cfg: &ExpConfig) -> Vec<(String, u64, u64, u64)> {
    let spec = JoinSpec::new(PAPER_BBOX, cfg.default_eps)
        .with_partitions(cfg.partitions)
        .counting_only();
    // Suite scale is capped: this phase is a correctness gate, not a timing
    // measurement, and Sedona at full base dominates the runtime otherwise.
    let base = cfg.base.min(20_000);
    let gen = |seed: u64| {
        DatasetSpec {
            name: "perf-suite",
            kind: GenKind::Uniform,
            cardinality: base,
            seed,
            bbox: PAPER_BBOX,
            sigma_scale: 1.0,
        }
        .points()
    };
    let r = to_records(&gen(101), 0);
    let s = to_records(&gen(202), 0);
    let radix = cfg.cluster();
    let legacy = cfg.cluster().with_shuffle_mode(ShuffleMode::Legacy);
    let mut rows = Vec::new();
    for algo in Algorithm::ALL {
        let a = run_once(&radix, &spec, algo, &r, &s);
        let b = run_once(&legacy, &spec, algo, &r, &s);
        assert_eq!(a.results, b.results, "{algo:?}: result count drifted");
        assert_eq!(a.candidates, b.candidates, "{algo:?}: candidates drifted");
        assert_eq!(a.replicated, b.replicated, "{algo:?}: replication drifted");
        assert_eq!(
            a.shuffle_total, b.shuffle_total,
            "{algo:?}: shuffle bytes drifted"
        );
        assert_eq!(a.shuffle_remote, b.shuffle_remote);
        rows.push((
            algo.name().to_string(),
            a.results,
            a.replicated,
            a.shuffle_total,
        ));
    }
    // One materialized run: the pair *sets* must match, not just the counts.
    let pair_spec = JoinSpec::new(PAPER_BBOX, cfg.default_eps).with_partitions(cfg.partitions);
    let mut pa = Algorithm::Lpib.run(&radix, &pair_spec, r.clone(), s.clone());
    let mut pb = Algorithm::Lpib.run(&legacy, &pair_spec, r, s);
    pa.pairs.sort_unstable();
    pb.pairs.sort_unstable();
    assert_eq!(
        pa.pairs, pb.pairs,
        "LPiB pairs drifted between shuffle modes"
    );
    rows
}

fn json_leg(leg: &LegReport) -> String {
    format!(
        concat!(
            "{{\"mode\":\"{}\",\"wall_seconds\":{:.6},\"sim_seconds\":{:.6},",
            "\"remote_bytes\":{},\"total_bytes\":{},\"records\":{},",
            "\"pool_hits\":{},\"pool_misses\":{},\"pool_returns\":{},",
            "\"bytes_recycled\":{}}}"
        ),
        leg.mode,
        leg.wall_seconds,
        leg.sim_seconds,
        leg.remote_bytes,
        leg.total_bytes,
        leg.records,
        leg.pool.hits,
        leg.pool.misses,
        leg.pool.returns,
        leg.pool.bytes_recycled,
    )
}

/// Hand-rolled JSON (the workspace deliberately carries no serde): flat
/// object, stable key order, digits-only numerics — trivially diffable.
fn render_json(rep: &PerfReport) -> String {
    let suite: Vec<String> = rep
        .suite
        .iter()
        .map(|(name, results, replicated, bytes)| {
            format!(
                "{{\"algorithm\":\"{name}\",\"results\":{results},\
                 \"replicated\":{replicated},\"shuffle_bytes\":{bytes}}}"
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"shuffle_perf\",\n",
            "  \"records\": {},\n",
            "  \"payload_bytes\": {},\n",
            "  \"sources\": {},\n",
            "  \"targets\": {},\n",
            "  \"nodes\": {},\n",
            "  \"reps\": {},\n",
            "  \"legacy\": {},\n",
            "  \"radix\": {},\n",
            "  \"speedup\": {:.4},\n",
            "  \"checksum\": \"{:016x}\",\n",
            "  \"checksum_matches\": true,\n",
            "  \"suite\": [{}]\n",
            "}}\n"
        ),
        rep.records,
        PAYLOAD_BYTES,
        rep.sources,
        rep.targets,
        rep.nodes,
        rep.reps,
        json_leg(&rep.legacy),
        json_leg(&rep.radix),
        rep.speedup,
        rep.checksum,
        suite.join(","),
    )
}

/// The `repro perf` entry point. Runs the A/B, asserts equivalence, prints
/// the comparison table and writes `BENCH_shuffle.json`.
pub fn shuffle_perf(cfg: &ExpConfig) -> PerfReport {
    // 2× base records: the microbenchmark shuffles the equivalent of both
    // join inputs in one stage. Per-run times at quick scale are small, so
    // keep a floor on repetitions for a stable best-of.
    let records = cfg.base * 2;
    let sources = cfg.partitions;
    let targets = cfg.partitions;
    let reps = cfg.reps.max(3);
    let parts = keyed_workload(records, sources);
    let map = assignment(targets);

    // Leg A: the pre-PR engine. Legacy shuffle materialization + the
    // hash-map partitioner probe.
    let legacy_cluster =
        Cluster::new(ClusterConfig::new(cfg.nodes)).with_shuffle_mode(ShuffleMode::Legacy);
    let legacy_part = ExplicitPartitioner::new_sparse(map.clone(), targets);
    let (legacy, parts_l, stats_l) =
        time_leg(&legacy_cluster, "legacy", &parts, &legacy_part, reps);

    // Leg B: today's default. Radix buckets + pooled buffers + dense table.
    let radix_cluster = Cluster::new(ClusterConfig::new(cfg.nodes));
    let radix_part = ExplicitPartitioner::new(map, targets);
    let (radix, parts_r, stats_r) = time_leg(&radix_cluster, "radix", &parts, &radix_part, reps);

    // The oracle gate: byte-for-byte identical output and meters.
    assert_eq!(stats_r, stats_l, "radix shuffle drifted from legacy meters");
    assert_eq!(parts_r, parts_l, "radix shuffle drifted from legacy output");
    let checksum = checksum_partitions(&parts_r);
    assert_eq!(
        checksum,
        checksum_partitions(&parts_l),
        "checksum oracle drifted"
    );

    let suite = suite_equivalence(cfg);
    let speedup = legacy.wall_seconds / radix.wall_seconds.max(1e-12);
    let report = PerfReport {
        records,
        sources,
        targets,
        nodes: cfg.nodes,
        reps,
        legacy,
        radix,
        speedup,
        checksum,
        suite,
    };

    let mut table = Table::new(vec![
        "leg",
        "wall (ms)",
        "sim (s)",
        "shuffle MiB",
        "pool hits",
        "pool misses",
        "MiB recycled",
    ]);
    for leg in [&report.legacy, &report.radix] {
        table.row(vec![
            leg.mode.to_string(),
            format!("{:.2}", leg.wall_seconds * 1e3),
            format!("{:.3}", leg.sim_seconds),
            format!("{:.1}", leg.total_bytes as f64 / (1024.0 * 1024.0)),
            leg.pool.hits.to_string(),
            leg.pool.misses.to_string(),
            format!("{:.1}", leg.pool.bytes_recycled as f64 / (1024.0 * 1024.0)),
        ]);
    }
    table.print(&format!(
        "shuffle perf A/B — {} records × {} B payload, {} → {} partitions",
        report.records, PAYLOAD_BYTES, report.sources, report.targets
    ));
    println!(
        "speedup (legacy/radix wall): {:.2}x   checksum {:016x}",
        report.speedup, report.checksum
    );
    if report.speedup < 1.3 {
        // Timing is advisory on shared CI runners; correctness (the asserts
        // above) is the hard gate.
        eprintln!(
            "warning: speedup {:.2}x below the 1.3x target — noisy host?",
            report.speedup
        );
    }

    let out = std::env::var("ASJ_BENCH_OUT").unwrap_or_else(|_| "BENCH_shuffle.json".to_string());
    match std::fs::write(&out, render_json(&report)) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("warning: could not write {out}: {e}"),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_order_sensitive() {
        let rec = |id: u64| Record::new(id, asj_geom::Point::new(id as f64, 0.0));
        let a = vec![vec![(1u64, rec(1)), (2, rec(2))]];
        let b = vec![vec![(2u64, rec(2)), (1, rec(1))]];
        assert_ne!(checksum_partitions(&a), checksum_partitions(&b));
        assert_eq!(checksum_partitions(&a), checksum_partitions(&a.clone()));
    }

    #[test]
    fn workload_routes_to_every_source() {
        let parts = keyed_workload(1000, 7);
        assert_eq!(parts.len(), 7);
        assert!(parts.iter().all(|p| !p.is_empty()));
        let max_key = GRID_CELLS * GRID_CELLS;
        for part in &parts {
            for (key, rec) in part {
                assert!(*key < max_key);
                assert_eq!(rec.payload.len(), PAYLOAD_BYTES);
            }
        }
    }

    #[test]
    fn perf_ab_runs_at_tiny_scale() {
        let cfg = ExpConfig::quick().with_base(1500);
        // Route JSON to a scratch path so the test never litters the repo.
        let dir = std::env::temp_dir().join("asj-perf-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        std::env::set_var("ASJ_BENCH_OUT", dir.join("BENCH_shuffle.json"));
        let report = shuffle_perf(&cfg);
        std::env::remove_var("ASJ_BENCH_OUT");
        assert_eq!(report.legacy.total_bytes, report.radix.total_bytes);
        assert_eq!(report.suite.len(), Algorithm::ALL.len());
        assert!(report.radix.pool.hits + report.radix.pool.misses > 0);
        assert_eq!(
            report.legacy.pool.hits, 0,
            "legacy leg must not touch the pool"
        );
        let json = std::fs::read_to_string(dir.join("BENCH_shuffle.json")).expect("json written");
        assert!(json.contains("\"experiment\": \"shuffle_perf\""));
        assert!(json.contains("\"checksum_matches\": true"));
    }
}
