//! `repro memory` — the memory-governor budget sweep behind the
//! spill-to-disk shuffle work.
//!
//! One unbudgeted reference run of the [`perf`](crate::perf) shuffle
//! workload establishes the **natural peak**: the largest number of bytes
//! any simulated node holds resident at once when nothing is ever denied.
//! The sweep then re-runs the identical workload under per-node budgets at
//! shrinking fractions of that peak, forcing more and more shuffle buckets
//! through disk spill segments, and asserts after every leg:
//!
//! * the shuffled partitions are **byte-identical** to the unbudgeted run
//!   (full `Vec` equality plus the FNV-1a checksum CI gates on),
//! * every [`ShuffleStats`] meter matches — spilling is invisible in stats,
//! * `peak_memory_bytes <= budget` on every leg that has one,
//! * legs budgeted meaningfully below the natural peak actually spill.
//!
//! A final leg injects a deterministic `oom:` fault on top of the tightest
//! budget and demands the retry machinery recovers to the same bytes.
//!
//! Results land in `BENCH_memory.json` for the CI `perf-smoke` job;
//! override the path with `ASJ_BENCH_MEMORY_OUT`.

use crate::perf::{assignment, checksum_partitions, keyed_workload, PAYLOAD_BYTES};
use crate::{ExpConfig, Table};
use asj_engine::{
    Cluster, ClusterConfig, ExplicitPartitioner, FaultPlan, KeyedDataset, RetryPolicy, ShuffleStats,
};
use asj_join::Record;
use std::time::Instant;

/// Budget fractions of the natural peak swept after the reference leg, in
/// percent. 100% still admits everything (the peak *is* attainable); the
/// tail forces the governor to spill most of the shuffle volume.
const SWEEP_PCT: &[u64] = &[100, 50, 25, 10];

/// One leg of the sweep, as serialized into `BENCH_memory.json`.
#[derive(Debug, Clone)]
pub struct MemLeg {
    /// Per-node budget in bytes; `None` for the unbudgeted reference leg.
    pub budget: Option<u64>,
    /// Budget as a percentage of the natural peak (100 for the reference).
    pub budget_pct: u64,
    pub wall_seconds: f64,
    /// Largest resident footprint any node reached during the leg.
    pub peak_memory_bytes: u64,
    /// Bytes routed through disk spill segments.
    pub spilled_bytes: u64,
    /// Admissions denied by the accountant (each denial spills one bucket).
    pub budget_denials: u64,
    /// Injected out-of-memory faults recovered by retry during the leg.
    pub oom_events: u64,
}

/// The sweep's full result set (also serialized to JSON).
#[derive(Debug, Clone)]
pub struct MemReport {
    pub records: usize,
    pub sources: usize,
    pub targets: usize,
    pub nodes: usize,
    /// Peak per-node resident bytes of the unbudgeted reference run.
    pub natural_peak: u64,
    /// FNV-1a of the shuffled output; identical for every leg by assertion.
    pub checksum: u64,
    pub legs: Vec<MemLeg>,
}

type Workload = Vec<Vec<(u64, Record)>>;

/// Runs one leg and returns its row plus the shuffled output for the
/// byte-identity gate.
fn run_leg(
    cfg: &ExpConfig,
    parts: &Workload,
    budget: Option<u64>,
    budget_pct: u64,
    faults: Option<(FaultPlan, RetryPolicy)>,
) -> (MemLeg, Workload, ShuffleStats) {
    let mut cluster = Cluster::new(ClusterConfig::new(cfg.nodes));
    if let Some(b) = budget {
        cluster = cluster.with_memory_budget(b);
    }
    if let Some((plan, policy)) = faults {
        cluster = cluster.with_fault_policy(plan, policy);
    }
    let targets = cfg.partitions;
    let partitioner = ExplicitPartitioner::new(assignment(targets), targets);
    let input = parts.clone();
    let start = Instant::now();
    let (ds, stats, exec) = KeyedDataset::from_partitions(input).shuffle(&cluster, &partitioner);
    let wall = start.elapsed().as_secs_f64();
    let acct = cluster.memory_accountant();
    let leg = MemLeg {
        budget,
        budget_pct,
        wall_seconds: wall,
        peak_memory_bytes: exec.peak_memory_bytes,
        spilled_bytes: exec.spilled_bytes,
        budget_denials: acct.budget_denials(),
        oom_events: acct.oom_events(),
    };
    (leg, ds.into_partitions(), stats)
}

fn json_leg(leg: &MemLeg) -> String {
    format!(
        concat!(
            "{{\"budget_bytes\":{},\"budget_pct\":{},\"wall_seconds\":{:.6},",
            "\"peak_memory_bytes\":{},\"spilled_bytes\":{},",
            "\"budget_denials\":{},\"oom_events\":{},",
            "\"within_budget\":{},\"byte_identical\":true}}"
        ),
        leg.budget
            .map_or_else(|| "null".to_string(), |b| b.to_string()),
        leg.budget_pct,
        leg.wall_seconds,
        leg.peak_memory_bytes,
        leg.spilled_bytes,
        leg.budget_denials,
        leg.oom_events,
        leg.budget.is_none_or(|b| leg.peak_memory_bytes <= b),
    )
}

/// Hand-rolled JSON, same conventions as `BENCH_shuffle.json`: flat-ish
/// object, stable key order, digits-only numerics.
fn render_json(rep: &MemReport) -> String {
    let legs: Vec<String> = rep.legs.iter().map(json_leg).collect();
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"memory_sweep\",\n",
            "  \"records\": {},\n",
            "  \"payload_bytes\": {},\n",
            "  \"sources\": {},\n",
            "  \"targets\": {},\n",
            "  \"nodes\": {},\n",
            "  \"natural_peak_bytes\": {},\n",
            "  \"checksum\": \"{:016x}\",\n",
            "  \"checksum_matches\": true,\n",
            "  \"legs\": [{}]\n",
            "}}\n"
        ),
        rep.records,
        PAYLOAD_BYTES,
        rep.sources,
        rep.targets,
        rep.nodes,
        rep.natural_peak,
        rep.checksum,
        legs.join(","),
    )
}

/// The `repro memory` entry point. Runs the budget sweep, asserts the
/// byte-identity and `peak <= budget` gates, prints the comparison table
/// and writes `BENCH_memory.json`.
pub fn memory_sweep(cfg: &ExpConfig) -> MemReport {
    let records = cfg.base * 2;
    let sources = cfg.partitions;
    let targets = cfg.partitions;
    let parts = keyed_workload(records, sources);

    // Reference leg: no budget. The accountant still meters every admission,
    // so its peak is the natural footprint the sweep is scaled against.
    let (reference, base_parts, base_stats) = run_leg(cfg, &parts, None, 100, None);
    assert_eq!(
        reference.spilled_bytes, 0,
        "an unbudgeted run must never spill"
    );
    let natural_peak = reference.peak_memory_bytes;
    let checksum = checksum_partitions(&base_parts);
    let mut legs = vec![reference];

    for &pct in SWEEP_PCT {
        let budget = (natural_peak * pct / 100).max(1);
        let (leg, out, stats) = run_leg(cfg, &parts, Some(budget), pct, None);
        assert_eq!(
            stats, base_stats,
            "budget {pct}%: ShuffleStats drifted under spilling"
        );
        assert_eq!(
            out, base_parts,
            "budget {pct}%: spilling changed the shuffled bytes"
        );
        assert_eq!(checksum_partitions(&out), checksum);
        assert!(
            leg.peak_memory_bytes <= budget,
            "budget {pct}%: peak {} exceeds budget {budget}",
            leg.peak_memory_bytes
        );
        if pct <= 50 {
            assert!(
                leg.spilled_bytes > 0,
                "budget {pct}% of natural peak must force spilling"
            );
        }
        legs.push(leg);
    }

    // OOM-injection leg: tightest budget plus a deterministic `oom:` fault on
    // the first shuffle task's first attempt — the retry machinery must
    // recover to the exact same bytes, and the accountant must log the event.
    let tight = (natural_peak * SWEEP_PCT[SWEEP_PCT.len() - 1] / 100).max(1);
    let plan = FaultPlan::parse("oom:shuffle:0@1", 7).expect("static fault spec");
    let policy = RetryPolicy::default().with_max_attempts(4);
    let (oom_leg, out, stats) = run_leg(cfg, &parts, Some(tight), 0, Some((plan, policy)));
    assert_eq!(stats, base_stats, "oom leg: ShuffleStats drifted");
    assert_eq!(out, base_parts, "oom leg: recovery changed the bytes");
    assert!(oom_leg.oom_events >= 1, "the injected oom must register");
    assert!(oom_leg.peak_memory_bytes <= tight);
    legs.push(oom_leg);

    let report = MemReport {
        records,
        sources,
        targets,
        nodes: cfg.nodes,
        natural_peak,
        checksum,
        legs,
    };

    let mut table = Table::new(vec![
        "budget",
        "budget KiB",
        "peak KiB",
        "spilled KiB",
        "denials",
        "oom",
        "wall (ms)",
    ]);
    for leg in &report.legs {
        let label = match (leg.budget, leg.budget_pct) {
            (None, _) => "unbounded".to_string(),
            (Some(_), 0) => "10% + oom".to_string(),
            (Some(_), pct) => format!("{pct}%"),
        };
        table.row(vec![
            label,
            leg.budget
                .map_or_else(|| "-".to_string(), |b| (b / 1024).to_string()),
            (leg.peak_memory_bytes / 1024).to_string(),
            (leg.spilled_bytes / 1024).to_string(),
            leg.budget_denials.to_string(),
            leg.oom_events.to_string(),
            format!("{:.2}", leg.wall_seconds * 1e3),
        ]);
    }
    table.print(&format!(
        "memory budget sweep — {} records × {} B payload, natural peak {} KiB, {} nodes",
        report.records,
        PAYLOAD_BYTES,
        report.natural_peak / 1024,
        report.nodes
    ));
    println!(
        "byte-identity held on every leg   checksum {:016x}",
        report.checksum
    );

    let out =
        std::env::var("ASJ_BENCH_MEMORY_OUT").unwrap_or_else(|_| "BENCH_memory.json".to_string());
    match std::fs::write(&out, render_json(&report)) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("warning: could not write {out}: {e}"),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sweep_runs_at_tiny_scale() {
        let cfg = ExpConfig::quick().with_base(1500);
        let dir = std::env::temp_dir().join("asj-mem-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        std::env::set_var("ASJ_BENCH_MEMORY_OUT", dir.join("BENCH_memory.json"));
        let report = memory_sweep(&cfg);
        std::env::remove_var("ASJ_BENCH_MEMORY_OUT");

        // Reference + one leg per sweep point + the oom leg.
        assert_eq!(report.legs.len(), SWEEP_PCT.len() + 2);
        assert!(report.natural_peak > 0, "the accountant meters peak");
        assert_eq!(report.legs[0].budget, None);
        assert_eq!(report.legs[0].spilled_bytes, 0);
        for leg in &report.legs[1..] {
            let budget = leg.budget.expect("swept legs have budgets");
            assert!(leg.peak_memory_bytes <= budget);
        }
        let tightest = &report.legs[SWEEP_PCT.len()];
        assert!(tightest.spilled_bytes > 0, "10% budget must spill");
        assert!(tightest.budget_denials > 0);
        let oom = report.legs.last().expect("oom leg present");
        assert!(oom.oom_events >= 1);

        let json = std::fs::read_to_string(dir.join("BENCH_memory.json")).expect("json written");
        assert!(json.contains("\"experiment\": \"memory_sweep\""));
        assert!(json.contains("\"checksum_matches\": true"));
        assert!(json.contains("\"within_budget\":true"));
        assert!(!json.contains("\"within_budget\":false"));
    }
}
