//! Ablation A1: partition-local join kernels — the paper-faithful
//! nested-loop-with-refinement versus the PBSM-style plane sweep, across cell
//! populations.

use asj_geom::Point;
use asj_index::kernels::{nested_loop, plane_sweep};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cell_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    // One grid cell of side 2ε = 0.48, matching the default experiment scale.
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..0.48), rng.gen_range(0.0..0.48)))
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let eps = 0.24;
    let mut group = c.benchmark_group("local_join_kernel");
    for n in [64usize, 256, 1024] {
        let a = cell_points(n, 1);
        let b = cell_points(n, 2);
        group.bench_with_input(BenchmarkId::new("nested_loop", n), &n, |bch, _| {
            bch.iter(|| {
                let mut hits = 0u64;
                let stats = nested_loop(&a, &b, eps, |p| *p, |p| *p, |_, _| hits += 1);
                black_box((hits, stats.results))
            })
        });
        group.bench_with_input(BenchmarkId::new("plane_sweep", n), &n, |bch, _| {
            bch.iter(|| {
                let mut hits = 0u64;
                let stats = plane_sweep(&a, &b, eps, |p| *p, |p| *p, |_, _| hits += 1);
                black_box((hits, stats.results))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
