//! `cargo bench --bench figures` — regenerates every table and figure of the
//! paper at reduced (`quick`) scale, printing the same rows/series the paper
//! reports. The `repro` binary runs the identical suite at full scale.

use asj_bench::{experiments, ExpConfig};

fn main() {
    // Criterion-style --bench flag may be passed by cargo; ignore all args.
    let cfg = ExpConfig::quick();
    let start = std::time::Instant::now();
    experiments::run_all(&cfg);
    println!(
        "\nAll tables and figures regenerated (quick scale, base={} points) in {:.1}s.",
        cfg.base,
        start.elapsed().as_secs_f64()
    );
    println!("Run `cargo run --release -p asj-bench --bin repro` for the full-scale suite.");
}
