//! Cost of the agreement-graph construction pipeline (the driver-side part
//! of the paper's construction phase): sampling statistics, policy-driven
//! type selection, and Algorithm 1's marking/locking sweep.

use asj_core::{AgreementGraph, AgreementPolicy, GridSample};
use asj_data::{Catalog, PAPER_BBOX};
use asj_grid::{Grid, GridSpec};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_graph_build(c: &mut Criterion) {
    let catalog = Catalog::new(50_000);
    let r = catalog.s1.points();
    let s = catalog.s2.points();
    let mut group = c.benchmark_group("agreement_graph");
    for eps in [0.18f64, 0.24, 0.36] {
        let grid = Grid::new(GridSpec::new(PAPER_BBOX, eps));
        let sample = GridSample::from_points(
            &grid,
            r.iter().step_by(33).copied(),
            s.iter().step_by(33).copied(),
        );
        group.bench_with_input(
            BenchmarkId::new("build_lpib", format!("eps{eps}")),
            &eps,
            |b, _| {
                b.iter(|| black_box(AgreementGraph::build(&grid, &sample, AgreementPolicy::Lpib)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("build_diff", format!("eps{eps}")),
            &eps,
            |b, _| {
                b.iter(|| black_box(AgreementGraph::build(&grid, &sample, AgreementPolicy::Diff)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sample_stats", format!("eps{eps}")),
            &eps,
            |b, _| {
                b.iter(|| {
                    black_box(GridSample::from_points(
                        &grid,
                        r.iter().step_by(33).copied(),
                        s.iter().step_by(33).copied(),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_graph_build
}
criterion_main!(benches);
