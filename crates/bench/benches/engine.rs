//! Micro-benchmarks of the engine substrate: shuffle throughput with and
//! without payloads, and the co-grouped join's grouping overhead.

use asj_engine::{Cluster, ClusterConfig, HashPartitioner, KeyedDataset};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn keyed(n: usize, payload: usize, parts: usize) -> KeyedDataset<u64, Vec<u8>> {
    let per = n / parts;
    KeyedDataset::from_partitions(
        (0..parts)
            .map(|p| {
                (0..per)
                    .map(|i| (((p * per + i) % 977) as u64, vec![0u8; payload]))
                    .collect()
            })
            .collect(),
    )
}

fn bench_engine(c: &mut Criterion) {
    let cluster = Cluster::new(ClusterConfig::new(12));
    let partitioner = HashPartitioner::new(96);

    let mut group = c.benchmark_group("shuffle_200k_records");
    for payload in [0usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("payload", payload),
            &payload,
            |b, &payload| {
                b.iter_batched(
                    || keyed(200_000, payload, 16),
                    |kd| black_box(kd.shuffle(&cluster, &partitioner)),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("cogroup_join_100k");
    group.bench_function("group_and_count", |b| {
        b.iter_batched(
            || {
                let a = keyed(100_000, 0, 8);
                let b = keyed(100_000, 0, 8);
                let (a, _, _) = a.shuffle(&cluster, &partitioner);
                let (b, _, _) = b.shuffle(&cluster, &partitioner);
                (a, b)
            },
            |(a, b)| {
                let placement: Vec<usize> = (0..96).map(|p| cluster.node_of_partition(p)).collect();
                let (out, _) = a.cogroup_join(&cluster, b, &placement, |_, va, vb, out| {
                    out.push(va.len() as u64 * vb.len() as u64);
                });
                black_box(out.collect().iter().sum::<u64>())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine
}
criterion_main!(benches);
