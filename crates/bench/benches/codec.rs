//! Micro-benchmarks of the data-movement hot paths the radix shuffle leans
//! on: `Wire` encode/decode of join records and the columnar
//! [`PointBatch`](asj_index::PointBatch) build the join kernels consume.

use asj_data::{DatasetSpec, GenKind, PAPER_BBOX};
use asj_engine::Wire;
use asj_index::PointBatch;
use asj_join::{to_records, Record};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn records(n: usize, payload: usize) -> Vec<Record> {
    let points = DatasetSpec {
        name: "codec",
        kind: GenKind::Uniform,
        cardinality: n,
        seed: 7,
        bbox: PAPER_BBOX,
        sigma_scale: 1.0,
    }
    .points();
    to_records(&points, payload)
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec_100k_records");
    for payload in [0usize, 64] {
        let recs = records(100_000, payload);
        group.bench_with_input(BenchmarkId::new("encode", payload), &recs, |b, recs| {
            b.iter(|| {
                let size: usize = recs.iter().map(Wire::encoded_size).sum();
                let mut buf = Vec::with_capacity(size);
                for r in recs {
                    r.encode(&mut buf);
                }
                black_box(buf)
            })
        });
        let size: usize = recs.iter().map(Wire::encoded_size).sum();
        let mut encoded = Vec::with_capacity(size);
        for r in &recs {
            r.encode(&mut encoded);
        }
        group.bench_with_input(
            BenchmarkId::new("decode", payload),
            &encoded,
            |b, encoded| {
                b.iter(|| {
                    let mut buf: &[u8] = encoded;
                    let mut out = Vec::with_capacity(recs.len());
                    while !buf.is_empty() {
                        out.push(Record::decode(&mut buf));
                    }
                    black_box(out)
                })
            },
        );
    }
    group.finish();

    // The shuffle-receive step the columnar kernels depend on: keyed tuples
    // in, sorted SoA group lanes out.
    let mut group = c.benchmark_group("point_batch_build_100k");
    for groups in [16u64, 1024] {
        let keyed: Vec<(u64, Record)> = records(100_000, 0)
            .into_iter()
            .map(|r| (r.id % groups, r))
            .collect();
        group.bench_with_input(BenchmarkId::new("groups", groups), &keyed, |b, keyed| {
            b.iter(|| black_box(PointBatch::from_keyed(keyed, |r| r.point, |r| r.id)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
