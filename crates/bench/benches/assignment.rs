//! Throughput of the point-assignment paths: adaptive replication
//! (Algorithms 2–4 with full marking machinery) versus PBSM's plain
//! `MINDIST ≤ ε` enumeration. The paper's construction-time split (Fig. 13c)
//! rests on this mapping being cheap.

use asj_core::{AgreementGraph, AgreementPolicy, GridSample, SetLabel};
use asj_data::{Catalog, PAPER_BBOX};
use asj_grid::{Grid, GridSpec};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_assignment(c: &mut Criterion) {
    let eps = 0.24;
    let grid = Grid::new(GridSpec::new(PAPER_BBOX, eps));
    let catalog = Catalog::new(20_000);
    let r = catalog.s1.points();
    let s = catalog.s2.points();
    let sample = GridSample::from_points(
        &grid,
        r.iter().step_by(33).copied(),
        s.iter().step_by(33).copied(),
    );
    let adaptive = AgreementGraph::build(&grid, &sample, AgreementPolicy::Lpib);
    let uniform = AgreementGraph::build(&grid, &sample, AgreementPolicy::UniformR);

    let mut group = c.benchmark_group("assignment_20k_points");
    group.bench_function("adaptive_lpib", |b| {
        b.iter(|| {
            let mut cells = Vec::with_capacity(4);
            let mut total = 0usize;
            for p in &r {
                adaptive.assign(*p, SetLabel::R, &mut cells);
                total += cells.len();
            }
            black_box(total)
        })
    });
    group.bench_function("uniform_pbsm", |b| {
        b.iter(|| {
            let mut cells = Vec::with_capacity(4);
            let mut total = 0usize;
            for p in &r {
                uniform.assign(*p, SetLabel::R, &mut cells);
                total += cells.len();
            }
            black_box(total)
        })
    });
    group.bench_function("raw_mindist_enumeration", |b| {
        b.iter(|| {
            let mut cells = Vec::with_capacity(4);
            let mut total = 0usize;
            for p in &r {
                cells.clear();
                cells.push(grid.cell_of(*p));
                grid.push_cells_within_eps(*p, &mut cells);
                total += cells.len();
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_assignment
}
criterion_main!(benches);
