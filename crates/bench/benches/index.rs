//! Micro-benchmarks of the index substrates: bulk-load and ε-probe
//! throughput of the R-tree vs k-d tree, and quadtree routing.

use asj_data::Catalog;
use asj_geom::{Point, Rect};
use asj_index::{KdTree, QuadTreePartitioner, RTree};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_indexes(c: &mut Criterion) {
    let catalog = Catalog::new(50_000);
    let points = catalog.s1.points();
    let queries: Vec<Point> = catalog.s2.points().into_iter().take(2_000).collect();
    let eps = 0.3;

    let mut group = c.benchmark_group("index_build_50k");
    group.bench_function("rtree_str_bulk_load", |b| {
        b.iter(|| {
            black_box(RTree::bulk_load(
                points.iter().map(|&p| (Rect::from_point(p), ())).collect(),
                16,
            ))
        })
    });
    group.bench_function("kdtree_build", |b| {
        b.iter(|| black_box(KdTree::build(points.iter().map(|&p| (p, ())).collect())))
    });
    group.bench_function("quadtree_build", |b| {
        b.iter(|| {
            black_box(QuadTreePartitioner::build(
                catalog.s1.bbox,
                &points[..5_000],
                64,
                12,
            ))
        })
    });
    group.finish();

    let rtree = RTree::bulk_load(
        points.iter().map(|&p| (Rect::from_point(p), ())).collect(),
        16,
    );
    let kdtree = KdTree::build(points.iter().map(|&p| (p, ())).collect());
    let mut group = c.benchmark_group("index_probe_2k_queries");
    for (name, run) in [
        (
            "rtree_eps_probe",
            Box::new(|| {
                let mut hits = 0u64;
                for &q in &queries {
                    rtree.query_within(q, eps, |_, _| hits += 1);
                }
                hits
            }) as Box<dyn Fn() -> u64>,
        ),
        (
            "kdtree_eps_probe",
            Box::new(|| {
                let mut hits = 0u64;
                for &q in &queries {
                    kdtree.query_within(q, eps, |_, _| hits += 1);
                }
                hits
            }),
        ),
        (
            "kdtree_knn10",
            Box::new(|| {
                let mut total = 0u64;
                for &q in &queries {
                    total += kdtree.nearest(q, 10).len() as u64;
                }
                total
            }),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| black_box(run()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_indexes
}
criterion_main!(benches);
