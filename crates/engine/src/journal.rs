//! Crash-consistent job-server journal: an append-only JSONL write-ahead
//! log of admissions, grants, stage completions and job completions.
//!
//! The journal is the second durability layer on top of stage checkpoints
//! (`checkpoint.rs`): the checkpoint store makes *stage outputs* durable,
//! the journal makes the *server's decisions* durable, and together they let
//! [`JobServer::recover`](crate::JobServer::recover) restore a crashed
//! queue — completed jobs replay from their journaled results, in-flight
//! jobs resume from their last checkpointed stage, and the deterministic
//! scheduler regrants the identical prefix.
//!
//! Records are one flat JSON object per line; `append` fsyncs at every
//! record boundary, so the write-ahead property holds across power loss,
//! not just process death. The reader tolerates a torn *final* line (a
//! crash mid-append) and nothing else: a malformed line followed by valid
//! records means the file was corrupted, not torn, and [`Journal::read`]
//! reports it as a typed [`JournalError::Corrupt`] instead of silently
//! dropping the valid suffix.
//!
//! The journal grows with server age; [`Journal::compact`] bounds it by
//! rewriting the file down to its *live* records (tmp → fsync → rename, so
//! a crash mid-compaction leaves either the old or the new journal, never a
//! mix): the winning `done` record per finished job, plus the current era's
//! admissions, grants and in-flight stage pointers. A `compact` marker
//! records the rewrite for audit.
//!
//! The codec is hand-rolled (the workspace takes no serde dependency): the
//! only values are `u64`s and strings, and result payloads are hex-encoded
//! so the JSON stays ASCII regardless of the job's `Wire` encoding.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Fsyncs a directory so a just-created or just-renamed entry inside it is
/// durable. POSIX only guarantees that `rename(2)` and `open(O_CREAT)` are
/// durable once the *containing directory* has been fsynced — fsyncing the
/// file alone persists its bytes but not the name that points at them, so a
/// crash could lose a "committed" file whose data is safely on disk.
pub(crate) fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// Why a journal could not be read: I/O trouble, or corruption that is not
/// the torn tail a crash mid-append legitimately leaves.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// A malformed line *followed by valid records* — the file was
    /// corrupted (or hand-edited), not torn by a crash. `line` is 1-based.
    Corrupt { line: usize, content: String },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt { line, content } => {
                write!(f, "journal corrupt at line {line} (not a torn tail): {content:?}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl From<JournalError> for std::io::Error {
    fn from(e: JournalError) -> Self {
        match e {
            JournalError::Io(e) => e,
            corrupt => std::io::Error::new(std::io::ErrorKind::InvalidData, corrupt.to_string()),
        }
    }
}

/// One journal line. The record grammar (see ARCHITECTURE.md):
///
/// ```text
/// {"type":"admit","job":J,"name":"..."}       job J entered the queue
/// {"type":"grant","job":J}                    quantum granted (write-ahead)
/// {"type":"stage","job":J,"stage":"...",
///  "key":"...","bytes":B}                     stage checkpoint committed
/// {"type":"done","job":J,"result":"hex...",
///  "checksum":C}                              job finished, result bytes
/// {"type":"recover"}                          a recovery run started here
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// Job `job` was admitted under `name`.
    Admit { job: u64, name: String },
    /// The scheduler granted job `job` its next quantum. Written *before*
    /// the grant is applied, so the journal's grant log is always a prefix
    /// of (never behind) the in-memory one.
    Grant { job: u64 },
    /// Job `job` committed the checkpoint `key` for `stage` (`bytes` of
    /// segment data) — the manifest pointer recovery resumes from.
    Stage {
        job: u64,
        stage: String,
        key: String,
        bytes: u64,
    },
    /// Job `job` completed with `result` (its `Wire`-encoded value) whose
    /// FNV-1a checksum is `checksum`.
    Done {
        job: u64,
        result: Vec<u8>,
        checksum: u64,
    },
    /// Marks the boundary where a recovery run reopened the journal.
    Recover,
    /// Marks an era compaction: the file was rewritten down to `kept` live
    /// records, dropping `dropped` dead ones. Informational — era semantics
    /// stay anchored on [`JournalRecord::Recover`] so the surviving grant
    /// log still reads as the current era's prefix.
    Compact { kept: u64, dropped: u64 },
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

impl JournalRecord {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            JournalRecord::Admit { job, name } => {
                format!(
                    "{{\"type\":\"admit\",\"job\":{job},\"name\":\"{}\"}}",
                    escape_json(name)
                )
            }
            JournalRecord::Grant { job } => format!("{{\"type\":\"grant\",\"job\":{job}}}"),
            JournalRecord::Stage {
                job,
                stage,
                key,
                bytes,
            } => format!(
                "{{\"type\":\"stage\",\"job\":{job},\"stage\":\"{}\",\"key\":\"{}\",\"bytes\":{bytes}}}",
                escape_json(stage),
                escape_json(key)
            ),
            JournalRecord::Done {
                job,
                result,
                checksum,
            } => format!(
                "{{\"type\":\"done\",\"job\":{job},\"result\":\"{}\",\"checksum\":{checksum}}}",
                hex_encode(result)
            ),
            JournalRecord::Recover => "{\"type\":\"recover\"}".to_string(),
            JournalRecord::Compact { kept, dropped } => {
                format!("{{\"type\":\"compact\",\"kept\":{kept},\"dropped\":{dropped}}}")
            }
        }
    }

    /// Parses one JSON line; `None` on any irregularity (the torn-tail
    /// tolerance of [`Journal::read`]).
    pub fn parse_line(line: &str) -> Option<JournalRecord> {
        let fields = parse_flat_object(line.trim())?;
        let get_str = |k: &str| {
            fields.iter().find_map(|(key, v)| match v {
                JsonValue::Str(s) if key == k => Some(s.clone()),
                _ => None,
            })
        };
        let get_num = |k: &str| {
            fields.iter().find_map(|(key, v)| match v {
                JsonValue::Num(n) if key == k => Some(*n),
                _ => None,
            })
        };
        match get_str("type")?.as_str() {
            "admit" => Some(JournalRecord::Admit {
                job: get_num("job")?,
                name: get_str("name")?,
            }),
            "grant" => Some(JournalRecord::Grant {
                job: get_num("job")?,
            }),
            "stage" => Some(JournalRecord::Stage {
                job: get_num("job")?,
                stage: get_str("stage")?,
                key: get_str("key")?,
                bytes: get_num("bytes")?,
            }),
            "done" => Some(JournalRecord::Done {
                job: get_num("job")?,
                result: hex_decode(&get_str("result")?)?,
                checksum: get_num("checksum")?,
            }),
            "recover" => Some(JournalRecord::Recover),
            "compact" => Some(JournalRecord::Compact {
                kept: get_num("kept")?,
                dropped: get_num("dropped")?,
            }),
            _ => None,
        }
    }
}

enum JsonValue {
    Str(String),
    Num(u64),
}

/// Minimal flat-object JSON parser: `{"k":"str","k2":123,...}` with string
/// and u64 values only — exactly the journal's record shapes. Anything
/// nested, non-ASCII-escaped or trailing is a parse failure.
fn parse_flat_object(s: &str) -> Option<Vec<(String, JsonValue)>> {
    let body = s.strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let mut rest = body;
    loop {
        rest = rest.trim_start();
        if rest.is_empty() {
            break;
        }
        let (key, after_key) = parse_json_string(rest)?;
        rest = after_key.trim_start().strip_prefix(':')?.trim_start();
        if rest.starts_with('"') {
            let (value, after) = parse_json_string(rest)?;
            fields.push((key, JsonValue::Str(value)));
            rest = after;
        } else {
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            if end == 0 {
                return None;
            }
            fields.push((key, JsonValue::Num(rest[..end].parse().ok()?)));
            rest = &rest[end..];
        }
        rest = rest.trim_start();
        match rest.strip_prefix(',') {
            Some(after) => rest = after,
            None if rest.is_empty() => break,
            None => return None,
        }
    }
    Some(fields)
}

/// Parses a leading JSON string literal, returning (decoded, remainder).
fn parse_json_string(s: &str) -> Option<(String, &str)> {
    let mut chars = s.strip_prefix('"')?.char_indices();
    let inner = &s[1..];
    let mut out = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &inner[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let (start, _) = chars.next()?;
                    chars.next()?;
                    chars.next()?;
                    let (end, last) = chars.next()?;
                    let code =
                        u32::from_str_radix(&inner[start..end + last.len_utf8()], 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// An append-only journal file with fsync-per-record durability.
#[derive(Debug)]
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
    records: AtomicU64,
}

impl Journal {
    /// Creates (truncating) a fresh journal at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let file = File::options()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        // Make the journal's *name* durable, not just its (empty) contents:
        // per POSIX, a file created inside a directory survives a crash only
        // once the directory itself has been fsynced.
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fsync_dir(parent)?;
        }
        Ok(Journal {
            file: Mutex::new(file),
            path,
            records: AtomicU64::new(0),
        })
    }

    /// Reopens an existing journal for appending (the recovery path).
    pub fn open_append(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let file = File::options().append(true).open(&path)?;
        Ok(Journal {
            file: Mutex::new(file),
            path,
            records: AtomicU64::new(0),
        })
    }

    /// Appends one record and fsyncs — the record boundary is the
    /// durability boundary.
    pub fn append(&self, record: &JournalRecord) -> std::io::Result<()> {
        let line = record.to_line();
        let mut file = self.file.lock().expect("journal lock poisoned");
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        self.records.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Records appended through this handle (the `journal_records` counter).
    pub fn records_appended(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Reads all committed records from `path`. A torn *final* line (crash
    /// mid-append) silently ends the log; everything before it is trusted
    /// because every complete line was fsynced before the next began. A
    /// malformed line anywhere *before* the tail cannot be a torn append —
    /// valid fsynced records follow it — so it is surfaced as
    /// [`JournalError::Corrupt`] instead of silently truncating the log and
    /// dropping committed results.
    pub fn read(path: impl AsRef<Path>) -> Result<Vec<JournalRecord>, JournalError> {
        let text = std::fs::read_to_string(path)?;
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .filter(|(_, line)| !line.trim().is_empty())
            .collect();
        let mut records = Vec::with_capacity(lines.len());
        for (pos, &(line_no, line)) in lines.iter().enumerate() {
            match JournalRecord::parse_line(line) {
                Some(rec) => records.push(rec),
                None if pos + 1 == lines.len() => break, // torn tail: tolerated
                None => {
                    return Err(JournalError::Corrupt {
                        line: line_no + 1,
                        content: line.chars().take(120).collect(),
                    })
                }
            }
        }
        Ok(records)
    }

    /// Compacts the journal at `path` in place (the offline
    /// `asj journal compact` entry point): reads the log, computes the live
    /// set via [`compact_records`], and rewrites the file tmp → fsync →
    /// rename → dir fsync. A crash at any point leaves either the old
    /// journal (plus an inert `.tmp` that the next compaction sweeps) or the
    /// complete new one — never a partial mix. Refuses (via
    /// [`JournalError::Corrupt`]) to compact a mid-file-corrupt journal:
    /// rewriting would launder the corruption into silence.
    pub fn compact_file(path: impl AsRef<Path>) -> Result<CompactStats, JournalError> {
        let path = path.as_ref();
        let bytes_before = std::fs::metadata(path).map_err(JournalError::Io)?.len();
        let records = Self::read(path)?;
        let (live, dropped) = compact_records(&records);
        let mut text = String::new();
        for rec in &live {
            text.push_str(&rec.to_line());
            text.push('\n');
        }

        let tmp = path.with_extension("compact.tmp");
        let _ = std::fs::remove_file(&tmp); // stale debris from a crashed compaction
        let mut file = File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        // The rename is durable only once the directory entry is — see
        // `fsync_dir` for the POSIX rationale.
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fsync_dir(parent)?;
        }
        Ok(CompactStats {
            kept: live.len() as u64,
            dropped,
            bytes_before,
            bytes_after: text.len() as u64,
        })
    }

    /// In-place compaction for a *live* journal handle (`--compact-every`):
    /// holds the append lock across the rewrite so no record can land
    /// between read and rename, then reopens the handle — the rename
    /// unlinked the inode the old descriptor pointed at, so appending
    /// through it would write into the void.
    pub fn compact(&self) -> Result<CompactStats, JournalError> {
        let mut file = self.file.lock().expect("journal lock poisoned");
        let stats = Self::compact_file(&self.path)?;
        *file = File::options().append(true).open(&self.path)?;
        Ok(stats)
    }
}

/// How much a compaction shrank the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Live records written to the compacted file (marker included).
    pub kept: u64,
    /// Dead records dropped.
    pub dropped: u64,
    /// File size before, in bytes.
    pub bytes_before: u64,
    /// File size after, in bytes.
    pub bytes_after: u64,
}

/// The liveness rule behind journal compaction. A record survives iff
/// recovery could still act on it:
///
/// * the winning `done` record per job — the *last* one whose FNV checksum
///   verifies (idempotent across eras; invalid ones are dead weight either
///   way) — hoisted to the front, mirroring how `recover` scans `done`
///   records era-independently;
/// * every record of the *current era* (after the last `recover` marker)
///   except `done` records already hoisted and `stage` pointers of finished
///   jobs, whose checkpoints the retention GC has already unlinked.
///
/// Earlier eras' grants/admits/stages are superseded — recovery never reads
/// them — and old `recover`/`compact` markers are dropped: the compacted
/// file *is* one era, so its grant log reads as the current era's prefix
/// without any marker. Returns the live records (led by a fresh `compact`
/// marker) and the dropped-record count.
pub fn compact_records(records: &[JournalRecord]) -> (Vec<JournalRecord>, u64) {
    let era_start = records
        .iter()
        .rposition(|r| matches!(r, JournalRecord::Recover))
        .map_or(0, |i| i + 1);
    // Winning done record per job, in ascending job order for determinism.
    let mut done: std::collections::BTreeMap<u64, &JournalRecord> = std::collections::BTreeMap::new();
    for rec in records {
        if let JournalRecord::Done {
            job,
            result,
            checksum,
        } = rec
        {
            if crate::checkpoint::fnv1a(result) == *checksum {
                done.insert(*job, rec);
            }
        }
    }
    let mut live: Vec<JournalRecord> = Vec::with_capacity(done.len() + records.len() - era_start);
    live.extend(done.values().map(|&r| r.clone()));
    for rec in &records[era_start..] {
        match rec {
            JournalRecord::Done { .. } => {} // hoisted (or invalid: dead)
            JournalRecord::Compact { .. } => {} // a fresh marker replaces it
            JournalRecord::Stage { job, .. } if done.contains_key(job) => {}
            rec => live.push(rec.clone()),
        }
    }
    let dropped = (records.len() - live.len()) as u64;
    live.insert(
        0,
        JournalRecord::Compact {
            kept: live.len() as u64,
            dropped,
        },
    );
    (live, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn test_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("asj-journal-{tag}-{}.jsonl", std::process::id()))
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Admit {
                job: 0,
                name: "alpha \"quoted\" \\slash\u{1}".to_string(),
            },
            JournalRecord::Grant { job: 0 },
            JournalRecord::Stage {
                job: 0,
                stage: "job:0:shuffle".to_string(),
                key: "job0-shuffle-0".to_string(),
                bytes: 4096,
            },
            JournalRecord::Done {
                job: 0,
                result: vec![0x00, 0xFF, 0x10, 0xAB],
                checksum: 0xDEAD_BEEF,
            },
            JournalRecord::Recover,
            JournalRecord::Compact {
                kept: 12,
                dropped: 340,
            },
        ]
    }

    /// Checksummed `done` record for `job` carrying `byte` as its result.
    fn done(job: u64, byte: u8) -> JournalRecord {
        JournalRecord::Done {
            job,
            result: vec![byte],
            checksum: crate::checkpoint::fnv1a(&[byte]),
        }
    }

    #[test]
    fn records_round_trip_through_the_line_codec() {
        for rec in sample_records() {
            let line = rec.to_line();
            let back = JournalRecord::parse_line(&line)
                .unwrap_or_else(|| panic!("line must parse: {line}"));
            assert_eq!(back, rec, "{line}");
        }
    }

    #[test]
    fn journal_appends_and_reads_back() {
        let path = test_path("roundtrip");
        let journal = Journal::create(&path).expect("create");
        for rec in sample_records() {
            journal.append(&rec).expect("append");
        }
        assert_eq!(journal.records_appended(), 6);
        let back = Journal::read(&path).expect("read");
        assert_eq!(back, sample_records());
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn torn_tail_ends_the_log_silently() {
        let path = test_path("torn");
        let journal = Journal::create(&path).expect("create");
        journal.append(&JournalRecord::Grant { job: 1 }).expect("a");
        journal.append(&JournalRecord::Grant { job: 2 }).expect("b");
        drop(journal);
        // Simulate a crash mid-append: half a record at the tail.
        let mut bytes = std::fs::read(&path).expect("read bytes");
        bytes.extend_from_slice(b"{\"type\":\"done\",\"job\":3,\"res");
        std::fs::write(&path, &bytes).expect("tear");
        let back = Journal::read(&path).expect("read");
        assert_eq!(
            back,
            vec![
                JournalRecord::Grant { job: 1 },
                JournalRecord::Grant { job: 2 }
            ],
            "complete prefix survives, torn tail is dropped"
        );
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn open_append_extends_an_existing_journal() {
        let path = test_path("append");
        Journal::create(&path)
            .expect("create")
            .append(&JournalRecord::Grant { job: 7 })
            .expect("first");
        let reopened = Journal::open_append(&path).expect("reopen");
        reopened.append(&JournalRecord::Recover).expect("second");
        let back = Journal::read(&path).expect("read");
        assert_eq!(
            back,
            vec![JournalRecord::Grant { job: 7 }, JournalRecord::Recover]
        );
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn mid_file_corruption_is_a_typed_error_not_silent_truncation() {
        let path = test_path("midfile");
        let journal = Journal::create(&path).expect("create");
        journal.append(&JournalRecord::Grant { job: 1 }).expect("a");
        journal.append(&done(1, 0xAB)).expect("b");
        drop(journal);
        // Corrupt the FIRST line; the valid done record after it proves
        // this is not a torn tail.
        let text = std::fs::read_to_string(&path).expect("read");
        let mut lines: Vec<&str> = text.lines().collect();
        lines[0] = "{\"type\":\"gra";
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).expect("corrupt");
        match Journal::read(&path) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected Corrupt error, got {other:?}"),
        }
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn compaction_keeps_only_live_records_and_is_atomic() {
        let path = test_path("compact");
        let journal = Journal::create(&path).expect("create");
        // Era 0: job 0 finishes (admit/grant/stage now dead), job 1 starts.
        for rec in [
            JournalRecord::Admit {
                job: 0,
                name: "a".into(),
            },
            JournalRecord::Grant { job: 0 },
            JournalRecord::Stage {
                job: 0,
                stage: "shuffle".into(),
                key: "job0-shuffle-0".into(),
                bytes: 64,
            },
            done(0, 0x11),
            JournalRecord::Admit {
                job: 1,
                name: "b".into(),
            },
            JournalRecord::Grant { job: 1 },
            // Era 1 (recovery): one grant and an in-flight stage pointer.
            JournalRecord::Recover,
            JournalRecord::Grant { job: 1 },
            JournalRecord::Stage {
                job: 1,
                stage: "shuffle".into(),
                key: "job1-shuffle-0".into(),
                bytes: 32,
            },
        ] {
            journal.append(&rec).expect("append");
        }
        let stats = journal.compact().expect("compact");
        assert!(stats.bytes_after < stats.bytes_before);
        let back = Journal::read(&path).expect("read compacted");
        assert_eq!(
            back,
            vec![
                JournalRecord::Compact {
                    kept: 3,
                    dropped: 6
                },
                done(0, 0x11),
                JournalRecord::Grant { job: 1 },
                JournalRecord::Stage {
                    job: 1,
                    stage: "shuffle".into(),
                    key: "job1-shuffle-0".into(),
                    bytes: 32,
                },
            ],
            "done hoisted, current era kept, earlier era and done-job stage dropped"
        );
        // The compacted file has no recover marker, so the surviving grant
        // log *is* the current era's — exactly what recovery expects.
        // The reopened handle must still append to the new inode.
        journal.append(&JournalRecord::Grant { job: 1 }).expect("post-compact append");
        let back = Journal::read(&path).expect("re-read");
        assert_eq!(back.last(), Some(&JournalRecord::Grant { job: 1 }));
        assert!(
            !path.with_extension("compact.tmp").exists(),
            "no tmp debris after a clean compaction"
        );
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn compaction_refuses_a_mid_file_corrupt_journal() {
        let path = test_path("compact-corrupt");
        let journal = Journal::create(&path).expect("create");
        journal.append(&JournalRecord::Grant { job: 0 }).expect("a");
        journal.append(&done(0, 0x22)).expect("b");
        drop(journal);
        let text = std::fs::read_to_string(&path).expect("read");
        let corrupted = text.replacen("grant", "gr@nt", 1);
        std::fs::write(&path, corrupted).expect("corrupt");
        assert!(
            matches!(
                Journal::compact_file(&path),
                Err(JournalError::Corrupt { .. })
            ),
            "compaction must not launder corruption"
        );
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn invalid_done_records_are_dropped_by_compaction() {
        let records = vec![
            JournalRecord::Done {
                job: 0,
                result: vec![0x01],
                checksum: 0, // wrong: recovery would ignore it
            },
            JournalRecord::Grant { job: 0 },
        ];
        let (live, dropped) = compact_records(&records);
        assert_eq!(dropped, 1);
        assert_eq!(
            live,
            vec![
                JournalRecord::Compact {
                    kept: 1,
                    dropped: 1
                },
                JournalRecord::Grant { job: 0 },
            ]
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "not json",
            "{\"type\":\"launch\"}",
            "{\"type\":\"grant\"}",
            "{\"type\":\"grant\",\"job\":-1}",
            "{\"type\":\"done\",\"job\":1,\"result\":\"xyz\",\"checksum\":0}",
            "{\"type\":\"grant\",\"job\":1} trailing",
        ] {
            assert!(JournalRecord::parse_line(bad).is_none(), "{bad:?}");
        }
    }
}
