//! Crash-consistent job-server journal: an append-only JSONL write-ahead
//! log of admissions, grants, stage completions and job completions.
//!
//! The journal is the second durability layer on top of stage checkpoints
//! (`checkpoint.rs`): the checkpoint store makes *stage outputs* durable,
//! the journal makes the *server's decisions* durable, and together they let
//! [`JobServer::recover`](crate::JobServer::recover) restore a crashed
//! queue — completed jobs replay from their journaled results, in-flight
//! jobs resume from their last checkpointed stage, and the deterministic
//! scheduler regrants the identical prefix.
//!
//! Records are one flat JSON object per line; `append` fsyncs at every
//! record boundary, so the write-ahead property holds across power loss,
//! not just process death. The reader is tolerant of a torn final line
//! (a crash mid-append): parsing stops at the first malformed line and
//! everything before it is trusted.
//!
//! The codec is hand-rolled (the workspace takes no serde dependency): the
//! only values are `u64`s and strings, and result payloads are hex-encoded
//! so the JSON stays ASCII regardless of the job's `Wire` encoding.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One journal line. The record grammar (see ARCHITECTURE.md):
///
/// ```text
/// {"type":"admit","job":J,"name":"..."}       job J entered the queue
/// {"type":"grant","job":J}                    quantum granted (write-ahead)
/// {"type":"stage","job":J,"stage":"...",
///  "key":"...","bytes":B}                     stage checkpoint committed
/// {"type":"done","job":J,"result":"hex...",
///  "checksum":C}                              job finished, result bytes
/// {"type":"recover"}                          a recovery run started here
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// Job `job` was admitted under `name`.
    Admit { job: u64, name: String },
    /// The scheduler granted job `job` its next quantum. Written *before*
    /// the grant is applied, so the journal's grant log is always a prefix
    /// of (never behind) the in-memory one.
    Grant { job: u64 },
    /// Job `job` committed the checkpoint `key` for `stage` (`bytes` of
    /// segment data) — the manifest pointer recovery resumes from.
    Stage {
        job: u64,
        stage: String,
        key: String,
        bytes: u64,
    },
    /// Job `job` completed with `result` (its `Wire`-encoded value) whose
    /// FNV-1a checksum is `checksum`.
    Done {
        job: u64,
        result: Vec<u8>,
        checksum: u64,
    },
    /// Marks the boundary where a recovery run reopened the journal.
    Recover,
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

impl JournalRecord {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            JournalRecord::Admit { job, name } => {
                format!(
                    "{{\"type\":\"admit\",\"job\":{job},\"name\":\"{}\"}}",
                    escape_json(name)
                )
            }
            JournalRecord::Grant { job } => format!("{{\"type\":\"grant\",\"job\":{job}}}"),
            JournalRecord::Stage {
                job,
                stage,
                key,
                bytes,
            } => format!(
                "{{\"type\":\"stage\",\"job\":{job},\"stage\":\"{}\",\"key\":\"{}\",\"bytes\":{bytes}}}",
                escape_json(stage),
                escape_json(key)
            ),
            JournalRecord::Done {
                job,
                result,
                checksum,
            } => format!(
                "{{\"type\":\"done\",\"job\":{job},\"result\":\"{}\",\"checksum\":{checksum}}}",
                hex_encode(result)
            ),
            JournalRecord::Recover => "{\"type\":\"recover\"}".to_string(),
        }
    }

    /// Parses one JSON line; `None` on any irregularity (the torn-tail
    /// tolerance of [`Journal::read`]).
    pub fn parse_line(line: &str) -> Option<JournalRecord> {
        let fields = parse_flat_object(line.trim())?;
        let get_str = |k: &str| {
            fields.iter().find_map(|(key, v)| match v {
                JsonValue::Str(s) if key == k => Some(s.clone()),
                _ => None,
            })
        };
        let get_num = |k: &str| {
            fields.iter().find_map(|(key, v)| match v {
                JsonValue::Num(n) if key == k => Some(*n),
                _ => None,
            })
        };
        match get_str("type")?.as_str() {
            "admit" => Some(JournalRecord::Admit {
                job: get_num("job")?,
                name: get_str("name")?,
            }),
            "grant" => Some(JournalRecord::Grant {
                job: get_num("job")?,
            }),
            "stage" => Some(JournalRecord::Stage {
                job: get_num("job")?,
                stage: get_str("stage")?,
                key: get_str("key")?,
                bytes: get_num("bytes")?,
            }),
            "done" => Some(JournalRecord::Done {
                job: get_num("job")?,
                result: hex_decode(&get_str("result")?)?,
                checksum: get_num("checksum")?,
            }),
            "recover" => Some(JournalRecord::Recover),
            _ => None,
        }
    }
}

enum JsonValue {
    Str(String),
    Num(u64),
}

/// Minimal flat-object JSON parser: `{"k":"str","k2":123,...}` with string
/// and u64 values only — exactly the journal's record shapes. Anything
/// nested, non-ASCII-escaped or trailing is a parse failure.
fn parse_flat_object(s: &str) -> Option<Vec<(String, JsonValue)>> {
    let body = s.strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let mut rest = body;
    loop {
        rest = rest.trim_start();
        if rest.is_empty() {
            break;
        }
        let (key, after_key) = parse_json_string(rest)?;
        rest = after_key.trim_start().strip_prefix(':')?.trim_start();
        if rest.starts_with('"') {
            let (value, after) = parse_json_string(rest)?;
            fields.push((key, JsonValue::Str(value)));
            rest = after;
        } else {
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            if end == 0 {
                return None;
            }
            fields.push((key, JsonValue::Num(rest[..end].parse().ok()?)));
            rest = &rest[end..];
        }
        rest = rest.trim_start();
        match rest.strip_prefix(',') {
            Some(after) => rest = after,
            None if rest.is_empty() => break,
            None => return None,
        }
    }
    Some(fields)
}

/// Parses a leading JSON string literal, returning (decoded, remainder).
fn parse_json_string(s: &str) -> Option<(String, &str)> {
    let mut chars = s.strip_prefix('"')?.char_indices();
    let inner = &s[1..];
    let mut out = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &inner[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let (start, _) = chars.next()?;
                    chars.next()?;
                    chars.next()?;
                    let (end, last) = chars.next()?;
                    let code =
                        u32::from_str_radix(&inner[start..end + last.len_utf8()], 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// An append-only journal file with fsync-per-record durability.
#[derive(Debug)]
pub struct Journal {
    file: Mutex<File>,
    records: AtomicU64,
}

impl Journal {
    /// Creates (truncating) a fresh journal at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let file = File::options()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Journal {
            file: Mutex::new(file),
            records: AtomicU64::new(0),
        })
    }

    /// Reopens an existing journal for appending (the recovery path).
    pub fn open_append(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let file = File::options().append(true).open(path)?;
        Ok(Journal {
            file: Mutex::new(file),
            records: AtomicU64::new(0),
        })
    }

    /// Appends one record and fsyncs — the record boundary is the
    /// durability boundary.
    pub fn append(&self, record: &JournalRecord) -> std::io::Result<()> {
        let line = record.to_line();
        let mut file = self.file.lock().expect("journal lock poisoned");
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        self.records.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Records appended through this handle (the `journal_records` counter).
    pub fn records_appended(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Reads all committed records from `path`. A torn final line (crash
    /// mid-append) silently ends the log; everything before it is trusted
    /// because every complete line was fsynced before the next began.
    pub fn read(path: impl AsRef<Path>) -> std::io::Result<Vec<JournalRecord>> {
        let text = std::fs::read_to_string(path)?;
        let mut records = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match JournalRecord::parse_line(line) {
                Some(rec) => records.push(rec),
                None => break,
            }
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn test_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("asj-journal-{tag}-{}.jsonl", std::process::id()))
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Admit {
                job: 0,
                name: "alpha \"quoted\" \\slash\u{1}".to_string(),
            },
            JournalRecord::Grant { job: 0 },
            JournalRecord::Stage {
                job: 0,
                stage: "job:0:shuffle".to_string(),
                key: "job0-shuffle-0".to_string(),
                bytes: 4096,
            },
            JournalRecord::Done {
                job: 0,
                result: vec![0x00, 0xFF, 0x10, 0xAB],
                checksum: 0xDEAD_BEEF,
            },
            JournalRecord::Recover,
        ]
    }

    #[test]
    fn records_round_trip_through_the_line_codec() {
        for rec in sample_records() {
            let line = rec.to_line();
            let back = JournalRecord::parse_line(&line)
                .unwrap_or_else(|| panic!("line must parse: {line}"));
            assert_eq!(back, rec, "{line}");
        }
    }

    #[test]
    fn journal_appends_and_reads_back() {
        let path = test_path("roundtrip");
        let journal = Journal::create(&path).expect("create");
        for rec in sample_records() {
            journal.append(&rec).expect("append");
        }
        assert_eq!(journal.records_appended(), 5);
        let back = Journal::read(&path).expect("read");
        assert_eq!(back, sample_records());
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn torn_tail_ends_the_log_silently() {
        let path = test_path("torn");
        let journal = Journal::create(&path).expect("create");
        journal.append(&JournalRecord::Grant { job: 1 }).expect("a");
        journal.append(&JournalRecord::Grant { job: 2 }).expect("b");
        drop(journal);
        // Simulate a crash mid-append: half a record at the tail.
        let mut bytes = std::fs::read(&path).expect("read bytes");
        bytes.extend_from_slice(b"{\"type\":\"done\",\"job\":3,\"res");
        std::fs::write(&path, &bytes).expect("tear");
        let back = Journal::read(&path).expect("read");
        assert_eq!(
            back,
            vec![
                JournalRecord::Grant { job: 1 },
                JournalRecord::Grant { job: 2 }
            ],
            "complete prefix survives, torn tail is dropped"
        );
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn open_append_extends_an_existing_journal() {
        let path = test_path("append");
        Journal::create(&path)
            .expect("create")
            .append(&JournalRecord::Grant { job: 7 })
            .expect("first");
        let reopened = Journal::open_append(&path).expect("reopen");
        reopened.append(&JournalRecord::Recover).expect("second");
        let back = Journal::read(&path).expect("read");
        assert_eq!(
            back,
            vec![JournalRecord::Grant { job: 7 }, JournalRecord::Recover]
        );
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "not json",
            "{\"type\":\"launch\"}",
            "{\"type\":\"grant\"}",
            "{\"type\":\"grant\",\"job\":-1}",
            "{\"type\":\"done\",\"job\":1,\"result\":\"xyz\",\"checksum\":0}",
            "{\"type\":\"grant\",\"job\":1} trailing",
        ] {
            assert!(JournalRecord::parse_line(bad).is_none(), "{bad:?}");
        }
    }
}
