use crate::cluster::{Cluster, ShuffleMode};
use crate::fault::JobError;
use crate::memory::{ChargeGuard, SpillSegment, SpillWriter};
use crate::metrics::{ExecStats, ShuffleStats};
use crate::partitioner::Partitioner;
use crate::wire::Wire;
use asj_obs::{Attrs, Lane};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A partitioned, in-memory collection — the engine's RDD analog.
///
/// Partition `i` lives on simulated node [`Cluster::node_of_partition`]`(i)`.
/// All transformations execute one task per partition on the cluster pool and
/// report per-node [`ExecStats`].
///
/// # Example
///
/// ```
/// use asj_engine::{Cluster, ClusterConfig, Dataset, HashPartitioner};
///
/// let cluster = Cluster::new(ClusterConfig::new(4));
/// let data = Dataset::from_vec((0..1000u64).collect(), 8);
/// let (evens, _) = data.filter(&cluster, |x| x % 2 == 0);
/// let (keyed, _) = evens.flat_map_to_pairs(&cluster, |x, out| out.push((x % 10, x)));
/// let (shuffled, stats, _) = keyed.shuffle(&cluster, &HashPartitioner::new(16));
/// assert_eq!(shuffled.len(), 500);
/// assert!(stats.remote_bytes + stats.local_bytes > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Dataset<T> {
    parts: Vec<Vec<T>>,
}

// Elements are `Sync + Clone` (not just `Send`) because the fault-tolerant
// executor may re-run a partition task on another node — the engine's analog
// of Spark recomputing a partition from lineage.
impl<T: Send + Sync + Clone> Dataset<T> {
    /// Splits `data` into `partitions` near-equal chunks (like reading a file
    /// into fixed-size input splits).
    pub fn from_vec(data: Vec<T>, partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        let n = data.len();
        let mut parts: Vec<Vec<T>> = (0..partitions).map(|_| Vec::new()).collect();
        let base = n / partitions;
        let extra = n % partitions;
        let mut it = data.into_iter();
        for (i, part) in parts.iter_mut().enumerate() {
            let take = base + usize::from(i < extra);
            part.reserve_exact(take);
            part.extend(it.by_ref().take(take));
        }
        Dataset { parts }
    }

    /// Wraps pre-built partitions.
    pub fn from_partitions(parts: Vec<Vec<T>>) -> Self {
        assert!(!parts.is_empty(), "need at least one partition");
        Dataset { parts }
    }

    /// Builds a dataset by running one generator task per partition in
    /// parallel (used by the synthetic workload generators).
    pub fn generate<F>(cluster: &Cluster, partitions: usize, f: F) -> (Self, ExecStats)
    where
        F: Fn(usize) -> Vec<T> + Sync,
    {
        let (parts, stats) = cluster.run_partitioned_stage(
            "generate",
            (0..partitions).collect::<Vec<_>>(),
            |_, i| f(i),
        );
        (Dataset { parts }, stats)
    }

    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Total records across partitions.
    pub fn len(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(Vec::is_empty)
    }

    /// Iterates over all records (driver-side).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.parts.iter().flatten()
    }

    /// Concatenates everything on the driver.
    pub fn collect(self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.parts.iter().map(Vec::len).sum());
        for p in self.parts {
            out.extend(p);
        }
        out
    }

    pub fn partitions(&self) -> &[Vec<T>] {
        &self.parts
    }

    /// Consumes the dataset into its raw partitions.
    pub fn into_partitions(self) -> Vec<Vec<T>> {
        self.parts
    }

    /// Element-wise transformation (Spark `map`).
    pub fn map<U, F>(self, cluster: &Cluster, f: F) -> (Dataset<U>, ExecStats)
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        match self.try_map(cluster, f) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Dataset::map`]: a panic in `f` (past the retry budget, if a
    /// fault context is attached) becomes a [`JobError`].
    pub fn try_map<U, F>(self, cluster: &Cluster, f: F) -> Result<(Dataset<U>, ExecStats), JobError>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let (parts, stats) = cluster.try_run_partitioned_stage("map", self.parts, |_, part| {
            part.into_iter().map(&f).collect()
        })?;
        Ok((Dataset { parts }, stats))
    }

    /// Keeps only records satisfying `pred` (Spark `filter`).
    pub fn filter<F>(self, cluster: &Cluster, pred: F) -> (Dataset<T>, ExecStats)
    where
        F: Fn(&T) -> bool + Sync,
    {
        match self.try_filter(cluster, pred) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Dataset::filter`]; see [`Dataset::try_map`].
    pub fn try_filter<F>(
        self,
        cluster: &Cluster,
        pred: F,
    ) -> Result<(Dataset<T>, ExecStats), JobError>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let (parts, stats) =
            cluster.try_run_partitioned_stage("filter", self.parts, |_, part: Vec<T>| {
                part.into_iter().filter(|t| pred(t)).collect::<Vec<T>>()
            })?;
        Ok((Dataset { parts }, stats))
    }

    /// Concatenates two datasets partition-wise (Spark `union`): the result
    /// has the partitions of `self` followed by those of `other`.
    pub fn union(mut self, other: Dataset<T>) -> Dataset<T> {
        self.parts.extend(other.parts);
        self
    }

    /// Bernoulli sample of every partition, gathered on the driver — the
    /// `sample(φ).forEach(...)` step of Algorithm 5. Deterministic for a
    /// given `seed`.
    pub fn sample(&self, cluster: &Cluster, fraction: f64, seed: u64) -> (Vec<T>, ExecStats) {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let refs: Vec<&Vec<T>> = self.parts.iter().collect();
        let (sampled, stats) = cluster.run_partitioned_stage("sample", refs, |idx, part| {
            let mut rng = SmallRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0xA24B_AED4));
            part.iter()
                .filter(|_| rng.gen_bool(fraction))
                .cloned()
                .collect::<Vec<T>>()
        });
        (sampled.into_iter().flatten().collect(), stats)
    }

    /// Expands every record into zero or more key–value pairs (Spark
    /// `flatMapToPair`): the spatial-mapping step that replicates a tuple
    /// once per assigned cell id.
    pub fn flat_map_to_pairs<K, V, F>(
        self,
        cluster: &Cluster,
        f: F,
    ) -> (KeyedDataset<K, V>, ExecStats)
    where
        K: Send,
        V: Send,
        F: Fn(T, &mut Vec<(K, V)>) + Sync,
    {
        let (parts, stats) =
            cluster.run_partitioned_stage("flat_map_to_pairs", self.parts, |_, part| {
                let mut out = Vec::with_capacity(part.len());
                for rec in part {
                    f(rec, &mut out);
                }
                out
            });
        (KeyedDataset { parts }, stats)
    }
}

/// The zipped per-partition inputs of a co-grouped join.
type CogroupTasks<K, V, V2> = Vec<(Vec<(K, V)>, Vec<(K, V2)>)>;

/// One radix map task's attempt-local output: in-memory buckets, byte
/// metering, the attempt's spill segment (if any target was denied memory)
/// and the charge ledger the driver settles at commit. Everything here is
/// owned per *attempt* — dropping a loser releases its charges and deletes
/// its spill file.
struct RadixMapOut<K, V> {
    buckets: Vec<Vec<(K, V)>>,
    shuffle: ShuffleStats,
    spill: Option<SpillSegment>,
    spilled_bytes: u64,
    /// Held for its Drop: the attempt's admitted charges release when the
    /// committed result (or a discarded loser) is dropped.
    _charges: ChargeGuard,
}

/// A partitioned collection of key–value pairs (Spark `PairRDD`).
#[derive(Debug, Clone)]
pub struct KeyedDataset<K, V> {
    parts: Vec<Vec<(K, V)>>,
}

// `'static` because shuffle buckets are recycled through the cluster's
// type-erased `BufferPool`, which shelves buffers by `TypeId`.
impl<K, V> KeyedDataset<K, V>
where
    K: Wire + Send + Sync + Copy + 'static,
    V: Wire + Send + Sync + Clone + 'static,
{
    pub fn from_partitions(parts: Vec<Vec<(K, V)>>) -> Self {
        assert!(!parts.is_empty(), "need at least one partition");
        KeyedDataset { parts }
    }

    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    pub fn len(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(Vec::is_empty)
    }

    pub fn partitions(&self) -> &[Vec<(K, V)>] {
        &self.parts
    }

    /// Consumes the dataset into its raw partitions.
    pub fn into_partitions(self) -> Vec<Vec<(K, V)>> {
        self.parts
    }

    /// Repartitions by key. Every record is charged its [`Wire`]-encoded size
    /// against the simulated network: bytes are *remote* when the source and
    /// target partitions live on different nodes, *local* otherwise — Spark's
    /// shuffle remote reads versus local reads.
    pub fn shuffle<P>(
        self,
        cluster: &Cluster,
        partitioner: &P,
    ) -> (KeyedDataset<K, V>, ShuffleStats, ExecStats)
    where
        P: Partitioner<K> + ?Sized,
    {
        self.shuffle_stage(cluster, partitioner, "shuffle")
    }

    /// [`KeyedDataset::shuffle`] with a stage name: task spans, the
    /// per-partition byte events and the mirrored `remote_bytes` /
    /// `local_bytes` / `records` counters are all recorded under `stage`.
    pub fn shuffle_stage<P>(
        self,
        cluster: &Cluster,
        partitioner: &P,
        stage: &str,
    ) -> (KeyedDataset<K, V>, ShuffleStats, ExecStats)
    where
        P: Partitioner<K> + ?Sized,
    {
        match self.try_shuffle_stage(cluster, partitioner, stage) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`KeyedDataset::shuffle_stage`]: task failures past the retry
    /// budget surface as a [`JobError`] instead of a panic.
    ///
    /// The materialization strategy is the cluster's [`ShuffleMode`]: the
    /// radix scatter through pooled buckets by default, or the legacy
    /// tuple-`Vec` path when pinned for A/B comparison. Both produce
    /// byte-identical partitions and [`ShuffleStats`].
    pub fn try_shuffle_stage<P>(
        self,
        cluster: &Cluster,
        partitioner: &P,
        stage: &str,
    ) -> Result<(KeyedDataset<K, V>, ShuffleStats, ExecStats), JobError>
    where
        P: Partitioner<K> + ?Sized,
    {
        // Checkpoint fast path: when the cluster carries a checkpoint store,
        // the Nth occurrence of `stage` in this scope may already be durable
        // (a same-process stage retry, or a recovered server replaying a
        // deterministic job body). A hit replays the persisted partitions in
        // zero simulated time — only the failed/unfinished stages recompute.
        if let Some(ck) = cluster.checkpoint() {
            let key = ck.next_key(stage);
            match ck.store().load::<K, V>(&key) {
                Ok(Some((parts, shuffle))) if !parts.is_empty() => {
                    let stats = cluster.note_recovered_stage();
                    ck.store().note_recovered();
                    cluster.recorder().counter_add(stage, "stages_recovered", 1);
                    return Ok((KeyedDataset { parts }, shuffle, stats));
                }
                // Miss (or a zero-partition checkpoint, which from_partitions
                // could not rebuild): recompute below and save.
                Ok(_) => {}
                // Checkpoint I/O trouble degrades to recomputation.
                Err(_) => {}
            }
            let out = match cluster.shuffle_mode() {
                ShuffleMode::Radix => self.radix_shuffle_stage(cluster, partitioner, stage),
                ShuffleMode::Legacy => self.legacy_shuffle_stage(cluster, partitioner, stage),
            }?;
            // A failed save never fails the stage: the results are correct
            // in memory, the stage just stays non-resumable.
            if let Ok(bytes) = ck.store().save(&key, out.0.partitions(), &out.1) {
                cluster
                    .recorder()
                    .counter_add(stage, "checkpoint_bytes", bytes);
                ck.journal_stage_complete(stage, &key, bytes);
            }
            return Ok(out);
        }
        match cluster.shuffle_mode() {
            ShuffleMode::Radix => self.radix_shuffle_stage(cluster, partitioner, stage),
            ShuffleMode::Legacy => self.legacy_shuffle_stage(cluster, partitioner, stage),
        }
    }

    /// Radix materialization: each map task routes its partition in two
    /// passes — pass 1 computes every record's target once, sizing it once
    /// (`encoded_size`) for *both* the node-level remote/local split and the
    /// per-target partition accounting, and builds a per-target histogram;
    /// pass 2 scatters records into exactly-sized buckets checked out of the
    /// cluster's [`BufferPool`](crate::BufferPool). The reduce side stitches
    /// buckets with bulk `Vec::append` moves (no per-record work) and
    /// recycles every emptied bucket into the pool for the next stage.
    ///
    /// Memory governance: between the passes every non-empty target is
    /// admitted against the [`MemoryAccountant`](crate::MemoryAccountant) —
    /// the map-side bucket charged to the source node and the post-shuffle
    /// partition charged to the target's node, both at wire size. A denied
    /// target *spills*: pass 2 encodes its records straight to a disk
    /// segment instead of a bucket, and the reduce side re-reads the chunk
    /// in the exact slot the bucket would have occupied, so spilled and
    /// in-memory runs produce byte-identical partitions. Without a budget
    /// the charges always succeed and only meter the natural peak.
    ///
    /// Fault safety: buffers, charges and spill files are all owned per task
    /// *attempt* and travel inside the attempt's result; a loser's
    /// [`ChargeGuard`] releases on drop and its [`SpillSegment`] deletes its
    /// file on drop, so retries and speculation leak nothing.
    fn radix_shuffle_stage<P>(
        self,
        cluster: &Cluster,
        partitioner: &P,
        stage: &str,
    ) -> Result<(KeyedDataset<K, V>, ShuffleStats, ExecStats), JobError>
    where
        P: Partitioner<K> + ?Sized,
    {
        let targets = partitioner.num_partitions();
        let pool = cluster.buffer_pool();
        let pool_before = pool.stats();
        let memory = cluster.memory_accountant();
        let denials_before = memory.budget_denials();
        let (mut bucketed, mut stats) =
            cluster.try_run_partitioned_stage(stage, self.parts, |src_idx, part| {
                let src_node = cluster.node_of_partition(src_idx);
                let mut charges = ChargeGuard::new(cluster.memory_arc());
                let mut shuffle = ShuffleStats {
                    partition_bytes: vec![0u64; targets],
                    ..ShuffleStats::default()
                };
                // Pass 1: route + meter. One partitioner probe and one
                // encoded_size per record, reused for node and partition
                // byte accounting. The routing scratch is a pool lease like
                // any other, so it is charged too; scratch cannot spill, so
                // a denial here only counts against the budget-denial
                // telemetry while the buckets below remain the real lever.
                charges.try_charge(src_node, (part.len() * std::mem::size_of::<u32>()) as u64);
                let mut route: Vec<u32> = pool.take_vec(part.len());
                let mut counts: Vec<usize> = vec![0; targets];
                for (k, v) in &part {
                    let t = partitioner.partition_of(k);
                    debug_assert!(t < targets);
                    let bytes = k.encoded_size() as u64 + v.encoded_size() as u64;
                    if cluster.node_of_partition(t) == src_node {
                        shuffle.local_bytes += bytes;
                    } else {
                        shuffle.remote_bytes += bytes;
                    }
                    shuffle.records += 1;
                    shuffle.partition_bytes[t] += bytes;
                    counts[t] += 1;
                    route.push(t as u32);
                }
                // Admission: charge each non-empty target twice — bucket on
                // the source node, post-shuffle partition on the target's
                // node. Either denial spills the whole target (rolling back
                // the half already admitted) so no node is ever driven past
                // its budget; spilling is the escape hatch, never an abort.
                let mut spill_targets: Vec<(usize, usize)> = Vec::new();
                for (t, count) in counts.iter_mut().enumerate() {
                    if *count == 0 {
                        continue;
                    }
                    let wire_bytes = shuffle.partition_bytes[t];
                    let dst_node = cluster.node_of_partition(t);
                    let admitted = charges.try_charge(src_node, wire_bytes) && {
                        charges.try_charge(dst_node, wire_bytes) || {
                            charges.uncharge(src_node, wire_bytes);
                            false
                        }
                    };
                    if !admitted {
                        spill_targets.push((t, *count));
                        // Zero the histogram slot: `take_vecs` serves the
                        // entry as a capacity-less `Vec` without touching
                        // the pool, so a spilled bucket costs nothing.
                        *count = 0;
                    }
                }
                // Pass 2: scatter into exactly-sized pooled buckets; spilled
                // targets encode straight into their wire buffer instead, so
                // the records never materialise in memory twice.
                let mut spill_bufs: Vec<Vec<u8>> = Vec::new();
                let mut spill_of: Vec<usize> = Vec::new();
                if !spill_targets.is_empty() {
                    spill_bufs = spill_targets.iter().map(|_| Vec::new()).collect();
                    spill_of = vec![usize::MAX; targets];
                    for (slot, &(t, _)) in spill_targets.iter().enumerate() {
                        spill_of[t] = slot;
                    }
                }
                let mut buckets: Vec<Vec<(K, V)>> = pool.take_vecs(&counts);
                for ((k, v), &t) in part.into_iter().zip(&route) {
                    let t = t as usize;
                    match spill_of.get(t) {
                        Some(&slot) if slot != usize::MAX => {
                            k.encode(&mut spill_bufs[slot]);
                            v.encode(&mut spill_bufs[slot]);
                        }
                        _ => buckets[t].push((k, v)),
                    }
                }
                // The routing scratch is attempt-local: filled and drained
                // within this attempt, so returning it here cannot race a
                // speculative twin (which checked out its own).
                pool.put_vec(route);
                // Seal this attempt's spill file. I/O failure on the temp
                // file panics the attempt; the fault-tolerant harness turns
                // that into a retriable task error like any other crash.
                let spill = if spill_targets.is_empty() {
                    None
                } else {
                    let mut writer = SpillWriter::create().expect("spill: create temp file");
                    for (slot, &(t, count)) in spill_targets.iter().enumerate() {
                        writer
                            .write_chunk(t, &spill_bufs[slot], count as u64)
                            .expect("spill: write chunk");
                    }
                    writer.finish().expect("spill: seal segment")
                };
                let spilled_bytes = spill.as_ref().map_or(0, SpillSegment::total_bytes);
                RadixMapOut {
                    buckets,
                    shuffle,
                    spill,
                    spilled_bytes,
                    _charges: charges,
                }
            })?;
        // Reduce side: per-task partition_bytes merge element-wise, so the
        // driver-side total matches the legacy reduce-side walk exactly.
        let mut shuffle = ShuffleStats::default();
        for out in &bucketed {
            shuffle.merge(&out.shuffle);
        }
        let mut parts: Vec<Vec<(K, V)>> = Vec::with_capacity(targets);
        for t in 0..targets {
            let total: usize = bucketed
                .iter()
                .map(|out| {
                    out.buckets[t].len()
                        + out
                            .spill
                            .as_ref()
                            .and_then(|seg| seg.chunk_for(t))
                            .map_or(0, |c| c.records as usize)
                })
                .sum();
            let mut dst: Vec<(K, V)> = pool.take_vec(total);
            // Walk source tasks in order, taking each task's contribution
            // from its bucket or its spill chunk — the records land in the
            // same slots either way, which is what keeps budgeted runs
            // byte-identical to unbudgeted ones.
            for out in &mut bucketed {
                if !out.buckets[t].is_empty() {
                    dst.append(&mut out.buckets[t]);
                } else if let Some(seg) = &out.spill {
                    if let Some(recs) = seg
                        .read_records::<K, V>(t)
                        .expect("spill: re-read committed segment")
                    {
                        dst.extend(recs);
                    }
                }
            }
            parts.push(dst);
        }
        // Commit point: the stage's results are final. Emit one `spill`
        // event per chunk while the segments are still alive, then hand the
        // emptied buckets back, release every task's memory charges
        // (ChargeGuard drop) and delete the spill files (SpillSegment drop).
        let recorder = cluster.recorder();
        let mut spilled_bytes = 0u64;
        for out in bucketed {
            spilled_bytes += out.spilled_bytes;
            if recorder.is_enabled() {
                if let Some(seg) = &out.spill {
                    for chunk in seg.chunks() {
                        recorder.event(
                            "spill",
                            Lane::Node(cluster.node_of_partition(chunk.target)),
                            Some(chunk.target as u64),
                            Attrs::new().bytes(chunk.len).records(chunk.records),
                        );
                    }
                }
            }
            pool.put_vecs(out.buckets);
        }
        if spilled_bytes > 0 {
            memory.note_spill(spilled_bytes);
        }
        stats.spilled_bytes = spilled_bytes;
        stats.peak_memory_bytes = memory.peak_bytes();
        if recorder.is_enabled() {
            // Mirror the ShuffleStats fields into the metrics registry and
            // attribute every target partition's bytes to its node's lane.
            recorder.counter_add(stage, "remote_bytes", shuffle.remote_bytes);
            recorder.counter_add(stage, "local_bytes", shuffle.local_bytes);
            recorder.counter_add(stage, "records", shuffle.records);
            recorder.counter_add(stage, "spill_bytes", spilled_bytes);
            recorder.counter_add(
                stage,
                "budget_denials",
                memory.budget_denials().saturating_sub(denials_before),
            );
            let pool_delta = pool.stats().since(&pool_before);
            recorder.counter_add(stage, "pool_hits", pool_delta.hits);
            recorder.counter_add(stage, "pool_misses", pool_delta.misses);
            recorder.counter_add(stage, "bytes_recycled", pool_delta.bytes_recycled);
            for (t, &bytes) in shuffle.partition_bytes.iter().enumerate() {
                recorder.histogram_record(stage, "partition_bytes", bytes as f64);
                recorder.event(
                    "shuffle.partition",
                    Lane::Node(cluster.node_of_partition(t)),
                    Some(t as u64),
                    Attrs::new().bytes(bytes).records(parts[t].len() as u64),
                );
            }
        }
        Ok((KeyedDataset { parts }, shuffle, stats))
    }

    /// The pre-radix materialization, kept verbatim as the oracle for
    /// equivalence tests and A/B perf runs: fresh `Vec` per (source ×
    /// target) bucket, per-record `extend` on the reduce side, and a second
    /// `encoded_size` walk for the partition byte accounting.
    fn legacy_shuffle_stage<P>(
        self,
        cluster: &Cluster,
        partitioner: &P,
        stage: &str,
    ) -> Result<(KeyedDataset<K, V>, ShuffleStats, ExecStats), JobError>
    where
        P: Partitioner<K> + ?Sized,
    {
        let targets = partitioner.num_partitions();
        // Map side: bucket each source partition by target partition and
        // meter bytes by destination node.
        let (bucketed, stats) =
            cluster.try_run_partitioned_stage(stage, self.parts, |src_idx, part| {
                let src_node = cluster.node_of_partition(src_idx);
                let mut buckets: Vec<Vec<(K, V)>> = (0..targets).map(|_| Vec::new()).collect();
                let mut shuffle = ShuffleStats::default();
                for (k, v) in part {
                    let t = partitioner.partition_of(&k);
                    debug_assert!(t < targets);
                    let bytes = k.encoded_size() as u64 + v.encoded_size() as u64;
                    if cluster.node_of_partition(t) == src_node {
                        shuffle.local_bytes += bytes;
                    } else {
                        shuffle.remote_bytes += bytes;
                    }
                    shuffle.records += 1;
                    buckets[t].push((k, v));
                }
                (buckets, shuffle)
            })?;
        // Reduce side: concatenate the buckets of each target partition and
        // account the per-partition memory footprint.
        let mut shuffle = ShuffleStats::default();
        let mut parts: Vec<Vec<(K, V)>> = (0..targets).map(|_| Vec::new()).collect();
        let mut partition_bytes = vec![0u64; targets];
        for (buckets, s) in bucketed {
            shuffle.merge(&s);
            for (t, bucket) in buckets.into_iter().enumerate() {
                for (k, v) in &bucket {
                    partition_bytes[t] += k.encoded_size() as u64 + v.encoded_size() as u64;
                }
                parts[t].extend(bucket);
            }
        }
        shuffle.partition_bytes = partition_bytes;
        let recorder = cluster.recorder();
        if recorder.is_enabled() {
            // Mirror the ShuffleStats fields into the metrics registry and
            // attribute every target partition's bytes to its node's lane.
            recorder.counter_add(stage, "remote_bytes", shuffle.remote_bytes);
            recorder.counter_add(stage, "local_bytes", shuffle.local_bytes);
            recorder.counter_add(stage, "records", shuffle.records);
            for (t, &bytes) in shuffle.partition_bytes.iter().enumerate() {
                recorder.histogram_record(stage, "partition_bytes", bytes as f64);
                recorder.event(
                    "shuffle.partition",
                    Lane::Node(cluster.node_of_partition(t)),
                    Some(t as u64),
                    Attrs::new().bytes(bytes).records(parts[t].len() as u64),
                );
            }
        }
        Ok((KeyedDataset { parts }, shuffle, stats))
    }

    /// Processes each partition's key groups with `kernel` (a one-sided
    /// co-group): values are grouped by key within every partition and the
    /// kernel is invoked once per key. Used by the distance *self-join*,
    /// where a single shuffled dataset joins with itself cell by cell.
    pub fn process_groups<R, F>(
        self,
        cluster: &Cluster,
        placement: &[usize],
        kernel: F,
    ) -> (Dataset<R>, ExecStats)
    where
        K: Ord,
        R: Send,
        F: Fn(K, &[V], &mut Vec<R>) + Sync,
    {
        let (ds, _, stats) =
            self.process_groups_fold(cluster, placement, |k, vs, out, _acc: &mut ()| {
                kernel(k, vs, out)
            });
        (ds, stats)
    }

    /// [`KeyedDataset::process_groups`] with a per-partition accumulator:
    /// `kernel` folds into an `A` that starts at `A::default()` for every
    /// task *attempt* and is committed together with the partition's output.
    /// This is the fault-safe replacement for accumulating side statistics
    /// in shared atomics, which a retried or speculatively re-executed task
    /// would double-count (Spark restarts accumulators the same way).
    pub fn process_groups_fold<R, A, F>(
        self,
        cluster: &Cluster,
        placement: &[usize],
        kernel: F,
    ) -> (Dataset<R>, Vec<A>, ExecStats)
    where
        K: Ord,
        R: Send,
        A: Default + Send,
        F: Fn(K, &[V], &mut Vec<R>, &mut A) + Sync,
    {
        let (folded, stats) =
            cluster.run_placed_stage("process_groups", self.parts, placement, |_, mut part| {
                part.sort_unstable_by_key(|x| x.0);
                let mut out = Vec::new();
                let mut acc = A::default();
                let mut values: Vec<V> = Vec::new();
                let mut it = part.into_iter().peekable();
                while let Some(k) = it.peek().map(|x| x.0) {
                    values.clear();
                    while it.peek().is_some_and(|x| x.0 == k) {
                        values.push(it.next().expect("peeked").1);
                    }
                    kernel(k, &values, &mut out, &mut acc);
                }
                (out, acc)
            });
        let (parts, accs) = folded.into_iter().unzip();
        (Dataset { parts }, accs, stats)
    }

    /// Combines the values of every key with `combine` after shuffling by
    /// `partitioner` (Spark `reduceByKey`). Returns one `(key, value)` per
    /// distinct key.
    pub fn reduce_by_key<P, F>(
        self,
        cluster: &Cluster,
        partitioner: &P,
        combine: F,
    ) -> (KeyedDataset<K, V>, ShuffleStats, ExecStats)
    where
        K: Ord,
        P: Partitioner<K> + ?Sized,
        F: Fn(V, V) -> V + Sync,
    {
        let (shuffled, shuffle, mut exec) =
            self.shuffle_stage(cluster, partitioner, "reduce_by_key");
        let (parts, ex) = cluster.run_partitioned_stage(
            "reduce_by_key.combine",
            shuffled.parts,
            |_, mut part| {
                part.sort_unstable_by_key(|x| x.0);
                let mut out: Vec<(K, V)> = Vec::new();
                let mut it = part.into_iter();
                if let Some((mut ck, mut cv)) = it.next() {
                    for (k, v) in it {
                        if k == ck {
                            cv = combine(cv, v);
                        } else {
                            out.push((ck, cv));
                            ck = k;
                            cv = v;
                        }
                    }
                    out.push((ck, cv));
                }
                out
            },
        );
        exec.accumulate(&ex);
        (KeyedDataset { parts }, shuffle, exec)
    }

    /// Co-grouped join against `other` (must be partitioned by the same
    /// partitioner): for every key present on both sides of a partition,
    /// `kernel` receives the two value groups and emits results.
    ///
    /// This fuses Spark's `join(...)` with the subsequent refinement
    /// `filter(d(r, s) ≤ ε)` of Algorithm 5, exactly as the paper describes
    /// ("directly after the production of a candidate pair, their actual
    /// distance is computed").
    ///
    /// `placement[i]` gives the simulated node of partition `i`; pass
    /// round-robin for Spark-default behaviour.
    pub fn cogroup_join<V2, R, F>(
        self,
        cluster: &Cluster,
        other: KeyedDataset<K, V2>,
        placement: &[usize],
        kernel: F,
    ) -> (Dataset<R>, ExecStats)
    where
        K: Ord,
        V2: Wire + Send + Sync + Clone,
        R: Send,
        F: Fn(K, &[V], &[V2], &mut Vec<R>) + Sync,
    {
        match self.try_cogroup_join(cluster, other, placement, kernel) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`KeyedDataset::cogroup_join`]; see
    /// [`KeyedDataset::try_shuffle_stage`].
    pub fn try_cogroup_join<V2, R, F>(
        self,
        cluster: &Cluster,
        other: KeyedDataset<K, V2>,
        placement: &[usize],
        kernel: F,
    ) -> Result<(Dataset<R>, ExecStats), JobError>
    where
        K: Ord,
        V2: Wire + Send + Sync + Clone,
        R: Send,
        F: Fn(K, &[V], &[V2], &mut Vec<R>) + Sync,
    {
        let (ds, _, stats) = self.try_cogroup_join_fold(
            cluster,
            other,
            placement,
            |k, va, vb, out, _acc: &mut ()| kernel(k, va, vb, out),
        )?;
        Ok((ds, stats))
    }

    /// [`KeyedDataset::cogroup_join`] with a per-partition accumulator; see
    /// [`KeyedDataset::process_groups_fold`] for why side statistics must
    /// travel with the task result rather than through shared atomics.
    pub fn cogroup_join_fold<V2, R, A, F>(
        self,
        cluster: &Cluster,
        other: KeyedDataset<K, V2>,
        placement: &[usize],
        kernel: F,
    ) -> (Dataset<R>, Vec<A>, ExecStats)
    where
        K: Ord,
        V2: Wire + Send + Sync + Clone,
        R: Send,
        A: Default + Send,
        F: Fn(K, &[V], &[V2], &mut Vec<R>, &mut A) + Sync,
    {
        match self.try_cogroup_join_fold(cluster, other, placement, kernel) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`KeyedDataset::cogroup_join_fold`].
    pub fn try_cogroup_join_fold<V2, R, A, F>(
        self,
        cluster: &Cluster,
        other: KeyedDataset<K, V2>,
        placement: &[usize],
        kernel: F,
    ) -> Result<(Dataset<R>, Vec<A>, ExecStats), JobError>
    where
        K: Ord,
        V2: Wire + Send + Sync + Clone,
        R: Send,
        A: Default + Send,
        F: Fn(K, &[V], &[V2], &mut Vec<R>, &mut A) + Sync,
    {
        assert_eq!(
            self.parts.len(),
            other.parts.len(),
            "joined datasets must share the partitioner"
        );
        let tasks: CogroupTasks<K, V, V2> = self.parts.into_iter().zip(other.parts).collect();
        let (folded, stats) = cluster.try_run_placed_stage(
            "cogroup_join",
            tasks,
            placement,
            |_, (mut a, mut b)| {
                a.sort_unstable_by_key(|x| x.0);
                b.sort_unstable_by_key(|x| x.0);
                let mut out = Vec::new();
                let mut acc = A::default();
                let mut ia = a.into_iter().peekable();
                let mut ib = b.into_iter().peekable();
                let mut va: Vec<V> = Vec::new();
                let mut vb: Vec<V2> = Vec::new();
                while let (Some(ka), Some(kb)) = (ia.peek().map(|x| x.0), ib.peek().map(|x| x.0)) {
                    match ka.cmp(&kb) {
                        std::cmp::Ordering::Less => {
                            ia.next();
                        }
                        std::cmp::Ordering::Greater => {
                            ib.next();
                        }
                        std::cmp::Ordering::Equal => {
                            va.clear();
                            vb.clear();
                            while ia.peek().is_some_and(|x| x.0 == ka) {
                                va.push(ia.next().expect("peeked").1);
                            }
                            while ib.peek().is_some_and(|x| x.0 == ka) {
                                vb.push(ib.next().expect("peeked").1);
                            }
                            kernel(ka, &va, &vb, &mut out, &mut acc);
                        }
                    }
                }
                (out, acc)
            },
        )?;
        let (parts, accs) = folded.into_iter().unzip();
        Ok((Dataset { parts }, accs, stats))
    }

    /// [`KeyedDataset::cogroup_join_fold`] with a *secondary sort*: each
    /// partition is sorted once by `(key, sort_key)`, so every value group
    /// handed to `kernel` arrives already ordered by `sort_key`. A
    /// plane-sweep local kernel can then skip its per-group sort — the sort
    /// happens once per partition instead of once per cell (Spark's
    /// `repartitionAndSortWithinPartitions` idiom).
    pub fn cogroup_join_sorted_fold<V2, R, A, F, SA, SB>(
        self,
        cluster: &Cluster,
        other: KeyedDataset<K, V2>,
        placement: &[usize],
        sort_key_a: SA,
        sort_key_b: SB,
        kernel: F,
    ) -> (Dataset<R>, Vec<A>, ExecStats)
    where
        K: Ord,
        V2: Wire + Send + Sync + Clone,
        R: Send,
        A: Default + Send,
        F: Fn(K, &[V], &[V2], &mut Vec<R>, &mut A) + Sync,
        SA: Fn(&V) -> f64 + Sync,
        SB: Fn(&V2) -> f64 + Sync,
    {
        match self
            .try_cogroup_join_sorted_fold(cluster, other, placement, sort_key_a, sort_key_b, kernel)
        {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`KeyedDataset::cogroup_join_sorted_fold`].
    pub fn try_cogroup_join_sorted_fold<V2, R, A, F, SA, SB>(
        self,
        cluster: &Cluster,
        other: KeyedDataset<K, V2>,
        placement: &[usize],
        sort_key_a: SA,
        sort_key_b: SB,
        kernel: F,
    ) -> Result<(Dataset<R>, Vec<A>, ExecStats), JobError>
    where
        K: Ord,
        V2: Wire + Send + Sync + Clone,
        R: Send,
        A: Default + Send,
        F: Fn(K, &[V], &[V2], &mut Vec<R>, &mut A) + Sync,
        SA: Fn(&V) -> f64 + Sync,
        SB: Fn(&V2) -> f64 + Sync,
    {
        assert_eq!(
            self.parts.len(),
            other.parts.len(),
            "joined datasets must share the partitioner"
        );
        let tasks: CogroupTasks<K, V, V2> = self.parts.into_iter().zip(other.parts).collect();
        let (folded, stats) = cluster.try_run_placed_stage(
            "cogroup_join",
            tasks,
            placement,
            |_, (mut a, mut b)| {
                a.sort_unstable_by(|x, y| {
                    x.0.cmp(&y.0)
                        .then_with(|| sort_key_a(&x.1).total_cmp(&sort_key_a(&y.1)))
                });
                b.sort_unstable_by(|x, y| {
                    x.0.cmp(&y.0)
                        .then_with(|| sort_key_b(&x.1).total_cmp(&sort_key_b(&y.1)))
                });
                let mut out = Vec::new();
                let mut acc = A::default();
                let mut ia = a.into_iter().peekable();
                let mut ib = b.into_iter().peekable();
                let mut va: Vec<V> = Vec::new();
                let mut vb: Vec<V2> = Vec::new();
                while let (Some(ka), Some(kb)) = (ia.peek().map(|x| x.0), ib.peek().map(|x| x.0)) {
                    match ka.cmp(&kb) {
                        std::cmp::Ordering::Less => {
                            ia.next();
                        }
                        std::cmp::Ordering::Greater => {
                            ib.next();
                        }
                        std::cmp::Ordering::Equal => {
                            va.clear();
                            vb.clear();
                            while ia.peek().is_some_and(|x| x.0 == ka) {
                                va.push(ia.next().expect("peeked").1);
                            }
                            while ib.peek().is_some_and(|x| x.0 == ka) {
                                vb.push(ib.next().expect("peeked").1);
                            }
                            kernel(ka, &va, &vb, &mut out, &mut acc);
                        }
                    }
                }
                (out, acc)
            },
        )?;
        let (parts, accs) = folded.into_iter().unzip();
        Ok((Dataset { parts }, accs, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, ShuffleMode};
    use crate::partitioner::HashPartitioner;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::with_threads(3, 2))
    }

    #[test]
    fn from_vec_balances_partitions() {
        let d = Dataset::from_vec((0..10u32).collect(), 3);
        let sizes: Vec<usize> = d.partitions().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(d.len(), 10);
        assert!(!d.is_empty());
        assert_eq!(d.collect(), (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn map_preserves_partitioning() {
        let c = cluster();
        let d = Dataset::from_vec((0..100u64).collect(), 7);
        let (d2, _) = d.map(&c, |x| x * 3);
        assert_eq!(d2.num_partitions(), 7);
        assert_eq!(
            d2.iter().copied().sum::<u64>(),
            (0..100u64).map(|x| x * 3).sum()
        );
    }

    #[test]
    fn generate_runs_one_task_per_partition() {
        let c = cluster();
        let (d, _) = Dataset::generate(&c, 5, |i| vec![i as u32; i + 1]);
        assert_eq!(d.num_partitions(), 5);
        assert_eq!(d.len(), 1 + 2 + 3 + 4 + 5);
    }

    #[test]
    fn sample_is_deterministic_and_proportional() {
        let c = cluster();
        let d = Dataset::from_vec((0..20_000u64).collect(), 4);
        let (s1, _) = d.sample(&c, 0.1, 7);
        let (s2, _) = d.sample(&c, 0.1, 7);
        assert_eq!(s1, s2);
        assert!(
            (s1.len() as f64 - 2000.0).abs() < 300.0,
            "sample size {}",
            s1.len()
        );
        let (s3, _) = d.sample(&c, 0.1, 8);
        assert_ne!(s1, s3);
    }

    #[test]
    fn sample_extremes() {
        let c = cluster();
        let d = Dataset::from_vec((0..100u64).collect(), 4);
        assert!(d.sample(&c, 0.0, 1).0.is_empty());
        assert_eq!(d.sample(&c, 1.0, 1).0.len(), 100);
    }

    #[test]
    fn flat_map_to_pairs_expands_records() {
        let c = cluster();
        let d = Dataset::from_vec(vec![1u64, 2, 3], 2);
        let (kd, _) = d.flat_map_to_pairs(&c, |x, out| {
            for k in 0..x {
                out.push((k, x));
            }
        });
        assert_eq!(kd.len(), 6); // 1 + 2 + 3
    }

    #[test]
    fn shuffle_routes_by_key_and_meters_bytes() {
        let c = cluster();
        let kd = KeyedDataset::from_partitions(vec![
            vec![(0u64, 10u64), (1, 11), (2, 12)],
            vec![(0, 20), (1, 21)],
        ]);
        let p = HashPartitioner::new(4);
        let (shuffled, stats, _) = kd.shuffle(&c, &p);
        assert_eq!(shuffled.num_partitions(), 4);
        assert_eq!(stats.records, 5);
        // Every record is 16 bytes (u64 key + u64 value).
        assert_eq!(stats.total_bytes(), 5 * 16);
        // All copies of a key land in one partition.
        for part in shuffled.partitions() {
            for (k, _) in part {
                assert_eq!(
                    p.partition_of(k),
                    shuffled
                        .partitions()
                        .iter()
                        .position(|pp| pp.iter().any(|(kk, _)| kk == k))
                        .unwrap()
                );
            }
        }
    }

    #[test]
    fn radix_and_legacy_shuffles_are_byte_identical() {
        let parts: Vec<Vec<(u64, u64)>> = (0..6)
            .map(|p| (0..200u64).map(|i| (i * 7 % 53, p * 1000 + i)).collect())
            .collect();
        let radix = cluster();
        let legacy = cluster().with_shuffle_mode(ShuffleMode::Legacy);
        let p = HashPartitioner::new(13);
        let (dr, sr, _) = KeyedDataset::from_partitions(parts.clone()).shuffle(&radix, &p);
        let (dl, sl, _) = KeyedDataset::from_partitions(parts).shuffle(&legacy, &p);
        assert_eq!(sr, sl);
        assert_eq!(dr.partitions(), dl.partitions(), "exact order must match");
    }

    /// Fixture for the memory-governor tests: a skewed keyed workload large
    /// enough that a sub-peak budget must force spilling.
    fn skewed_parts() -> Vec<Vec<(u64, u64)>> {
        (0..6)
            .map(|p| (0..200u64).map(|i| (i * 11 % 31, p * 1000 + i)).collect())
            .collect()
    }

    #[test]
    fn budgeted_shuffle_spills_and_stays_byte_identical() {
        let parts = skewed_parts();
        let p = HashPartitioner::new(8);
        let free = cluster();
        let (df, sf, ef) = KeyedDataset::from_partitions(parts.clone()).shuffle(&free, &p);
        assert_eq!(ef.spilled_bytes, 0, "no budget, nothing spills");
        assert!(
            ef.peak_memory_bytes > 0,
            "meter-only runs still record the natural peak"
        );

        // A budget well below the natural peak: the shuffle must finish by
        // spilling, never by aborting, and the results must not change.
        let budget = (ef.peak_memory_bytes / 8).max(64);
        let tight = cluster().with_memory_budget(budget);
        let (dt, st, et) = KeyedDataset::from_partitions(parts).shuffle(&tight, &p);
        assert_eq!(st, sf, "ShuffleStats are spill-agnostic");
        assert_eq!(
            dt.partitions(),
            df.partitions(),
            "spilled run is byte-identical"
        );
        assert!(
            et.spilled_bytes > 0,
            "a sub-peak budget must force spilling"
        );
        assert!(
            et.peak_memory_bytes <= budget,
            "peak {} exceeds budget {budget}",
            et.peak_memory_bytes
        );
        let snap = tight.memory_accountant().snapshot();
        assert!(snap.budget_denials > 0);
        assert_eq!(snap.spilled_bytes, et.spilled_bytes);
        assert!(snap.per_node_peak.iter().all(|&pk| pk <= budget));
        for node in 0..tight.nodes() {
            assert_eq!(
                tight.memory_accountant().resident_bytes(node),
                0,
                "all charges release at commit"
            );
        }
    }

    #[test]
    fn budgeted_shuffle_survives_injected_failures() {
        use crate::fault::{FaultPlan, RetryPolicy};
        let parts = skewed_parts();
        let p = HashPartitioner::new(8);
        let free = cluster();
        let (df, _, ef) = KeyedDataset::from_partitions(parts.clone()).shuffle(&free, &p);

        // First attempts of two tasks die after their charges and spill file
        // exist; the retried attempts must start from a clean ledger.
        let budget = (ef.peak_memory_bytes / 8).max(64);
        let tight = cluster().with_memory_budget(budget).with_fault_policy(
            FaultPlan::none()
                .with_fail_point("shuffle", 0, 1)
                .with_fail_point("shuffle", 3, 1),
            RetryPolicy::default().with_max_attempts(4),
        );
        let (dt, _, et) = KeyedDataset::from_partitions(parts).shuffle(&tight, &p);
        assert_eq!(dt.partitions(), df.partitions());
        assert!(et.retries >= 2, "both fail points must have retried");
        assert!(et.spilled_bytes > 0);
        assert!(et.peak_memory_bytes <= budget);
        for node in 0..tight.nodes() {
            assert_eq!(
                tight.memory_accountant().resident_bytes(node),
                0,
                "failed attempts' charges must not leak"
            );
        }
    }

    #[test]
    fn budgeted_shuffle_records_spill_telemetry() {
        use asj_obs::Recorder;
        let parts = skewed_parts();
        let p = HashPartitioner::new(8);
        let free = cluster();
        let (_, _, ef) = KeyedDataset::from_partitions(parts.clone()).shuffle(&free, &p);

        let r = Recorder::for_nodes(3);
        let tight = cluster()
            .with_memory_budget((ef.peak_memory_bytes / 8).max(64))
            .with_recorder(r.clone());
        let (_, _, et) = KeyedDataset::from_partitions(parts).shuffle(&tight, &p);
        assert_eq!(
            r.counter_value("shuffle", "spill_bytes"),
            Some(et.spilled_bytes),
            "spill volume mirrors into the metrics registry"
        );
        assert!(
            r.counter_value("shuffle", "budget_denials")
                .expect("counter")
                > 0
        );
        let trace = r.snapshot();
        let spills: Vec<_> = trace.events.iter().filter(|e| e.name == "spill").collect();
        assert!(!spills.is_empty(), "each spilled chunk emits a spill event");
        assert_eq!(
            spills
                .iter()
                .map(|e| e.attrs.bytes.expect("bytes"))
                .sum::<u64>(),
            et.spilled_bytes,
            "spill events account for every spilled byte"
        );
        for e in spills {
            let t = e.partition.expect("spill events carry the target") as usize;
            assert_eq!(e.lane, Lane::Node(tight.node_of_partition(t)));
        }
    }

    #[test]
    fn tiny_budget_spills_everything_and_completes() {
        // A budget smaller than any single bucket: every target spills and
        // the job still completes with the right answer.
        let parts = skewed_parts();
        let p = HashPartitioner::new(8);
        let free = cluster();
        let (df, _, _) = KeyedDataset::from_partitions(parts.clone()).shuffle(&free, &p);
        let tight = cluster().with_memory_budget(1);
        let (dt, _, et) = KeyedDataset::from_partitions(parts).shuffle(&tight, &p);
        assert_eq!(dt.partitions(), df.partitions());
        assert_eq!(et.peak_memory_bytes, 0, "nothing was ever admitted");
        assert_eq!(
            et.spilled_bytes,
            dt.partitions()
                .iter()
                .flatten()
                .map(|(k, v)| k.encoded_size() as u64 + v.encoded_size() as u64)
                .sum::<u64>(),
            "every byte of the shuffle went through disk"
        );
    }

    #[test]
    fn radix_shuffle_recycles_buckets_across_stages() {
        let c = cluster();
        let p = HashPartitioner::new(8);
        let data: Vec<Vec<(u64, u64)>> = (0..4)
            .map(|_| (0..500u64).map(|i| (i, i)).collect())
            .collect();
        let (shuffled, _, _) = KeyedDataset::from_partitions(data.clone()).shuffle(&c, &p);
        drop(shuffled);
        let after_first = c.buffer_pool().stats();
        assert!(
            after_first.returns > 0,
            "buckets must come back to the pool"
        );
        let (_, _, _) = KeyedDataset::from_partitions(data).shuffle(&c, &p);
        let after_second = c.buffer_pool().stats().since(&after_first);
        assert!(
            after_second.hits > 0,
            "second stage must reuse recycled buckets: {after_second:?}"
        );
        assert!(after_second.bytes_recycled > 0);
    }

    #[test]
    fn shuffle_local_vs_remote_split() {
        // 1 node: everything is local. Many nodes: most records go remote.
        let one = Cluster::new(ClusterConfig::with_threads(1, 1));
        let kd = KeyedDataset::from_partitions(vec![(0..100u64).map(|k| (k, k)).collect()]);
        let (_, stats, _) = kd.shuffle(&one, &HashPartitioner::new(8));
        assert_eq!(stats.remote_bytes, 0);
        assert_eq!(stats.local_bytes, 100 * 16);

        let many = Cluster::new(ClusterConfig::with_threads(8, 2));
        let kd = KeyedDataset::from_partitions(vec![(0..100u64).map(|k| (k, k)).collect()]);
        let (_, stats, _) = kd.shuffle(&many, &HashPartitioner::new(8));
        assert!(stats.remote_bytes > stats.local_bytes);
        assert_eq!(stats.total_bytes(), 100 * 16);
    }

    #[test]
    fn cogroup_join_pairs_matching_keys() {
        let c = cluster();
        let p = HashPartitioner::new(3);
        let a = KeyedDataset::from_partitions(vec![vec![(1u64, 10u64), (2, 20), (2, 21), (3, 30)]]);
        let b =
            KeyedDataset::from_partitions(vec![vec![(2u64, 200u64), (3, 300), (3, 301), (4, 400)]]);
        let (a, _, _) = a.shuffle(&c, &p);
        let (b, _, _) = b.shuffle(&c, &p);
        let placement: Vec<usize> = (0..3).map(|i| c.node_of_partition(i)).collect();
        let (joined, _) = a.cogroup_join(&c, b, &placement, |k, va, vb, out| {
            for &x in va {
                for &y in vb {
                    out.push((k, x, y));
                }
            }
        });
        let mut rows = joined.collect();
        rows.sort();
        assert_eq!(
            rows,
            vec![(2, 20, 200), (2, 21, 200), (3, 30, 300), (3, 30, 301)]
        );
    }

    #[test]
    fn cogroup_join_empty_sides() {
        let c = cluster();
        let a: KeyedDataset<u64, u64> = KeyedDataset::from_partitions(vec![vec![], vec![(1, 1)]]);
        let b: KeyedDataset<u64, u64> = KeyedDataset::from_partitions(vec![vec![(2, 2)], vec![]]);
        let placement = vec![0usize, 1];
        let (joined, _) = a.cogroup_join(&c, b, &placement, |k, va, vb, out| {
            for &x in va {
                for &y in vb {
                    out.push((k, x, y));
                }
            }
        });
        assert!(joined.collect().is_empty());
    }

    #[test]
    fn cogroup_join_sorted_fold_delivers_groups_in_sort_key_order() {
        let c = cluster();
        let a: KeyedDataset<u64, (u32, f64)> = KeyedDataset::from_partitions(vec![vec![
            (1u64, (0, 3.5)),
            (1, (1, 0.5)),
            (2, (2, 9.0)),
            (1, (3, 2.0)),
            (2, (4, -1.0)),
        ]]);
        let b: KeyedDataset<u64, (u32, f64)> = KeyedDataset::from_partitions(vec![vec![
            (2u64, (10, 4.0)),
            (1, (11, 7.0)),
            (2, (12, 0.25)),
            (1, (13, 1.0)),
        ]]);
        let placement = vec![0usize];
        let (joined, accs, _) = a.cogroup_join_sorted_fold(
            &c,
            b,
            &placement,
            |v: &(u32, f64)| v.1,
            |v: &(u32, f64)| v.1,
            |k, va, vb, out, acc: &mut u64| {
                assert!(va.windows(2).all(|w| w[0].1 <= w[1].1), "a not sorted");
                assert!(vb.windows(2).all(|w| w[0].1 <= w[1].1), "b not sorted");
                *acc += (va.len() * vb.len()) as u64;
                out.push((k, va.len(), vb.len()));
            },
        );
        let mut rows = joined.collect();
        rows.sort();
        assert_eq!(rows, vec![(1, 3, 2), (2, 2, 2)]);
        assert_eq!(accs.iter().sum::<u64>(), 3 * 2 + 2 * 2);
    }
}

#[cfg(test)]
mod group_tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::partitioner::HashPartitioner;

    #[test]
    fn process_groups_sees_each_key_once_with_all_values() {
        let c = Cluster::new(ClusterConfig::with_threads(2, 2));
        let kd = KeyedDataset::from_partitions(vec![
            vec![(1u64, 10u64), (2, 20), (1, 11)],
            vec![(2, 21), (3, 30)],
        ]);
        let (kd, _, _) = kd.shuffle(&c, &HashPartitioner::new(4));
        let placement: Vec<usize> = (0..4).map(|i| c.node_of_partition(i)).collect();
        let (out, _) = kd.process_groups(&c, &placement, |k, vs, out| {
            let mut sorted = vs.to_vec();
            sorted.sort_unstable();
            out.push((k, sorted));
        });
        let mut rows = out.collect();
        rows.sort();
        assert_eq!(
            rows,
            vec![(1, vec![10, 11]), (2, vec![20, 21]), (3, vec![30])]
        );
    }

    #[test]
    fn process_groups_empty_partitions() {
        let c = Cluster::new(ClusterConfig::with_threads(1, 1));
        let kd: KeyedDataset<u64, u64> = KeyedDataset::from_partitions(vec![vec![], vec![]]);
        let (out, _) = kd.process_groups(&c, &[0, 0], |_, _, out: &mut Vec<u64>| {
            out.push(1);
        });
        assert!(out.collect().is_empty());
    }
}

#[cfg(test)]
mod operator_tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::partitioner::HashPartitioner;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::with_threads(3, 2))
    }

    #[test]
    fn filter_keeps_matching_records() {
        let c = cluster();
        let d = Dataset::from_vec((0..100u64).collect(), 5);
        let (d, _) = d.filter(&c, |x| x % 3 == 0);
        let mut got = d.collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).filter(|x| x % 3 == 0).collect::<Vec<u64>>());
    }

    #[test]
    fn union_concatenates_partitions() {
        let a = Dataset::from_vec(vec![1u32, 2], 2);
        let b = Dataset::from_vec(vec![3u32, 4, 5], 3);
        let u = a.union(b);
        assert_eq!(u.num_partitions(), 5);
        let mut all = u.collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn reduce_by_key_sums_per_key() {
        let c = cluster();
        let kd = KeyedDataset::from_partitions(vec![
            vec![(1u64, 10u64), (2, 1), (1, 5)],
            vec![(2, 2), (3, 7), (1, 1)],
        ]);
        let (reduced, shuffle, _) = kd.reduce_by_key(&c, &HashPartitioner::new(4), |a, b| a + b);
        let mut rows: Vec<(u64, u64)> = reduced.partitions().iter().flatten().copied().collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![(1, 16), (2, 3), (3, 7)]);
        assert_eq!(shuffle.records, 6);
    }

    #[test]
    fn reduce_by_key_with_single_occurrences() {
        let c = cluster();
        let kd = KeyedDataset::from_partitions(vec![(0..50u64).map(|k| (k, 1u64)).collect()]);
        let (reduced, _, _) = kd.reduce_by_key(&c, &HashPartitioner::new(8), |a, b| a + b);
        assert_eq!(reduced.len(), 50);
        assert!(reduced.partitions().iter().flatten().all(|&(_, v)| v == 1));
    }
}
