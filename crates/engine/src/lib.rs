//! An in-process data-parallel engine standing in for Apache Spark.
//!
//! The paper evaluates its join on a 12-node Spark/YARN/HDFS cluster and
//! reports three metrics: replicated objects, *shuffle remote reads* and
//! execution time. This crate reproduces the execution semantics those
//! metrics depend on without requiring a cluster:
//!
//! * [`Dataset`] / [`KeyedDataset`] — partitioned collections with the
//!   operators Algorithm 5 uses (`map`, `flat_map_to_pair`, `sample`,
//!   `broadcast`, keyed co-group join).
//! * **Metered shuffle** — when a keyed dataset is repartitioned, every
//!   record is attributed to the simulated node of its source and target
//!   partitions; records that cross nodes account their [`Wire`]-encoded size
//!   as *remote* bytes (Spark's shuffle remote reads), others as local.
//! * **Placement** — cells are mapped to partitions by a hash partitioner
//!   (Spark's default) or by the LPT greedy of §6.2; partitions are bound to
//!   simulated nodes round-robin.
//! * **Simulated time** — every partition task is timed and attributed to its
//!   node; a job's *simulated makespan* is the maximum per-node busy time,
//!   which reproduces the paper's node-scaling and load-balancing behaviour
//!   even on a single-core host (real wall time is reported alongside).
//!
//! The engine is deliberately synchronous and in-memory: the paper's inputs
//! are text files read once into RDDs, and all relevant effects (replication,
//! shuffle volume, per-partition join cost, balance) are preserved by this
//! model. See `DESIGN.md` at the workspace root for the substitution
//! argument.

mod bufpool;
mod checkpoint;
mod cluster;
mod dataset;
mod fault;
mod jobs;
mod journal;
mod lpt;
mod memory;
mod metrics;
mod partitioner;
mod pool;
mod wire;

pub use bufpool::{BufferPool, PoolStats};
pub use checkpoint::{fnv1a, CheckpointStore};
pub use cluster::{Broadcast, Cluster, ClusterConfig, ShuffleMode};
pub use dataset::{Dataset, KeyedDataset};
pub use fault::{FailPoint, FaultContext, FaultPlan, FaultState, JobError, RetryPolicy, TaskError};
pub use jobs::{JobId, JobReport, JobServer, JobSpec, SchedPolicy, ServerRun, SubmitError};
pub use journal::{compact_records, CompactStats, Journal, JournalError, JournalRecord};
pub use lpt::{assignment_makespan, least_loaded, lpt_assign};
pub use memory::{
    clean_orphaned_spills, decode_records, encode_records, set_spill_dir, spill_dir, ChargeGuard,
    MemoryAccountant, MemorySnapshot, SpillChunk, SpillSegment, SpillWriter,
};
pub use metrics::{DurationSummary, ExecStats, JobMetrics, ShuffleStats};
pub use partitioner::{
    ExplicitPartitioner, HashPartitioner, Partitioner, Placement, RoundRobinPartitioner,
};
pub use pool::{run_tasks, run_tasks_ft, run_tasks_traced, try_run_tasks_traced};
pub use wire::{ensure_remaining, Wire, WireError};

// Re-exported so engine users can construct recorders and read traces
// without naming the obs crate separately.
pub use asj_obs as obs;
pub use asj_obs::{Attrs, Lane, Recorder, Trace, TraceFormat};
