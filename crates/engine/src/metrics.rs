use std::time::Duration;

/// Outcome of one parallel stage: how long each simulated node was busy and
/// how long the stage took on the host.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Total task time attributed to each simulated node.
    pub per_node_busy: Vec<Duration>,
    /// Real elapsed time on the host machine.
    pub wall: Duration,
    /// Task attempts executed, including failed and speculative ones. Equals
    /// the task count on a fault-free run; exceeds it under recovery.
    pub attempts: u64,
    /// Attempts that were re-runs of a previously failed task.
    pub retries: u64,
    /// Attempts that ended in failure (injected, panic, or lost node).
    pub failed_attempts: u64,
    /// Speculative copies that finished before the original attempt.
    pub speculative_wins: u64,
    /// Nodes blacklisted by the end of the stage (cluster-lifetime view:
    /// accumulation takes the max, not the sum).
    pub blacklisted_nodes: u64,
    /// Bytes this stage wrote to disk spill segments because a node's memory
    /// budget would have been exceeded (0 on unbudgeted runs).
    pub spilled_bytes: u64,
    /// Highest concurrent memory charge observed on any node by the end of
    /// the stage — cluster-lifetime watermark like the blacklist, so
    /// accumulation takes the max. When a budget is enforced this never
    /// exceeds it, by construction.
    pub peak_memory_bytes: u64,
}

impl ExecStats {
    /// Simulated stage duration: the busiest node bounds the stage, exactly
    /// as the slowest executor bounds a Spark stage.
    pub fn makespan(&self) -> Duration {
        self.per_node_busy
            .iter()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Total work across all nodes.
    pub fn total_busy(&self) -> Duration {
        self.per_node_busy.iter().sum()
    }

    /// Ratio of the busiest node to the average — 1.0 is perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_busy().as_secs_f64();
        if total == 0.0 || self.per_node_busy.is_empty() {
            return 1.0;
        }
        let avg = total / self.per_node_busy.len() as f64;
        self.makespan().as_secs_f64() / avg
    }

    /// Accumulates another stage executed after this one (busy times add up
    /// node-wise; wall times add).
    pub fn accumulate(&mut self, other: &ExecStats) {
        if self.per_node_busy.len() < other.per_node_busy.len() {
            self.per_node_busy
                .resize(other.per_node_busy.len(), Duration::ZERO);
        }
        for (a, b) in self.per_node_busy.iter_mut().zip(&other.per_node_busy) {
            *a += *b;
        }
        self.wall += other.wall;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.failed_attempts += other.failed_attempts;
        self.speculative_wins += other.speculative_wins;
        // The blacklist is cluster-lifetime state observed per stage, not a
        // per-stage increment: the later stage's view supersedes.
        self.blacklisted_nodes = self.blacklisted_nodes.max(other.blacklisted_nodes);
        self.spilled_bytes += other.spilled_bytes;
        // The memory peak is a watermark like the blacklist.
        self.peak_memory_bytes = self.peak_memory_bytes.max(other.peak_memory_bytes);
    }
}

/// Order statistics over a set of duration samples (queue waits, turnaround
/// times). Percentiles use the nearest-rank method on the sorted samples, so
/// summaries of identical sample sets are identical — no interpolation noise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurationSummary {
    pub count: usize,
    pub mean: Duration,
    pub p50: Duration,
    pub p99: Duration,
    pub max: Duration,
}

impl DurationSummary {
    /// Summarizes `samples` (order irrelevant; empty yields all zeros).
    pub fn from_samples(samples: &[Duration]) -> DurationSummary {
        if samples.is_empty() {
            return DurationSummary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let total: Duration = sorted.iter().sum();
        let rank = |q: f64| {
            let k = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[k - 1]
        };
        DurationSummary {
            count: sorted.len(),
            mean: total / sorted.len() as u32,
            p50: rank(0.50),
            p99: rank(0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Byte accounting of one shuffle, split by whether a record stayed on its
/// source node. `remote_bytes` is the analog of Spark's *shuffle remote
/// reads* metric used throughout the paper's evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShuffleStats {
    /// Bytes of records that crossed simulated nodes.
    pub remote_bytes: u64,
    /// Bytes of records that stayed on their node.
    pub local_bytes: u64,
    /// Records moved (local + remote).
    pub records: u64,
    /// Bytes landing in each target partition — the post-shuffle memory
    /// footprint. The maximum entry is what blows up first when replication
    /// is excessive (the paper's ε-grid out-of-memory failure at scale).
    pub partition_bytes: Vec<u64>,
}

impl ShuffleStats {
    pub fn total_bytes(&self) -> u64 {
        self.remote_bytes + self.local_bytes
    }

    /// Largest post-shuffle partition, in bytes (0 if nothing moved).
    pub fn peak_partition_bytes(&self) -> u64 {
        self.partition_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Merges another shuffle over the same partitioning: co-located
    /// partitions add up (a join holds both inputs' partitions in memory).
    pub fn merge(&mut self, other: &ShuffleStats) {
        self.remote_bytes += other.remote_bytes;
        self.local_bytes += other.local_bytes;
        self.records += other.records;
        if self.partition_bytes.len() < other.partition_bytes.len() {
            self.partition_bytes.resize(other.partition_bytes.len(), 0);
        }
        for (a, b) in self.partition_bytes.iter_mut().zip(&other.partition_bytes) {
            *a += *b;
        }
    }
}

/// Aggregate metrics of one distributed job, mirroring the paper's reporting.
#[derive(Debug, Clone, Default)]
pub struct JobMetrics {
    /// Shuffle volume (both inputs).
    pub shuffle: ShuffleStats,
    /// Simulated/wall time of the construction phase (sampling, graph,
    /// mapping, shuffle).
    pub construction: ExecStats,
    /// Simulated/wall time of the join phase.
    pub join: ExecStats,
    /// Time spent in driver-side serial work (included in construction's
    /// simulated time as a serial stage).
    pub driver: Duration,
    /// Bytes pushed to each executor by broadcast variables (the agreement
    /// grid of Algorithm 5); total network cost is `broadcast_bytes × nodes`.
    pub broadcast_bytes: u64,
}

impl JobMetrics {
    /// Simulated end-to-end execution time: serial driver work plus the
    /// makespan of each parallel phase.
    pub fn simulated_time(&self) -> Duration {
        self.driver + self.construction.makespan() + self.join.makespan()
    }

    /// Real elapsed time on the host.
    pub fn wall_time(&self) -> Duration {
        self.driver + self.construction.wall + self.join.wall
    }

    /// Bytes spilled to disk across both phases (0 unless a memory budget
    /// forced shuffles out of core).
    pub fn spilled_bytes(&self) -> u64 {
        self.construction.spilled_bytes + self.join.spilled_bytes
    }

    /// Highest concurrent per-node memory charge observed across both
    /// phases. When a budget is enforced this never exceeds it.
    pub fn peak_memory_bytes(&self) -> u64 {
        self.construction
            .peak_memory_bytes
            .max(self.join.peak_memory_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn makespan_is_max_node() {
        let s = ExecStats {
            per_node_busy: vec![ms(10), ms(30), ms(20)],
            wall: ms(35),
            ..ExecStats::default()
        };
        assert_eq!(s.makespan(), ms(30));
        assert_eq!(s.total_busy(), ms(60));
        assert!((s.imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_neutral() {
        let s = ExecStats::default();
        assert_eq!(s.makespan(), Duration::ZERO);
        assert_eq!(s.imbalance(), 1.0);
    }

    #[test]
    fn accumulate_adds_nodewise() {
        let mut a = ExecStats {
            per_node_busy: vec![ms(5), ms(10)],
            wall: ms(12),
            attempts: 2,
            retries: 1,
            failed_attempts: 1,
            speculative_wins: 0,
            blacklisted_nodes: 1,
            spilled_bytes: 100,
            peak_memory_bytes: 700,
        };
        let b = ExecStats {
            per_node_busy: vec![ms(1), ms(2), ms(3)],
            wall: ms(4),
            attempts: 3,
            retries: 0,
            failed_attempts: 0,
            speculative_wins: 2,
            blacklisted_nodes: 0,
            spilled_bytes: 50,
            peak_memory_bytes: 400,
        };
        a.accumulate(&b);
        assert_eq!(a.per_node_busy, vec![ms(6), ms(12), ms(3)]);
        assert_eq!(a.wall, ms(16));
        assert_eq!(a.attempts, 5);
        assert_eq!(a.retries, 1);
        assert_eq!(a.failed_attempts, 1);
        assert_eq!(a.speculative_wins, 2);
        assert_eq!(a.blacklisted_nodes, 1, "blacklist accumulates as max");
        assert_eq!(a.spilled_bytes, 150, "spill volume accumulates as sum");
        assert_eq!(a.peak_memory_bytes, 700, "memory peak accumulates as max");
    }

    #[test]
    fn shuffle_stats_merge() {
        let mut a = ShuffleStats {
            remote_bytes: 10,
            local_bytes: 5,
            records: 3,
            partition_bytes: vec![8, 7],
        };
        a.merge(&ShuffleStats {
            remote_bytes: 1,
            local_bytes: 2,
            records: 1,
            partition_bytes: vec![1, 1, 1],
        });
        assert_eq!(a.remote_bytes, 11);
        assert_eq!(a.local_bytes, 7);
        assert_eq!(a.records, 4);
        assert_eq!(a.partition_bytes, vec![9, 8, 1]);
        assert_eq!(a.total_bytes(), 18);
        assert_eq!(a.peak_partition_bytes(), 9);
    }

    #[test]
    fn empty_shuffle_peak_is_zero() {
        assert_eq!(ShuffleStats::default().peak_partition_bytes(), 0);
    }

    #[test]
    fn job_metrics_compose_times() {
        let m = JobMetrics {
            shuffle: ShuffleStats::default(),
            construction: ExecStats {
                per_node_busy: vec![ms(10), ms(20)],
                wall: ms(25),
                ..ExecStats::default()
            },
            join: ExecStats {
                per_node_busy: vec![ms(40), ms(5)],
                wall: ms(42),
                ..ExecStats::default()
            },
            driver: ms(3),
            broadcast_bytes: 0,
        };
        assert_eq!(m.simulated_time(), ms(3 + 20 + 40));
        assert_eq!(m.wall_time(), ms(3 + 25 + 42));
    }

    #[test]
    fn job_metrics_compose_memory() {
        let mut m = JobMetrics::default();
        m.construction.spilled_bytes = 300;
        m.construction.peak_memory_bytes = 900;
        m.join.spilled_bytes = 200;
        m.join.peak_memory_bytes = 1200;
        assert_eq!(m.spilled_bytes(), 500, "phases' spill volumes add");
        assert_eq!(m.peak_memory_bytes(), 1200, "peak is the max watermark");
    }
}
