//! Arena-style buffer recycling for the shuffle's data movement.
//!
//! Every radix shuffle used to allocate (and drop) one `Vec` per
//! (source partition × target partition) plus per-task scratch arrays; on a
//! 16×96 shuffle that is ~1500 allocator round-trips per stage, repeated for
//! every stage of every join. The [`BufferPool`] keeps those allocations
//! alive across stages instead: emptied buffers are returned after the
//! reduce side has drained them and handed back — capacity intact — to the
//! next map task that asks for the same element type.
//!
//! The pool is type-erased (`TypeId` → free list of `Box<dyn Any>`), shared
//! by every clone of a [`Cluster`](crate::Cluster) handle, and safe under
//! the fault-tolerant executor by construction: buffers are checked out per
//! task *attempt* and only returned at driver-side commit points, so a
//! retried or speculative attempt can never observe (or double-fill) a
//! buffer owned by another attempt — the loser's buffers are simply dropped.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cumulative counters of one pool. Deltas around a stage give that stage's
/// allocation behaviour (mirrored into `asj-obs` by the shuffle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from the free list.
    pub hits: u64,
    /// Checkouts that had to allocate fresh.
    pub misses: u64,
    /// Buffers returned to the free list.
    pub returns: u64,
    /// Capacity bytes handed out from the free list — allocator traffic the
    /// pool absorbed.
    pub bytes_recycled: u64,
}

impl PoolStats {
    /// Counter-wise `self - earlier` (for around-a-stage deltas).
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            returns: self.returns - earlier.returns,
            bytes_recycled: self.bytes_recycled - earlier.bytes_recycled,
        }
    }

    /// Counter-wise `self += other`. The job server accumulates each job's
    /// per-quantum deltas with this, so `pool_hits`/`bytes_recycled` in a
    /// job's report are attributable to that job alone (the deltas of all
    /// jobs sum to the cumulative pool counters).
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.returns += other.returns;
        self.bytes_recycled += other.bytes_recycled;
    }
}

/// Per-type cap on retained buffers: beyond this, returns are dropped so one
/// giant stage cannot pin unbounded memory for the process lifetime.
const MAX_RETAINED_PER_TYPE: usize = 4096;

/// A type-erased free list of reusable `Vec<T>` buffers.
///
/// All buffers on the shelf are empty (`len == 0`) with their capacity
/// retained; `take_vec` never hands out stale elements.
pub struct BufferPool {
    shelves: Mutex<HashMap<TypeId, Vec<Box<dyn Any + Send>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    bytes_recycled: AtomicU64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("BufferPool")
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("returns", &stats.returns)
            .field("bytes_recycled", &stats.bytes_recycled)
            .finish()
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new()
    }
}

impl BufferPool {
    pub fn new() -> Self {
        BufferPool {
            shelves: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            returns: AtomicU64::new(0),
            bytes_recycled: AtomicU64::new(0),
        }
    }

    /// An empty `Vec<T>` with capacity ≥ `capacity`, recycled if possible.
    pub fn take_vec<T: Send + 'static>(&self, capacity: usize) -> Vec<T> {
        let mut out = self.take_vecs::<T>(std::slice::from_ref(&capacity));
        out.pop().expect("one capacity in, one vec out")
    }

    /// One buffer per entry of `capacities`, checked out under a single
    /// lock. Zero-capacity entries are served as plain `Vec::new()` without
    /// touching the pool (no allocation either way).
    pub fn take_vecs<T: Send + 'static>(&self, capacities: &[usize]) -> Vec<Vec<T>> {
        let mut shelves = self.shelves.lock().expect("buffer pool poisoned");
        let shelf = shelves.entry(TypeId::of::<T>()).or_default();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut recycled = 0u64;
        let out = capacities
            .iter()
            .map(|&cap| {
                if cap == 0 {
                    return Vec::new();
                }
                match shelf.pop() {
                    Some(boxed) => {
                        let mut v = *boxed
                            .downcast::<Vec<T>>()
                            .expect("shelf keyed by TypeId holds only Vec<T>");
                        debug_assert!(v.is_empty(), "pooled buffers are returned empty");
                        hits += 1;
                        recycled += (v.capacity().min(cap) * std::mem::size_of::<T>()) as u64;
                        if v.capacity() < cap {
                            v.reserve_exact(cap - v.len());
                        }
                        v
                    }
                    None => {
                        misses += 1;
                        Vec::with_capacity(cap)
                    }
                }
            })
            .collect();
        drop(shelves);
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        self.bytes_recycled.fetch_add(recycled, Ordering::Relaxed);
        out
    }

    /// Returns one buffer to the free list (cleared here; capacity kept).
    pub fn put_vec<T: Send + 'static>(&self, v: Vec<T>) {
        self.put_vecs(std::iter::once(v));
    }

    /// Returns a batch of buffers under a single lock. Buffers without
    /// capacity — and anything past the per-type retention cap — are
    /// dropped instead of shelved.
    pub fn put_vecs<T: Send + 'static>(&self, bufs: impl IntoIterator<Item = Vec<T>>) {
        let mut shelves = self.shelves.lock().expect("buffer pool poisoned");
        let shelf = shelves.entry(TypeId::of::<T>()).or_default();
        let mut returns = 0u64;
        for mut v in bufs {
            v.clear();
            if v.capacity() == 0 || shelf.len() >= MAX_RETAINED_PER_TYPE {
                continue;
            }
            returns += 1;
            shelf.push(Box::new(v));
        }
        drop(shelves);
        self.returns.fetch_add(returns, Ordering::Relaxed);
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
            bytes_recycled: self.bytes_recycled.load(Ordering::Relaxed),
        }
    }

    /// Drops every retained buffer (counters are kept).
    pub fn clear(&self) {
        self.shelves.lock().expect("buffer pool poisoned").clear();
    }

    /// Buffers currently shelved (across all types).
    pub fn retained(&self) -> usize {
        self.shelves
            .lock()
            .expect("buffer pool poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_roundtrip() {
        let pool = BufferPool::new();
        let mut v = pool.take_vec::<u64>(100);
        assert!(v.capacity() >= 100);
        assert!(v.is_empty());
        v.extend(0..50u64);
        pool.put_vec(v);
        assert_eq!(pool.retained(), 1);
        let v2 = pool.take_vec::<u64>(80);
        assert!(v2.is_empty(), "recycled buffers must come back cleared");
        assert!(v2.capacity() >= 100, "capacity survives the round trip");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.returns), (1, 1, 1));
        assert!(s.bytes_recycled >= 80 * 8);
    }

    #[test]
    fn types_do_not_mix() {
        let pool = BufferPool::new();
        pool.put_vec::<u32>(Vec::with_capacity(16));
        let v: Vec<u64> = pool.take_vec(4);
        assert!(v.capacity() >= 4);
        assert_eq!(pool.stats().misses, 1, "u32 shelf cannot serve u64");
        assert_eq!(pool.retained(), 1);
    }

    #[test]
    fn zero_capacity_requests_bypass_the_pool() {
        let pool = BufferPool::new();
        pool.put_vec::<u8>(Vec::with_capacity(64));
        let vs = pool.take_vecs::<u8>(&[0, 0, 32]);
        assert_eq!(vs.len(), 3);
        assert_eq!(vs[0].capacity(), 0);
        assert_eq!(vs[1].capacity(), 0);
        assert!(vs[2].capacity() >= 32);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 0));
    }

    #[test]
    fn capacityless_returns_are_dropped() {
        let pool = BufferPool::new();
        pool.put_vec::<u8>(Vec::new());
        assert_eq!(pool.retained(), 0);
        assert_eq!(pool.stats().returns, 0);
    }

    #[test]
    fn undersized_recycled_buffer_is_grown() {
        let pool = BufferPool::new();
        pool.put_vec::<u64>(Vec::with_capacity(8));
        let v = pool.take_vec::<u64>(1000);
        assert!(v.capacity() >= 1000);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn clear_empties_the_shelves() {
        let pool = BufferPool::new();
        pool.put_vec::<u64>(Vec::with_capacity(8));
        pool.put_vec::<u32>(Vec::with_capacity(8));
        assert_eq!(pool.retained(), 2);
        pool.clear();
        assert_eq!(pool.retained(), 0);
    }

    #[test]
    fn concurrent_checkouts_are_safe() {
        use std::sync::Arc;
        let pool = Arc::new(BufferPool::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let mut v = pool.take_vec::<u64>(64);
                        v.push(1);
                        pool.put_vec(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 800);
        assert!(s.returns > 0);
    }
}
