//! Stage checkpoints: durable shuffle outputs for bounded-loss recovery.
//!
//! Every recovery path before this module re-executed from the start of the
//! job: shuffle output lived in self-deleting temp segments, so a lost node
//! or an injected OOM that killed a downstream stage forced the whole
//! upstream lineage to rerun. A [`CheckpointStore`] promotes each completed
//! shuffle stage's partition outputs to *named*, manifest-tracked
//! [`SpillSegment`]s (same [`Wire`](crate::wire::Wire) framing the spill path
//! already uses, so checkpoint volume and `partition_bytes` speak the same
//! unit). On retry — whether a same-process stage rerun or a recovered
//! server process — the fault path consults the manifest first and replays
//! only the stage that actually failed.
//!
//! Durability protocol (crash-consistent by construction):
//!
//! 1. the segment file (`KEY.seg`) is written and fsynced first,
//! 2. the manifest (`KEY.manifest`) is written to a temp name, fsynced, and
//!    atomically renamed into place.
//!
//! A manifest therefore never references bytes that aren't durable, and a
//! crash mid-write leaves either no manifest (checkpoint ignored, stage
//! reruns) or a complete one. Loads verify per-chunk lengths and FNV-1a
//! checksums; any mismatch deletes the pair and reports a miss, so a corrupt
//! checkpoint degrades to recomputation, never to wrong results.
//!
//! The manifest is a line-oriented text file:
//!
//! ```text
//! asj-checkpoint v1
//! stage=<escaped stage name>
//! remote_bytes=<u64>
//! local_bytes=<u64>
//! records=<u64>
//! partition_bytes=<csv of u64>
//! chunk=<target>:<records>:<len>:<offset>:<fnv1a hex>
//! ...
//! end
//! ```
//!
//! The trailing `end` line is the commit marker a torn manifest lacks.

use crate::memory::{decode_records, encode_records, SpillChunk, SpillSegment, SpillWriter};
use crate::metrics::ShuffleStats;
use crate::wire::Wire;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a over `bytes` — the repo's standing checksum for result and chunk
/// integrity (same constants as `fault::stage_hash` and the join checksums).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Replaces any character that could upset a filename with `_`. Checkpoint
/// keys embed stage names (which carry `:` prefixes like `job:3:shuffle`).
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// What a committed checkpoint decodes back to: the per-partition `(K, V)`
/// outputs of a shuffle stage plus the byte meters measured when it ran.
pub type CheckpointPayload<K, V> = (Vec<Vec<(K, V)>>, ShuffleStats);

/// A directory of stage checkpoints plus the obs counters the recovery
/// benchmark reports. Shared (via `Arc`) by every clone of a
/// [`Cluster`](crate::Cluster) handle.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    checkpoint_bytes: AtomicU64,
    stages_recovered: AtomicU64,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory and sweeps debris a
    /// prior crashed run may have left: torn manifest temp files and segment
    /// files with no committed manifest.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = CheckpointStore {
            dir,
            checkpoint_bytes: AtomicU64::new(0),
            stages_recovered: AtomicU64::new(0),
        };
        store.sweep_orphans()?;
        Ok(store)
    }

    /// The directory checkpoints live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes written into checkpoint segments by this store.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.checkpoint_bytes.load(Ordering::Relaxed)
    }

    /// Stages served from a checkpoint instead of recomputation.
    pub fn stages_recovered(&self) -> u64 {
        self.stages_recovered.load(Ordering::Relaxed)
    }

    fn seg_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.seg"))
    }

    fn manifest_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.manifest"))
    }

    /// Deletes `*.manifest.tmp` debris and `*.seg` files whose manifest never
    /// committed — both are artifacts of a crash between steps 1 and 2 of
    /// the durability protocol and can never be loaded.
    fn sweep_orphans(&self) -> std::io::Result<()> {
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".manifest.tmp") {
                let _ = std::fs::remove_file(&path);
            } else if let Some(key) = name.strip_suffix(".seg") {
                if !self.manifest_path(key).exists() {
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        Ok(())
    }

    /// Persists one completed stage's partition outputs under `key`.
    /// Returns the segment bytes written. Every partition gets a chunk
    /// (empty partitions included) so `load` can rebuild the exact
    /// partition vector.
    pub fn save<K: Wire, V: Wire>(
        &self,
        key: &str,
        parts: &[Vec<(K, V)>],
        shuffle: &ShuffleStats,
    ) -> std::io::Result<u64> {
        let mut writer = SpillWriter::create_at(self.seg_path(key))?;
        let mut checksums: Vec<u64> = Vec::with_capacity(parts.len());
        for (target, part) in parts.iter().enumerate() {
            let bytes = encode_records(part);
            checksums.push(fnv1a(&bytes));
            writer.write_chunk(target, &bytes, part.len() as u64)?;
        }
        let written = writer.bytes_written();
        // Empty stages still checkpoint: finish() returns None only when no
        // chunk was written, which save never does for a non-empty partition
        // vector; a zero-partition stage commits manifest-only.
        if let Some(mut segment) = writer.finish()? {
            segment.persist()?;
            self.write_manifest(key, segment.chunks(), &checksums, shuffle)?;
        } else {
            self.write_manifest(key, &[], &checksums, shuffle)?;
        }
        self.checkpoint_bytes.fetch_add(written, Ordering::Relaxed);
        Ok(written)
    }

    fn write_manifest(
        &self,
        key: &str,
        chunks: &[SpillChunk],
        checksums: &[u64],
        shuffle: &ShuffleStats,
    ) -> std::io::Result<()> {
        let mut text = String::from("asj-checkpoint v1\n");
        text.push_str(&format!("stage={key}\n"));
        text.push_str(&format!("remote_bytes={}\n", shuffle.remote_bytes));
        text.push_str(&format!("local_bytes={}\n", shuffle.local_bytes));
        text.push_str(&format!("records={}\n", shuffle.records));
        let pb: Vec<String> = shuffle
            .partition_bytes
            .iter()
            .map(|b| b.to_string())
            .collect();
        text.push_str(&format!("partition_bytes={}\n", pb.join(",")));
        for chunk in chunks {
            text.push_str(&format!(
                "chunk={}:{}:{}:{}:{:016x}\n",
                chunk.target,
                chunk.records,
                chunk.len,
                chunk.offset(),
                checksums[chunk.target],
            ));
        }
        text.push_str("end\n");

        let tmp = self.dir.join(format!("{key}.manifest.tmp"));
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, self.manifest_path(key))?;
        // POSIX durability: `rename(2)` updates a directory entry, and that
        // entry is only on disk once the *directory* has been fsynced —
        // fsyncing the manifest file persisted its bytes, not its name. A
        // crash here without the dir fsync could roll the rename back and
        // lose a checkpoint the caller was just told is committed.
        crate::journal::fsync_dir(&self.dir)
    }

    /// Loads a checkpoint, or `Ok(None)` when `key` was never committed or
    /// failed verification (corrupt pairs are deleted so a fresh save can
    /// replace them). I/O errors other than "not there" still surface.
    pub fn load<K: Wire, V: Wire>(
        &self,
        key: &str,
    ) -> std::io::Result<Option<CheckpointPayload<K, V>>> {
        let manifest_path = self.manifest_path(key);
        let text = match std::fs::read_to_string(&manifest_path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        match self.decode_checkpoint::<K, V>(key, &text) {
            Some(out) => Ok(Some(out)),
            None => {
                // Torn or corrupt: remove both halves and report a miss so
                // the stage recomputes and re-checkpoints cleanly.
                let _ = std::fs::remove_file(&manifest_path);
                let _ = std::fs::remove_file(self.seg_path(key));
                Ok(None)
            }
        }
    }

    /// Strict manifest + segment decode; any irregularity is `None`.
    fn decode_checkpoint<K: Wire, V: Wire>(
        &self,
        key: &str,
        text: &str,
    ) -> Option<CheckpointPayload<K, V>> {
        let (chunks, shuffle) = self.verified_chunks(key, text)?;
        let mut parts: Vec<Vec<(K, V)>> = Vec::with_capacity(chunks.len());
        for (bytes, records) in &chunks {
            parts.push(decode_records::<K, V>(bytes, *records).ok()?);
        }
        Some((parts, shuffle))
    }

    /// Parses a manifest and reads back every chunk's raw bytes, verifying
    /// lengths and FNV-1a checksums. Returns the positional
    /// `(bytes, records)` per partition plus the recorded stats; any
    /// irregularity is `None`.
    fn verified_chunks(&self, key: &str, text: &str) -> Option<(Vec<(Vec<u8>, u64)>, ShuffleStats)> {
        let mut lines = text.lines();
        if lines.next()? != "asj-checkpoint v1" {
            return None;
        }
        let mut shuffle = ShuffleStats::default();
        let mut chunks: Vec<(SpillChunk, u64)> = Vec::new();
        let mut committed = false;
        for line in lines {
            if line == "end" {
                committed = true;
                break;
            }
            let (field, value) = line.split_once('=')?;
            match field {
                "stage" => {
                    if value != key {
                        return None;
                    }
                }
                "remote_bytes" => shuffle.remote_bytes = value.parse().ok()?,
                "local_bytes" => shuffle.local_bytes = value.parse().ok()?,
                "records" => shuffle.records = value.parse().ok()?,
                "partition_bytes" => {
                    if !value.is_empty() {
                        shuffle.partition_bytes = value
                            .split(',')
                            .map(|v| v.parse().ok())
                            .collect::<Option<Vec<u64>>>()?;
                    }
                }
                "chunk" => {
                    let parts: Vec<&str> = value.split(':').collect();
                    let [target, records, len, offset, sum] = parts.as_slice() else {
                        return None;
                    };
                    chunks.push((
                        SpillChunk::new(
                            target.parse().ok()?,
                            records.parse().ok()?,
                            len.parse().ok()?,
                            offset.parse().ok()?,
                        ),
                        u64::from_str_radix(sum, 16).ok()?,
                    ));
                }
                _ => return None,
            }
        }
        if !committed {
            return None;
        }
        if chunks.is_empty() {
            return Some((Vec::new(), shuffle));
        }
        let segment =
            SpillSegment::open(self.seg_path(key), chunks.iter().map(|(c, _)| *c).collect())
                .ok()?;
        let mut parts: Vec<(Vec<u8>, u64)> = Vec::with_capacity(chunks.len());
        for (chunk, expected_sum) in &chunks {
            // Chunks are written in target order (0..parts.len()), so the
            // rebuilt vector is positional.
            if chunk.target != parts.len() {
                return None;
            }
            let bytes = segment.read_chunk(chunk).ok()?;
            if bytes.len() as u64 != chunk.len || fnv1a(&bytes) != *expected_sum {
                return None;
            }
            parts.push((bytes, chunk.records));
        }
        Some((parts, shuffle))
    }

    /// Persists one completed *join* stage's outputs under `key`: per
    /// partition, the emitted results plus the fold accumulator, framed
    /// through the same `Wire` codec and FNV-verified manifest the shuffle
    /// checkpoints use. The partition-local join phase is exactly where the
    /// ε-grid memory pressure lives, so skipping it on recovery saves the
    /// most expensive re-execution of all.
    pub fn save_join<R: Wire, A: Wire>(
        &self,
        key: &str,
        parts: &[(Vec<R>, A)],
    ) -> std::io::Result<u64> {
        let mut writer = SpillWriter::create_at(self.seg_path(key))?;
        let mut checksums: Vec<u64> = Vec::with_capacity(parts.len());
        let mut stats = ShuffleStats::default();
        for (target, (out, acc)) in parts.iter().enumerate() {
            let bytes = encode_join_part(out, acc);
            stats.records += out.len() as u64;
            stats.partition_bytes.push(bytes.len() as u64);
            checksums.push(fnv1a(&bytes));
            writer.write_chunk(target, &bytes, out.len() as u64)?;
        }
        let written = writer.bytes_written();
        if let Some(mut segment) = writer.finish()? {
            segment.persist()?;
            self.write_manifest(key, segment.chunks(), &checksums, &stats)?;
        } else {
            self.write_manifest(key, &[], &checksums, &stats)?;
        }
        self.checkpoint_bytes.fetch_add(written, Ordering::Relaxed);
        Ok(written)
    }

    /// Loads a join-stage checkpoint saved by [`CheckpointStore::save_join`];
    /// same miss/self-heal contract as [`CheckpointStore::load`].
    #[allow(clippy::type_complexity)]
    pub fn load_join<R: Wire, A: Wire>(
        &self,
        key: &str,
    ) -> std::io::Result<Option<Vec<(Vec<R>, A)>>> {
        let manifest_path = self.manifest_path(key);
        let text = match std::fs::read_to_string(&manifest_path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let decoded = self.verified_chunks(key, &text).and_then(|(chunks, _)| {
            chunks
                .iter()
                .map(|(bytes, records)| decode_join_part::<R, A>(bytes, *records))
                .collect::<Option<Vec<_>>>()
        });
        match decoded {
            Some(parts) => Ok(Some(parts)),
            None => {
                // Torn or corrupt: remove both halves and report a miss so
                // the stage recomputes and re-checkpoints cleanly.
                let _ = std::fs::remove_file(&manifest_path);
                let _ = std::fs::remove_file(self.seg_path(key));
                Ok(None)
            }
        }
    }

    /// Retention GC: unlinks every checkpoint whose key belongs to `scope`
    /// (the per-job prefix [`CheckpointCtx`] keys under). Call only once the
    /// job's `done` record is fsynced in the journal — the crash-safe delete
    /// order is
    ///
    /// 1. journal `done` fsynced (the caller's precondition),
    /// 2. segment unlinked,
    /// 3. manifest unlinked,
    ///
    /// so a crash anywhere mid-GC leaves at worst a manifest without its
    /// segment, which [`CheckpointStore::load`] self-heals into a miss:
    /// recovery degrades to recomputation (and the job's journaled result
    /// makes even that unnecessary), never to data loss. Returns the bytes
    /// reclaimed.
    pub fn gc_scope(&self, scope: &str) -> std::io::Result<u64> {
        let prefix = format!("{}-", sanitize(scope));
        let mut keys: Vec<String> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(key) = name.strip_suffix(".manifest") {
                if key.starts_with(&prefix) {
                    keys.push(key.to_string());
                }
            }
        }
        let mut reclaimed = 0u64;
        for key in &keys {
            // Segment before manifest — see the ordering contract above.
            for path in [self.seg_path(key), self.manifest_path(key)] {
                let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                if std::fs::remove_file(&path).is_ok() {
                    reclaimed = reclaimed.saturating_add(len);
                }
            }
        }
        Ok(reclaimed)
    }

    /// Bytes currently on disk under the checkpoint directory (segments,
    /// manifests and any in-flight temp files) — the observable the
    /// retention policy bounds.
    pub fn disk_usage_bytes(&self) -> std::io::Result<u64> {
        let mut total = 0u64;
        for entry in std::fs::read_dir(&self.dir)? {
            total = total.saturating_add(entry?.metadata().map(|m| m.len()).unwrap_or(0));
        }
        Ok(total)
    }

    /// Counts one stage served from checkpoint (called by the cluster when a
    /// load hits).
    pub(crate) fn note_recovered(&self) {
        self.stages_recovered.fetch_add(1, Ordering::Relaxed);
    }
}

/// Frames one join partition for checkpointing: the fold accumulator first,
/// then the emitted records back to back (the chunk's record count delimits
/// them on decode).
fn encode_join_part<R: Wire, A: Wire>(out: &[R], acc: &A) -> Vec<u8> {
    let mut buf =
        Vec::with_capacity(acc.encoded_size() + out.iter().map(Wire::encoded_size).sum::<usize>());
    acc.encode(&mut buf);
    for r in out {
        r.encode(&mut buf);
    }
    buf
}

/// Inverse of [`encode_join_part`]; trailing bytes are corruption, `None`.
fn decode_join_part<R: Wire, A: Wire>(bytes: &[u8], records: u64) -> Option<(Vec<R>, A)> {
    let mut cursor = bytes;
    let acc = A::try_decode(&mut cursor).ok()?;
    let mut out = Vec::with_capacity(records as usize);
    for _ in 0..records {
        out.push(R::try_decode(&mut cursor).ok()?);
    }
    if !cursor.is_empty() {
        return None;
    }
    Some((out, acc))
}

/// Per-job view of a [`CheckpointStore`]: a scope (unique per job) plus a
/// per-stage occurrence counter, so the Nth execution of a stage name inside
/// a deterministic job body always maps to the same checkpoint key — on the
/// first run *and* on the recovery run.
#[derive(Debug)]
pub struct CheckpointCtx {
    store: Arc<CheckpointStore>,
    scope: String,
    seq: Mutex<HashMap<String, u64>>,
    /// Journal sink for stage-complete records: `(journal, job id)`.
    journal: Option<(Arc<crate::journal::Journal>, u64)>,
}

impl CheckpointCtx {
    pub(crate) fn new(
        store: Arc<CheckpointStore>,
        scope: impl Into<String>,
        journal: Option<(Arc<crate::journal::Journal>, u64)>,
    ) -> Self {
        CheckpointCtx {
            store,
            scope: scope.into(),
            seq: Mutex::new(HashMap::new()),
            journal,
        }
    }

    pub(crate) fn store(&self) -> &Arc<CheckpointStore> {
        &self.store
    }

    /// The checkpoint key for the next occurrence of `stage` in this scope.
    /// Advances the occurrence counter on hit and miss alike, so replayed
    /// bodies stay aligned with their first run.
    pub(crate) fn next_key(&self, stage: &str) -> String {
        let mut seq = self.seq.lock().expect("checkpoint seq poisoned");
        let n = seq.entry(stage.to_string()).or_insert(0);
        let key = format!("{}-{}-{}", sanitize(&self.scope), sanitize(stage), n);
        *n += 1;
        key
    }

    /// Appends the stage-complete record (manifest pointer included) to the
    /// job journal, if one is attached. Journal failures are soft: the
    /// checkpoint itself is already durable.
    pub(crate) fn journal_stage_complete(&self, stage: &str, key: &str, bytes: u64) {
        if let Some((journal, job)) = &self.journal {
            let _ = journal.append(&crate::journal::JournalRecord::Stage {
                job: *job,
                stage: stage.to_string(),
                key: key.to_string(),
                bytes,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("asj-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("test dir");
        dir
    }

    fn sample_parts() -> Vec<Vec<(u64, Vec<u8>)>> {
        vec![
            vec![(1, vec![1, 2, 3]), (2, Vec::new())],
            Vec::new(),
            vec![(9, vec![42; 16])],
        ]
    }

    fn sample_stats() -> ShuffleStats {
        ShuffleStats {
            remote_bytes: 1234,
            local_bytes: 567,
            records: 3,
            partition_bytes: vec![31, 0, 36],
        }
    }

    #[test]
    fn checkpoint_round_trips_partitions_and_stats() {
        let dir = test_dir("roundtrip");
        let store = CheckpointStore::open(&dir).expect("open");
        let parts = sample_parts();
        let stats = sample_stats();
        let bytes = store.save("job0-shuffle-0", &parts, &stats).expect("save");
        assert!(bytes > 0);
        assert_eq!(store.checkpoint_bytes(), bytes);
        let (got_parts, got_stats) = store
            .load::<u64, Vec<u8>>("job0-shuffle-0")
            .expect("load")
            .expect("hit");
        assert_eq!(got_parts, parts, "partitions round-trip byte-identically");
        assert_eq!(got_stats, stats, "shuffle stats round-trip");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn missing_checkpoint_is_a_miss_not_an_error() {
        let dir = test_dir("miss");
        let store = CheckpointStore::open(&dir).expect("open");
        assert!(store
            .load::<u64, u64>("never-saved")
            .expect("load")
            .is_none());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn corrupt_segment_degrades_to_a_miss_and_cleans_up() {
        let dir = test_dir("corrupt");
        let store = CheckpointStore::open(&dir).expect("open");
        store
            .save("k", &sample_parts(), &sample_stats())
            .expect("save");
        // Flip a byte in the segment: the FNV checksum must catch it.
        let seg = dir.join("k.seg");
        let mut bytes = std::fs::read(&seg).expect("read seg");
        bytes[0] ^= 0xFF;
        std::fs::write(&seg, &bytes).expect("rewrite seg");
        assert!(
            store.load::<u64, Vec<u8>>("k").expect("load").is_none(),
            "corruption is a miss, never wrong data"
        );
        assert!(!dir.join("k.manifest").exists(), "corrupt pair is deleted");
        assert!(!seg.exists());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn torn_manifest_is_ignored() {
        let dir = test_dir("torn");
        let store = CheckpointStore::open(&dir).expect("open");
        store
            .save("k", &sample_parts(), &sample_stats())
            .expect("save");
        // Truncate the manifest before its `end` commit marker.
        let manifest = dir.join("k.manifest");
        let text = std::fs::read_to_string(&manifest).expect("read");
        let torn = text.strip_suffix("end\n").expect("ends with marker");
        std::fs::write(&manifest, torn).expect("tear");
        assert!(store.load::<u64, Vec<u8>>("k").expect("load").is_none());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn open_sweeps_uncommitted_debris() {
        let dir = test_dir("sweep");
        std::fs::write(dir.join("stale.seg"), b"no manifest").expect("seg");
        std::fs::write(dir.join("half.manifest.tmp"), b"torn").expect("tmp");
        {
            let store = CheckpointStore::open(&dir).expect("open once");
            store
                .save("good", &sample_parts(), &sample_stats())
                .expect("save");
        }
        let _ = CheckpointStore::open(&dir).expect("reopen sweeps");
        assert!(!dir.join("stale.seg").exists(), "orphan segment removed");
        assert!(!dir.join("half.manifest.tmp").exists(), "tmp removed");
        assert!(dir.join("good.seg").exists(), "committed pair survives");
        assert!(dir.join("good.manifest").exists());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn ctx_keys_count_stage_occurrences_per_scope() {
        let dir = test_dir("keys");
        let store = Arc::new(CheckpointStore::open(&dir).expect("open"));
        let ctx = CheckpointCtx::new(Arc::clone(&store), "job:3", None);
        assert_eq!(ctx.next_key("shuffle"), "job_3-shuffle-0");
        assert_eq!(ctx.next_key("shuffle"), "job_3-shuffle-1");
        assert_eq!(ctx.next_key("re-key"), "job_3-re_key-0");
        let again = CheckpointCtx::new(store, "job:3", None);
        assert_eq!(
            again.next_key("shuffle"),
            "job_3-shuffle-0",
            "a fresh ctx (the recovery run) replays the same key sequence"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn join_checkpoint_round_trips_outputs_and_accumulators() {
        let dir = test_dir("join-roundtrip");
        let store = CheckpointStore::open(&dir).expect("open");
        let parts: Vec<(Vec<(u64, u64)>, (u64, u64))> = vec![
            (vec![(1, 2), (3, 4)], (10, 20)),
            (Vec::new(), (0, 7)),
            (vec![(9, 9)], (1, 1)),
        ];
        let bytes = store.save_join("job0-join-0", &parts).expect("save");
        assert!(bytes > 0);
        let got = store
            .load_join::<(u64, u64), (u64, u64)>("job0-join-0")
            .expect("load")
            .expect("hit");
        assert_eq!(got, parts, "join outputs and accumulators round-trip");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn corrupt_join_checkpoint_is_a_miss() {
        let dir = test_dir("join-corrupt");
        let store = CheckpointStore::open(&dir).expect("open");
        let parts: Vec<(Vec<(u64, u64)>, u64)> = vec![(vec![(1, 2)], 5)];
        store.save_join("k", &parts).expect("save");
        let seg = dir.join("k.seg");
        let mut bytes = std::fs::read(&seg).expect("read seg");
        bytes[0] ^= 0xFF;
        std::fs::write(&seg, &bytes).expect("rewrite seg");
        assert!(store
            .load_join::<(u64, u64), u64>("k")
            .expect("load")
            .is_none());
        assert!(!dir.join("k.manifest").exists(), "corrupt pair deleted");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn gc_scope_removes_only_the_given_jobs_checkpoints() {
        let dir = test_dir("gc");
        let store = CheckpointStore::open(&dir).expect("open");
        let parts = sample_parts();
        let stats = sample_stats();
        // job1 must not be collateral damage of job1x's GC (or vice versa):
        // the prefix includes the trailing dash.
        for key in ["job1-shuffle-0", "job1-join-0", "job1x-shuffle-0"] {
            store.save(key, &parts, &stats).expect("save");
        }
        let before = store.disk_usage_bytes().expect("usage");
        let reclaimed = store.gc_scope("job1").expect("gc");
        assert!(reclaimed > 0, "bytes reclaimed are reported");
        let after = store.disk_usage_bytes().expect("usage");
        assert_eq!(after, before - reclaimed);
        assert!(!dir.join("job1-shuffle-0.manifest").exists());
        assert!(!dir.join("job1-shuffle-0.seg").exists());
        assert!(!dir.join("job1-join-0.manifest").exists());
        assert!(dir.join("job1x-shuffle-0.manifest").exists());
        assert!(dir.join("job1x-shuffle-0.seg").exists());
        // GC of a scope with no checkpoints is a no-op, not an error.
        assert_eq!(store.gc_scope("job99").expect("gc"), 0);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn crash_mid_gc_self_heals_into_a_miss() {
        let dir = test_dir("gc-crash");
        let store = CheckpointStore::open(&dir).expect("open");
        store
            .save("job2-shuffle-0", &sample_parts(), &sample_stats())
            .expect("save");
        // Simulate a crash between the seg unlink and the manifest unlink —
        // the worst interleaving the delete order permits.
        std::fs::remove_file(dir.join("job2-shuffle-0.seg")).expect("unlink seg");
        assert!(
            store
                .load::<u64, Vec<u8>>("job2-shuffle-0")
                .expect("load")
                .is_none(),
            "manifest without segment degrades to a miss"
        );
        assert!(
            !dir.join("job2-shuffle-0.manifest").exists(),
            "the dangling manifest was self-healed away"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
