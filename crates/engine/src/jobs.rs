//! Multi-tenant job server: admission control, deterministic fair-share
//! scheduling and per-job isolation on one simulated cluster.
//!
//! The engine governs a *single* ε-join end-to-end; this module runs **many**
//! of them on the same nodes, the way a production deployment would. Three
//! mechanisms, layered on what the engine already has:
//!
//! * **Admission control** — every [`JobSpec`] carries an estimated per-node
//!   working set. A job is admitted only when that estimate fits the
//!   remaining per-node budget (`budget − Σ reserved`); an estimate that can
//!   *never* fit is rejected at submit time with a typed
//!   [`SubmitError::RejectedMemory`] instead of a panic. Admission is
//!   capacity *planning*; the [`MemoryAccountant`](crate::MemoryAccountant)
//!   stays the hard enforcement (a mis-estimate degrades to spill, never to
//!   an OOM), which is exactly the replication-vs-reducer-memory trade-off of
//!   Afrati & Ullman applied at the cluster door.
//!
//! * **Deterministic fair-share scheduling** — admitted jobs run their bodies
//!   on their own threads, but in *lockstep*: a shared stage gate parks every
//!   job at each stage boundary, and the scheduler grants exactly one job one
//!   quantum (driver work plus at most one parallel stage) at a time. Because
//!   at most one job is ever mid-quantum, results, per-job accounting and the
//!   grant order are all reproducible. Fair share is weighted round-robin on
//!   *quantum counts* (`vruntime = quanta × 10⁶ / weight`, ties broken by job
//!   id) — deliberately not on measured durations, which would be noisy.
//!   [`SchedPolicy::Fifo`] (always the lowest admitted id) is kept as the A/B
//!   baseline.
//!
//! * **Per-job isolation** — each job gets its own clone of the cluster
//!   handle carrying (a) a [`Recorder`](crate::Recorder) view prefixed
//!   `job:<id>:` so spans, events and counters land in per-tenant lanes,
//!   (b) its **own** fault context (plan, retry policy, attempt counters,
//!   blacklist) so one tenant's chaos plan cannot blacklist nodes for
//!   another, and (c) exclusive quanta, which make `BufferPool` deltas and
//!   the completion-time memory **leak audit** (resident bytes must be 0
//!   when a job finishes — every `ChargeGuard` settles at its stage's commit
//!   point) exact rather than approximate. Panicking bodies are caught and
//!   reported per job; the other tenants keep running.

use crate::bufpool::PoolStats;
use crate::checkpoint::fnv1a;
use crate::cluster::Cluster;
use crate::fault::{FaultPlan, RetryPolicy};
use crate::journal::{Journal, JournalRecord};
use crate::metrics::ExecStats;
use crate::wire::Wire;
use asj_obs::{Attrs, Lane};
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Identifies a submitted job; assigned densely in submit order.
pub type JobId = usize;

/// How the server picks the next parked job to grant a quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Weighted round-robin by quantum count, tie-broken by job id. Every
    /// admitted job is served within each round, so queue waits stay bounded
    /// by the round length instead of the whole backlog.
    #[default]
    FairShare,
    /// Strictly lowest admitted job id until it finishes — run-to-completion
    /// in submit order. The baseline fair share is measured against.
    Fifo,
}

impl SchedPolicy {
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::FairShare => "fair-share",
            SchedPolicy::Fifo => "fifo",
        }
    }

    /// Parses `"fair-share"` / `"fifo"` (as the CLI and bench spell them).
    pub fn parse(s: &str) -> Option<SchedPolicy> {
        match s {
            "fair-share" | "fairshare" | "fair" => Some(SchedPolicy::FairShare),
            "fifo" => Some(SchedPolicy::Fifo),
            _ => None,
        }
    }
}

/// Why a submission was refused. Typed, so drivers can queue elsewhere or
/// shed load instead of unwinding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The job's estimated per-node working set exceeds the per-node budget
    /// outright — it could never be admitted, even on an idle cluster.
    RejectedMemory {
        /// The job's estimated per-node working set.
        estimate_bytes: u64,
        /// The cluster's per-node budget.
        budget_bytes: u64,
    },
    /// The submission queue is at capacity.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::RejectedMemory {
                estimate_bytes,
                budget_bytes,
            } => write!(
                f,
                "estimated working set of {estimate_bytes} B/node exceeds the \
                 per-node budget of {budget_bytes} B"
            ),
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue is full ({capacity} jobs)")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

type JobBody<R> = Box<dyn FnOnce(&Cluster) -> R + Send + 'static>;

/// One tenant's job: a name, scheduling weight, admission estimate, optional
/// private fault plan, and the body that runs it on a (gated, prefixed,
/// per-job) cluster handle.
pub struct JobSpec<R> {
    name: String,
    weight: u32,
    estimate_bytes: u64,
    faults: Option<(FaultPlan, RetryPolicy)>,
    body: JobBody<R>,
}

impl<R> std::fmt::Debug for JobSpec<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("weight", &self.weight)
            .field("estimate_bytes", &self.estimate_bytes)
            .field("faults", &self.faults.is_some())
            .finish_non_exhaustive()
    }
}

impl<R> JobSpec<R> {
    /// A job with weight 1 and a zero (always-admissible) memory estimate.
    pub fn new(name: impl Into<String>, body: impl FnOnce(&Cluster) -> R + Send + 'static) -> Self {
        JobSpec {
            name: name.into(),
            weight: 1,
            estimate_bytes: 0,
            faults: None,
            body: Box::new(body),
        }
    }

    /// Fair-share weight: a weight-2 job receives twice the quanta of a
    /// weight-1 job while both are runnable.
    ///
    /// # Panics
    /// Panics if `weight == 0` (it would never be scheduled).
    pub fn with_weight(mut self, weight: u32) -> Self {
        assert!(weight > 0, "job weight must be positive");
        self.weight = weight;
        self
    }

    /// Estimated per-node working set, checked against the cluster budget at
    /// submit and admission time. Zero means "admit whenever a slot is free".
    pub fn with_estimate(mut self, bytes: u64) -> Self {
        self.estimate_bytes = bytes;
        self
    }

    /// A private fault plan and retry policy for this job. Fault state
    /// (attempt counters, blacklist) is created fresh per job, so injected
    /// chaos here never leaks into another tenant's retries.
    pub fn with_faults(mut self, plan: FaultPlan, policy: RetryPolicy) -> Self {
        self.faults = Some((plan, policy));
        self
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn estimate_bytes(&self) -> u64 {
        self.estimate_bytes
    }
}

/// Everything the server measured about one finished job.
#[derive(Debug)]
pub struct JobReport<R> {
    pub id: JobId,
    pub name: String,
    pub weight: u32,
    pub estimate_bytes: u64,
    /// The body's return value, or the panic message if the body crashed.
    /// A crash fails only this job; other tenants keep running.
    pub result: Result<R, String>,
    /// This job's stages accumulated (attempts, retries, spill, per-node
    /// busy). Isolated: no other tenant's stages are mixed in.
    pub stats: ExecStats,
    /// `BufferPool` activity attributable to this job — exact, because pool
    /// deltas are snapshotted around the job's exclusive quanta.
    pub pool: PoolStats,
    /// Parallel stages the job ran.
    pub stages: u64,
    /// Scheduling quanta the job consumed (stages + driver-only windows).
    pub quanta: u64,
    /// Server clock when the job was admitted (reservation taken).
    pub admitted_at: Duration,
    /// Server clock at the job's first granted quantum.
    pub first_service_at: Duration,
    /// Server clock when the job finished.
    pub finished_at: Duration,
    /// Bytes still resident across all nodes when the job completed — the
    /// leak audit. Always 0 unless a `ChargeGuard` failed to settle.
    pub residual_bytes: u64,
    /// The result was replayed from a journaled `done` record instead of
    /// re-running the body — set only by [`JobServer::recover`].
    pub recovered: bool,
}

impl<R> JobReport<R> {
    /// Time from submit (server clock 0) to first granted quantum — how long
    /// the tenant waited before any of its work ran.
    pub fn queue_wait(&self) -> Duration {
        self.first_service_at
    }

    /// Time from submit (server clock 0) to completion.
    pub fn turnaround(&self) -> Duration {
        self.finished_at
    }

    /// Simulated makespan of this job's own stages (max per-node busy).
    pub fn makespan(&self) -> Duration {
        self.stats.makespan()
    }
}

/// Outcome of [`JobServer::run`]: per-job reports (in submit order) plus the
/// server-level schedule.
#[derive(Debug)]
pub struct ServerRun<R> {
    pub policy: SchedPolicy,
    pub reports: Vec<JobReport<R>>,
    /// The quantum grant log, in order. Depends only on weights, stage
    /// counts, estimates and ids — never on measured durations — so it is
    /// byte-identical across runs of the same queue.
    pub grants: Vec<JobId>,
    /// Final server clock: submit-to-last-completion in serialized simulated
    /// time (each quantum advances the clock by its stage's makespan).
    pub clock: Duration,
    /// The server crashed (a [`FaultPlan::with_crash_after_grants`] clause
    /// fired) before draining the queue. Reports for unfinished jobs carry
    /// `Err` results; the journal on disk holds everything needed to
    /// [`JobServer::recover`].
    pub crashed: bool,
    /// Shuffle stages whose outputs were replayed from checkpoints instead
    /// of recomputed (from the cluster's [`CheckpointStore`] counters).
    pub stages_recovered: u64,
    /// Bytes written to stage checkpoints during this run.
    pub checkpoint_bytes: u64,
    /// For a recovered server: the grant log of the crashed run, as read
    /// back from the journal. Recovery proptests pin that this equals a
    /// prefix of the uncrashed run's `grants`.
    pub journal_grants: Vec<JobId>,
}

/// Per-job slot in the shared gate.
#[derive(Debug, Default)]
struct JobState {
    /// The scheduler granted a quantum that the job has not consumed yet.
    granted: bool,
    /// The job thread is parked at a stage boundary, waiting for a grant.
    parked: bool,
    /// The job body returned (or panicked); the thread is done.
    finished: bool,
    /// Stage stats accumulated by `note_stage`, isolated to this job.
    stats: ExecStats,
    stages: u64,
    quanta: u64,
    /// Simulated cost of the quantum in flight (its stage's makespan);
    /// drained into the server clock when the quantum ends.
    window_cost: Duration,
}

#[derive(Debug, Default)]
struct GateCore {
    state: Mutex<Vec<JobState>>,
    cv: Condvar,
}

/// Handle a job's cluster clone uses to participate in lockstep scheduling.
/// [`JobGate::pause`] parks at a stage boundary until granted;
/// [`JobGate::note_stage`] bills a completed stage to the job.
#[derive(Debug)]
pub(crate) struct JobGate {
    core: Arc<GateCore>,
    job: JobId,
}

impl JobGate {
    /// Parks the calling job thread until the scheduler grants it a quantum.
    /// Called by [`Cluster::try_run_placed_stage`] before dispatching, and by
    /// the server once before the body starts (so pre-stage driver work is
    /// gated too).
    pub(crate) fn pause(&self) {
        let mut st = self.core.state.lock().expect("job gate poisoned");
        st[self.job].parked = true;
        self.core.cv.notify_all();
        while !st[self.job].granted {
            st = self.core.cv.wait(st).expect("job gate poisoned");
        }
        st[self.job].granted = false;
        st[self.job].parked = false;
    }

    /// Bills a completed stage to the job: accumulates its stats and charges
    /// the quantum in flight with the stage's simulated makespan.
    pub(crate) fn note_stage(&self, stats: &ExecStats) {
        let mut st = self.core.state.lock().expect("job gate poisoned");
        let s = &mut st[self.job];
        s.stats.accumulate(stats);
        s.stages += 1;
        s.window_cost += stats.makespan();
    }

    /// Marks the job finished and wakes the scheduler. Called exactly once
    /// per job, after the body returned or panicked.
    fn finish(&self) {
        let mut st = self.core.state.lock().expect("job gate poisoned");
        st[self.job].finished = true;
        self.core.cv.notify_all();
    }
}

/// A submitted-but-not-yet-admitted job.
struct Queued<R> {
    id: JobId,
    spec: JobSpec<R>,
}

/// One admitted job's runtime bookkeeping.
struct Admitted<R> {
    id: JobId,
    name: String,
    weight: u32,
    estimate_bytes: u64,
    /// Taken (and joined) exactly once, at reap time.
    handle: Option<std::thread::JoinHandle<Result<R, String>>>,
    admitted_at: Duration,
    first_service_at: Option<Duration>,
    pool: PoolStats,
}

/// Serializer turning a job result into the journal's `done`-record bytes.
type ResultCodec<R> = Arc<dyn Fn(&R) -> Vec<u8> + Send + Sync>;

/// The multi-tenant job server. Submit jobs, then [`JobServer::run`] the
/// queue to completion; see the module docs for the scheduling and isolation
/// model.
pub struct JobServer<R> {
    cluster: Cluster,
    policy: SchedPolicy,
    capacity: usize,
    queue: Vec<JobSpec<R>>,
    /// Write-ahead journal: admissions, grants, stage checkpoints and
    /// results are appended (and fsynced) *before* the corresponding state
    /// transition becomes visible to job threads.
    journal: Option<Arc<Journal>>,
    /// Encodes a job result for the journal's `done` record; installed by
    /// [`JobServer::with_journal`] / [`JobServer::recover`] (requires
    /// `R: Wire`).
    encode_result: Option<ResultCodec<R>>,
    /// Jobs whose bodies were replaced with journaled results by
    /// [`JobServer::recover`].
    recovered_jobs: HashSet<JobId>,
    /// Grant records of the crashed run, read back by [`JobServer::recover`].
    journal_grants: Vec<JobId>,
    /// Compact the journal after every N durable job completions
    /// ([`JobServer::with_compact_every`]); `None` disables automatic
    /// compaction.
    compact_every: Option<u64>,
}

impl<R> std::fmt::Debug for JobServer<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobServer")
            .field("policy", &self.policy)
            .field("capacity", &self.capacity)
            .field("queued", &self.queue.len())
            .field("journaled", &self.journal.is_some())
            .field("recovered_jobs", &self.recovered_jobs.len())
            .finish_non_exhaustive()
    }
}

/// Scale factor for quantum-count vruntime, so integer division by small
/// weights keeps full resolution.
const VRUNTIME_SCALE: u64 = 1_000_000;

impl<R: Send + 'static> JobServer<R> {
    /// A server over `cluster` with the default policy ([`SchedPolicy::FairShare`])
    /// and a queue capacity of 64. The cluster's memory budget (if any) is
    /// the admission budget.
    pub fn new(cluster: Cluster) -> Self {
        JobServer {
            cluster,
            policy: SchedPolicy::default(),
            capacity: 64,
            queue: Vec::new(),
            journal: None,
            encode_result: None,
            recovered_jobs: HashSet::new(),
            journal_grants: Vec::new(),
            compact_every: None,
        }
    }

    pub fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Compacts the journal after every `n` durable job completions (a
    /// quiescent quantum boundary, so no appender races the rewrite). A
    /// long-lived server's journal stays proportional to its *live* records
    /// instead of its age. No-op without an attached journal.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn with_compact_every(mut self, n: u64) -> Self {
        assert!(n > 0, "compact-every interval must be positive");
        self.compact_every = Some(n);
        self
    }

    /// Bounds the submission queue; a submit past it returns
    /// [`SubmitError::QueueFull`].
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        self.capacity = capacity;
        self
    }

    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Submits a job. Admission control runs here for the *never-fits* case:
    /// an estimate above the per-node budget is rejected before any task —
    /// or even the job's thread — exists. Jobs that fit eventually are queued
    /// and admitted in submit order as reservations free up.
    pub fn submit(&mut self, spec: JobSpec<R>) -> Result<JobId, SubmitError> {
        if let Some(budget) = self.cluster.memory_budget() {
            if spec.estimate_bytes > budget {
                return Err(SubmitError::RejectedMemory {
                    estimate_bytes: spec.estimate_bytes,
                    budget_bytes: budget,
                });
            }
        }
        if self.queue.len() >= self.capacity {
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
            });
        }
        let id = self.queue.len();
        self.queue.push(spec);
        Ok(id)
    }

    /// Runs the queue to completion and reports per job. See the module docs
    /// for the quantum protocol; the short version: admit in submit order
    /// under the memory budget, then repeatedly pick one parked job by
    /// policy, grant it one quantum, and wait for it to park again or finish.
    pub fn run(self) -> ServerRun<R> {
        let JobServer {
            cluster,
            policy,
            capacity: _,
            queue,
            journal,
            encode_result,
            recovered_jobs,
            journal_grants,
            compact_every,
        } = self;
        let n = queue.len();
        // The crash clause is consulted only here: stage execution ignores
        // it, so a `crash@N` plan can ride the same FaultPlan that also
        // injects task faults.
        let crash_after = cluster
            .fault_context()
            .and_then(|ctx| ctx.plan.crash_after_grants);
        let core = Arc::new(GateCore {
            state: Mutex::new((0..n).map(|_| JobState::default()).collect()),
            cv: Condvar::new(),
        });
        let recorder = cluster.recorder().clone();
        let budget = cluster.memory_budget();
        let memory = cluster.memory_accountant();
        let nodes = cluster.nodes();
        let pool = cluster.buffer_pool();

        let mut pending: VecDeque<Queued<R>> = queue
            .into_iter()
            .enumerate()
            .map(|(id, spec)| Queued { id, spec })
            .collect();
        let mut admitted: Vec<Admitted<R>> = Vec::with_capacity(n);
        let mut running: Vec<usize> = Vec::new(); // indices into `admitted`
        let mut reserved: u64 = 0;
        let mut clock = Duration::ZERO;
        let mut grants: Vec<JobId> = Vec::new();
        let mut reports: Vec<Option<JobReport<R>>> = (0..n).map(|_| None).collect();
        // The quantum in flight: (admitted slot, pool stats at grant time).
        let mut in_flight: Option<(usize, PoolStats)> = None;
        // Durable completions since the last journal compaction.
        let mut completions_since_compact: u64 = 0;

        // Admits queued jobs, in submit order, while the front fits the
        // remaining budget. Strictly in order — no head-of-line bypass — so
        // a large tenant cannot be starved by a stream of small ones. At
        // admission decisions every running job is parked at a stage
        // boundary with its charges settled, so `budget − reserved` is the
        // true remaining capacity.
        let admit = |pending: &mut VecDeque<Queued<R>>,
                     admitted: &mut Vec<Admitted<R>>,
                     running: &mut Vec<usize>,
                     reserved: &mut u64,
                     clock: Duration| {
            while let Some(front) = pending.front() {
                let est = front.spec.estimate_bytes;
                if budget.is_some_and(|b| est > b.saturating_sub(*reserved)) {
                    break;
                }
                let Queued { id, spec } = pending.pop_front().expect("front exists");
                *reserved += est;
                let gate = Arc::new(JobGate {
                    core: Arc::clone(&core),
                    job: id,
                });
                // The job's isolated cluster view: per-job obs lanes and
                // per-job fault state over the shared nodes, pool,
                // accountant and cost model. A job without its own plan
                // inherits the base plan but still gets fresh state, so
                // tenants never share a blacklist.
                let mut jc = cluster
                    .clone()
                    .with_recorder(recorder.with_stage_prefix(format!("job:{id}:")));
                jc = match (&spec.faults, cluster.fault_context()) {
                    (Some((plan, pol)), _) => jc.with_fault_policy(plan.clone(), *pol),
                    (None, Some(ctx)) => jc.with_fault_policy(ctx.plan.clone(), ctx.policy),
                    (None, None) => jc,
                };
                // Re-scope checkpoints per job: the scope is a pure function
                // of the job id, so a recovered server's re-submitted job
                // resolves the same checkpoint keys and replays its own
                // completed stages.
                jc = jc.with_checkpoint_scope(
                    format!("job{id}"),
                    journal.as_ref().map(|j| (Arc::clone(j), id as u64)),
                );
                let jc = jc.with_stage_gate(Arc::clone(&gate));
                if let Some(journal) = &journal {
                    // Write-ahead: the admission is durable before the job
                    // thread exists.
                    let _ = journal.append(&JournalRecord::Admit {
                        job: id as u64,
                        name: spec.name.clone(),
                    });
                }
                let body = spec.body;
                let handle = std::thread::Builder::new()
                    .name(format!("asj-job-{id}"))
                    .spawn(move || {
                        // Initial park: nothing — not even pre-stage driver
                        // work — runs before the first grant.
                        gate.pause();
                        let out = catch_unwind(AssertUnwindSafe(|| body(&jc)))
                            .map_err(|payload| panic_message(payload.as_ref()));
                        gate.finish();
                        out
                    })
                    .expect("spawn job thread");
                recorder.event(
                    "job-admit",
                    Lane::Driver,
                    Some(id as u64),
                    Attrs::new().bytes(est),
                );
                recorder.counter_add("jobs", "admitted", 1);
                running.push(admitted.len());
                admitted.push(Admitted {
                    id,
                    name: spec.name,
                    weight: spec.weight,
                    estimate_bytes: est,
                    handle: Some(handle),
                    admitted_at: clock,
                    first_service_at: None,
                    pool: PoolStats::default(),
                });
            }
        };

        admit(
            &mut pending,
            &mut admitted,
            &mut running,
            &mut reserved,
            clock,
        );

        loop {
            // Wait for quiescence: every running job parked or finished (at
            // most one can be mid-quantum — the one granted last).
            let (finished_now, window_cost) = {
                let mut st = core.state.lock().expect("job gate poisoned");
                loop {
                    let busy = running.iter().any(|&slot| {
                        let s = &st[admitted[slot].id];
                        (s.granted || !s.parked) && !s.finished
                    });
                    if !busy {
                        break;
                    }
                    st = core.cv.wait(st).expect("job gate poisoned");
                }
                let finished_now: Vec<usize> = running
                    .iter()
                    .copied()
                    .filter(|&slot| st[admitted[slot].id].finished)
                    .collect();
                let window_cost = match in_flight {
                    Some((slot, _)) => std::mem::take(&mut st[admitted[slot].id].window_cost),
                    None => Duration::ZERO,
                };
                (finished_now, window_cost)
            };
            // The quantum advances the server clock by its stage's simulated
            // makespan (serialized time-sharing: quanta never overlap).
            clock += window_cost;
            // Settle the quantum's pool delta; quanta are exclusive, so the
            // delta is exactly that job's allocator activity.
            if let Some((slot, before)) = in_flight.take() {
                admitted[slot].pool.merge(&pool.stats().since(&before));
            }

            // Reap completions: harvest results, release reservations, audit
            // for leaked resident bytes. All other jobs are parked at stage
            // boundaries where every ChargeGuard has settled, so a non-zero
            // residual is a real leak, not another tenant's footprint.
            for &slot in &finished_now {
                running.retain(|&r| r != slot);
                let outcome = admitted[slot]
                    .handle
                    .take()
                    .expect("job joined once")
                    .join()
                    .unwrap_or_else(|payload| Err(panic_message(payload.as_ref())));
                let job = &admitted[slot];
                let residual_bytes: u64 = (0..nodes).map(|node| memory.resident_bytes(node)).sum();
                recorder.counter_add("jobs", "residual_bytes", residual_bytes);
                recorder.counter_add("jobs", "completed", 1);
                recorder.event(
                    "job-finish",
                    Lane::Driver,
                    Some(job.id as u64),
                    Attrs::new().bytes(residual_bytes),
                );
                debug_assert_eq!(
                    residual_bytes, 0,
                    "job {} ({}) completed with {} leaked resident bytes",
                    job.id, job.name, residual_bytes
                );
                reserved = reserved.saturating_sub(job.estimate_bytes);
                let (stats, stages, quanta) = {
                    let mut st = core.state.lock().expect("job gate poisoned");
                    let s = &mut st[job.id];
                    (std::mem::take(&mut s.stats), s.stages, s.quanta)
                };
                if let (Some(journal), Some(encode), Ok(result)) =
                    (&journal, &encode_result, &outcome)
                {
                    // Durable completion: the result itself rides the
                    // journal (with a checksum), so recovery replays it
                    // without re-running the body at all.
                    let bytes = encode(result);
                    let checksum = fnv1a(&bytes);
                    let done_durable = journal
                        .append(&JournalRecord::Done {
                            job: job.id as u64,
                            result: bytes,
                            checksum,
                        })
                        .is_ok();
                    // Retention GC: this job's stage checkpoints are only
                    // needed to shortcut a re-run, and the fsynced `done`
                    // record just made any re-run unnecessary. The ordering
                    // is the safety argument — GC strictly after the append
                    // succeeded, so a crash mid-GC degrades to recomputation
                    // (or to a journal replay), never to loss.
                    if done_durable {
                        if let Some(store) = cluster.checkpoint_store() {
                            if let Ok(reclaimed) = store.gc_scope(&format!("job{}", job.id)) {
                                recorder.counter_add("jobs", "checkpoint_gc_bytes", reclaimed);
                            }
                        }
                        completions_since_compact += 1;
                    }
                }
                reports[job.id] = Some(JobReport {
                    id: job.id,
                    name: job.name.clone(),
                    weight: job.weight,
                    estimate_bytes: job.estimate_bytes,
                    result: outcome,
                    stats,
                    pool: job.pool,
                    stages,
                    quanta,
                    admitted_at: job.admitted_at,
                    first_service_at: job.first_service_at.unwrap_or(clock),
                    finished_at: clock,
                    residual_bytes,
                    recovered: recovered_jobs.contains(&job.id),
                });
            }
            if !finished_now.is_empty() {
                // Freed reservations may let queued jobs in.
                admit(
                    &mut pending,
                    &mut admitted,
                    &mut running,
                    &mut reserved,
                    clock,
                );
                // Automatic era compaction: the server is quiescent (no
                // quantum in flight), so the rewrite cannot race an append.
                // Failures are soft — the uncompacted journal is still a
                // valid (just larger) recovery source.
                if let (Some(journal), Some(every)) = (&journal, compact_every) {
                    if completions_since_compact >= every {
                        completions_since_compact = 0;
                        if let Ok(stats) = journal.compact() {
                            recorder.counter_add("jobs", "journal_compactions", 1);
                            recorder.counter_add(
                                "jobs",
                                "journal_bytes_reclaimed",
                                stats.bytes_before.saturating_sub(stats.bytes_after),
                            );
                        }
                    }
                }
            }

            // A `crash@N` clause fires at this quantum boundary — after N
            // grants have been issued *and* completed (we are quiescent), and
            // before the N+1st is picked. Deterministic: the boundary depends
            // only on the grant log, never on wall time.
            if crash_after.is_some_and(|limit| grants.len() as u64 >= limit) {
                // Simulate process death: poison the gate mutex so every
                // parked job thread panics out of its wait instead of
                // running another quantum. A throwaway thread panics while
                // holding the lock — the only way to poison a std Mutex.
                let poisoner = Arc::clone(&core);
                let _ = std::thread::Builder::new()
                    .name("asj-crash".into())
                    .spawn(move || {
                        let _guard = poisoner.state.lock().expect("pre-crash lock");
                        panic!("simulated job-server crash");
                    })
                    .expect("spawn crash thread")
                    .join();
                core.cv.notify_all();
                for slot in &mut admitted {
                    if let Some(handle) = slot.handle.take() {
                        // Threads die by panicking on the poisoned gate;
                        // their panics are the crash, not errors to surface.
                        let _ = handle.join();
                    }
                }
                recorder.event("server-crash", Lane::Driver, None, Attrs::new());
                // Partial reports: reaped jobs keep their results, everything
                // else is marked crashed. State is read through the poison —
                // the data is still consistent (we held quiescence).
                let st = core
                    .state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for job in &admitted {
                    if reports[job.id].is_some() {
                        continue;
                    }
                    let s = &st[job.id];
                    reports[job.id] = Some(JobReport {
                        id: job.id,
                        name: job.name.clone(),
                        weight: job.weight,
                        estimate_bytes: job.estimate_bytes,
                        result: Err("server crashed before completion".to_owned()),
                        stats: s.stats.clone(),
                        pool: job.pool,
                        stages: s.stages,
                        quanta: s.quanta,
                        admitted_at: job.admitted_at,
                        first_service_at: job.first_service_at.unwrap_or(clock),
                        finished_at: clock,
                        residual_bytes: 0,
                        recovered: false,
                    });
                }
                drop(st);
                // Jobs still waiting for admission also died with the server.
                for q in &pending {
                    reports[q.id] = Some(JobReport {
                        id: q.id,
                        name: q.spec.name.clone(),
                        weight: q.spec.weight,
                        estimate_bytes: q.spec.estimate_bytes,
                        result: Err("server crashed before admission".to_owned()),
                        stats: ExecStats::default(),
                        pool: PoolStats::default(),
                        stages: 0,
                        quanta: 0,
                        admitted_at: clock,
                        first_service_at: clock,
                        finished_at: clock,
                        residual_bytes: 0,
                        recovered: false,
                    });
                }
                let reports: Vec<JobReport<R>> = reports
                    .into_iter()
                    .map(|r| r.expect("every submitted job reports, even on crash"))
                    .collect();
                if let Some(journal) = &journal {
                    recorder.counter_add("jobs", "journal_records", journal.records_appended());
                }
                let (stages_recovered, checkpoint_bytes) = match cluster.checkpoint_store() {
                    Some(store) => (store.stages_recovered(), store.checkpoint_bytes()),
                    None => (0, 0),
                };
                return ServerRun {
                    policy,
                    reports,
                    grants,
                    clock,
                    crashed: true,
                    stages_recovered,
                    checkpoint_bytes,
                    journal_grants,
                };
            }

            if running.is_empty() && pending.is_empty() {
                break;
            }

            // Pick the next parked job by policy and grant it a quantum.
            let pick = {
                let st = core.state.lock().expect("job gate poisoned");
                running
                    .iter()
                    .copied()
                    .filter(|&slot| {
                        let s = &st[admitted[slot].id];
                        s.parked && !s.finished
                    })
                    .min_by_key(|&slot| {
                        let job = &admitted[slot];
                        let s = &st[job.id];
                        match policy {
                            SchedPolicy::Fifo => (0u64, job.id),
                            SchedPolicy::FairShare => {
                                (s.quanta * VRUNTIME_SCALE / u64::from(job.weight), job.id)
                            }
                        }
                    })
            };
            let Some(slot) = pick else {
                // Freshly admitted threads have not reached their initial
                // park yet — loop back into the quiescence wait for them.
                continue;
            };
            let job_id = admitted[slot].id;
            if admitted[slot].first_service_at.is_none() {
                admitted[slot].first_service_at = Some(clock);
            }
            grants.push(job_id);
            if let Some(journal) = &journal {
                // Write-ahead: the grant is on disk before the job thread can
                // observe it, so the journaled grant log is always a prefix
                // of (or equal to) the in-memory one.
                let _ = journal.append(&JournalRecord::Grant { job: job_id as u64 });
            }
            in_flight = Some((slot, pool.stats()));
            let mut st = core.state.lock().expect("job gate poisoned");
            let s = &mut st[job_id];
            s.granted = true;
            s.quanta += 1;
            core.cv.notify_all();
        }

        let reports: Vec<JobReport<R>> = reports
            .into_iter()
            .map(|r| r.expect("every submitted job reports"))
            .collect();
        if let Some(journal) = &journal {
            recorder.counter_add("jobs", "journal_records", journal.records_appended());
        }
        let (stages_recovered, checkpoint_bytes) = match cluster.checkpoint_store() {
            Some(store) => (store.stages_recovered(), store.checkpoint_bytes()),
            None => (0, 0),
        };
        ServerRun {
            policy,
            reports,
            grants,
            clock,
            crashed: false,
            stages_recovered,
            checkpoint_bytes,
            journal_grants,
        }
    }
}

impl<R: Wire + Send + 'static> JobServer<R> {
    /// Attaches a fresh write-ahead journal at `path` (truncating any
    /// previous file). Every admission, grant, checkpointed stage and job
    /// completion is appended and fsynced before the corresponding state
    /// transition, so a crash at any quantum boundary leaves a journal from
    /// which [`JobServer::recover`] can resume.
    pub fn with_journal(mut self, path: impl AsRef<Path>) -> std::io::Result<Self> {
        self.journal = Some(Arc::new(Journal::create(path)?));
        self.install_result_codec();
        Ok(self)
    }

    /// Rebuilds server state from a crashed run's journal.
    ///
    /// Job bodies are closures and cannot be serialized, so the recovery
    /// contract is: the caller re-submits the *same* specs in the *same*
    /// order (ids line up with the journal's), then calls `recover`. Jobs
    /// with a journaled `done` record have their bodies replaced by the
    /// decoded result (one quantum, zero stages, zero recompute); in-flight
    /// jobs keep their bodies and re-run against the same per-job checkpoint
    /// scope, so completed shuffle stages replay from disk instead of
    /// recomputing. The crashed run's grant log is exposed via
    /// [`ServerRun::journal_grants`] for prefix verification.
    ///
    /// The journal is reopened for append and a `recover` marker is written,
    /// delimiting the new era's records from the crashed run's.
    pub fn recover(mut self, path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        let records = Journal::read(path).map_err(std::io::Error::from)?;
        // Only the most recent era counts as "the crashed run": records
        // after the last `recover` marker (or all of them if none).
        let era_start = records
            .iter()
            .rposition(|r| matches!(r, JournalRecord::Recover))
            .map_or(0, |i| i + 1);
        let mut grants: Vec<JobId> = Vec::new();
        for rec in &records[era_start..] {
            if let JournalRecord::Grant { job } = rec {
                grants.push(*job as JobId);
            }
        }
        // `done` records are idempotent across eras (same job → same bytes),
        // so scan them all; a later record for the same job wins.
        for rec in &records {
            let JournalRecord::Done {
                job,
                result,
                checksum,
            } = rec
            else {
                continue;
            };
            let job = *job as JobId;
            if job >= self.queue.len() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "journal records job {job} but only {} were re-submitted",
                        self.queue.len()
                    ),
                ));
            }
            if fnv1a(result) != *checksum {
                // A torn or corrupted result is treated as "not done": the
                // body re-runs (checkpoints still shortcut its stages).
                continue;
            }
            let mut cursor: &[u8] = result;
            let Ok(decoded) = R::try_decode(&mut cursor) else {
                continue;
            };
            if !cursor.is_empty() {
                continue;
            }
            self.queue[job].body = Box::new(move |_c: &Cluster| decoded);
            self.recovered_jobs.insert(job);
        }
        self.journal = Some(Arc::new(Journal::open_append(path)?));
        if let Some(journal) = &self.journal {
            journal.append(&JournalRecord::Recover)?;
        }
        self.journal_grants = grants;
        self.install_result_codec();
        Ok(self)
    }

    fn install_result_codec(&mut self) {
        self.encode_result = Some(Arc::new(|r: &R| {
            let mut buf = Vec::with_capacity(r.encoded_size());
            r.encode(&mut buf);
            buf
        }));
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job body panicked".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use crate::dataset::KeyedDataset;
    use crate::partitioner::HashPartitioner;
    use asj_obs::Recorder;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::with_threads(2, 2))
    }

    /// A body that runs `stages` parallel stages and folds their outputs
    /// into a deterministic u64.
    fn staged(stages: usize, tag: u64) -> impl FnOnce(&Cluster) -> u64 + Send + 'static {
        move |c: &Cluster| {
            let mut acc = tag;
            for s in 0..stages {
                let (out, _) = c.run_partitioned_stage("work", vec![1u64, 2, 3, 4], |i, t| {
                    t * (i as u64 + 1) + acc
                });
                acc = out.iter().sum::<u64>() + s as u64;
            }
            acc
        }
    }

    /// A body that runs two shuffle stages and folds the shuffled records
    /// into a deterministic u64 — the workload for crash/recovery tests
    /// (shuffle stages are the checkpointable unit).
    fn shuffled_sum(keys: u64, tag: u64) -> impl FnOnce(&Cluster) -> u64 + Send + 'static {
        move |c: &Cluster| {
            let mut acc = tag;
            for round in 0..2u64 {
                let recs: Vec<(u64, u64)> = (0..keys).map(|k| (k * 7 % keys, k + acc)).collect();
                let ds = KeyedDataset::from_partitions(vec![recs.clone(), recs]);
                let (shuffled, _, _) = ds.shuffle_stage(c, &HashPartitioner::new(4), "shuffle");
                for (i, part) in shuffled.into_partitions().into_iter().enumerate() {
                    for (k, v) in part {
                        acc = acc
                            .wrapping_mul(31)
                            .wrapping_add(k ^ v ^ (i as u64) ^ round);
                    }
                }
            }
            acc
        }
    }

    /// A fresh scratch directory for journal/checkpoint tests.
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("asj-jobs-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    /// A body that shuffles keyed records (exercising the buffer pool and
    /// memory accountant) and returns the shuffled partitions.
    fn shuffling(keys: u64) -> impl FnOnce(&Cluster) -> Vec<Vec<(u64, u64)>> + Send + 'static {
        move |c: &Cluster| {
            let recs: Vec<(u64, u64)> = (0..keys).map(|k| (k * 7 % keys, k)).collect();
            let parts = vec![recs.clone(), recs];
            let ds = KeyedDataset::from_partitions(parts);
            let (shuffled, _, _) = ds.shuffle_stage(c, &HashPartitioner::new(4), "shuffle");
            shuffled.into_partitions()
        }
    }

    #[test]
    fn fair_share_alternates_equal_weight_jobs() {
        let mut srv = JobServer::new(cluster());
        srv.submit(JobSpec::new("a", staged(2, 1))).expect("submit");
        srv.submit(JobSpec::new("b", staged(2, 2))).expect("submit");
        let run = srv.run();
        // 2 stages each → 3 quanta each (initial park + one per stage);
        // equal weights round-robin with id tiebreak.
        assert_eq!(run.grants, vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(run.reports.len(), 2);
        assert!(run.reports.iter().all(|r| r.result.is_ok()));
        assert_eq!(run.reports[0].stages, 2);
        assert_eq!(run.reports[0].quanta, 3);
    }

    #[test]
    fn fifo_runs_jobs_to_completion_in_submit_order() {
        let mut srv = JobServer::new(cluster()).with_policy(SchedPolicy::Fifo);
        srv.submit(JobSpec::new("a", staged(2, 1))).expect("submit");
        srv.submit(JobSpec::new("b", staged(2, 2))).expect("submit");
        let run = srv.run();
        assert_eq!(run.grants, vec![0, 0, 0, 1, 1, 1]);
        // FIFO makes the second tenant wait out the whole first job.
        assert!(run.reports[1].queue_wait() >= run.reports[0].finished_at);
    }

    #[test]
    fn weighted_fair_share_grants_proportionally() {
        let mut srv = JobServer::new(cluster());
        srv.submit(JobSpec::new("heavy", staged(3, 1)).with_weight(2))
            .expect("submit");
        srv.submit(JobSpec::new("light", staged(3, 2)).with_weight(1))
            .expect("submit");
        let run = srv.run();
        // vruntime = quanta × 10⁶ / weight, ties to the lower id: the
        // weight-2 job draws twice the quanta while both are runnable.
        assert_eq!(run.grants, vec![0, 1, 0, 0, 1, 0, 1, 1]);
    }

    #[test]
    fn results_match_solo_runs_and_are_isolated() {
        let solo_a = staged(3, 10)(&cluster());
        let solo_b = staged(2, 20)(&cluster());
        let mut srv = JobServer::new(cluster());
        srv.submit(JobSpec::new("a", staged(3, 10)))
            .expect("submit");
        srv.submit(JobSpec::new("b", staged(2, 20)))
            .expect("submit");
        let run = srv.run();
        assert_eq!(run.reports[0].result, Ok(solo_a));
        assert_eq!(run.reports[1].result, Ok(solo_b));
    }

    #[test]
    fn oversized_estimate_rejected_before_any_task_runs() {
        let ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        let c = cluster().with_memory_budget(1000);
        let mut srv = JobServer::new(c);
        let err = srv
            .submit(
                JobSpec::new("giant", move |c: &Cluster| {
                    flag.store(true, Ordering::Relaxed);
                    staged(1, 0)(c)
                })
                .with_estimate(2000),
            )
            .expect_err("estimate above the budget must be rejected");
        assert_eq!(
            err,
            SubmitError::RejectedMemory {
                estimate_bytes: 2000,
                budget_bytes: 1000
            }
        );
        assert!(err.to_string().contains("2000"));
        // The queue still runs fine without the rejected job — and the
        // rejected body never executed.
        srv.submit(JobSpec::new("ok", staged(1, 3)).with_estimate(500))
            .expect("fits");
        let run = srv.run();
        assert_eq!(run.reports.len(), 1);
        assert!(run.reports[0].result.is_ok());
        assert!(!ran.load(Ordering::Relaxed), "rejected body must never run");
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let mut srv = JobServer::new(cluster()).with_queue_capacity(1);
        srv.submit(JobSpec::new("a", staged(1, 1))).expect("fits");
        let err = srv
            .submit(JobSpec::new("b", staged(1, 2)))
            .expect_err("queue is full");
        assert_eq!(err, SubmitError::QueueFull { capacity: 1 });
    }

    #[test]
    fn admission_defers_jobs_past_the_reservation_budget() {
        let c = cluster().with_memory_budget(1000);
        let mut srv = JobServer::new(c);
        srv.submit(JobSpec::new("a", staged(2, 1)).with_estimate(600))
            .expect("submit");
        srv.submit(JobSpec::new("b", staged(2, 2)).with_estimate(600))
            .expect("submit");
        let run = srv.run();
        // Both fit the budget alone but not together: the second job waits
        // for the first's reservation even under fair share.
        assert_eq!(run.grants, vec![0, 0, 0, 1, 1, 1]);
        assert!(run.reports[1].admitted_at >= run.reports[0].finished_at);
        assert!(run.reports.iter().all(|r| r.result.is_ok()));
    }

    #[test]
    fn a_crashing_job_fails_alone() {
        let mut srv = JobServer::new(cluster());
        srv.submit(JobSpec::new("doomed", |_c: &Cluster| -> u64 {
            panic!("tenant bug");
        }))
        .expect("submit");
        srv.submit(JobSpec::new("fine", staged(2, 5)))
            .expect("submit");
        let run = srv.run();
        let err = run.reports[0].result.as_ref().expect_err("job panicked");
        assert!(err.contains("tenant bug"), "got: {err}");
        assert!(run.reports[1].result.is_ok());
    }

    #[test]
    fn fault_state_is_isolated_per_job() {
        let plan = FaultPlan::none().with_fail_point("work", 0, 1);
        let mut srv = JobServer::new(cluster());
        srv.submit(JobSpec::new("chaos", staged(1, 1)).with_faults(plan, RetryPolicy::default()))
            .expect("submit");
        srv.submit(JobSpec::new("calm", staged(1, 1)))
            .expect("submit");
        let run = srv.run();
        assert!(
            run.reports[0].stats.retries >= 1,
            "injected failure retried"
        );
        assert_eq!(run.reports[1].stats.retries, 0, "no cross-tenant faults");
        // Both recover to the same answer a fault-free solo run produces.
        let solo = staged(1, 1)(&cluster());
        assert_eq!(run.reports[0].result, Ok(solo));
        assert_eq!(run.reports[1].result, Ok(solo));
    }

    #[test]
    fn leak_audit_sees_zero_residual_and_pool_deltas_sum() {
        let r = Recorder::for_nodes(2);
        let c = cluster()
            .with_recorder(r.clone())
            .with_memory_budget(1 << 20);
        let pool_before = c.buffer_pool().stats();
        let mut srv = JobServer::new(c.clone());
        srv.submit(JobSpec::new("a", shuffling(64)).with_estimate(4096))
            .expect("submit");
        srv.submit(JobSpec::new("b", shuffling(48)).with_estimate(4096))
            .expect("submit");
        let run = srv.run();
        for rep in &run.reports {
            assert!(rep.result.is_ok());
            assert_eq!(rep.residual_bytes, 0, "job {} leaked", rep.id);
        }
        // The audit counter exists and stayed at zero.
        assert_eq!(r.counter_value("jobs", "residual_bytes"), Some(0));
        assert_eq!(r.counter_value("jobs", "admitted"), Some(2));
        assert_eq!(r.counter_value("jobs", "completed"), Some(2));
        assert_eq!(c.memory_accountant().resident_total(), 0);
        // Per-job pool deltas account for exactly the pool activity the
        // queue generated: the per-job slices sum to the cumulative delta.
        let total = c.buffer_pool().stats().since(&pool_before);
        let mut summed = PoolStats::default();
        for rep in &run.reports {
            summed.merge(&rep.pool);
        }
        assert_eq!(summed, total);
        assert!(total.hits + total.misses > 0, "shuffles used the pool");
    }

    #[test]
    fn per_job_obs_lanes_are_prefixed() {
        let r = Recorder::for_nodes(2);
        let c = cluster().with_recorder(r.clone());
        let mut srv = JobServer::new(c);
        srv.submit(JobSpec::new("a", staged(1, 1))).expect("submit");
        srv.submit(JobSpec::new("b", staged(1, 2))).expect("submit");
        let run = srv.run();
        assert!(run.reports.iter().all(|rep| rep.result.is_ok()));
        let trace = r.snapshot();
        assert!(trace.spans.iter().any(|s| s.stage == "job:0:work"));
        assert!(trace.spans.iter().any(|s| s.stage == "job:1:work"));
        assert!(trace.events.iter().any(|e| e.name == "job-admit"));
        assert!(trace.events.iter().any(|e| e.name == "job-finish"));
    }

    #[test]
    fn shuffle_results_match_solo_under_interleaving() {
        let solo_a = shuffling(96)(&cluster());
        let solo_b = shuffling(32)(&cluster());
        let mut srv = JobServer::new(cluster());
        srv.submit(JobSpec::new("a", shuffling(96)))
            .expect("submit");
        srv.submit(JobSpec::new("b", shuffling(32)))
            .expect("submit");
        let run = srv.run();
        assert_eq!(run.reports[0].result.as_ref().expect("ok"), &solo_a);
        assert_eq!(run.reports[1].result.as_ref().expect("ok"), &solo_b);
    }

    #[test]
    fn policy_parse_round_trips() {
        assert_eq!(
            SchedPolicy::parse("fair-share"),
            Some(SchedPolicy::FairShare)
        );
        assert_eq!(SchedPolicy::parse("fifo"), Some(SchedPolicy::Fifo));
        assert_eq!(SchedPolicy::parse("nope"), None);
        assert_eq!(SchedPolicy::FairShare.name(), "fair-share");
    }

    #[test]
    fn empty_queue_runs_to_an_empty_report() {
        let srv: JobServer<u64> = JobServer::new(cluster());
        let run = srv.run();
        assert!(run.reports.is_empty());
        assert!(run.grants.is_empty());
        assert_eq!(run.clock, Duration::ZERO);
    }

    /// Submits the three-tenant recovery workload in a fixed order (the
    /// recovery contract: same specs, same order, same ids).
    fn submit_recovery_queue(srv: &mut JobServer<u64>) {
        srv.submit(JobSpec::new("a", shuffled_sum(64, 1)))
            .expect("submit");
        srv.submit(JobSpec::new("b", shuffled_sum(48, 2)))
            .expect("submit");
        srv.submit(JobSpec::new("c", shuffled_sum(32, 3)))
            .expect("submit");
    }

    #[test]
    fn crash_clause_stops_the_server_at_the_grant_boundary() {
        let c = cluster().with_fault_policy(
            FaultPlan::none().with_crash_after_grants(2),
            RetryPolicy::default(),
        );
        let mut srv = JobServer::new(c);
        submit_recovery_queue(&mut srv);
        let run = srv.run();
        assert!(run.crashed);
        assert_eq!(run.grants, vec![0, 1]);
        // Every submitted job still reports — unfinished ones as errors.
        assert_eq!(run.reports.len(), 3);
        assert!(run.reports.iter().all(|r| r.result.is_err()));
    }

    #[test]
    fn crash_then_recover_replays_results_and_checkpoints() {
        let dir = scratch_dir("recover");
        let journal_path = dir.join("server.journal");

        // Uncrashed oracle: plain cluster, no journal, no checkpoints.
        let mut oracle = JobServer::new(cluster());
        submit_recovery_queue(&mut oracle);
        let oracle = oracle.run();
        assert!(!oracle.crashed);
        let oracle_results: Vec<u64> = oracle
            .reports
            .iter()
            .map(|r| *r.result.as_ref().expect("oracle ok"))
            .collect();
        // 3 jobs × (initial park + 2 shuffle stages) = 9 grants.
        assert_eq!(oracle.grants.len(), 9);

        // Leg 1: journaled + checkpointed run that crashes after 7 grants —
        // job 0 has finished (done record), jobs 1 and 2 are mid-flight with
        // their first shuffle stage checkpointed.
        let crash_cluster = Cluster::new(ClusterConfig::with_threads(2, 2))
            .with_checkpoint_dir(&dir)
            .expect("open checkpoint dir")
            .with_fault_policy(
                FaultPlan::none().with_crash_after_grants(7),
                RetryPolicy::default(),
            );
        let mut srv = JobServer::new(crash_cluster)
            .with_journal(&journal_path)
            .expect("create journal");
        submit_recovery_queue(&mut srv);
        let crashed = srv.run();
        assert!(crashed.crashed);
        assert_eq!(crashed.grants[..], oracle.grants[..7]);
        assert!(crashed.reports[0].result.is_ok());
        assert!(crashed.reports[1].result.is_err());
        assert!(crashed.checkpoint_bytes > 0);

        // Leg 2: recover on a fresh cluster over the same checkpoint dir.
        let rec_cluster = Cluster::new(ClusterConfig::with_threads(2, 2))
            .with_checkpoint_dir(&dir)
            .expect("reopen checkpoint dir");
        let mut srv = JobServer::new(rec_cluster);
        submit_recovery_queue(&mut srv);
        let srv = srv.recover(&journal_path).expect("recover");
        let recovered = srv.run();
        assert!(!recovered.crashed);
        // The journaled grant log is exactly the prefix the uncrashed run
        // would have produced.
        assert_eq!(recovered.journal_grants[..], oracle.grants[..7]);
        // Results are byte-identical to the uncrashed oracle.
        let rec_results: Vec<u64> = recovered
            .reports
            .iter()
            .map(|r| *r.result.as_ref().expect("recovered ok"))
            .collect();
        assert_eq!(rec_results, oracle_results);
        // Job 0 replayed from its journaled done record...
        assert!(recovered.reports[0].recovered);
        assert_eq!(recovered.reports[0].stages, 0);
        // ...and jobs 1/2 replayed their checkpointed first stages instead
        // of recomputing them.
        assert!(recovered.stages_recovered >= 2);
        // Replayed stages bill zero task attempts, so recovery does strictly
        // less simulated work than the oracle re-running from scratch.
        let oracle_attempts: u64 = oracle.reports.iter().map(|r| r.stats.attempts).sum();
        let rec_attempts: u64 = recovered.reports.iter().map(|r| r.stats.attempts).sum();
        assert!(
            rec_attempts < oracle_attempts,
            "recovery should recompute less: {rec_attempts} vs {oracle_attempts}"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_gc_and_compaction_keep_disk_bounded_and_recoverable() {
        let dir = scratch_dir("gc-compact");
        let journal_path = dir.join("server.journal");
        let ckpt_dir = dir.join("ckpt");

        // Oracle for the result bytes.
        let mut oracle = JobServer::new(cluster());
        submit_recovery_queue(&mut oracle);
        let oracle = oracle.run();
        let oracle_results: Vec<u64> = oracle
            .reports
            .iter()
            .map(|r| *r.result.as_ref().expect("oracle ok"))
            .collect();

        // Full run with journal + checkpoints + GC + per-completion
        // compaction.
        let c = Cluster::new(ClusterConfig::with_threads(2, 2))
            .with_checkpoint_dir(&ckpt_dir)
            .expect("open checkpoint dir");
        let store = Arc::clone(c.checkpoint_store().expect("store attached"));
        let mut srv = JobServer::new(c)
            .with_journal(&journal_path)
            .expect("create journal")
            .with_compact_every(1);
        submit_recovery_queue(&mut srv);
        let run = srv.run();
        assert!(!run.crashed);
        assert!(run.checkpoint_bytes > 0, "stages were checkpointed");
        // Retention: every job finished durably, so every job's checkpoints
        // were collected — post-run disk is bounded by in-flight jobs (none).
        assert_eq!(
            store.disk_usage_bytes().expect("usage"),
            0,
            "all finished jobs' checkpoints were GC'd"
        );
        // Compaction: the journal holds only live records — a compact
        // marker, the done records, and the last era's admissions/grants;
        // the per-stage records of done jobs are gone.
        let records = Journal::read(&journal_path).expect("compacted journal reads");
        assert!(
            matches!(records.first(), Some(JournalRecord::Compact { .. })),
            "compacted journal leads with its marker"
        );
        assert!(
            !records
                .iter()
                .any(|r| matches!(r, JournalRecord::Stage { .. })),
            "stage records of done jobs are dropped"
        );

        // The compacted journal still recovers the whole queue: bodies
        // would panic if re-run.
        let mut srv = JobServer::<u64>::new(cluster());
        for name in ["a", "b", "c"] {
            srv.submit(JobSpec::new(name, |_c: &Cluster| -> u64 {
                panic!("body must not re-run")
            }))
            .expect("submit");
        }
        let srv = srv.recover(&journal_path).expect("recover");
        let replayed = srv.run();
        let replayed_results: Vec<u64> = replayed
            .reports
            .iter()
            .map(|r| *r.result.as_ref().expect("replayed ok"))
            .collect();
        assert_eq!(replayed_results, oracle_results);
        assert!(replayed.reports.iter().all(|r| r.recovered));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovered_jobs_skip_their_bodies_entirely() {
        let dir = scratch_dir("skip-body");
        let journal_path = dir.join("server.journal");
        // Run the whole queue to completion under a journal (no crash).
        let mut srv = JobServer::<u64>::new(cluster())
            .with_journal(&journal_path)
            .expect("create journal");
        srv.submit(JobSpec::new("a", staged(2, 1))).expect("submit");
        srv.submit(JobSpec::new("b", staged(2, 2))).expect("submit");
        let first = srv.run();
        let first_results: Vec<u64> = first
            .reports
            .iter()
            .map(|r| *r.result.as_ref().expect("ok"))
            .collect();

        // Recover: bodies would panic if run — replayed results must not
        // touch them.
        let mut srv = JobServer::<u64>::new(cluster());
        srv.submit(JobSpec::new("a", |_c: &Cluster| -> u64 {
            panic!("body must not re-run")
        }))
        .expect("submit");
        srv.submit(JobSpec::new("b", |_c: &Cluster| -> u64 {
            panic!("body must not re-run")
        }))
        .expect("submit");
        let srv = srv.recover(&journal_path).expect("recover");
        let second = srv.run();
        let second_results: Vec<u64> = second
            .reports
            .iter()
            .map(|r| *r.result.as_ref().expect("replayed ok"))
            .collect();
        assert_eq!(second_results, first_results);
        assert!(second.reports.iter().all(|r| r.recovered));
        // A fully-replayed queue consumes exactly one quantum per job.
        assert_eq!(second.grants.len(), 2);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
