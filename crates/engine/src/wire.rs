use bytes::{Buf, BufMut};

/// Wire format for records that cross the (simulated) network.
///
/// The shuffle meters traffic by [`Wire::encoded_size`]; `encode`/`decode`
/// define the actual byte layout so tests can verify that the metered size is
/// the real serialized size (`encoded_size == encode(..).len()`), and so the
/// engine can optionally materialize shuffles through bytes.
///
/// The format is little-endian and self-delimiting per record (fixed-width
/// scalars, length-prefixed buffers) — the moral equivalent of the flat tuple
/// encoding Spark's serializer produces for the paper's text records.
pub trait Wire: Sized {
    /// Exact number of bytes `encode` will write.
    fn encoded_size(&self) -> usize;
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut impl BufMut);
    /// Reads one value back; consumes exactly `encoded_size` bytes.
    fn decode(buf: &mut impl Buf) -> Self;
}

macro_rules! wire_scalar {
    ($t:ty, $put:ident, $get:ident) => {
        impl Wire for $t {
            #[inline]
            fn encoded_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
            #[inline]
            fn encode(&self, buf: &mut impl BufMut) {
                buf.$put(*self);
            }
            #[inline]
            fn decode(buf: &mut impl Buf) -> Self {
                buf.$get()
            }
        }
    };
}

wire_scalar!(u8, put_u8, get_u8);
wire_scalar!(u16, put_u16_le, get_u16_le);
wire_scalar!(u32, put_u32_le, get_u32_le);
wire_scalar!(u64, put_u64_le, get_u64_le);
wire_scalar!(i32, put_i32_le, get_i32_le);
wire_scalar!(i64, put_i64_le, get_i64_le);
wire_scalar!(f32, put_f32_le, get_f32_le);
wire_scalar!(f64, put_f64_le, get_f64_le);

impl Wire for () {
    #[inline]
    fn encoded_size(&self) -> usize {
        0
    }
    #[inline]
    fn encode(&self, _buf: &mut impl BufMut) {}
    #[inline]
    fn decode(_buf: &mut impl Buf) -> Self {}
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    #[inline]
    fn encoded_size(&self) -> usize {
        self.0.encoded_size() + self.1.encoded_size()
    }
    #[inline]
    fn encode(&self, buf: &mut impl BufMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    #[inline]
    fn decode(buf: &mut impl Buf) -> Self {
        let a = A::decode(buf);
        let b = B::decode(buf);
        (a, b)
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    #[inline]
    fn encoded_size(&self) -> usize {
        self.0.encoded_size() + self.1.encoded_size() + self.2.encoded_size()
    }
    #[inline]
    fn encode(&self, buf: &mut impl BufMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    #[inline]
    fn decode(buf: &mut impl Buf) -> Self {
        let a = A::decode(buf);
        let b = B::decode(buf);
        let c = C::decode(buf);
        (a, b, c)
    }
}

/// Length-prefixed byte buffer (u32 length + payload).
impl Wire for Vec<u8> {
    #[inline]
    fn encoded_size(&self) -> usize {
        4 + self.len()
    }
    #[inline]
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self);
    }
    #[inline]
    fn decode(buf: &mut impl Buf) -> Self {
        let len = buf.get_u32_le() as usize;
        let mut v = vec![0u8; len];
        buf.copy_to_slice(&mut v);
        v
    }
}

/// Length-prefixed UTF-8 string.
impl Wire for String {
    #[inline]
    fn encoded_size(&self) -> usize {
        4 + self.len()
    }
    #[inline]
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self.as_bytes());
    }
    #[inline]
    fn decode(buf: &mut impl Buf) -> Self {
        let bytes = Vec::<u8>::decode(buf);
        String::from_utf8(bytes).expect("wire string must be valid UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        assert_eq!(
            buf.len(),
            v.encoded_size(),
            "metered size must match encoding"
        );
        let mut b = buf.freeze();
        let back = T::decode(&mut b);
        assert_eq!(back, v);
        assert!(!b.has_remaining(), "decode must consume exactly the record");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(42u8);
        roundtrip(65_000u16);
        roundtrip(7u32);
        roundtrip(u64::MAX);
        roundtrip(-13i32);
        roundtrip(i64::MIN);
        roundtrip(1.5f32);
        roundtrip(std::f64::consts::PI);
        roundtrip(());
    }

    #[test]
    fn tuples_roundtrip() {
        roundtrip((7u64, 2.5f64));
        roundtrip((1u32, (2u64, 3.0f64)));
        roundtrip((1u8, 2u16, vec![1u8, 2, 3]));
    }

    #[test]
    fn buffers_roundtrip() {
        roundtrip(Vec::<u8>::new());
        roundtrip(vec![0u8; 1000]);
        roundtrip(String::from("tiger/area-hydrography"));
        roundtrip(String::new());
    }

    proptest! {
        #[test]
        fn any_pair_roundtrips(k in any::<u64>(), x in any::<f64>(), payload in prop::collection::vec(any::<u8>(), 0..64)) {
            roundtrip((k, x));
            roundtrip((k, payload.clone()));
        }
    }
}
