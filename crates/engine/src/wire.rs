use bytes::{Buf, BufMut};
use std::fmt;

/// Why a wire record failed to decode. Malformed or truncated bytes are an
/// expected runtime condition on the (simulated) network path, so decoding
/// reports them as values — they feed the engine's `TaskError` plumbing —
/// instead of panicking the worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the record did.
    Truncated { needed: usize, remaining: usize },
    /// A string field held bytes that are not valid UTF-8.
    InvalidUtf8,
    /// The bytes are structurally invalid for the record type (bad tag,
    /// impossible field value).
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => write!(
                f,
                "truncated record: need {needed} more byte(s), {remaining} remaining"
            ),
            WireError::InvalidUtf8 => write!(f, "wire string is not valid UTF-8"),
            WireError::Malformed(why) => write!(f, "malformed record: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Checks that `buf` still holds `needed` bytes before a fixed-width read.
#[inline]
pub fn ensure_remaining(buf: &impl Buf, needed: usize) -> Result<(), WireError> {
    let remaining = buf.remaining();
    if remaining < needed {
        Err(WireError::Truncated { needed, remaining })
    } else {
        Ok(())
    }
}

/// Wire format for records that cross the (simulated) network.
///
/// The shuffle meters traffic by [`Wire::encoded_size`]; `encode`/`try_decode`
/// define the actual byte layout so tests can verify that the metered size is
/// the real serialized size (`encoded_size == encode(..).len()`), and so the
/// engine can optionally materialize shuffles through bytes.
///
/// The format is little-endian and self-delimiting per record (fixed-width
/// scalars, length-prefixed buffers) — the moral equivalent of the flat tuple
/// encoding Spark's serializer produces for the paper's text records.
pub trait Wire: Sized {
    /// Exact number of bytes `encode` will write.
    fn encoded_size(&self) -> usize;
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut impl BufMut);
    /// Reads one value back, consuming exactly `encoded_size` bytes, or
    /// reports why the bytes do not form a record. Implementations must not
    /// panic on malformed input.
    fn try_decode(buf: &mut impl Buf) -> Result<Self, WireError>;
    /// Reads one value back; consumes exactly `encoded_size` bytes.
    ///
    /// # Panics
    /// Panics on malformed or truncated input — use [`Wire::try_decode`] on
    /// paths that must survive bad bytes.
    fn decode(buf: &mut impl Buf) -> Self {
        match Self::try_decode(buf) {
            Ok(v) => v,
            Err(e) => panic!("wire decode failed: {e}"),
        }
    }
}

macro_rules! wire_scalar {
    ($t:ty, $put:ident, $get:ident) => {
        impl Wire for $t {
            #[inline]
            fn encoded_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
            #[inline]
            fn encode(&self, buf: &mut impl BufMut) {
                buf.$put(*self);
            }
            #[inline]
            fn try_decode(buf: &mut impl Buf) -> Result<Self, WireError> {
                ensure_remaining(buf, std::mem::size_of::<$t>())?;
                Ok(buf.$get())
            }
        }
    };
}

wire_scalar!(u8, put_u8, get_u8);
wire_scalar!(u16, put_u16_le, get_u16_le);
wire_scalar!(u32, put_u32_le, get_u32_le);
wire_scalar!(u64, put_u64_le, get_u64_le);
wire_scalar!(i32, put_i32_le, get_i32_le);
wire_scalar!(i64, put_i64_le, get_i64_le);
wire_scalar!(f32, put_f32_le, get_f32_le);
wire_scalar!(f64, put_f64_le, get_f64_le);

impl Wire for () {
    #[inline]
    fn encoded_size(&self) -> usize {
        0
    }
    #[inline]
    fn encode(&self, _buf: &mut impl BufMut) {}
    #[inline]
    fn try_decode(_buf: &mut impl Buf) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    #[inline]
    fn encoded_size(&self) -> usize {
        self.0.encoded_size() + self.1.encoded_size()
    }
    #[inline]
    fn encode(&self, buf: &mut impl BufMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    #[inline]
    fn try_decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let a = A::try_decode(buf)?;
        let b = B::try_decode(buf)?;
        Ok((a, b))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    #[inline]
    fn encoded_size(&self) -> usize {
        self.0.encoded_size() + self.1.encoded_size() + self.2.encoded_size()
    }
    #[inline]
    fn encode(&self, buf: &mut impl BufMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    #[inline]
    fn try_decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let a = A::try_decode(buf)?;
        let b = B::try_decode(buf)?;
        let c = C::try_decode(buf)?;
        Ok((a, b, c))
    }
}

/// Length-prefixed byte buffer (u32 length + payload).
impl Wire for Vec<u8> {
    #[inline]
    fn encoded_size(&self) -> usize {
        4 + self.len()
    }
    #[inline]
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self);
    }
    #[inline]
    fn try_decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let len = u32::try_decode(buf)? as usize;
        // A corrupt length prefix must not trigger a huge allocation or an
        // underflow panic in `copy_to_slice`.
        ensure_remaining(buf, len)?;
        let mut v = vec![0u8; len];
        buf.copy_to_slice(&mut v);
        Ok(v)
    }
}

/// Length-prefixed UTF-8 string.
impl Wire for String {
    #[inline]
    fn encoded_size(&self) -> usize {
        4 + self.len()
    }
    #[inline]
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self.as_bytes());
    }
    #[inline]
    fn try_decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        let bytes = Vec::<u8>::try_decode(buf)?;
        String::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        assert_eq!(
            buf.len(),
            v.encoded_size(),
            "metered size must match encoding"
        );
        let mut b = buf.freeze();
        let back = T::decode(&mut b);
        assert_eq!(back, v);
        assert!(!b.has_remaining(), "decode must consume exactly the record");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(42u8);
        roundtrip(65_000u16);
        roundtrip(7u32);
        roundtrip(u64::MAX);
        roundtrip(-13i32);
        roundtrip(i64::MIN);
        roundtrip(1.5f32);
        roundtrip(std::f64::consts::PI);
        roundtrip(());
    }

    #[test]
    fn tuples_roundtrip() {
        roundtrip((7u64, 2.5f64));
        roundtrip((1u32, (2u64, 3.0f64)));
        roundtrip((1u8, 2u16, vec![1u8, 2, 3]));
    }

    #[test]
    fn buffers_roundtrip() {
        roundtrip(Vec::<u8>::new());
        roundtrip(vec![0u8; 1000]);
        roundtrip(String::from("tiger/area-hydrography"));
        roundtrip(String::new());
    }

    #[test]
    fn truncated_scalar_is_an_error() {
        let mut b: &[u8] = &[1, 2, 3];
        assert_eq!(
            u64::try_decode(&mut b),
            Err(WireError::Truncated {
                needed: 8,
                remaining: 3
            })
        );
    }

    #[test]
    fn truncated_buffer_payload_is_an_error() {
        // Length prefix says 100 bytes, only 2 follow — must not panic and
        // must not allocate the phantom payload.
        let mut buf = BytesMut::new();
        buf.put_u32_le(100);
        buf.put_slice(&[9, 9]);
        let mut b = buf.freeze();
        assert_eq!(
            Vec::<u8>::try_decode(&mut b),
            Err(WireError::Truncated {
                needed: 100,
                remaining: 2
            })
        );
    }

    #[test]
    fn truncated_tuple_tail_is_an_error() {
        let mut buf = BytesMut::new();
        (7u64, 1.5f64).encode(&mut buf);
        let mut b = buf.freeze();
        // Drain the first field plus one byte of the second.
        let mut waste = [0u8; 9];
        b.copy_to_slice(&mut waste);
        assert!(matches!(
            <(u64, f64)>::try_decode(&mut b),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_slice(&[0xFF, 0xFE]);
        let mut b = buf.freeze();
        assert_eq!(String::try_decode(&mut b), Err(WireError::InvalidUtf8));
    }

    #[test]
    #[should_panic(expected = "wire decode failed")]
    fn panicking_decode_names_the_cause() {
        let mut b: &[u8] = &[0];
        let _ = u32::decode(&mut b);
    }

    proptest! {
        #[test]
        fn any_pair_roundtrips(k in any::<u64>(), x in any::<f64>(), payload in prop::collection::vec(any::<u8>(), 0..64)) {
            roundtrip((k, x));
            roundtrip((k, payload.clone()));
        }

        #[test]
        fn truncation_never_panics(data in prop::collection::vec(any::<u8>(), 0..40)) {
            // Any byte soup either decodes or errors — never panics.
            let mut b: &[u8] = &data;
            let _ = <(u64, Vec<u8>)>::try_decode(&mut b);
            let mut b: &[u8] = &data;
            let _ = String::try_decode(&mut b);
        }
    }
}
