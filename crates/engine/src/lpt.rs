use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Longest-Processing-Time assignment of weighted keys to `bins` partitions
/// (§6.2 of the paper).
///
/// Cells are sorted by estimated join cost (descending) and greedily placed
/// on the partition with the smallest aggregate cost so far — the classic
/// 4/3-approximation for the NP-hard multiprocessor scheduling problem the
/// paper reduces its placement to. The cost estimates come from the sampled
/// per-cell `r · s` products.
///
/// Returns an explicit key → bin map for [`crate::ExplicitPartitioner`].
pub fn lpt_assign(costs: &[(u64, u64)], bins: usize) -> HashMap<u64, usize> {
    assert!(bins > 0, "need at least one bin");
    let mut order: Vec<&(u64, u64)> = costs.iter().collect();
    // Descending cost; key ascending as deterministic tie-break.
    order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    // Min-heap of (load, bin).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..bins).map(|b| Reverse((0u64, b))).collect();
    let mut map = HashMap::with_capacity(costs.len());
    for &&(key, cost) in &order {
        let Reverse((load, bin)) = heap.pop().expect("heap has `bins` entries");
        map.insert(key, bin);
        heap.push(Reverse((load + cost, bin)));
    }
    map
}

/// Index of the least-loaded bin among those not `banned`, ties broken by
/// the lowest index (deterministic). Returns `None` when every bin is
/// banned. This is the same greedy "smallest aggregate load" choice LPT
/// makes per placement, exposed for the fault-tolerant executor to re-place
/// retries and speculative copies on the emptiest usable node.
pub fn least_loaded(loads: &[u64], banned: impl Fn(usize) -> bool) -> Option<usize> {
    loads
        .iter()
        .enumerate()
        .filter(|(i, _)| !banned(*i))
        .min_by_key(|(i, load)| (**load, *i))
        .map(|(i, _)| i)
}

/// Maximum bin load under an assignment — used by tests and diagnostics.
pub fn assignment_makespan(costs: &[(u64, u64)], map: &HashMap<u64, usize>, bins: usize) -> u64 {
    let mut load = vec![0u64; bins];
    for &(key, cost) in costs {
        load[map[&key]] += cost;
    }
    load.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_every_key_in_range() {
        let costs: Vec<(u64, u64)> = (0..100).map(|k| (k, k * 3 % 17)).collect();
        let map = lpt_assign(&costs, 8);
        assert_eq!(map.len(), 100);
        assert!(map.values().all(|&b| b < 8));
    }

    #[test]
    fn classic_lpt_example() {
        // Jobs {7,7,6,6,5,5,4} on 3 machines: the classic LPT worst case —
        // greedy reaches makespan 16 (optimum is 15 with loads 7+7, 6+5+4...
        // actually 14 is infeasible; LPT = 16 here).
        let costs = vec![(0, 7), (1, 7), (2, 6), (3, 6), (4, 5), (5, 5), (6, 4)];
        let map = lpt_assign(&costs, 3);
        assert_eq!(assignment_makespan(&costs, &map, 3), 16);
    }

    #[test]
    fn beats_round_robin_on_skew() {
        // One giant cell plus many small ones: hash/round-robin placements
        // routinely pair the giant with extra work; LPT isolates it.
        let mut costs = vec![(0u64, 1000u64)];
        costs.extend((1..41).map(|k| (k, 50)));
        let map = lpt_assign(&costs, 4);
        let lpt_makespan = assignment_makespan(&costs, &map, 4);
        // Round-robin by key order.
        let rr: HashMap<u64, usize> = costs.iter().map(|&(k, _)| (k, (k % 4) as usize)).collect();
        let rr_makespan = assignment_makespan(&costs, &rr, 4);
        assert!(
            lpt_makespan <= 1000 + 50,
            "LPT must isolate the giant: {lpt_makespan}"
        );
        assert!(lpt_makespan < rr_makespan);
    }

    #[test]
    fn single_bin_gets_everything() {
        let costs = vec![(1, 5), (2, 6)];
        let map = lpt_assign(&costs, 1);
        assert!(map.values().all(|&b| b == 0));
    }

    #[test]
    fn least_loaded_skips_banned_bins() {
        let loads = [30u64, 10, 20];
        assert_eq!(least_loaded(&loads, |_| false), Some(1));
        assert_eq!(least_loaded(&loads, |i| i == 1), Some(2));
        assert_eq!(least_loaded(&loads, |_| true), None);
        assert_eq!(least_loaded(&[], |_| false), None);
        // Ties break toward the lowest index.
        assert_eq!(least_loaded(&[5, 5, 5], |i| i == 0), Some(1));
    }

    #[test]
    fn deterministic_under_ties() {
        let costs = vec![(10, 5), (11, 5), (12, 5), (13, 5)];
        let a = lpt_assign(&costs, 2);
        let b = lpt_assign(&costs, 2);
        assert_eq!(a, b);
    }
}
