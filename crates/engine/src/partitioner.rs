use std::collections::HashMap;

/// How grid cells are placed onto join partitions (and hence nodes) — the
/// choice evaluated in Table 7 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Spark's default: hash the key into one of the partitions.
    Hash,
    /// Longest-Processing-Time greedy driven by sampled per-cell cost (§6.2).
    Lpt,
    /// SJMR's round-robin tile mapping (related work \[27\]).
    RoundRobin,
}

impl Placement {
    pub fn name(self) -> &'static str {
        match self {
            Placement::Hash => "hash",
            Placement::Lpt => "LPT",
            Placement::RoundRobin => "round-robin",
        }
    }
}

/// Maps shuffle keys to partitions in `0..num_partitions()`.
pub trait Partitioner<K>: Sync {
    fn num_partitions(&self) -> usize;
    fn partition_of(&self, key: &K) -> usize;
}

/// Multiplicative hashing of `u64` keys (Fibonacci hashing). Spark's
/// `HashPartitioner` equivalent for our integer cell ids: deterministic,
/// cheap, and scrambles consecutive cell indices across partitions.
#[derive(Debug, Clone)]
pub struct HashPartitioner {
    partitions: usize,
}

impl HashPartitioner {
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        HashPartitioner { partitions }
    }

    #[inline]
    pub fn hash64(key: u64) -> u64 {
        // Fibonacci multiplier (2^64 / φ) followed by a xor-fold; enough to
        // decorrelate row-major cell ids from partition counts.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^ (h >> 32)
    }
}

impl Partitioner<u64> for HashPartitioner {
    #[inline]
    fn num_partitions(&self) -> usize {
        self.partitions
    }

    #[inline]
    fn partition_of(&self, key: &u64) -> usize {
        (Self::hash64(*key) % self.partitions as u64) as usize
    }
}

/// SJMR-style tile mapping (Zhang et al.): cell/tile ids are assigned to
/// partitions round-robin (`tile mod P`). Spreads spatially-contiguous hot
/// regions across partitions deterministically, without needing a sample.
#[derive(Debug, Clone)]
pub struct RoundRobinPartitioner {
    partitions: usize,
}

impl RoundRobinPartitioner {
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        RoundRobinPartitioner { partitions }
    }
}

impl Partitioner<u64> for RoundRobinPartitioner {
    #[inline]
    fn num_partitions(&self) -> usize {
        self.partitions
    }

    #[inline]
    fn partition_of(&self, key: &u64) -> usize {
        (*key % self.partitions as u64) as usize
    }
}

/// Marks unassigned slots in the dense lookup table.
const DENSE_UNASSIGNED: u32 = u32::MAX;

/// Largest key span the dense table will materialize (16 Mi slots = 64 MiB).
const DENSE_SPAN_LIMIT: u64 = 1 << 24;

/// The lookup structure behind [`ExplicitPartitioner`]. Grid cell ids are
/// `row * nx + col`, so the LPT assignment usually covers a contiguous (or
/// near-contiguous) id range; a dense array indexed by `key - base` then
/// replaces the hash probe on the shuffle's per-record hot path. Sparse key
/// sets (span much larger than the assignment) keep the map.
#[derive(Debug, Clone)]
enum Lookup {
    Dense {
        base: u64,
        table: Vec<u32>,
        assigned: usize,
    },
    Sparse(HashMap<u64, usize>),
}

/// Explicit key → partition map (the output of LPT), with hash fallback for
/// keys that were not present in the sample.
#[derive(Debug, Clone)]
pub struct ExplicitPartitioner {
    lookup: Lookup,
    fallback: HashPartitioner,
}

impl ExplicitPartitioner {
    pub fn new(map: HashMap<u64, usize>, partitions: usize) -> Self {
        assert!(
            map.values().all(|&p| p < partitions),
            "assignment out of range"
        );
        let lookup = match Self::dense_span(&map) {
            Some((base, span)) => {
                let mut table = vec![DENSE_UNASSIGNED; span as usize];
                for (&k, &p) in &map {
                    table[(k - base) as usize] = p as u32;
                }
                Lookup::Dense {
                    base,
                    table,
                    assigned: map.len(),
                }
            }
            None => Lookup::Sparse(map),
        };
        ExplicitPartitioner {
            lookup,
            fallback: HashPartitioner::new(partitions),
        }
    }

    /// Builds the map-backed variant unconditionally — the pre-dense lookup,
    /// kept reachable so equivalence tests and A/B perf runs can pin the
    /// legacy probe path.
    pub fn new_sparse(map: HashMap<u64, usize>, partitions: usize) -> Self {
        assert!(
            map.values().all(|&p| p < partitions),
            "assignment out of range"
        );
        ExplicitPartitioner {
            lookup: Lookup::Sparse(map),
            fallback: HashPartitioner::new(partitions),
        }
    }

    /// `(base, span)` when the key set is dense enough for a table: the span
    /// must fit [`DENSE_SPAN_LIMIT`] and waste at most 4 slots per assigned
    /// key (small maps always qualify up to a 64-slot floor).
    fn dense_span(map: &HashMap<u64, usize>) -> Option<(u64, u64)> {
        let min = *map.keys().min()?;
        let max = *map.keys().max()?;
        let span = max - min + 1;
        let budget = (map.len() as u64).saturating_mul(4).max(64);
        (span <= DENSE_SPAN_LIMIT && span <= budget).then_some((min, span))
    }

    /// Whether the dense fast path is active.
    pub fn is_dense(&self) -> bool {
        matches!(self.lookup, Lookup::Dense { .. })
    }

    /// Number of keys with an explicit assignment.
    pub fn assigned_keys(&self) -> usize {
        match &self.lookup {
            Lookup::Dense { assigned, .. } => *assigned,
            Lookup::Sparse(map) => map.len(),
        }
    }
}

impl Partitioner<u64> for ExplicitPartitioner {
    #[inline]
    fn num_partitions(&self) -> usize {
        self.fallback.num_partitions()
    }

    #[inline]
    fn partition_of(&self, key: &u64) -> usize {
        match &self.lookup {
            Lookup::Dense { base, table, .. } => {
                match key.checked_sub(*base).and_then(|i| table.get(i as usize)) {
                    Some(&p) if p != DENSE_UNASSIGNED => p as usize,
                    _ => self.fallback.partition_of(key),
                }
            }
            Lookup::Sparse(map) => match map.get(key) {
                Some(&p) => p,
                None => self.fallback.partition_of(key),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_in_range_and_deterministic() {
        let p = HashPartitioner::new(96);
        for k in 0..10_000u64 {
            let a = p.partition_of(&k);
            assert!(a < 96);
            assert_eq!(a, p.partition_of(&k));
        }
    }

    #[test]
    fn hash_partitioner_spreads_consecutive_keys() {
        let p = HashPartitioner::new(16);
        let mut counts = [0usize; 16];
        for k in 0..1600u64 {
            counts[p.partition_of(&k)] += 1;
        }
        // No partition should be starved or hold more than 3x its share.
        for c in counts {
            assert!(c > 0 && c < 300, "skewed hash distribution: {counts:?}");
        }
    }

    #[test]
    fn explicit_partitioner_uses_map_then_fallback() {
        let mut map = HashMap::new();
        map.insert(7u64, 3usize);
        map.insert(8u64, 0usize);
        let p = ExplicitPartitioner::new(map, 4);
        assert_eq!(p.partition_of(&7), 3);
        assert_eq!(p.partition_of(&8), 0);
        assert_eq!(p.assigned_keys(), 2);
        let f = p.partition_of(&12345);
        assert!(f < 4);
        assert_eq!(f, HashPartitioner::new(4).partition_of(&12345));
    }

    #[test]
    #[should_panic(expected = "assignment out of range")]
    fn explicit_partitioner_validates_range() {
        let mut map = HashMap::new();
        map.insert(1u64, 9usize);
        let _ = ExplicitPartitioner::new(map, 4);
    }

    #[test]
    #[should_panic(expected = "assignment out of range")]
    fn sparse_constructor_validates_range() {
        let mut map = HashMap::new();
        map.insert(1u64, 9usize);
        let _ = ExplicitPartitioner::new_sparse(map, 4);
    }

    #[test]
    fn contiguous_cell_ids_take_the_dense_path() {
        // Grid cell ids 100..1100 — contiguous, as the grid produces them.
        let map: HashMap<u64, usize> = (100u64..1100).map(|k| (k, (k % 7) as usize)).collect();
        let dense = ExplicitPartitioner::new(map.clone(), 7);
        assert!(dense.is_dense());
        assert_eq!(dense.assigned_keys(), 1000);
        let sparse = ExplicitPartitioner::new_sparse(map, 7);
        assert!(!sparse.is_dense());
        // Assigned keys, unassigned keys inside the span, keys below the
        // base, and keys past the end all agree with the map-backed lookup.
        for k in [0u64, 42, 99, 100, 567, 1099, 1100, 5000, u64::MAX] {
            assert_eq!(
                dense.partition_of(&k),
                sparse.partition_of(&k),
                "lookup paths disagree at key {k}"
            );
        }
    }

    #[test]
    fn gappy_dense_table_falls_back_per_key() {
        // Contiguous span with holes: dense table with sentinel slots.
        let map: HashMap<u64, usize> = (0u64..200).filter(|k| k % 3 != 1).map(|k| (k, 2)).collect();
        let p = ExplicitPartitioner::new(map, 4);
        assert!(p.is_dense());
        assert_eq!(p.partition_of(&0), 2);
        assert_eq!(p.partition_of(&199), 2);
        // Hole at k=1: must agree with the hash fallback, not the sentinel.
        assert_eq!(p.partition_of(&1), HashPartitioner::new(4).partition_of(&1));
    }

    #[test]
    fn wide_key_spans_keep_the_map() {
        let mut map = HashMap::new();
        map.insert(0u64, 1usize);
        map.insert(u64::MAX - 1, 2usize);
        let p = ExplicitPartitioner::new(map, 4);
        assert!(
            !p.is_dense(),
            "a 2-key span of 2^64 must not allocate a table"
        );
        assert_eq!(p.partition_of(&0), 1);
        assert_eq!(p.partition_of(&(u64::MAX - 1)), 2);
        assert_eq!(p.assigned_keys(), 2);
    }

    #[test]
    fn small_maps_get_the_64_slot_floor() {
        // 5 keys over a span of 60: sparser than 4x but under the floor.
        let map: HashMap<u64, usize> = (0..5u64).map(|i| (i * 15, 0usize)).collect();
        let p = ExplicitPartitioner::new(map, 4);
        assert!(p.is_dense());
        assert_eq!(p.partition_of(&15), 0);
    }

    #[test]
    fn placement_names() {
        assert_eq!(Placement::Hash.name(), "hash");
        assert_eq!(Placement::Lpt.name(), "LPT");
        assert_eq!(Placement::RoundRobin.name(), "round-robin");
    }

    #[test]
    fn round_robin_is_modulo() {
        let p = RoundRobinPartitioner::new(5);
        assert_eq!(p.num_partitions(), 5);
        for k in 0..100u64 {
            assert_eq!(p.partition_of(&k), (k % 5) as usize);
        }
    }
}
