use std::collections::HashMap;

/// How grid cells are placed onto join partitions (and hence nodes) — the
/// choice evaluated in Table 7 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Spark's default: hash the key into one of the partitions.
    Hash,
    /// Longest-Processing-Time greedy driven by sampled per-cell cost (§6.2).
    Lpt,
    /// SJMR's round-robin tile mapping (related work \[27\]).
    RoundRobin,
}

impl Placement {
    pub fn name(self) -> &'static str {
        match self {
            Placement::Hash => "hash",
            Placement::Lpt => "LPT",
            Placement::RoundRobin => "round-robin",
        }
    }
}

/// Maps shuffle keys to partitions in `0..num_partitions()`.
pub trait Partitioner<K>: Sync {
    fn num_partitions(&self) -> usize;
    fn partition_of(&self, key: &K) -> usize;
}

/// Multiplicative hashing of `u64` keys (Fibonacci hashing). Spark's
/// `HashPartitioner` equivalent for our integer cell ids: deterministic,
/// cheap, and scrambles consecutive cell indices across partitions.
#[derive(Debug, Clone)]
pub struct HashPartitioner {
    partitions: usize,
}

impl HashPartitioner {
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        HashPartitioner { partitions }
    }

    #[inline]
    pub fn hash64(key: u64) -> u64 {
        // Fibonacci multiplier (2^64 / φ) followed by a xor-fold; enough to
        // decorrelate row-major cell ids from partition counts.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^ (h >> 32)
    }
}

impl Partitioner<u64> for HashPartitioner {
    #[inline]
    fn num_partitions(&self) -> usize {
        self.partitions
    }

    #[inline]
    fn partition_of(&self, key: &u64) -> usize {
        (Self::hash64(*key) % self.partitions as u64) as usize
    }
}

/// SJMR-style tile mapping (Zhang et al.): cell/tile ids are assigned to
/// partitions round-robin (`tile mod P`). Spreads spatially-contiguous hot
/// regions across partitions deterministically, without needing a sample.
#[derive(Debug, Clone)]
pub struct RoundRobinPartitioner {
    partitions: usize,
}

impl RoundRobinPartitioner {
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        RoundRobinPartitioner { partitions }
    }
}

impl Partitioner<u64> for RoundRobinPartitioner {
    #[inline]
    fn num_partitions(&self) -> usize {
        self.partitions
    }

    #[inline]
    fn partition_of(&self, key: &u64) -> usize {
        (*key % self.partitions as u64) as usize
    }
}

/// Explicit key → partition map (the output of LPT), with hash fallback for
/// keys that were not present in the sample.
#[derive(Debug, Clone)]
pub struct ExplicitPartitioner {
    map: HashMap<u64, usize>,
    fallback: HashPartitioner,
}

impl ExplicitPartitioner {
    pub fn new(map: HashMap<u64, usize>, partitions: usize) -> Self {
        assert!(
            map.values().all(|&p| p < partitions),
            "assignment out of range"
        );
        ExplicitPartitioner {
            map,
            fallback: HashPartitioner::new(partitions),
        }
    }

    /// Number of keys with an explicit assignment.
    pub fn assigned_keys(&self) -> usize {
        self.map.len()
    }
}

impl Partitioner<u64> for ExplicitPartitioner {
    #[inline]
    fn num_partitions(&self) -> usize {
        self.fallback.num_partitions()
    }

    #[inline]
    fn partition_of(&self, key: &u64) -> usize {
        match self.map.get(key) {
            Some(&p) => p,
            None => self.fallback.partition_of(key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_in_range_and_deterministic() {
        let p = HashPartitioner::new(96);
        for k in 0..10_000u64 {
            let a = p.partition_of(&k);
            assert!(a < 96);
            assert_eq!(a, p.partition_of(&k));
        }
    }

    #[test]
    fn hash_partitioner_spreads_consecutive_keys() {
        let p = HashPartitioner::new(16);
        let mut counts = [0usize; 16];
        for k in 0..1600u64 {
            counts[p.partition_of(&k)] += 1;
        }
        // No partition should be starved or hold more than 3x its share.
        for c in counts {
            assert!(c > 0 && c < 300, "skewed hash distribution: {counts:?}");
        }
    }

    #[test]
    fn explicit_partitioner_uses_map_then_fallback() {
        let mut map = HashMap::new();
        map.insert(7u64, 3usize);
        map.insert(8u64, 0usize);
        let p = ExplicitPartitioner::new(map, 4);
        assert_eq!(p.partition_of(&7), 3);
        assert_eq!(p.partition_of(&8), 0);
        assert_eq!(p.assigned_keys(), 2);
        let f = p.partition_of(&12345);
        assert!(f < 4);
        assert_eq!(f, HashPartitioner::new(4).partition_of(&12345));
    }

    #[test]
    #[should_panic(expected = "assignment out of range")]
    fn explicit_partitioner_validates_range() {
        let mut map = HashMap::new();
        map.insert(1u64, 9usize);
        let _ = ExplicitPartitioner::new(map, 4);
    }

    #[test]
    fn placement_names() {
        assert_eq!(Placement::Hash.name(), "hash");
        assert_eq!(Placement::Lpt.name(), "LPT");
        assert_eq!(Placement::RoundRobin.name(), "round-robin");
    }

    #[test]
    fn round_robin_is_modulo() {
        let p = RoundRobinPartitioner::new(5);
        assert_eq!(p.num_partitions(), 5);
        for k in 0..100u64 {
            assert_eq!(p.partition_of(&k), (k % 5) as usize);
        }
    }
}
