//! Per-node memory accounting and disk spill segments.
//!
//! The paper's headline failure mode is memory, not time: universal ε-grid
//! replication runs out of memory at scale, and adaptive replication exists
//! to keep the post-shuffle footprint bounded. The engine has always
//! *measured* that footprint (`ShuffleStats::partition_bytes`); this module
//! is the layer that *enforces* it. A [`MemoryAccountant`] tracks the bytes
//! resident on every simulated node; callers ask permission before
//! materialising a buffer ([`MemoryAccountant::try_charge`]) and release the
//! charge once the buffer is drained. When a node's budget would be
//! exceeded, the caller degrades instead of aborting — the radix shuffle
//! writes the denied bucket to a [`SpillSegment`] on disk (encoded with the
//! existing [`Wire`](crate::wire::Wire) codec) and re-reads it at reduce
//! time, so results stay byte-identical while the in-memory peak stays under
//! the budget.
//!
//! Without a budget the accountant still meters (so `peak_memory_bytes` is
//! populated on every run) but never denies; enforcement is strictly opt-in
//! via [`ClusterConfig::with_memory_budget`](crate::ClusterConfig::with_memory_budget).

use crate::wire::{Wire, WireError};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide spill directory override (set by [`set_spill_dir`]).
static SPILL_DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();

fn spill_dir_cell() -> &'static Mutex<Option<PathBuf>> {
    SPILL_DIR.get_or_init(|| Mutex::new(None))
}

/// Overrides the directory spill and checkpoint segments are written to
/// (the `--spill-dir` flag). Takes precedence over `ASJ_SPILL_DIR`.
pub fn set_spill_dir(dir: impl Into<PathBuf>) {
    *spill_dir_cell().lock().expect("spill dir lock poisoned") = Some(dir.into());
}

/// The directory spill segments land in: the [`set_spill_dir`] override,
/// else `ASJ_SPILL_DIR`, else the OS temp directory.
pub fn spill_dir() -> PathBuf {
    if let Some(dir) = spill_dir_cell()
        .lock()
        .expect("spill dir lock poisoned")
        .clone()
    {
        return dir;
    }
    match std::env::var_os("ASJ_SPILL_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => std::env::temp_dir(),
    }
}

/// Deletes spill files left behind by *dead* processes in `dir`. Matches
/// only the `asj-spill-<pid>-<seq>.bin` naming scheme and spares both the
/// live process's own files and any file whose embedded pid still names a
/// running process — two servers sharing a `--spill-dir` must not delete
/// each other's in-flight spills at startup. Files whose pid can't be
/// parsed or whose liveness can't be determined are spared too: an orphan
/// costs disk until the next sweep, a false positive corrupts a live
/// sibling's shuffle. Returns the bytes reclaimed.
pub fn clean_orphaned_spills(dir: &Path) -> std::io::Result<u64> {
    let own_pid = std::process::id();
    let mut reclaimed = 0u64;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("asj-spill-") else {
            continue;
        };
        if !name.ends_with(".bin") {
            continue;
        }
        let Some(pid) = rest.split('-').next().and_then(|p| p.parse::<u32>().ok()) else {
            continue;
        };
        if pid == own_pid || pid_is_alive(pid) {
            continue;
        }
        let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
        if std::fs::remove_file(entry.path()).is_ok() {
            reclaimed = reclaimed.saturating_add(len);
        }
    }
    Ok(reclaimed)
}

/// Whether `pid` names a running process. On linux this checks
/// `/proc/<pid>`; elsewhere there is no portable non-signalling probe, so
/// every pid is reported alive and the sweep only ever reclaims via an
/// explicit owner (conservative: unknown means spare).
fn pid_is_alive(pid: u32) -> bool {
    #[cfg(target_os = "linux")]
    {
        Path::new("/proc").join(pid.to_string()).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        true
    }
}

/// Point-in-time view of one accountant (for reports and assertions).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemorySnapshot {
    /// The per-node budget, if one is enforced.
    pub budget: Option<u64>,
    /// Highest concurrent charge observed on any node.
    pub peak_bytes: u64,
    /// Highest concurrent charge per node.
    pub per_node_peak: Vec<u64>,
    /// Bytes written to disk spill segments.
    pub spilled_bytes: u64,
    /// Charges rejected because they would have crossed the budget.
    pub budget_denials: u64,
    /// Injected out-of-memory faults observed.
    pub oom_events: u64,
}

/// Charges live buffer bytes to simulated nodes and enforces an optional
/// per-node budget. Shared (via `Arc`) by every clone of a
/// [`Cluster`](crate::Cluster) handle, like the [`BufferPool`](crate::BufferPool).
#[derive(Debug)]
pub struct MemoryAccountant {
    budget: Option<u64>,
    resident: Vec<AtomicU64>,
    peak: Vec<AtomicU64>,
    spilled: AtomicU64,
    denials: AtomicU64,
    oom_events: AtomicU64,
}

impl MemoryAccountant {
    /// An accountant for `nodes` simulated nodes. `budget == None` means
    /// meter-only: charges are tracked but never denied.
    pub fn new(nodes: usize, budget: Option<u64>) -> Self {
        let nodes = nodes.max(1);
        MemoryAccountant {
            budget,
            resident: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            peak: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            spilled: AtomicU64::new(0),
            denials: AtomicU64::new(0),
            oom_events: AtomicU64::new(0),
        }
    }

    /// The enforced per-node budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    fn slot(&self, node: usize) -> usize {
        node % self.resident.len()
    }

    /// Tries to charge `bytes` to `node`. Returns `false` (and counts a
    /// denial) when the node's resident total would cross the budget; the
    /// caller must then spill or shrink instead of materialising. On success
    /// the node's peak is updated, so `peak ≤ budget` holds by construction
    /// whenever a budget is set.
    pub fn try_charge(&self, node: usize, bytes: u64) -> bool {
        if bytes == 0 {
            return true;
        }
        let slot = self.slot(node);
        let cell = &self.resident[slot];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(bytes);
            if self.budget.is_some_and(|b| next > b) {
                self.denials.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    self.peak[slot].fetch_max(next, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Releases a previous charge (saturating: over-release clamps at zero
    /// rather than wrapping).
    pub fn release(&self, node: usize, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let cell = &self.resident[self.slot(node)];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records `bytes` written to a disk spill segment.
    pub fn note_spill(&self, bytes: u64) {
        self.spilled.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one injected out-of-memory fault.
    pub fn note_oom(&self) {
        self.oom_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Bytes currently charged to `node`.
    pub fn resident_bytes(&self, node: usize) -> u64 {
        self.resident[self.slot(node)].load(Ordering::Relaxed)
    }

    /// Simulated nodes this accountant tracks.
    pub fn nodes(&self) -> usize {
        self.resident.len()
    }

    /// Bytes currently charged across all nodes. Zero at every stage
    /// boundary (charges settle at stage commit points), which is what makes
    /// the job server's completion-time leak audit exact.
    pub fn resident_total(&self) -> u64 {
        self.resident
            .iter()
            .map(|r| r.load(Ordering::Relaxed))
            .sum()
    }

    /// Highest concurrent charge observed on `node`.
    pub fn peak_of_node(&self, node: usize) -> u64 {
        self.peak[self.slot(node)].load(Ordering::Relaxed)
    }

    /// Highest concurrent charge observed on any node.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
            .iter()
            .map(|p| p.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// Total bytes spilled to disk so far.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled.load(Ordering::Relaxed)
    }

    /// Charges denied so far.
    pub fn budget_denials(&self) -> u64 {
        self.denials.load(Ordering::Relaxed)
    }

    /// Injected OOM faults observed so far.
    pub fn oom_events(&self) -> u64 {
        self.oom_events.load(Ordering::Relaxed)
    }

    /// Snapshot of every counter.
    pub fn snapshot(&self) -> MemorySnapshot {
        MemorySnapshot {
            budget: self.budget,
            peak_bytes: self.peak_bytes(),
            per_node_peak: self
                .peak
                .iter()
                .map(|p| p.load(Ordering::Relaxed))
                .collect(),
            spilled_bytes: self.spilled_bytes(),
            budget_denials: self.budget_denials(),
            oom_events: self.oom_events(),
        }
    }
}

/// RAII ledger of admitted charges. Everything still held is released when
/// the guard drops, so a failed or speculative task attempt — whose guard
/// travels inside the discarded result — can never leak resident bytes,
/// mirroring how the [`BufferPool`](crate::BufferPool) drops a loser's
/// buffers instead of double-filling them.
#[derive(Debug)]
pub struct ChargeGuard {
    accountant: Arc<MemoryAccountant>,
    /// Per-node bytes currently held (small: one entry per node touched).
    held: Vec<(usize, u64)>,
}

impl ChargeGuard {
    pub fn new(accountant: Arc<MemoryAccountant>) -> Self {
        ChargeGuard {
            accountant,
            held: Vec::new(),
        }
    }

    /// [`MemoryAccountant::try_charge`], recorded in the ledger on success.
    pub fn try_charge(&mut self, node: usize, bytes: u64) -> bool {
        if bytes == 0 {
            return true;
        }
        if !self.accountant.try_charge(node, bytes) {
            return false;
        }
        match self.held.iter_mut().find(|(n, _)| *n == node) {
            Some((_, held)) => *held += bytes,
            None => self.held.push((node, bytes)),
        }
        true
    }

    /// Releases part of a held charge immediately (e.g. rolling back the
    /// first half of a two-sided admission).
    pub fn uncharge(&mut self, node: usize, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.accountant.release(node, bytes);
        if let Some((_, held)) = self.held.iter_mut().find(|(n, _)| *n == node) {
            *held = held.saturating_sub(bytes);
        }
    }

    /// Total bytes currently held across all nodes.
    pub fn held_bytes(&self) -> u64 {
        self.held.iter().map(|(_, b)| b).sum()
    }
}

impl Drop for ChargeGuard {
    fn drop(&mut self) {
        for &(node, bytes) in &self.held {
            self.accountant.release(node, bytes);
        }
    }
}

/// Encodes keyed records back-to-back with the [`Wire`] codec (the same
/// framing the byte meters already measure, so spill volume and
/// `partition_bytes` speak the same unit).
pub fn encode_records<K: Wire, V: Wire>(recs: &[(K, V)]) -> Vec<u8> {
    let total: usize = recs
        .iter()
        .map(|(k, v)| k.encoded_size() + v.encoded_size())
        .sum();
    let mut buf = Vec::with_capacity(total);
    for (k, v) in recs {
        k.encode(&mut buf);
        v.encode(&mut buf);
    }
    buf
}

/// Decodes exactly `records` keyed records from `bytes` (the inverse of
/// [`encode_records`]). Trailing bytes are an error — a spill chunk must
/// round-trip exactly.
pub fn decode_records<K: Wire, V: Wire>(
    bytes: &[u8],
    records: u64,
) -> Result<Vec<(K, V)>, WireError> {
    let mut cursor: &[u8] = bytes;
    let mut out = Vec::with_capacity(records as usize);
    for _ in 0..records {
        let k = K::try_decode(&mut cursor)?;
        let v = V::try_decode(&mut cursor)?;
        out.push((k, v));
    }
    if !cursor.is_empty() {
        return Err(WireError::Malformed(format!(
            "spill chunk has {} trailing byte(s)",
            cursor.len()
        )));
    }
    Ok(out)
}

/// Location of one target partition's records inside a [`SpillSegment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillChunk {
    /// Target partition the chunk's records belong to.
    pub target: usize,
    /// Records encoded in the chunk.
    pub records: u64,
    /// Encoded length in bytes.
    pub len: u64,
    offset: u64,
}

impl SpillChunk {
    /// A chunk descriptor at an explicit file offset — used when rebuilding a
    /// segment index from a checkpoint manifest rather than from writes.
    pub fn new(target: usize, records: u64, len: u64, offset: u64) -> Self {
        SpillChunk {
            target,
            records,
            len,
            offset,
        }
    }

    /// Byte offset of the chunk within its segment file.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

/// Append-only writer for one map task's spilled buckets. `finish` seals it
/// into a readable [`SpillSegment`].
#[derive(Debug)]
pub struct SpillWriter {
    file: File,
    path: PathBuf,
    chunks: Vec<SpillChunk>,
    offset: u64,
}

/// Monotonic discriminator so concurrent tasks never collide on a path.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

impl SpillWriter {
    /// Creates a fresh spill file in the configured spill directory (see
    /// [`spill_dir`]).
    pub fn create() -> std::io::Result<SpillWriter> {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = spill_dir().join(format!("asj-spill-{}-{}.bin", std::process::id(), seq));
        Self::create_at(path)
    }

    /// Creates a writer at an explicit path — checkpoint segments use named,
    /// stable paths instead of the per-process temp naming, so a recovering
    /// process can find them again. Replaces any stale file at `path`.
    pub fn create_at(path: impl Into<PathBuf>) -> std::io::Result<SpillWriter> {
        let path = path.into();
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(SpillWriter {
            file,
            path,
            chunks: Vec::new(),
            offset: 0,
        })
    }

    /// Appends one target's encoded records as a chunk.
    pub fn write_chunk(
        &mut self,
        target: usize,
        bytes: &[u8],
        records: u64,
    ) -> std::io::Result<()> {
        self.file.write_all(bytes)?;
        self.chunks.push(SpillChunk {
            target,
            records,
            len: bytes.len() as u64,
            offset: self.offset,
        });
        self.offset += bytes.len() as u64;
        Ok(())
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.offset
    }

    /// Seals the writer. Returns `None` when nothing was spilled (the empty
    /// file is deleted immediately).
    pub fn finish(mut self) -> std::io::Result<Option<SpillSegment>> {
        if self.chunks.is_empty() {
            drop(self.file);
            let _ = std::fs::remove_file(&self.path);
            return Ok(None);
        }
        self.file.flush()?;
        Ok(Some(SpillSegment {
            file: Mutex::new(self.file),
            path: self.path,
            chunks: self.chunks,
            keep: false,
        }))
    }
}

/// One sealed on-disk spill file plus its chunk index. Dropping the segment
/// deletes the file, so a failed or speculative task attempt cleans up after
/// itself automatically — unless [`SpillSegment::persist`] promoted it to a
/// durable checkpoint segment.
#[derive(Debug)]
pub struct SpillSegment {
    file: Mutex<File>,
    path: PathBuf,
    chunks: Vec<SpillChunk>,
    /// `true` once persisted: Drop leaves the file on disk.
    keep: bool,
}

impl SpillSegment {
    /// Reopens a previously persisted segment from its manifest-recorded
    /// chunk index. The reopened segment is durable (Drop keeps the file).
    pub fn open(path: impl Into<PathBuf>, chunks: Vec<SpillChunk>) -> std::io::Result<Self> {
        let path = path.into();
        let file = File::options().read(true).open(&path)?;
        Ok(SpillSegment {
            file: Mutex::new(file),
            path,
            chunks,
            keep: true,
        })
    }

    /// Promotes the segment from ephemeral spill to durable checkpoint:
    /// fsyncs the data and disarms the Drop-deletes-file behaviour.
    pub fn persist(&mut self) -> std::io::Result<()> {
        self.file
            .lock()
            .expect("spill segment poisoned")
            .sync_all()?;
        self.keep = true;
        Ok(())
    }

    /// The on-disk path of the segment file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The chunk index, in write order.
    pub fn chunks(&self) -> &[SpillChunk] {
        &self.chunks
    }

    /// Total encoded bytes across all chunks.
    pub fn total_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.len).sum()
    }

    /// The chunk spilled for `target`, if that target overflowed.
    pub fn chunk_for(&self, target: usize) -> Option<&SpillChunk> {
        self.chunks.iter().find(|c| c.target == target)
    }

    /// Reads one chunk's raw encoded bytes back from disk.
    pub fn read_chunk(&self, chunk: &SpillChunk) -> std::io::Result<Vec<u8>> {
        let mut file = self.file.lock().expect("spill segment poisoned");
        file.seek(SeekFrom::Start(chunk.offset))?;
        let mut buf = vec![0u8; chunk.len as usize];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Reads and decodes the records spilled for `target`; `None` when that
    /// target never overflowed in this segment.
    pub fn read_records<K: Wire, V: Wire>(
        &self,
        target: usize,
    ) -> std::io::Result<Option<Vec<(K, V)>>> {
        let Some(chunk) = self.chunk_for(target) else {
            return Ok(None);
        };
        let chunk = *chunk;
        let bytes = self.read_chunk(&chunk)?;
        decode_records::<K, V>(&bytes, chunk.records)
            .map(Some)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

impl Drop for SpillSegment {
    fn drop(&mut self) {
        if !self.keep {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_only_accountant_never_denies() {
        let m = MemoryAccountant::new(3, None);
        assert!(m.try_charge(0, u64::MAX / 2));
        assert!(m.try_charge(0, u64::MAX / 2));
        assert_eq!(m.budget_denials(), 0);
        assert!(m.peak_bytes() > 0);
    }

    #[test]
    fn budget_denies_and_counts() {
        let m = MemoryAccountant::new(2, Some(100));
        assert!(m.try_charge(0, 60));
        assert!(m.try_charge(0, 40));
        assert!(!m.try_charge(0, 1), "101st byte must be denied");
        assert_eq!(m.budget_denials(), 1);
        // The other node has its own budget.
        assert!(m.try_charge(1, 100));
        m.release(0, 50);
        assert!(m.try_charge(0, 50));
        assert_eq!(m.peak_of_node(0), 100);
        assert_eq!(m.peak_bytes(), 100);
        assert!(m.peak_bytes() <= 100, "peak can never exceed the budget");
    }

    #[test]
    fn release_saturates_at_zero() {
        let m = MemoryAccountant::new(1, Some(10));
        m.try_charge(0, 5);
        m.release(0, 50);
        assert_eq!(m.resident_bytes(0), 0);
        assert!(m.try_charge(0, 10));
    }

    #[test]
    fn snapshot_reflects_counters() {
        let m = MemoryAccountant::new(2, Some(64));
        assert!(m.try_charge(1, 64));
        assert!(!m.try_charge(1, 1));
        m.note_spill(4096);
        m.note_oom();
        let s = m.snapshot();
        assert_eq!(s.budget, Some(64));
        assert_eq!(s.peak_bytes, 64);
        assert_eq!(s.per_node_peak, vec![0, 64]);
        assert_eq!(s.spilled_bytes, 4096);
        assert_eq!(s.budget_denials, 1);
        assert_eq!(s.oom_events, 1);
    }

    #[test]
    fn records_roundtrip_through_codec() {
        let recs: Vec<(u64, (u64, Vec<u8>))> = (0..17)
            .map(|i| (i, (i * 3, vec![i as u8; (i % 5) as usize])))
            .collect();
        let bytes = encode_records(&recs);
        let expect: usize = recs
            .iter()
            .map(|(k, v)| k.encoded_size() + v.encoded_size())
            .sum();
        assert_eq!(bytes.len(), expect);
        let back = decode_records::<u64, (u64, Vec<u8>)>(&bytes, recs.len() as u64)
            .expect("decode must succeed");
        assert_eq!(back, recs);
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let recs: Vec<(u64, u64)> = vec![(1, 2), (3, 4)];
        let mut bytes = encode_records(&recs);
        bytes.push(0xFF);
        assert!(decode_records::<u64, u64>(&bytes, 2).is_err());
    }

    #[test]
    fn spill_segment_roundtrips_and_cleans_up() {
        let a: Vec<(u64, Vec<u8>)> = vec![(7, vec![1, 2, 3]), (9, Vec::new())];
        let b: Vec<(u64, Vec<u8>)> = vec![(11, vec![42; 8])];
        let mut w = SpillWriter::create().expect("temp dir must be writable");
        let enc_a = encode_records(&a);
        let enc_b = encode_records(&b);
        w.write_chunk(3, &enc_a, a.len() as u64)
            .expect("write chunk");
        w.write_chunk(8, &enc_b, b.len() as u64)
            .expect("write chunk");
        assert_eq!(w.bytes_written(), (enc_a.len() + enc_b.len()) as u64);
        let seg = w.finish().expect("finish").expect("non-empty segment");
        let path = seg.path.clone();
        assert!(path.exists());
        assert_eq!(seg.chunks().len(), 2);
        assert_eq!(seg.total_bytes(), (enc_a.len() + enc_b.len()) as u64);
        // Read out of write order — the index seeks correctly.
        let got_b: Vec<(u64, Vec<u8>)> = seg
            .read_records(8)
            .expect("read chunk 8")
            .expect("target 8 present");
        assert_eq!(got_b, b);
        let got_a: Vec<(u64, Vec<u8>)> = seg
            .read_records(3)
            .expect("read chunk 3")
            .expect("target 3 present");
        assert_eq!(got_a, a);
        assert!(seg
            .read_records::<u64, Vec<u8>>(5)
            .expect("read absent target")
            .is_none());
        drop(seg);
        assert!(!path.exists(), "dropping the segment deletes the file");
    }

    #[test]
    fn empty_writer_finishes_to_none() {
        let w = SpillWriter::create().expect("temp dir must be writable");
        let path = w.path.clone();
        assert!(w.finish().expect("finish").is_none());
        assert!(!path.exists());
    }

    #[test]
    fn persisted_segment_survives_drop_and_reopens() {
        let dir = std::env::temp_dir().join(format!("asj-persist-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("test dir");
        let recs: Vec<(u64, Vec<u8>)> = vec![(1, vec![9; 4]), (2, vec![7; 2])];
        let enc = encode_records(&recs);
        let path = dir.join("segment.seg");
        let mut w = SpillWriter::create_at(&path).expect("create_at");
        w.write_chunk(0, &enc, recs.len() as u64).expect("write");
        let mut seg = w.finish().expect("finish").expect("non-empty");
        seg.persist().expect("persist");
        let chunks = seg.chunks().to_vec();
        drop(seg);
        assert!(path.exists(), "persisted segment survives drop");

        let reopened = SpillSegment::open(&path, chunks).expect("reopen");
        let got: Vec<(u64, Vec<u8>)> = reopened
            .read_records(0)
            .expect("read")
            .expect("target present");
        assert_eq!(got, recs);
        drop(reopened);
        assert!(path.exists(), "reopened segments stay durable too");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn chunk_index_rebuilds_from_explicit_offsets() {
        let c = SpillChunk::new(3, 10, 80, 16);
        assert_eq!(c.target, 3);
        assert_eq!(c.records, 10);
        assert_eq!(c.len, 80);
        assert_eq!(c.offset(), 16);
    }

    /// A pid guaranteed dead on any platform the sweep reclaims on: above
    /// linux's compile-time `PID_MAX_LIMIT` (4 << 22), so no process can
    /// ever hold it.
    const DEAD_PID: u32 = (4 << 22) + 17;

    #[test]
    fn orphan_sweep_spares_the_live_process() {
        let dir = std::env::temp_dir().join(format!("asj-orphan-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("test dir");
        let own = dir.join(format!("asj-spill-{}-9999.bin", std::process::id()));
        let orphan = dir.join(format!("asj-spill-{DEAD_PID}-0.bin"));
        let unparseable = dir.join("asj-spill-nopid-0.bin");
        let unrelated = dir.join("keep.txt");
        std::fs::write(&own, b"live").expect("write own");
        std::fs::write(&orphan, b"stale-bytes").expect("write orphan");
        std::fs::write(&unparseable, b"???").expect("write unparseable");
        std::fs::write(&unrelated, b"other").expect("write unrelated");
        let reclaimed = clean_orphaned_spills(&dir).expect("sweep");
        if cfg!(target_os = "linux") {
            assert_eq!(reclaimed, 11, "only the dead pid's bytes are reclaimed");
            assert!(!orphan.exists(), "orphans from dead pids are removed");
        } else {
            // Without a liveness probe the sweep must spare everything.
            assert_eq!(reclaimed, 0);
            assert!(orphan.exists());
        }
        assert!(own.exists(), "own spills are spared");
        assert!(unparseable.exists(), "unparseable pids are spared, not swept");
        assert!(unrelated.exists(), "non-spill files are untouched");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn orphan_sweep_spares_a_live_sibling_process() {
        // pid 1 is always alive on linux; a sibling server that spilled
        // under it must survive this process's startup sweep.
        let dir = std::env::temp_dir().join(format!("asj-sibling-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("test dir");
        let sibling = dir.join("asj-spill-1-0.bin");
        let dead = dir.join(format!("asj-spill-{DEAD_PID}-0.bin"));
        std::fs::write(&sibling, b"sibling-live").expect("write sibling");
        std::fs::write(&dead, b"stale").expect("write dead");
        let reclaimed = clean_orphaned_spills(&dir).expect("sweep");
        assert_eq!(reclaimed, 5, "only the dead process's spill is reclaimed");
        assert!(sibling.exists(), "a live sibling's spills are never deleted");
        assert!(!dead.exists());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn concurrent_charges_respect_the_budget() {
        use std::sync::Arc;
        let m = Arc::new(MemoryAccountant::new(1, Some(1000)));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut granted = 0u64;
                    for _ in 0..200 {
                        if m.try_charge(0, 7) {
                            granted += 7;
                        }
                    }
                    m.release(0, granted);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
        assert!(m.peak_bytes() <= 1000);
        assert_eq!(m.resident_bytes(0), 0);
    }
}
