use crate::metrics::ExecStats;
use crate::pool::run_tasks_traced;
use asj_obs::Recorder;
use std::ops::Deref;
use std::sync::Arc;

/// Shape of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Simulated worker nodes (the paper's executors; Fig. 14 varies 4–12).
    pub nodes: usize,
    /// Real host threads used to execute tasks. Defaults to the host's
    /// available parallelism; decoupled from `nodes` so that a 12-node
    /// cluster can be simulated faithfully on any machine.
    pub threads: usize,
}

impl ClusterConfig {
    /// `nodes` simulated workers, host-default real parallelism.
    pub fn new(nodes: usize) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ClusterConfig { nodes, threads }
    }

    pub fn with_threads(nodes: usize, threads: usize) -> Self {
        ClusterConfig { nodes, threads }
    }
}

/// A handle to the simulated cluster: executes partitioned stages and owns
/// the node topology (partition → node binding).
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
    recorder: Recorder,
}

impl Cluster {
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.nodes > 0, "cluster needs at least one node");
        Cluster {
            config,
            recorder: Recorder::noop(),
        }
    }

    /// Attaches a [`Recorder`]: every stage the cluster runs emits task spans
    /// and the shuffle/phase instrumentation built on top of it becomes
    /// active. The default is the no-op recorder, which costs one pointer
    /// compare per stage.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    #[inline]
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    #[inline]
    pub fn nodes(&self) -> usize {
        self.config.nodes
    }

    #[inline]
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// The node hosting a partition: partitions are bound round-robin, like
    /// Spark binds partitions to executors.
    #[inline]
    pub fn node_of_partition(&self, partition: usize) -> usize {
        partition % self.config.nodes
    }

    /// Runs one task per element of `tasks`, placing task `i` on
    /// `node_of_partition(i)`.
    pub fn run_partitioned<T, R, F>(&self, tasks: Vec<T>, f: F) -> (Vec<R>, ExecStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_partitioned_stage("task", tasks, f)
    }

    /// [`Cluster::run_partitioned`] with a stage name for the recorded task
    /// spans.
    pub fn run_partitioned_stage<T, R, F>(
        &self,
        stage: &str,
        tasks: Vec<T>,
        f: F,
    ) -> (Vec<R>, ExecStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let placement: Vec<usize> = (0..tasks.len())
            .map(|i| self.node_of_partition(i))
            .collect();
        run_tasks_traced(
            self.config.threads,
            self.config.nodes,
            tasks,
            &placement,
            &self.recorder,
            stage,
            f,
        )
    }

    /// Runs tasks with an explicit node placement.
    pub fn run_placed<T, R, F>(
        &self,
        tasks: Vec<T>,
        placement: &[usize],
        f: F,
    ) -> (Vec<R>, ExecStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_placed_stage("task", tasks, placement, f)
    }

    /// [`Cluster::run_placed`] with a stage name for the recorded task spans.
    pub fn run_placed_stage<T, R, F>(
        &self,
        stage: &str,
        tasks: Vec<T>,
        placement: &[usize],
        f: F,
    ) -> (Vec<R>, ExecStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        run_tasks_traced(
            self.config.threads,
            self.config.nodes,
            tasks,
            placement,
            &self.recorder,
            stage,
            f,
        )
    }

    /// Makes a value available to every task, like Spark's broadcast
    /// variables (Algorithm 5 broadcasts the agreement-loaded grid).
    pub fn broadcast<T>(&self, value: T) -> Broadcast<T> {
        Broadcast {
            inner: Arc::new(value),
        }
    }
}

/// A read-only value shared with all tasks.
#[derive(Debug)]
pub struct Broadcast<T> {
    inner: Arc<T>,
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Deref for Broadcast<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_partition_binding() {
        let c = Cluster::new(ClusterConfig::with_threads(4, 1));
        assert_eq!(c.node_of_partition(0), 0);
        assert_eq!(c.node_of_partition(5), 1);
        assert_eq!(c.node_of_partition(96), 0);
        assert_eq!(c.nodes(), 4);
    }

    #[test]
    fn run_partitioned_attributes_round_robin() {
        let c = Cluster::new(ClusterConfig::with_threads(3, 2));
        let (out, stats) = c.run_partitioned(vec![1u64, 2, 3, 4, 5, 6], |i, t| t + i as u64);
        assert_eq!(out, vec![1, 3, 5, 7, 9, 11]);
        assert_eq!(stats.per_node_busy.len(), 3);
    }

    #[test]
    fn broadcast_shares_one_value() {
        let c = Cluster::new(ClusterConfig::with_threads(2, 2));
        let b = c.broadcast(vec![1, 2, 3]);
        let b2 = b.clone();
        assert_eq!(*b2, vec![1, 2, 3]);
        assert!(std::ptr::eq(&*b, &*b2));
    }

    #[test]
    fn default_config_uses_host_parallelism() {
        let cfg = ClusterConfig::new(12);
        assert_eq!(cfg.nodes, 12);
        assert!(cfg.threads >= 1);
    }

    #[test]
    fn recorder_attaches_and_records_stage_spans() {
        let r = Recorder::for_nodes(2);
        let c = Cluster::new(ClusterConfig::with_threads(2, 2)).with_recorder(r.clone());
        assert!(c.recorder().is_enabled());
        let (out, stats) = c.run_partitioned_stage("double", vec![1u64, 2, 3, 4], |_, t| t * 2);
        assert_eq!(out, vec![2, 4, 6, 8]);
        let trace = r.snapshot();
        assert_eq!(trace.spans.len(), 4);
        assert!(trace.spans.iter().all(|s| s.stage == "double"));
        let sim: std::time::Duration = (0..2).map(|n| r.node_sim_total(n)).sum();
        assert_eq!(sim, stats.total_busy());
    }
}
