use crate::bufpool::BufferPool;
use crate::checkpoint::{CheckpointCtx, CheckpointStore};
use crate::fault::{FaultContext, FaultPlan, JobError, RetryPolicy};
use crate::jobs::JobGate;
use crate::journal::Journal;
use crate::memory::MemoryAccountant;
use crate::metrics::ExecStats;
use crate::pool::{run_tasks_ft, try_run_tasks_traced};
use asj_core::KernelCostModel;
use asj_obs::Recorder;
use std::ops::Deref;
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// Which shuffle materialization [`KeyedDataset::try_shuffle_stage`]
/// (crate::KeyedDataset) uses on this cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShuffleMode {
    /// Radix scatter through pooled per-target buckets with single-pass byte
    /// metering — the default.
    #[default]
    Radix,
    /// The original tuple-`Vec` materialization (fresh allocations, second
    /// `encoded_size` walk on the reduce side). Kept reachable as the oracle
    /// for equivalence tests and A/B perf runs.
    Legacy,
}

impl ShuffleMode {
    pub fn name(self) -> &'static str {
        match self {
            ShuffleMode::Radix => "radix",
            ShuffleMode::Legacy => "legacy",
        }
    }
}

/// Shape of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Simulated worker nodes (the paper's executors; Fig. 14 varies 4–12).
    pub nodes: usize,
    /// Real host threads used to execute tasks. Defaults to the host's
    /// available parallelism; decoupled from `nodes` so that a 12-node
    /// cluster can be simulated faithfully on any machine.
    pub threads: usize,
    /// Per-node memory budget in bytes. `None` (the default) meters peak
    /// usage without enforcing; `Some(b)` makes shuffles spill buckets to
    /// disk instead of letting any node's resident bytes cross `b`.
    pub memory_budget: Option<u64>,
}

impl ClusterConfig {
    /// `nodes` simulated workers, host-default real parallelism.
    ///
    /// # Panics
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ClusterConfig::with_threads(nodes, threads)
    }

    /// Explicit node and thread counts. Both are validated here — at
    /// construction — so a zero slips through neither to the scheduler (which
    /// asserted `nodes > 0` deep in the pool) nor silently into a bumped
    /// thread count.
    ///
    /// # Panics
    /// Panics if `nodes == 0` or `threads == 0`.
    pub fn with_threads(nodes: usize, threads: usize) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        assert!(threads > 0, "cluster needs at least one worker thread");
        ClusterConfig {
            nodes,
            threads,
            memory_budget: None,
        }
    }

    /// Enforces a per-node memory budget: once a node's charged bytes would
    /// cross `per_node_bytes`, shuffles spill overflow buckets to disk
    /// instead of materialising them.
    ///
    /// # Panics
    /// Panics if `per_node_bytes == 0` (a zero budget could admit nothing).
    pub fn with_memory_budget(mut self, per_node_bytes: u64) -> Self {
        assert!(per_node_bytes > 0, "memory budget must be positive");
        self.memory_budget = Some(per_node_bytes);
        self
    }
}

/// A handle to the simulated cluster: executes partitioned stages and owns
/// the node topology (partition → node binding).
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
    recorder: Recorder,
    /// Fault-injection plan, recovery policy and cluster-lifetime fault
    /// state (blacklist, fired losses). `None` — the default — runs every
    /// stage on the zero-overhead fail-stop path.
    faults: Option<Arc<FaultContext>>,
    /// Calibrated local-kernel cost constants, filled lazily by the first
    /// join that needs them (see [`Cluster::kernel_cost_model`]) and shared
    /// by every clone of this cluster handle.
    cost_model: Arc<OnceLock<KernelCostModel>>,
    /// Reusable shuffle buffers, shared by every clone of this handle so
    /// buckets recycled after one stage serve the next.
    buffers: Arc<BufferPool>,
    /// Per-node memory accountant (always present; meter-only when the
    /// config carries no budget), shared by every clone of this handle.
    memory: Arc<MemoryAccountant>,
    /// Which shuffle materialization stages on this cluster use.
    shuffle_mode: ShuffleMode,
    /// Lockstep stage gate, set only on per-job handles created by the
    /// [`JobServer`](crate::JobServer): every stage entry parks until the
    /// scheduler grants this job a quantum, and completed stages are billed
    /// back to the job. `None` — the default — runs stages ungated.
    gate: Option<Arc<JobGate>>,
    /// Stage-checkpoint context: when set, shuffle stages persist their
    /// outputs through the [`CheckpointStore`] and consult it before
    /// recomputing. `None` — the default — keeps shuffles ephemeral.
    checkpoint: Option<Arc<CheckpointCtx>>,
}

impl Cluster {
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.nodes > 0, "cluster needs at least one node");
        assert!(
            config.threads > 0,
            "cluster needs at least one worker thread"
        );
        Cluster {
            recorder: Recorder::noop(),
            faults: None,
            cost_model: Arc::new(OnceLock::new()),
            buffers: Arc::new(BufferPool::new()),
            memory: Arc::new(MemoryAccountant::new(config.nodes, config.memory_budget)),
            shuffle_mode: ShuffleMode::default(),
            gate: None,
            checkpoint: None,
            config,
        }
    }

    /// Attaches the job server's stage gate to this handle (see the `gate`
    /// field). Only [`JobServer::run`](crate::JobServer::run) calls this, on
    /// the per-job clone it hands to the job body.
    pub(crate) fn with_stage_gate(mut self, gate: Arc<JobGate>) -> Self {
        self.gate = Some(gate);
        self
    }

    /// Attaches a [`CheckpointStore`] rooted at `dir`: every shuffle stage
    /// run on this handle persists its partition outputs (manifest-tracked,
    /// checksummed) and consults the store before recomputing, so a retry
    /// after node loss or a recovered server process replays only the stage
    /// that actually failed. Opening sweeps debris a prior crashed run left.
    pub fn with_checkpoint_dir(self, dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let store = Arc::new(CheckpointStore::open(dir.as_ref())?);
        Ok(self.with_checkpoint_store(store))
    }

    /// [`Cluster::with_checkpoint_dir`] with an already-open store (shared
    /// across clusters that must see each other's checkpoints).
    pub fn with_checkpoint_store(mut self, store: Arc<CheckpointStore>) -> Self {
        self.checkpoint = Some(Arc::new(CheckpointCtx::new(store, "main", None)));
        self
    }

    /// Re-scopes the checkpoint context for one job's handle: checkpoint
    /// keys become `job{id}-...` with fresh per-stage occurrence counters,
    /// and committed stages append `stage` records to `journal` (if any).
    /// No-op without an attached store.
    pub(crate) fn with_checkpoint_scope(
        mut self,
        scope: String,
        journal: Option<(Arc<Journal>, u64)>,
    ) -> Self {
        if let Some(ctx) = &self.checkpoint {
            let store = Arc::clone(ctx.store());
            self.checkpoint = Some(Arc::new(CheckpointCtx::new(store, scope, journal)));
        }
        self
    }

    /// The attached checkpoint store, if any.
    #[inline]
    pub fn checkpoint_store(&self) -> Option<&Arc<CheckpointStore>> {
        self.checkpoint.as_ref().map(|c| c.store())
    }

    /// The per-handle checkpoint context, if any.
    #[inline]
    pub(crate) fn checkpoint(&self) -> Option<&CheckpointCtx> {
        self.checkpoint.as_deref()
    }

    /// Books a checkpoint hit as one zero-cost stage: the job still parks
    /// for (and is billed) its scheduling quantum — so grant logs replay
    /// identically on recovery — but no simulated busy time accrues. The
    /// returned default stats are what the skipped stage contributes.
    pub(crate) fn note_recovered_stage(&self) -> ExecStats {
        if let Some(gate) = &self.gate {
            gate.pause();
        }
        let stats = ExecStats {
            per_node_busy: vec![std::time::Duration::ZERO; self.config.nodes],
            ..ExecStats::default()
        };
        if let Some(gate) = &self.gate {
            gate.note_stage(&stats);
        }
        stats
    }

    /// Enforces a per-node memory budget on this handle (resets the
    /// accountant, and — like [`Cluster::with_fault_policy`] — any attached
    /// fault context's cluster-lifetime state, so the two compose in either
    /// order). Equivalent to constructing from
    /// [`ClusterConfig::with_memory_budget`].
    ///
    /// # Panics
    /// Panics if `per_node_bytes == 0`.
    pub fn with_memory_budget(mut self, per_node_bytes: u64) -> Self {
        self.config = self.config.with_memory_budget(per_node_bytes);
        self.memory = Arc::new(MemoryAccountant::new(
            self.config.nodes,
            self.config.memory_budget,
        ));
        if let Some(ctx) = self.faults.take() {
            return self.with_fault_policy(ctx.plan.clone(), ctx.policy);
        }
        self
    }

    /// The cluster-lifetime [`MemoryAccountant`] shuffles charge buffers to.
    #[inline]
    pub fn memory_accountant(&self) -> &MemoryAccountant {
        &self.memory
    }

    /// Shared handle to the accountant, for task closures whose charges must
    /// outlive the borrow of `self` (released when the task result commits).
    pub(crate) fn memory_arc(&self) -> Arc<MemoryAccountant> {
        Arc::clone(&self.memory)
    }

    /// The enforced per-node memory budget, if any.
    #[inline]
    pub fn memory_budget(&self) -> Option<u64> {
        self.config.memory_budget
    }

    /// Selects the shuffle materialization for stages run on this handle.
    /// [`ShuffleMode::Legacy`] pins the pre-radix tuple-`Vec` path — the
    /// oracle side of A/B equivalence and perf comparisons.
    pub fn with_shuffle_mode(mut self, mode: ShuffleMode) -> Self {
        self.shuffle_mode = mode;
        self
    }

    /// The active shuffle materialization.
    #[inline]
    pub fn shuffle_mode(&self) -> ShuffleMode {
        self.shuffle_mode
    }

    /// The cluster-lifetime [`BufferPool`] radix shuffles draw from.
    #[inline]
    pub fn buffer_pool(&self) -> &BufferPool {
        &self.buffers
    }

    /// The cluster's calibrated [`KernelCostModel`], running `calibrate` on
    /// first use (the one-shot startup microbenchmark) and caching the
    /// constants for the lifetime of the cluster. Callers pass the
    /// calibration routine so the engine stays free of kernel code.
    pub fn kernel_cost_model(
        &self,
        calibrate: impl FnOnce() -> KernelCostModel,
    ) -> KernelCostModel {
        *self.cost_model.get_or_init(calibrate)
    }

    /// Attaches a [`Recorder`]: every stage the cluster runs emits task spans
    /// and the shuffle/phase instrumentation built on top of it becomes
    /// active. The default is the no-op recorder, which costs one pointer
    /// compare per stage.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a [`FaultPlan`] with the default [`RetryPolicy`]: stages run
    /// on the fault-tolerant executor, which injects the plan's failures and
    /// recovers via retries, blacklisting and (if enabled) speculation.
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        let policy = self.faults.as_ref().map(|c| c.policy).unwrap_or_default();
        self.with_fault_policy(plan, policy)
    }

    /// Changes the recovery policy, keeping (or installing an empty) fault
    /// plan. Attaching a policy alone still routes stages through the
    /// recovering executor, so panicking tasks are retried instead of
    /// failing the job outright.
    pub fn with_retry_policy(self, policy: RetryPolicy) -> Self {
        let plan = self
            .faults
            .as_ref()
            .map(|c| c.plan.clone())
            .unwrap_or_else(FaultPlan::none);
        self.with_fault_policy(plan, policy)
    }

    /// Attaches a fault plan and recovery policy together. Resets the
    /// cluster-lifetime fault state (attempt counters, blacklist, fired
    /// losses).
    pub fn with_fault_policy(mut self, plan: FaultPlan, policy: RetryPolicy) -> Self {
        self.faults = Some(Arc::new(
            FaultContext::new(plan, policy, self.config.nodes)
                .with_memory(Arc::clone(&self.memory)),
        ));
        self
    }

    /// Detaches any fault plan and recovery policy: stages run on the
    /// legacy zero-overhead executor again. The fault-free twin used as the
    /// control side of A/B recovery experiments.
    pub fn without_faults(mut self) -> Self {
        self.faults = None;
        self
    }

    /// The attached fault context, if any.
    #[inline]
    pub fn fault_context(&self) -> Option<&FaultContext> {
        self.faults.as_deref()
    }

    #[inline]
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The cluster's shape (nodes, threads, budget) — lets callers build a
    /// fresh cluster of the same configuration (e.g. a solo-run isolation
    /// oracle with its own accountant and buffer pool).
    #[inline]
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    #[inline]
    pub fn nodes(&self) -> usize {
        self.config.nodes
    }

    #[inline]
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// The node hosting a partition: partitions are bound round-robin, like
    /// Spark binds partitions to executors.
    #[inline]
    pub fn node_of_partition(&self, partition: usize) -> usize {
        partition % self.config.nodes
    }

    /// Runs one task per element of `tasks`, placing task `i` on
    /// `node_of_partition(i)`.
    ///
    /// # Panics
    /// Panics if the stage fails (task panic past the retry budget).
    pub fn run_partitioned<T, R, F>(&self, tasks: Vec<T>, f: F) -> (Vec<R>, ExecStats)
    where
        T: Send + Sync + Clone,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_partitioned_stage("task", tasks, f)
    }

    /// [`Cluster::run_partitioned`] with a stage name for the recorded task
    /// spans.
    ///
    /// # Panics
    /// Panics if the stage fails (task panic past the retry budget).
    pub fn run_partitioned_stage<T, R, F>(
        &self,
        stage: &str,
        tasks: Vec<T>,
        f: F,
    ) -> (Vec<R>, ExecStats)
    where
        T: Send + Sync + Clone,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        match self.try_run_partitioned_stage(stage, tasks, f) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Cluster::run_partitioned_stage`]: a stage whose tasks
    /// exhaust their attempts (or panic, without a retrying fault context)
    /// reports a [`JobError`] instead of panicking the driver.
    ///
    /// Tasks are `Clone` because the fault-tolerant executor may re-run one
    /// on another node — the analog of Spark recomputing a partition from
    /// lineage.
    pub fn try_run_partitioned_stage<T, R, F>(
        &self,
        stage: &str,
        tasks: Vec<T>,
        f: F,
    ) -> Result<(Vec<R>, ExecStats), JobError>
    where
        T: Send + Sync + Clone,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let placement: Vec<usize> = (0..tasks.len())
            .map(|i| self.node_of_partition(i))
            .collect();
        self.try_run_placed_stage(stage, tasks, &placement, f)
    }

    /// Runs tasks with an explicit node placement.
    ///
    /// # Panics
    /// Panics if the stage fails (task panic past the retry budget).
    pub fn run_placed<T, R, F>(
        &self,
        tasks: Vec<T>,
        placement: &[usize],
        f: F,
    ) -> (Vec<R>, ExecStats)
    where
        T: Send + Sync + Clone,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_placed_stage("task", tasks, placement, f)
    }

    /// [`Cluster::run_placed`] with a stage name for the recorded task spans.
    ///
    /// # Panics
    /// Panics if the stage fails (task panic past the retry budget).
    pub fn run_placed_stage<T, R, F>(
        &self,
        stage: &str,
        tasks: Vec<T>,
        placement: &[usize],
        f: F,
    ) -> (Vec<R>, ExecStats)
    where
        T: Send + Sync + Clone,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        match self.try_run_placed_stage(stage, tasks, placement, f) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Cluster::run_placed_stage`]; see
    /// [`Cluster::try_run_partitioned_stage`] for the error contract.
    ///
    /// With a fault context attached the stage runs on the fault-tolerant
    /// executor (injection, retries, blacklisting, speculation); without one
    /// it runs single-attempt with panics caught and surfaced as
    /// [`JobError`]s.
    pub fn try_run_placed_stage<T, R, F>(
        &self,
        stage: &str,
        tasks: Vec<T>,
        placement: &[usize],
        f: F,
    ) -> Result<(Vec<R>, ExecStats), JobError>
    where
        T: Send + Sync + Clone,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        // Stage boundary: under a job server, park here until this job is
        // granted its quantum; the grant covers this one stage plus the
        // driver work that follows it.
        if let Some(gate) = &self.gate {
            gate.pause();
        }
        let result = match &self.faults {
            Some(ctx) => run_tasks_ft(
                self.config.threads,
                self.config.nodes,
                tasks,
                placement,
                &self.recorder,
                stage,
                ctx,
                f,
            ),
            None => try_run_tasks_traced(
                self.config.threads,
                self.config.nodes,
                tasks,
                placement,
                &self.recorder,
                stage,
                f,
            ),
        };
        if let (Some(gate), Ok((_, stats))) = (&self.gate, &result) {
            gate.note_stage(stats);
        }
        result
    }

    /// [`Cluster::run_placed_stage`] for stages whose per-task result is a
    /// `(records, accumulator)` pair of [`Wire`] types — the shape of the
    /// partition-local join phase. When a checkpoint store is attached, the
    /// stage's outputs are persisted under the scope's next key for `stage`
    /// and consulted before recomputing, exactly like the shuffle fast path
    /// in `try_shuffle_stage`: a hit replays the persisted results in zero
    /// simulated time (the join phase is the ε-grid's memory-pressure peak,
    /// so skipping it on recovery is the largest saving available), a miss
    /// or any checkpoint I/O trouble degrades to recomputation, and a failed
    /// save never fails the stage.
    pub fn run_placed_stage_checkpointed<T, Rec, Acc, F>(
        &self,
        stage: &str,
        tasks: Vec<T>,
        placement: &[usize],
        f: F,
    ) -> (Vec<(Vec<Rec>, Acc)>, ExecStats)
    where
        T: Send + Sync + Clone,
        Rec: crate::wire::Wire + Send,
        Acc: crate::wire::Wire + Send,
        F: Fn(usize, T) -> (Vec<Rec>, Acc) + Sync,
    {
        let Some(ck) = self.checkpoint() else {
            return self.run_placed_stage(stage, tasks, placement, f);
        };
        let key = ck.next_key(stage);
        match ck.store().load_join::<Rec, Acc>(&key) {
            // The task count guards against a stale checkpoint from a
            // different plan shape; deterministic job bodies make the key
            // collision impossible, but a mismatch must never misalign
            // partitions.
            Ok(Some(parts)) if !parts.is_empty() && parts.len() == tasks.len() => {
                let stats = self.note_recovered_stage();
                ck.store().note_recovered();
                self.recorder().counter_add(stage, "stages_recovered", 1);
                return (parts, stats);
            }
            Ok(_) => {}
            Err(_) => {}
        }
        let (out, stats) = self.run_placed_stage(stage, tasks, placement, f);
        if let Ok(bytes) = ck.store().save_join(&key, &out) {
            self.recorder().counter_add(stage, "checkpoint_bytes", bytes);
            ck.journal_stage_complete(stage, &key, bytes);
        }
        (out, stats)
    }

    /// Makes a value available to every task, like Spark's broadcast
    /// variables (Algorithm 5 broadcasts the agreement-loaded grid).
    pub fn broadcast<T>(&self, value: T) -> Broadcast<T> {
        Broadcast {
            inner: Arc::new(value),
        }
    }
}

/// A read-only value shared with all tasks.
#[derive(Debug)]
pub struct Broadcast<T> {
    inner: Arc<T>,
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Deref for Broadcast<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_partition_binding() {
        let c = Cluster::new(ClusterConfig::with_threads(4, 1));
        assert_eq!(c.node_of_partition(0), 0);
        assert_eq!(c.node_of_partition(5), 1);
        assert_eq!(c.node_of_partition(96), 0);
        assert_eq!(c.nodes(), 4);
    }

    #[test]
    fn run_partitioned_attributes_round_robin() {
        let c = Cluster::new(ClusterConfig::with_threads(3, 2));
        let (out, stats) = c.run_partitioned(vec![1u64, 2, 3, 4, 5, 6], |i, t| t + i as u64);
        assert_eq!(out, vec![1, 3, 5, 7, 9, 11]);
        assert_eq!(stats.per_node_busy.len(), 3);
    }

    #[test]
    fn broadcast_shares_one_value() {
        let c = Cluster::new(ClusterConfig::with_threads(2, 2));
        let b = c.broadcast(vec![1, 2, 3]);
        let b2 = b.clone();
        assert_eq!(*b2, vec![1, 2, 3]);
        assert!(std::ptr::eq(&*b, &*b2));
    }

    #[test]
    fn default_config_uses_host_parallelism() {
        let cfg = ClusterConfig::new(12);
        assert_eq!(cfg.nodes, 12);
        assert!(cfg.threads >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected_at_config_construction() {
        let _ = ClusterConfig::with_threads(0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_rejected_at_config_construction() {
        let _ = ClusterConfig::with_threads(4, 0);
    }

    #[test]
    fn try_stage_reports_panics_as_job_errors() {
        let c = Cluster::new(ClusterConfig::with_threads(2, 2));
        let err = c
            .try_run_partitioned_stage("boom", vec![1u32, 2, 3], |_, t| {
                assert!(t != 2, "poison value");
                t
            })
            .expect_err("panicking stage must error");
        assert_eq!(err.stage, "boom");
        assert_eq!(err.task, 1);
    }

    #[test]
    fn fault_context_routes_stages_through_recovery() {
        let plan = FaultPlan::none().with_fail_point("task", 0, 1);
        let c = Cluster::new(ClusterConfig::with_threads(2, 2)).with_faults(plan);
        let (out, stats) = c.run_partitioned(vec![10u64, 20], |_, t| t + 1);
        assert_eq!(out, vec![11, 21]);
        assert_eq!(stats.attempts, 3, "one injected failure plus two wins");
        assert_eq!(stats.retries, 1);
        // Fail points match by stage name: a differently-named stage is
        // untouched by the plan.
        let (_, stats2) = c.run_partitioned_stage("clean", vec![1u64], |_, t| t);
        assert_eq!(stats2.retries, 0);
    }

    #[test]
    fn retry_policy_alone_recovers_flaky_panics() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let c = Cluster::new(ClusterConfig::with_threads(1, 1))
            .with_retry_policy(RetryPolicy::default());
        let flaky = AtomicUsize::new(0);
        let (out, stats) = c.run_partitioned(vec![5u32], |_, t| {
            if flaky.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient");
            }
            t
        });
        assert_eq!(out, vec![5]);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.failed_attempts, 1);
    }

    #[test]
    fn recorder_attaches_and_records_stage_spans() {
        let r = Recorder::for_nodes(2);
        let c = Cluster::new(ClusterConfig::with_threads(2, 2)).with_recorder(r.clone());
        assert!(c.recorder().is_enabled());
        let (out, stats) = c.run_partitioned_stage("double", vec![1u64, 2, 3, 4], |_, t| t * 2);
        assert_eq!(out, vec![2, 4, 6, 8]);
        let trace = r.snapshot();
        assert_eq!(trace.spans.len(), 4);
        assert!(trace.spans.iter().all(|s| s.stage == "double"));
        let sim: std::time::Duration = (0..2).map(|n| r.node_sim_total(n)).sum();
        assert_eq!(sim, stats.total_busy());
    }
}
