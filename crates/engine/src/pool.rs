use crate::metrics::ExecStats;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Executes `tasks` on a pool of `threads` OS threads and attributes each
/// task's measured duration to the simulated node given by `placement`.
///
/// This is the engine's only execution primitive. Real parallelism (the
/// thread count) is decoupled from the *simulated* cluster width (the number
/// of nodes appearing in `placement`): on a small host the tasks may run on
/// one or two threads, while the returned [`ExecStats`] still reports the
/// per-node busy times — and hence the makespan — of the simulated cluster.
///
/// Results are returned in task order.
///
/// # Panics
/// Panics if `placement.len() != tasks.len()` or a worker panics.
pub fn run_tasks<T, R, F>(
    threads: usize,
    nodes: usize,
    tasks: Vec<T>,
    placement: &[usize],
    f: F,
) -> (Vec<R>, ExecStats)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    assert_eq!(placement.len(), tasks.len(), "one placement entry per task");
    assert!(nodes > 0, "cluster must have at least one node");
    debug_assert!(
        placement.iter().all(|&n| n < nodes),
        "placement out of range"
    );
    let threads = threads.max(1);
    let wall_start = Instant::now();
    let n_tasks = tasks.len();

    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(tasks.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<(R, Duration)>>> =
        Mutex::new((0..n_tasks).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n_tasks.max(1)) {
            scope.spawn(|| loop {
                let next = queue.lock().pop_front();
                let Some((idx, task)) = next else { break };
                let start = Instant::now();
                let out = f(idx, task);
                let elapsed = start.elapsed();
                results.lock()[idx] = Some((out, elapsed));
            });
        }
    });

    let mut per_node_busy = vec![Duration::ZERO; nodes];
    let mut out = Vec::with_capacity(n_tasks);
    for (idx, slot) in results.into_inner().into_iter().enumerate() {
        let (r, d) = slot.expect("worker must have produced a result");
        per_node_busy[placement[idx]] += d;
        out.push(r);
    }
    (
        out,
        ExecStats {
            per_node_busy,
            wall: wall_start.elapsed(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_task_order() {
        let tasks: Vec<u64> = (0..100).collect();
        let placement: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let (out, stats) = run_tasks(4, 4, tasks, &placement, |_, t| t * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(stats.per_node_busy.len(), 4);
        assert!(stats.wall > Duration::ZERO);
    }

    #[test]
    fn busy_time_attributed_to_placed_node() {
        // All tasks on node 2 of 3: only node 2 accumulates busy time.
        let tasks = vec![(); 8];
        let placement = vec![2usize; 8];
        let (_, stats) = run_tasks(2, 3, tasks, &placement, |_, ()| {
            std::thread::sleep(Duration::from_millis(2));
        });
        assert_eq!(stats.per_node_busy[0], Duration::ZERO);
        assert_eq!(stats.per_node_busy[1], Duration::ZERO);
        assert!(stats.per_node_busy[2] >= Duration::from_millis(16));
        assert_eq!(stats.makespan(), stats.per_node_busy[2]);
    }

    #[test]
    fn empty_task_list() {
        let (out, stats) = run_tasks(4, 2, Vec::<u8>::new(), &[], |_, t| t);
        assert!(out.is_empty());
        assert_eq!(stats.per_node_busy, vec![Duration::ZERO; 2]);
    }

    #[test]
    fn single_thread_executes_everything() {
        let tasks: Vec<usize> = (0..50).collect();
        let placement = vec![0usize; 50];
        let (out, _) = run_tasks(1, 1, tasks, &placement, |idx, t| {
            assert_eq!(idx, t);
            t + 1
        });
        assert_eq!(out.len(), 50);
    }

    #[test]
    #[should_panic(expected = "one placement entry per task")]
    fn mismatched_placement_panics() {
        let _ = run_tasks(1, 1, vec![1, 2, 3], &[0], |_, t| t);
    }

    #[test]
    #[should_panic]
    fn task_panic_propagates_to_caller() {
        // A failing task must fail the job (like a failed Spark stage), not
        // silently produce partial results.
        let _ = run_tasks(2, 2, vec![1u32, 2, 3, 4], &[0, 1, 0, 1], |_, t| {
            assert!(t != 3, "task failure");
            t
        });
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let (out, _) = run_tasks(16, 4, vec![1u8, 2], &[0, 3], |_, t| t * 10);
        assert_eq!(out, vec![10, 20]);
    }
}
