use crate::metrics::ExecStats;
use asj_obs::{Attrs, Recorder};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Executes `tasks` on a pool of `threads` OS threads and attributes each
/// task's measured duration to the simulated node given by `placement`.
///
/// This is the engine's only execution primitive. Real parallelism (the
/// thread count) is decoupled from the *simulated* cluster width (the number
/// of nodes appearing in `placement`): on a small host the tasks may run on
/// one or two threads, while the returned [`ExecStats`] still reports the
/// per-node busy times — and hence the makespan — of the simulated cluster.
///
/// Results are returned in task order.
///
/// # Panics
/// Panics if `placement.len() != tasks.len()` or a worker panics.
pub fn run_tasks<T, R, F>(
    threads: usize,
    nodes: usize,
    tasks: Vec<T>,
    placement: &[usize],
    f: F,
) -> (Vec<R>, ExecStats)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_tasks_traced(
        threads,
        nodes,
        tasks,
        placement,
        &Recorder::noop(),
        "task",
        f,
    )
}

/// A slot vector written concurrently, one writer per index.
///
/// # Safety
/// Callers must guarantee that at most one thread accesses any given index
/// (here: each index is claimed exactly once via `fetch_add` on a shared
/// counter), and that reads of the final values happen only after all writer
/// threads have been joined (the `thread::scope` exit provides the necessary
/// happens-before edge).
struct Slots<V>(Vec<UnsafeCell<Option<V>>>);

unsafe impl<V: Send> Sync for Slots<V> {}

impl<V> Slots<V> {
    fn filled(values: impl Iterator<Item = V>, hint: usize) -> Self {
        let mut v = Vec::with_capacity(hint);
        v.extend(values.map(|x| UnsafeCell::new(Some(x))));
        Slots(v)
    }

    fn empty(n: usize) -> Self {
        Slots((0..n).map(|_| UnsafeCell::new(None)).collect())
    }

    /// Takes the value at `idx`.
    ///
    /// # Safety
    /// `idx` must be exclusively owned by the calling thread (see type docs).
    unsafe fn take(&self, idx: usize) -> Option<V> {
        (*self.0[idx].get()).take()
    }

    /// Stores a value at `idx`.
    ///
    /// # Safety
    /// `idx` must be exclusively owned by the calling thread (see type docs).
    unsafe fn put(&self, idx: usize, v: V) {
        *self.0[idx].get() = Some(v);
    }
}

/// [`run_tasks`] with a [`Recorder`]: every task additionally emits a span
/// named `stage` on its simulated node's lane, whose simulated duration is
/// the same measurement that feeds [`ExecStats`] — so per node, the trace's
/// span durations sum to exactly `per_node_busy`.
pub fn run_tasks_traced<T, R, F>(
    threads: usize,
    nodes: usize,
    tasks: Vec<T>,
    placement: &[usize],
    recorder: &Recorder,
    stage: &str,
    f: F,
) -> (Vec<R>, ExecStats)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    assert_eq!(placement.len(), tasks.len(), "one placement entry per task");
    assert!(nodes > 0, "cluster must have at least one node");
    debug_assert!(
        placement.iter().all(|&n| n < nodes),
        "placement out of range"
    );
    let threads = threads.max(1);
    let wall_start = Instant::now();
    let n_tasks = tasks.len();

    // Lock-free work distribution: workers claim task indices from a shared
    // counter; task inputs and results live in per-index slots, so no lock is
    // held while running `f` and threads never contend on a results mutex.
    let next = AtomicUsize::new(0);
    let task_slots: Slots<T> = Slots::filled(tasks.into_iter(), n_tasks);
    let result_slots: Slots<(R, Duration)> = Slots::empty(n_tasks);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n_tasks.max(1)) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n_tasks {
                    break;
                }
                // SAFETY: `idx` came from fetch_add, so this thread is its
                // only owner; the slot was filled before the scope started.
                let task = unsafe { task_slots.take(idx) }.expect("task slot filled once");
                let start = Instant::now();
                let out = f(idx, task);
                let elapsed = start.elapsed();
                recorder.task_span(
                    stage,
                    placement[idx],
                    Some(idx as u64),
                    elapsed,
                    Attrs::new(),
                );
                // SAFETY: same exclusive ownership of `idx`.
                unsafe { result_slots.put(idx, (out, elapsed)) };
            });
        }
    });

    let mut per_node_busy = vec![Duration::ZERO; nodes];
    let mut out = Vec::with_capacity(n_tasks);
    // The scope join above synchronizes all worker writes with these reads.
    for (idx, slot) in result_slots.0.into_iter().enumerate() {
        let (r, d) = slot
            .into_inner()
            .expect("worker must have produced a result");
        per_node_busy[placement[idx]] += d;
        out.push(r);
    }
    (
        out,
        ExecStats {
            per_node_busy,
            wall: wall_start.elapsed(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_task_order() {
        let tasks: Vec<u64> = (0..100).collect();
        let placement: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let (out, stats) = run_tasks(4, 4, tasks, &placement, |_, t| t * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(stats.per_node_busy.len(), 4);
        assert!(stats.wall > Duration::ZERO);
    }

    #[test]
    fn busy_time_attributed_to_placed_node() {
        // All tasks on node 2 of 3: only node 2 accumulates busy time.
        let tasks = vec![(); 8];
        let placement = vec![2usize; 8];
        let (_, stats) = run_tasks(2, 3, tasks, &placement, |_, ()| {
            std::thread::sleep(Duration::from_millis(2));
        });
        assert_eq!(stats.per_node_busy[0], Duration::ZERO);
        assert_eq!(stats.per_node_busy[1], Duration::ZERO);
        assert!(stats.per_node_busy[2] >= Duration::from_millis(16));
        assert_eq!(stats.makespan(), stats.per_node_busy[2]);
    }

    #[test]
    fn empty_task_list() {
        let (out, stats) = run_tasks(4, 2, Vec::<u8>::new(), &[], |_, t| t);
        assert!(out.is_empty());
        assert_eq!(stats.per_node_busy, vec![Duration::ZERO; 2]);
    }

    #[test]
    fn single_thread_executes_everything() {
        let tasks: Vec<usize> = (0..50).collect();
        let placement = vec![0usize; 50];
        let (out, _) = run_tasks(1, 1, tasks, &placement, |idx, t| {
            assert_eq!(idx, t);
            t + 1
        });
        assert_eq!(out.len(), 50);
    }

    #[test]
    #[should_panic(expected = "one placement entry per task")]
    fn mismatched_placement_panics() {
        let _ = run_tasks(1, 1, vec![1, 2, 3], &[0], |_, t| t);
    }

    #[test]
    #[should_panic]
    fn task_panic_propagates_to_caller() {
        // A failing task must fail the job (like a failed Spark stage), not
        // silently produce partial results.
        let _ = run_tasks(2, 2, vec![1u32, 2, 3, 4], &[0, 1, 0, 1], |_, t| {
            assert!(t != 3, "task failure");
            t
        });
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let (out, _) = run_tasks(16, 4, vec![1u8, 2], &[0, 3], |_, t| t * 10);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn heavy_contention_returns_every_result_once() {
        // Stress the lock-free slot path: many tiny tasks over many threads.
        let n = 10_000;
        let tasks: Vec<usize> = (0..n).collect();
        let placement: Vec<usize> = (0..n).map(|i| i % 7).collect();
        let (out, stats) = run_tasks(8, 7, tasks, &placement, |idx, t| {
            assert_eq!(idx, t);
            t
        });
        assert_eq!(out, (0..n).collect::<Vec<_>>());
        assert_eq!(
            stats.total_busy(),
            stats.per_node_busy.iter().sum::<Duration>()
        );
    }

    #[test]
    fn traced_run_spans_sum_to_per_node_busy() {
        let recorder = Recorder::for_nodes(3);
        let tasks: Vec<u32> = (0..30).collect();
        let placement: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let (_, stats) = run_tasks_traced(4, 3, tasks, &placement, &recorder, "unit", |_, t| t + 1);
        let trace = recorder.snapshot();
        assert_eq!(trace.spans.len(), 30);
        for node in 0..3 {
            let span_sum: u64 = trace
                .spans
                .iter()
                .filter(|s| s.lane == asj_obs::Lane::Node(node))
                .map(|s| s.sim_dur_ns)
                .sum();
            assert_eq!(span_sum, stats.per_node_busy[node].as_nanos() as u64);
            assert_eq!(recorder.node_sim_total(node), stats.per_node_busy[node]);
        }
    }
}
