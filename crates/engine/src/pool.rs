use crate::fault::{FaultContext, JobError, TaskError};
use crate::lpt::least_loaded;
use crate::metrics::ExecStats;
use asj_obs::{Attrs, Lane, Recorder};
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Executes `tasks` on a pool of `threads` OS threads and attributes each
/// task's measured duration to the simulated node given by `placement`.
///
/// This is the engine's only execution primitive. Real parallelism (the
/// thread count) is decoupled from the *simulated* cluster width (the number
/// of nodes appearing in `placement`): on a small host the tasks may run on
/// one or two threads, while the returned [`ExecStats`] still reports the
/// per-node busy times — and hence the makespan — of the simulated cluster.
///
/// Results are returned in task order.
///
/// # Panics
/// Panics if `placement.len() != tasks.len()` or a worker panics.
pub fn run_tasks<T, R, F>(
    threads: usize,
    nodes: usize,
    tasks: Vec<T>,
    placement: &[usize],
    f: F,
) -> (Vec<R>, ExecStats)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_tasks_traced(
        threads,
        nodes,
        tasks,
        placement,
        &Recorder::noop(),
        "task",
        f,
    )
}

/// A slot vector written concurrently, one writer per index.
///
/// # Safety
/// Callers must guarantee that at most one thread accesses any given index
/// (here: each index is claimed exactly once via `fetch_add` on a shared
/// counter, or via a compare-exchange on a per-index flag), and that reads of
/// the final values happen only after all writer threads have been joined
/// (the `thread::scope` exit provides the necessary happens-before edge).
struct Slots<V>(Vec<UnsafeCell<Option<V>>>);

unsafe impl<V: Send> Sync for Slots<V> {}

impl<V> Slots<V> {
    fn filled(values: impl Iterator<Item = V>, hint: usize) -> Self {
        let mut v = Vec::with_capacity(hint);
        v.extend(values.map(|x| UnsafeCell::new(Some(x))));
        Slots(v)
    }

    fn empty(n: usize) -> Self {
        Slots((0..n).map(|_| UnsafeCell::new(None)).collect())
    }

    /// Takes the value at `idx`.
    ///
    /// # Safety
    /// `idx` must be exclusively owned by the calling thread (see type docs).
    unsafe fn take(&self, idx: usize) -> Option<V> {
        (*self.0[idx].get()).take()
    }

    /// Stores a value at `idx`.
    ///
    /// # Safety
    /// `idx` must be exclusively owned by the calling thread (see type docs).
    unsafe fn put(&self, idx: usize, v: V) {
        *self.0[idx].get() = Some(v);
    }
}

/// Renders a caught panic payload for [`TaskError::Panic`].
fn panic_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Scales a measured duration by a slowdown multiplier.
fn scale_dur(d: Duration, mult: f64) -> Duration {
    if mult <= 1.0 {
        d
    } else {
        Duration::from_nanos((d.as_nanos() as f64 * mult) as u64)
    }
}

fn empty_stats(nodes: usize, wall_start: Instant) -> ExecStats {
    ExecStats {
        per_node_busy: vec![Duration::ZERO; nodes],
        wall: wall_start.elapsed(),
        ..ExecStats::default()
    }
}

/// [`run_tasks`] with a [`Recorder`]: every task additionally emits a span
/// named `stage` on its simulated node's lane, whose simulated duration is
/// the same measurement that feeds [`ExecStats`] — so per node, the trace's
/// span durations sum to exactly `per_node_busy`.
///
/// # Panics
/// Panics if a task panics (the job is fail-stop on this path; use
/// [`try_run_tasks_traced`] or [`run_tasks_ft`] for recoverable execution).
pub fn run_tasks_traced<T, R, F>(
    threads: usize,
    nodes: usize,
    tasks: Vec<T>,
    placement: &[usize],
    recorder: &Recorder,
    stage: &str,
    f: F,
) -> (Vec<R>, ExecStats)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    match try_run_tasks_traced(threads, nodes, tasks, placement, recorder, stage, f) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible single-attempt execution: each task body runs under
/// `catch_unwind`, and a panicking task aborts the stage with a
/// [`JobError`] instead of poisoning the thread scope. No retries are
/// attempted on this path — it is the zero-overhead route taken when no
/// fault plan is attached (see [`run_tasks_ft`] for the recovering
/// executor).
///
/// On success the behaviour (results, spans, stats) is identical to the
/// historical `run_tasks_traced`.
pub fn try_run_tasks_traced<T, R, F>(
    threads: usize,
    nodes: usize,
    tasks: Vec<T>,
    placement: &[usize],
    recorder: &Recorder,
    stage: &str,
    f: F,
) -> Result<(Vec<R>, ExecStats), JobError>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    assert_eq!(placement.len(), tasks.len(), "one placement entry per task");
    assert!(nodes > 0, "cluster must have at least one node");
    debug_assert!(
        placement.iter().all(|&n| n < nodes),
        "placement out of range"
    );
    let wall_start = Instant::now();
    let n_tasks = tasks.len();
    // An empty stage spawns no workers at all.
    if n_tasks == 0 {
        return Ok((Vec::new(), empty_stats(nodes, wall_start)));
    }
    let threads = threads.max(1).min(n_tasks);

    // Lock-free work distribution: workers claim task indices from a shared
    // counter; task inputs and results live in per-index slots, so no lock is
    // held while running `f` and threads never contend on a results mutex.
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let fatal: Mutex<Option<JobError>> = Mutex::new(None);
    let task_slots: Slots<T> = Slots::filled(tasks.into_iter(), n_tasks);
    let result_slots: Slots<(R, Duration)> = Slots::empty(n_tasks);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n_tasks {
                    break;
                }
                // SAFETY: `idx` came from fetch_add, so this thread is its
                // only owner; the slot was filled before the scope started.
                let task = unsafe { task_slots.take(idx) }.expect("task slot filled once");
                let start = Instant::now();
                let out = catch_unwind(AssertUnwindSafe(|| f(idx, task)));
                let elapsed = start.elapsed();
                match out {
                    Ok(r) => {
                        recorder.task_span(
                            stage,
                            placement[idx],
                            Some(idx as u64),
                            elapsed,
                            Attrs::new(),
                        );
                        // SAFETY: same exclusive ownership of `idx`.
                        unsafe { result_slots.put(idx, (r, elapsed)) };
                    }
                    Err(payload) => {
                        // The failed attempt still shows up on its node's
                        // trace lane; the stage aborts with the first error.
                        recorder.task_span_sim(
                            &format!("{stage}!failed"),
                            placement[idx],
                            Some(idx as u64),
                            elapsed,
                            elapsed,
                            Attrs::new(),
                        );
                        let mut g = fatal.lock().expect("pool error slot poisoned");
                        if g.is_none() {
                            *g = Some(JobError {
                                stage: stage.to_string(),
                                task: idx,
                                attempts: 1,
                                error: TaskError::Panic(panic_msg(payload)),
                            });
                        }
                        abort.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });

    if let Some(e) = fatal.into_inner().expect("pool error slot poisoned") {
        return Err(e);
    }
    let mut per_node_busy = vec![Duration::ZERO; nodes];
    let mut out = Vec::with_capacity(n_tasks);
    // The scope join above synchronizes all worker writes with these reads.
    for (idx, slot) in result_slots.0.into_iter().enumerate() {
        let (r, d) = slot
            .into_inner()
            .expect("worker must have produced a result");
        per_node_busy[placement[idx]] += d;
        out.push(r);
    }
    Ok((
        out,
        ExecStats {
            per_node_busy,
            wall: wall_start.elapsed(),
            attempts: n_tasks as u64,
            ..ExecStats::default()
        },
    ))
}

/// The fault-tolerant executor: like [`try_run_tasks_traced`], but attempts
/// are subject to the [`FaultContext`]'s injection plan and recovered
/// according to its retry policy:
///
/// * every attempt runs under `catch_unwind`; a failed attempt (panic,
///   injected fault, or lost node) is retried up to `max_attempts` times,
///   re-placed on the least-loaded node that is neither blacklisted nor
///   lost;
/// * a node accumulating `blacklist_after` failures is blacklisted for the
///   rest of the cluster's life (but never the last usable node);
/// * with speculation enabled, workers that drained the task queue clone the
///   slowest still-running tasks onto the least-loaded node; the first
///   finisher commits its result and the loser is killed;
/// * *every* attempt — failed, killed and winning alike — is charged to its
///   node's simulated clock and emits a span on that node's trace lane
///   (`stage` for committed attempts, `stage!failed` / `stage!killed`
///   otherwise), so the makespan and the trace honestly reflect the price of
///   recovery. A straggler node's attempts are billed at its slowdown
///   multiple; an attempt killed by a faster competitor is billed only for
///   the time it occupied the node before the winner committed.
///
/// Tasks must be `Clone` because a retry or a speculative copy re-runs the
/// same input — the analog of Spark recomputing a partition from lineage.
#[allow(clippy::too_many_arguments)] // executor entry point: each knob is load-bearing
pub fn run_tasks_ft<T, R, F>(
    threads: usize,
    nodes: usize,
    tasks: Vec<T>,
    placement: &[usize],
    recorder: &Recorder,
    stage: &str,
    ctx: &FaultContext,
    f: F,
) -> Result<(Vec<R>, ExecStats), JobError>
where
    T: Sync + Clone,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    assert_eq!(placement.len(), tasks.len(), "one placement entry per task");
    assert!(nodes > 0, "cluster must have at least one node");
    assert_eq!(
        ctx.state.nodes(),
        nodes,
        "fault state sized for a different cluster"
    );
    let wall_start = Instant::now();
    let n_tasks = tasks.len();
    if n_tasks == 0 {
        let mut stats = empty_stats(nodes, wall_start);
        stats.blacklisted_nodes = ctx.state.blacklisted_count();
        return Ok((Vec::new(), stats));
    }
    let threads = threads.max(1).min(n_tasks);
    let plan = &ctx.plan;
    let policy = &ctx.policy;
    let state = &ctx.state;
    let tasks = &tasks;
    let failed_stage = format!("{stage}!failed");
    let killed_stage = format!("{stage}!killed");
    let backoff_stage = format!("{stage}!backoff");

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let fatal: Mutex<Option<JobError>> = Mutex::new(None);
    // Per-task completion/speculation flags and the running-attempt registry
    // the straggler scan reads. `running_since` stores nanoseconds since
    // `wall_start` plus one (0 means "not currently running").
    let done: Vec<AtomicBool> = (0..n_tasks).map(|_| AtomicBool::new(false)).collect();
    let speculated: Vec<AtomicBool> = (0..n_tasks).map(|_| AtomicBool::new(false)).collect();
    let running_since: Vec<AtomicU64> = (0..n_tasks).map(|_| AtomicU64::new(0)).collect();
    let running_node: Vec<AtomicUsize> = (0..n_tasks).map(|_| AtomicUsize::new(0)).collect();
    let completed = AtomicUsize::new(0);
    let completed_charged_ns = AtomicU64::new(0);
    let node_busy_ns: Vec<AtomicU64> = (0..nodes).map(|_| AtomicU64::new(0)).collect();
    let n_attempts = AtomicU64::new(0);
    let n_retries = AtomicU64::new(0);
    let n_failed = AtomicU64::new(0);
    let n_spec_wins = AtomicU64::new(0);
    let result_slots: Slots<R> = Slots::empty(n_tasks);

    let now_ns = || wall_start.elapsed().as_nanos() as u64;
    let charge = |node: usize, d: Duration| {
        node_busy_ns[node].fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    };
    // Least-loaded usable node, preferring to avoid `exclude`; the final
    // fallback ignores the blacklist entirely so the job fails with a real
    // error instead of starving when everything is lost.
    let pick_node = |exclude: Option<usize>| -> usize {
        let loads: Vec<u64> = node_busy_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        least_loaded(&loads, |n| state.is_avoided(n) || Some(n) == exclude)
            .or_else(|| least_loaded(&loads, |n| state.is_avoided(n)))
            .or_else(|| least_loaded(&loads, |_| false))
            .expect("cluster has at least one node")
    };

    // Runs one attempt of task `idx` on `node`. `attempt` is 1-based for
    // regular attempts; speculative copies pass 0. `Ok(())` means the task
    // is complete (this attempt committed, or a competitor already had).
    let attempt_once = |idx: usize, attempt: usize, node: usize| -> Result<(), TaskError> {
        n_attempts.fetch_add(1, Ordering::Relaxed);
        recorder.counter_add(stage, "attempts", 1);
        state.note_attempt_started(plan, node);
        if state.is_lost(node) {
            // Fast failure: a dead executor burns no simulated time, but the
            // doomed attempt still appears on the node's lane.
            recorder.task_span_sim(
                &failed_stage,
                node,
                Some(idx as u64),
                Duration::ZERO,
                Duration::ZERO,
                Attrs::new(),
            );
            recorder.event(
                "node_lost",
                Lane::Node(node),
                Some(idx as u64),
                Attrs::new(),
            );
            return Err(TaskError::NodeLost { node });
        }
        let will_fail = plan.injects(stage, idx, attempt);
        let will_oom = plan.injects_oom(stage, idx, attempt);
        running_node[idx].store(node, Ordering::Relaxed);
        running_since[idx].store(now_ns() + 1, Ordering::Relaxed);
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| f(idx, tasks[idx].clone())));
        let d0 = start.elapsed();
        let mult = plan.slowdown(node);
        if mult > 1.0 && outcome.is_ok() && !will_fail && !will_oom {
            // A straggler node really is slower: stretch the attempt in wall
            // time (in interruptible slices) so a speculative copy elsewhere
            // can genuinely overtake it.
            let target = scale_dur(d0, mult);
            while start.elapsed() < target {
                if done[idx].load(Ordering::Relaxed) || abort.load(Ordering::Relaxed) {
                    break;
                }
                let left = target.saturating_sub(start.elapsed());
                std::thread::sleep(left.min(Duration::from_micros(500)));
            }
        }
        match outcome {
            Err(payload) => {
                let charged = scale_dur(d0, mult);
                charge(node, charged);
                recorder.task_span_sim(
                    &failed_stage,
                    node,
                    Some(idx as u64),
                    d0,
                    charged,
                    Attrs::new(),
                );
                running_since[idx].store(0, Ordering::Relaxed);
                Err(TaskError::Panic(panic_msg(payload)))
            }
            Ok(_) if will_fail => {
                // The attempt did its work and died at commit time — the
                // result is discarded but the burned time is billed in full.
                let charged = scale_dur(d0, mult);
                charge(node, charged);
                recorder.task_span_sim(
                    &failed_stage,
                    node,
                    Some(idx as u64),
                    d0,
                    charged,
                    Attrs::new(),
                );
                running_since[idx].store(0, Ordering::Relaxed);
                Err(TaskError::Injected { attempt })
            }
            Ok(_) if will_oom => {
                // Injected budget exhaustion: the attempt's work is discarded
                // like a real OOM-killed executor's would be, the burned time
                // is billed, and the retry machinery takes over.
                let charged = scale_dur(d0, mult);
                charge(node, charged);
                recorder.task_span_sim(
                    &failed_stage,
                    node,
                    Some(idx as u64),
                    d0,
                    charged,
                    Attrs::new(),
                );
                recorder.counter_add(stage, "oom_events", 1);
                recorder.event("oom", Lane::Node(node), Some(idx as u64), Attrs::new());
                if let Some(memory) = &ctx.memory {
                    memory.note_oom();
                }
                running_since[idx].store(0, Ordering::Relaxed);
                Err(TaskError::OutOfMemory { attempt })
            }
            Ok(r) => {
                if done[idx]
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // SAFETY: the `done` compare-exchange makes this thread
                    // the unique writer of slot `idx`; results are read only
                    // after the scope joins all workers.
                    unsafe { result_slots.put(idx, r) };
                    let charged = scale_dur(d0, mult);
                    charge(node, charged);
                    recorder.task_span_sim(
                        stage,
                        node,
                        Some(idx as u64),
                        start.elapsed(),
                        charged,
                        Attrs::new(),
                    );
                    running_since[idx].store(0, Ordering::Relaxed);
                    completed.fetch_add(1, Ordering::Relaxed);
                    completed_charged_ns.fetch_add(charged.as_nanos() as u64, Ordering::Relaxed);
                    if attempt == 0 {
                        n_spec_wins.fetch_add(1, Ordering::Relaxed);
                        recorder.counter_add(stage, "speculative_wins", 1);
                        recorder.event(
                            "speculation_win",
                            Lane::Node(node),
                            Some(idx as u64),
                            Attrs::new(),
                        );
                    }
                    Ok(())
                } else {
                    // Lost the race against a competitor attempt: this copy
                    // is killed, billed only for the time it held the node.
                    let actual = start.elapsed();
                    charge(node, actual);
                    recorder.task_span_sim(
                        &killed_stage,
                        node,
                        Some(idx as u64),
                        actual,
                        actual,
                        Attrs::new(),
                    );
                    Ok(())
                }
            }
        }
    };

    // Books a failed attempt: failure counters, blacklisting.
    let note_failed = |node: usize| {
        n_failed.fetch_add(1, Ordering::Relaxed);
        recorder.counter_add(stage, "failed_attempts", 1);
        if state.note_failure(policy, node) {
            recorder.counter_add(stage, "blacklisted_nodes", 1);
            recorder.event("node_blacklisted", Lane::Node(node), None, Attrs::new());
        }
    };

    // Straggler scan: once enough of the stage has finished, find a
    // still-running task whose elapsed time projects past the speculation
    // threshold and claim it for a speculative copy.
    let find_straggler = || -> Option<(usize, usize)> {
        let comp = completed.load(Ordering::Relaxed);
        if comp == 0 || (comp as f64) < policy.speculation_quantile * n_tasks as f64 {
            return None;
        }
        let mean_ns = completed_charged_ns.load(Ordering::Relaxed) / comp as u64;
        let threshold_ns = (mean_ns as f64 * policy.speculation_multiplier) as u64;
        let now = now_ns();
        for idx in 0..n_tasks {
            if done[idx].load(Ordering::Relaxed) || speculated[idx].load(Ordering::Relaxed) {
                continue;
            }
            let since = running_since[idx].load(Ordering::Relaxed);
            if since == 0 || now.saturating_sub(since - 1) <= threshold_ns {
                continue;
            }
            if speculated[idx]
                .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                let origin = running_node[idx].load(Ordering::Relaxed);
                let spec_node = pick_node(Some(origin));
                recorder.event(
                    "speculative_launch",
                    Lane::Node(spec_node),
                    Some(idx as u64),
                    Attrs::new(),
                );
                return Some((idx, spec_node));
            }
        }
        None
    };

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    return;
                }
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx < n_tasks {
                    // Fresh task: run it to completion, retrying failures.
                    let mut attempt = 1usize;
                    let mut node = placement[idx];
                    loop {
                        if abort.load(Ordering::Relaxed) || done[idx].load(Ordering::Relaxed) {
                            break;
                        }
                        match attempt_once(idx, attempt, node) {
                            Ok(()) => break,
                            Err(e) => {
                                note_failed(node);
                                if attempt >= policy.max_attempts {
                                    // A competitor may still have committed.
                                    if !done[idx].load(Ordering::Relaxed) {
                                        let mut g = fatal.lock().expect("pool error slot poisoned");
                                        if g.is_none() {
                                            *g = Some(JobError {
                                                stage: stage.to_string(),
                                                task: idx,
                                                attempts: attempt,
                                                error: e,
                                            });
                                        }
                                        abort.store(true, Ordering::Relaxed);
                                    }
                                    break;
                                }
                                attempt += 1;
                                n_retries.fetch_add(1, Ordering::Relaxed);
                                recorder.counter_add(stage, "retries", 1);
                                let from = node;
                                node = pick_node(Some(node));
                                recorder.event(
                                    "task_retry",
                                    Lane::Node(node),
                                    Some(idx as u64),
                                    Attrs::new().records(from as u64),
                                );
                                // Deterministic exponential backoff before
                                // re-placement: billed to the retry node's
                                // simulated clock (with a matching lane span
                                // so per-node span sums stay exact) but not
                                // slept in wall time — delay is a scheduling
                                // cost, not real work.
                                let backoff = policy.backoff(stage, idx, attempt);
                                if backoff > Duration::ZERO {
                                    charge(node, backoff);
                                    recorder.task_span_sim(
                                        &backoff_stage,
                                        node,
                                        Some(idx as u64),
                                        Duration::ZERO,
                                        backoff,
                                        Attrs::new(),
                                    );
                                }
                            }
                        }
                    }
                    continue;
                }
                // Queue drained: either help stragglers or leave.
                if !policy.speculation || completed.load(Ordering::Relaxed) >= n_tasks {
                    return;
                }
                if let Some((tidx, spec_node)) = find_straggler() {
                    if let Err(_e) = attempt_once(tidx, 0, spec_node) {
                        // A failed speculative copy is just a failed attempt;
                        // the original is still running, so nothing retries.
                        note_failed(spec_node);
                    }
                } else {
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
        }
    });

    if let Some(e) = fatal.into_inner().expect("pool error slot poisoned") {
        return Err(e);
    }
    let per_node_busy: Vec<Duration> = node_busy_ns
        .iter()
        .map(|b| Duration::from_nanos(b.load(Ordering::Relaxed)))
        .collect();
    let mut out = Vec::with_capacity(n_tasks);
    // The scope join above synchronizes all worker writes with these reads.
    for slot in result_slots.0.into_iter() {
        out.push(
            slot.into_inner()
                .expect("every task committed a result or the job errored"),
        );
    }
    Ok((
        out,
        ExecStats {
            per_node_busy,
            wall: wall_start.elapsed(),
            attempts: n_attempts.load(Ordering::Relaxed),
            retries: n_retries.load(Ordering::Relaxed),
            failed_attempts: n_failed.load(Ordering::Relaxed),
            speculative_wins: n_spec_wins.load(Ordering::Relaxed),
            blacklisted_nodes: state.blacklisted_count(),
            spilled_bytes: 0,
            peak_memory_bytes: 0,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, RetryPolicy};

    #[test]
    fn results_preserve_task_order() {
        let tasks: Vec<u64> = (0..100).collect();
        let placement: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let (out, stats) = run_tasks(4, 4, tasks, &placement, |_, t| t * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(stats.per_node_busy.len(), 4);
        assert!(stats.wall > Duration::ZERO);
        assert_eq!(stats.attempts, 100);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.failed_attempts, 0);
    }

    #[test]
    fn busy_time_attributed_to_placed_node() {
        // All tasks on node 2 of 3: only node 2 accumulates busy time.
        let tasks = vec![(); 8];
        let placement = vec![2usize; 8];
        let (_, stats) = run_tasks(2, 3, tasks, &placement, |_, ()| {
            std::thread::sleep(Duration::from_millis(2));
        });
        assert_eq!(stats.per_node_busy[0], Duration::ZERO);
        assert_eq!(stats.per_node_busy[1], Duration::ZERO);
        assert!(stats.per_node_busy[2] >= Duration::from_millis(16));
        assert_eq!(stats.makespan(), stats.per_node_busy[2]);
    }

    #[test]
    fn empty_task_list() {
        let (out, stats) = run_tasks(4, 2, Vec::<u8>::new(), &[], |_, t| t);
        assert!(out.is_empty());
        assert_eq!(stats.per_node_busy, vec![Duration::ZERO; 2]);
        assert_eq!(stats.attempts, 0);
    }

    #[test]
    fn single_thread_executes_everything() {
        let tasks: Vec<usize> = (0..50).collect();
        let placement = vec![0usize; 50];
        let (out, _) = run_tasks(1, 1, tasks, &placement, |idx, t| {
            assert_eq!(idx, t);
            t + 1
        });
        assert_eq!(out.len(), 50);
    }

    #[test]
    #[should_panic(expected = "one placement entry per task")]
    fn mismatched_placement_panics() {
        let _ = run_tasks(1, 1, vec![1, 2, 3], &[0], |_, t| t);
    }

    #[test]
    #[should_panic]
    fn task_panic_propagates_to_caller() {
        // A failing task must fail the job (like a failed Spark stage), not
        // silently produce partial results.
        let _ = run_tasks(2, 2, vec![1u32, 2, 3, 4], &[0, 1, 0, 1], |_, t| {
            assert!(t != 3, "task failure");
            t
        });
    }

    #[test]
    fn try_run_converts_panics_into_job_errors() {
        let res = try_run_tasks_traced(
            2,
            2,
            vec![1u32, 2, 3, 4],
            &[0, 1, 0, 1],
            &Recorder::noop(),
            "unit",
            |_, t| {
                assert!(t != 3, "task failure");
                t
            },
        );
        let err = res.expect_err("panicking task must fail the job");
        assert_eq!(err.stage, "unit");
        assert_eq!(err.task, 2);
        assert_eq!(err.attempts, 1);
        assert!(matches!(err.error, TaskError::Panic(ref m) if m.contains("task failure")));
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let (out, _) = run_tasks(16, 4, vec![1u8, 2], &[0, 3], |_, t| t * 10);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn heavy_contention_returns_every_result_once() {
        // Stress the lock-free slot path: many tiny tasks over many threads.
        let n = 10_000;
        let tasks: Vec<usize> = (0..n).collect();
        let placement: Vec<usize> = (0..n).map(|i| i % 7).collect();
        let (out, stats) = run_tasks(8, 7, tasks, &placement, |idx, t| {
            assert_eq!(idx, t);
            t
        });
        assert_eq!(out, (0..n).collect::<Vec<_>>());
        assert_eq!(
            stats.total_busy(),
            stats.per_node_busy.iter().sum::<Duration>()
        );
    }

    #[test]
    fn traced_run_spans_sum_to_per_node_busy() {
        let recorder = Recorder::for_nodes(3);
        let tasks: Vec<u32> = (0..30).collect();
        let placement: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let (_, stats) = run_tasks_traced(4, 3, tasks, &placement, &recorder, "unit", |_, t| t + 1);
        let trace = recorder.snapshot();
        assert_eq!(trace.spans.len(), 30);
        for node in 0..3 {
            let span_sum: u64 = trace
                .spans
                .iter()
                .filter(|s| s.lane == asj_obs::Lane::Node(node))
                .map(|s| s.sim_dur_ns)
                .sum();
            assert_eq!(span_sum, stats.per_node_busy[node].as_nanos() as u64);
            assert_eq!(recorder.node_sim_total(node), stats.per_node_busy[node]);
        }
    }

    fn ft_ctx(plan: FaultPlan, policy: RetryPolicy, nodes: usize) -> FaultContext {
        FaultContext::new(plan, policy, nodes)
    }

    #[test]
    fn ft_without_faults_matches_plain_run() {
        let tasks: Vec<u64> = (0..64).collect();
        let placement: Vec<usize> = (0..64).map(|i| i % 3).collect();
        let ctx = ft_ctx(FaultPlan::none(), RetryPolicy::default(), 3);
        let (out, stats) = run_tasks_ft(
            4,
            3,
            tasks,
            &placement,
            &Recorder::noop(),
            "unit",
            &ctx,
            |_, t| t * 3,
        )
        .expect("fault-free run succeeds");
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(stats.attempts, 64);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.failed_attempts, 0);
        assert_eq!(stats.speculative_wins, 0);
        assert_eq!(stats.blacklisted_nodes, 0);
    }

    #[test]
    fn ft_retries_injected_failures_and_recovers() {
        // Attempt 1 of every task fails; attempt 2 succeeds.
        let plan = FaultPlan::none().with_fail_prob(0.0).with_seed(3);
        let plan = (0..8).fold(plan, |p, t| p.with_fail_point("unit", t, 1));
        let ctx = ft_ctx(plan, RetryPolicy::default(), 2);
        let tasks: Vec<u32> = (0..8).collect();
        let placement: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let (out, stats) = run_tasks_ft(
            2,
            2,
            tasks,
            &placement,
            &Recorder::noop(),
            "unit",
            &ctx,
            |_, t| t + 100,
        )
        .expect("retries must recover");
        assert_eq!(out, (0..8).map(|t| t + 100).collect::<Vec<_>>());
        assert_eq!(stats.attempts, 16, "each task needs exactly two attempts");
        assert_eq!(stats.retries, 8);
        assert_eq!(stats.failed_attempts, 8);
        assert!(stats.attempts > 8, "recovery must show up in the stats");
    }

    #[test]
    fn ft_retries_injected_oom_and_recovers() {
        // Attempt 1 of task 2 dies of injected budget exhaustion; the retry
        // lands elsewhere and succeeds, exactly like any other failure.
        let plan = FaultPlan::none().with_oom_point("unit", 2, 1);
        let memory = std::sync::Arc::new(crate::memory::MemoryAccountant::new(2, Some(1 << 20)));
        let ctx = FaultContext::new(plan, RetryPolicy::default(), 2)
            .with_memory(std::sync::Arc::clone(&memory));
        let tasks: Vec<u32> = (0..4).collect();
        let placement: Vec<usize> = (0..4).map(|i| i % 2).collect();
        let recorder = Recorder::for_nodes(2);
        let (out, stats) =
            run_tasks_ft(2, 2, tasks, &placement, &recorder, "unit", &ctx, |_, t| {
                t + 10
            })
            .expect("oom retry must recover");
        assert_eq!(out, (0..4).map(|t| t + 10).collect::<Vec<_>>());
        assert_eq!(stats.attempts, 5, "one oom retry on top of four tasks");
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.failed_attempts, 1);
        assert_eq!(memory.oom_events(), 1, "the accountant sees the injection");
        assert_eq!(recorder.counter_value("unit", "oom_events"), Some(1));
        let trace = recorder.snapshot();
        assert!(
            trace.events.iter().any(|e| e.name == "oom"),
            "the oom event must land in the trace"
        );
    }

    #[test]
    fn ft_exhausted_attempts_fail_the_job() {
        let plan = FaultPlan::none().with_stage_fail_prob("unit", 1.0);
        let ctx = ft_ctx(plan, RetryPolicy::default().with_max_attempts(3), 2);
        let err = run_tasks_ft(
            2,
            2,
            vec![1u8, 2],
            &[0, 1],
            &Recorder::noop(),
            "unit",
            &ctx,
            |_, t| t,
        )
        .expect_err("unsurvivable plan must fail");
        assert_eq!(err.attempts, 3);
        assert!(matches!(err.error, TaskError::Injected { .. }));
    }

    #[test]
    fn ft_panicking_task_is_retried_on_another_node() {
        // The closure panics only on node-0 placements of task 0's input; the
        // retry lands elsewhere and succeeds. Panics are modelled by input
        // value since the closure cannot see the node — so panic exactly once
        // via an attempt counter.
        let boom = AtomicUsize::new(0);
        let ctx = ft_ctx(FaultPlan::none(), RetryPolicy::default(), 2);
        let (out, stats) = run_tasks_ft(
            1,
            2,
            vec![7u32],
            &[0],
            &Recorder::noop(),
            "unit",
            &ctx,
            |_, t| {
                if boom.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("first attempt dies");
                }
                t
            },
        )
        .expect("retry must recover from a panic");
        assert_eq!(out, vec![7]);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.failed_attempts, 1);
    }

    #[test]
    fn ft_lost_node_reroutes_work() {
        // Node 0 is lost immediately; everything placed there must be
        // rerouted to node 1 and still succeed.
        let plan = FaultPlan::none().with_lost_node(0, 0);
        let ctx = ft_ctx(plan, RetryPolicy::default(), 2);
        let tasks: Vec<u32> = (0..6).collect();
        let (out, stats) = run_tasks_ft(
            2,
            2,
            tasks,
            &[0, 0, 0, 0, 0, 0],
            &Recorder::noop(),
            "unit",
            &ctx,
            |_, t| t,
        )
        .expect("reroute must recover");
        assert_eq!(out, (0..6).collect::<Vec<_>>());
        assert_eq!(stats.failed_attempts, 6, "one fast failure per task");
        assert_eq!(stats.per_node_busy[0], Duration::ZERO);
        assert!(stats.per_node_busy[1] > Duration::ZERO);
    }

    #[test]
    fn ft_blacklists_failing_node() {
        let plan = FaultPlan::none().with_lost_node(0, 0);
        let ctx = ft_ctx(plan, RetryPolicy::default().with_blacklist_after(2), 3);
        let tasks: Vec<u32> = (0..8).collect();
        let (_, stats) = run_tasks_ft(
            2,
            3,
            tasks,
            &[0; 8],
            &Recorder::noop(),
            "unit",
            &ctx,
            |_, t| t,
        )
        .expect("must recover");
        assert_eq!(stats.blacklisted_nodes, 1);
        assert!(ctx.state.is_blacklisted(0));
    }

    #[test]
    fn ft_speculation_beats_a_straggler() {
        // Node 1 is 40x slower. The straggling task's speculative copy on
        // node 0 finishes first and wins; the sleeping original is killed.
        let plan = FaultPlan::none().with_slow_node(1, 40.0);
        let policy = RetryPolicy::default()
            .with_speculation(true)
            .with_blacklist_after(u64::MAX);
        let ctx = ft_ctx(plan, policy, 2);
        let tasks: Vec<u32> = (0..8).collect();
        // Task 7 runs on the slow node; everything else on node 0.
        let placement = [0, 0, 0, 0, 0, 0, 0, 1];
        let recorder = Recorder::for_nodes(2);
        let (out, stats) =
            run_tasks_ft(2, 2, tasks, &placement, &recorder, "unit", &ctx, |_, t| {
                std::thread::sleep(Duration::from_millis(3));
                t * 2
            })
            .expect("speculation run succeeds");
        assert_eq!(out, (0..8).map(|t| t * 2).collect::<Vec<_>>());
        assert_eq!(stats.speculative_wins, 1, "the copy must win the race");
        // The killed original shows up on the slow node's lane, and the
        // trace still accounts for exactly the busy time.
        let trace = recorder.snapshot();
        assert!(trace.spans.iter().any(|s| s.stage == "unit!killed"));
        for node in 0..2 {
            let span_sum: u64 = trace
                .spans
                .iter()
                .filter(|s| s.lane == asj_obs::Lane::Node(node))
                .map(|s| s.sim_dur_ns)
                .sum();
            assert_eq!(span_sum, stats.per_node_busy[node].as_nanos() as u64);
        }
        // Makespan with a rescued straggler must be far below the 40x bill
        // the original would have paid (3ms * 40 = 120ms).
        assert!(stats.makespan() < Duration::from_millis(120));
    }

    #[test]
    fn ft_charges_failed_attempts_to_sim_clock() {
        let plan = FaultPlan::none().with_fail_point("unit", 0, 1);
        let ctx = ft_ctx(plan, RetryPolicy::default(), 1);
        let recorder = Recorder::for_nodes(1);
        let (_, stats) = run_tasks_ft(1, 1, vec![()], &[0], &recorder, "unit", &ctx, |_, ()| {
            std::thread::sleep(Duration::from_millis(2))
        })
        .expect("retry recovers");
        let trace = recorder.snapshot();
        let failed: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.stage == "unit!failed")
            .collect();
        assert_eq!(failed.len(), 1, "failed attempt must appear in the trace");
        assert!(failed[0].sim_dur_ns >= 2_000_000);
        let span_sum: u64 = trace.spans.iter().map(|s| s.sim_dur_ns).sum();
        assert_eq!(span_sum, stats.per_node_busy[0].as_nanos() as u64);
        assert!(
            stats.per_node_busy[0] >= Duration::from_millis(4),
            "both attempts must be billed"
        );
    }

    #[test]
    fn ft_backoff_bills_the_sim_clock_and_balances_lanes() {
        // Two fail points force two retries; backoff is enabled, so each
        // retry adds a deterministic simulated delay billed to the retry
        // node. The lane-sum invariant must survive: per-node span sim sums
        // equal per_node_busy exactly, backoff spans included.
        let plan = FaultPlan::none()
            .with_fail_point("unit", 0, 1)
            .with_fail_point("unit", 1, 1);
        let policy = RetryPolicy::default().with_backoff(500);
        let ctx = ft_ctx(plan, policy, 2);
        let recorder = Recorder::for_nodes(2);
        let (out, stats) = run_tasks_ft(
            2,
            2,
            vec![10u32, 20],
            &[0, 1],
            &recorder,
            "unit",
            &ctx,
            |_, t| t + 1,
        )
        .expect("retries recover");
        assert_eq!(out, vec![11, 21]);
        assert_eq!(stats.retries, 2);

        let trace = recorder.snapshot();
        let mut billed_backoffs: Vec<u64> = trace
            .spans
            .iter()
            .filter(|s| s.stage == "unit!backoff")
            .map(|s| s.sim_dur_ns)
            .collect();
        billed_backoffs.sort_unstable();
        let mut expected: Vec<u64> = (0..2)
            .map(|task| policy.backoff("unit", task, 2).as_nanos() as u64)
            .collect();
        expected.sort_unstable();
        assert_eq!(
            billed_backoffs, expected,
            "each retry bills exactly the policy's deterministic delay"
        );
        // Lane-sum billing balance, per node: span sim durations (backoff
        // spans included) must sum to exactly the node's busy time.
        for node in 0..2usize {
            let lane_sum: u64 = trace
                .spans
                .iter()
                .filter(|s| s.lane == Lane::Node(node))
                .map(|s| s.sim_dur_ns)
                .sum();
            assert_eq!(
                lane_sum,
                stats.per_node_busy[node].as_nanos() as u64,
                "node {node} lane must balance with backoff included"
            );
        }
        let total_backoff: u64 = expected.iter().sum();
        assert!(
            stats.total_busy().as_nanos() as u64 >= total_backoff,
            "backoff must be visible in total busy time"
        );
    }
}
